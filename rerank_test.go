package geodabs_test

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"geodabs"
)

// TestClusterRerankDifferential pins the pushed-down rerank to the
// coordinator-retention contract: for both built-in metrics and every
// option shape, a cluster scoring candidates on its shard nodes must
// return hits byte-identical — scores, order, ID tiebreaks, Shared
// counts — to a local index scoring its own retained points.
func TestClusterRerankDifferential(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 3)
	ctx := context.Background()
	metrics := map[string]geodabs.RerankMetric{"dtw": geodabs.DTW, "dfd": geodabs.DFD}
	optionSets := map[string][]geodabs.SearchOption{
		"knn":          {geodabs.WithKNN(5)},
		"limit":        {geodabs.WithLimit(7)},
		"ranged knn":   {geodabs.WithMaxDistance(0.9), geodabs.WithKNN(3)},
		"ranged limit": {geodabs.WithMaxDistance(0.95), geodabs.WithLimit(4)},
		// No cap: every candidate is scored, no lower-bound skipping.
		"unbounded": {geodabs.WithMaxDistance(0.99)},
	}
	for mName, metric := range metrics {
		for oName, base := range optionSets {
			opts := append(append([]geodabs.SearchOption(nil), base...), geodabs.WithExactRerank(metric))
			for _, q := range w.Queries {
				want, err := idx.Search(ctx, q, opts...)
				if err != nil {
					t.Fatalf("%s/%s query %d: index: %v", mName, oName, q.ID, err)
				}
				got, err := cl.Search(ctx, q, opts...)
				if err != nil {
					t.Fatalf("%s/%s query %d: cluster: %v", mName, oName, q.ID, err)
				}
				if !reflect.DeepEqual(got.Hits, want.Hits) {
					t.Fatalf("%s/%s query %d: cluster hits %+v, index hits %+v", mName, oName, q.ID, got.Hits, want.Hits)
				}
			}
		}
	}
}

// TestClusterRerankDuringChurn races rerank fan-outs against concurrent
// Upsert/Delete churn. A search may cleanly fail when a shortlist
// member is deleted between the fingerprint ranking and the node-side
// scoring — that error must name the rerank — but it must never panic,
// race, or return a corrupt ranking. Run under -race in CI.
func TestClusterRerankDuringChurn(t *testing.T) {
	_, w := testWorld()
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	trajs := w.Dataset.Trajectories
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr := trajs[i%len(trajs)]
			if i%3 == 0 {
				cl.Delete(ctx, tr.ID)
				cl.Upsert(ctx, tr)
			} else {
				cl.Upsert(ctx, tr)
			}
		}
	}()
	for i := 0; i < 60; i++ {
		q := w.Queries[i%len(w.Queries)]
		res, err := cl.Search(ctx, q, geodabs.WithKNN(5), geodabs.WithExactRerank(geodabs.DTW))
		if err != nil {
			if !strings.Contains(err.Error(), "rerank") {
				t.Fatalf("search %d: unexpected error: %v", i, err)
			}
			continue
		}
		for j := 1; j < len(res.Hits); j++ {
			prev, cur := res.Hits[j-1], res.Hits[j]
			if prev.Distance > cur.Distance || (prev.Distance == cur.Distance && prev.ID > cur.ID) {
				t.Fatalf("search %d: ranking out of order at %d: %+v", i, j, res.Hits)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestClusterRerankSurvivesNodeRestart is the durability criterion for
// point retention: WAL-backed nodes are hard-killed (no flush — the
// in-process stand-in for SIGKILL) and restarted from their logs, and
// the pushed-down rerank must still return results byte-identical to a
// local index. A second phase restarts the coordinator too, rebuilding
// the point-ownership map through directory recovery.
func TestClusterRerankSurvivesNodeRestart(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	ctx := context.Background()

	const nodeCount = 2
	nodes := make([]*geodabs.ShardNode, nodeCount)
	addrs := make([]string, nodeCount)
	dirs := make([]string, nodeCount)
	for i := range nodes {
		dirs[i] = t.TempDir()
		n, err := geodabs.StartShardNode("127.0.0.1:0", geodabs.WithWALDir(dirs[i]))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		addrs[i] = n.Addr()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	cfg := geodabs.DefaultConfig()
	strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 1000, Nodes: nodeCount}
	cl, err := geodabs.NewCluster(cfg, strategy, addrs, geodabs.WithPointRetention())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	for _, tr := range w.Dataset.Trajectories {
		if err := cl.Add(tr); err != nil {
			t.Fatal(err)
		}
	}

	q := w.Queries[0]
	opts := []geodabs.SearchOption{geodabs.WithKNN(5), geodabs.WithExactRerank(geodabs.DTW)}
	want, err := idx.Search(ctx, q, opts...)
	if err != nil {
		t.Fatal(err)
	}

	for i := range nodes {
		nodes[i].Kill()
	}
	for i := range nodes {
		n, err := geodabs.StartShardNode(addrs[i], geodabs.WithWALDir(dirs[i]))
		if err != nil {
			t.Fatalf("restart node %d: %v", i, err)
		}
		nodes[i] = n
	}
	got := rerankWithRetry(t, cl, q, opts)
	if !reflect.DeepEqual(got.Hits, want.Hits) {
		t.Fatalf("after node restart: cluster hits %+v, index hits %+v", got.Hits, want.Hits)
	}

	// Coordinator restart: a fresh coordinator re-learns who owns which
	// points from the nodes' full-sync records.
	cl2, err := geodabs.NewCluster(cfg, strategy, addrs,
		geodabs.WithPointRetention(), geodabs.WithDirectoryRecovery())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl2.Close() })
	got2 := rerankWithRetry(t, cl2, q, opts)
	if !reflect.DeepEqual(got2.Hits, want.Hits) {
		t.Fatalf("after coordinator recovery: cluster hits %+v, index hits %+v", got2.Hits, want.Hits)
	}
}

// rerankWithRetry searches with retries: a restarted node leaves dead
// pooled connections behind, and the pool redials on the next attempt.
func rerankWithRetry(t *testing.T, cl *geodabs.Cluster, q *geodabs.Trajectory, opts []geodabs.SearchOption) *geodabs.SearchResult {
	t.Helper()
	var res *geodabs.SearchResult
	var err error
	for attempt := 0; attempt < 20; attempt++ {
		res, err = cl.Search(context.Background(), q, opts...)
		if err == nil {
			return res
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("rerank search did not recover: %v", err)
	return nil
}
