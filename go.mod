module geodabs

go 1.24
