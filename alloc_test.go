package geodabs_test

import (
	"context"
	"runtime/debug"
	"testing"

	"geodabs/internal/index"
)

// TestSearchCoreZeroAlloc is the runtime half of the noalloc gate: the
// geodabs-vet noalloc analyzer proves the annotated search core has no
// escaping allocation sites at compile time, and this test pins the
// steady-state behavior with testing.AllocsPerRun — a warm scratch pool
// plus a recycled result buffer must search without touching the heap.
// GC is disabled for the measurement so a collection cannot empty the
// scratch pool mid-run and charge the refill to a search.
func TestSearchCoreZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	ix := index.NewInverted(geodabEx())
	if err := ix.AddAll(context.Background(), benchWorkload().Dataset, 8); err != nil {
		t.Fatal(err)
	}
	set := geodabEx().Extract(benchWorkload().Queries[0].Points)
	qc := set.Cardinality()
	ctx := context.Background()
	buf := make([]index.Result, 0, 4096)

	cases := []struct {
		name string
		run  func() error
	}{
		{"AppendSearchFingerprints/wide", func() error {
			results, _, err := ix.AppendSearchFingerprints(ctx, buf[:0], set, 1, 10)
			buf = results[:0]
			return err
		}},
		{"AppendSearchFingerprints/knn", func() error {
			results, _, err := ix.AppendSearchFingerprints(ctx, buf[:0], set, 0.5, 5)
			buf = results[:0]
			return err
		}},
		{"AppendSearchSet/prepared", func() error {
			results, _, err := ix.AppendSearchSet(ctx, buf[:0], set, qc, 0.9, 0)
			buf = results[:0]
			return err
		}},
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, tc := range cases {
		// Warm the scratch pool and size the counter chunks before
		// measuring; the first search pays one-time growth by design.
		for i := 0; i < 3; i++ {
			if err := tc.run(); err != nil {
				t.Fatalf("%s: warmup: %v", tc.name, err)
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := tc.run(); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.2f allocs/op in steady state, want 0", tc.name, allocs)
		}
	}
}
