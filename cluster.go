package geodabs

import (
	"geodabs/internal/cluster"
	"geodabs/internal/core"
	"geodabs/internal/index"
	"geodabs/internal/shard"
)

// ShardNode is a network server owning a slice of the geodab term space.
// Start nodes with StartShardNode, then front them with NewCluster.
type ShardNode = cluster.Node

// StartShardNode listens on addr (e.g. "127.0.0.1:0") and serves shard
// requests until Close.
var StartShardNode = cluster.StartNode

// ShardStrategy maps geodabs to shards along the Z-order space-filling
// curve (locality-preserving) and shards to nodes modulo the cluster size
// (locality-breaking, for balance) — the paper's two-step distribution.
type ShardStrategy = shard.Strategy

// Cluster is a distributed geodab index: a coordinator that routes
// postings to shard nodes and scatter-gathers Jaccard-ranked queries.
// Results are identical to a local Index over the same data.
type Cluster = cluster.Coordinator

// NewCluster connects to the shard nodes at addrs. The strategy's Nodes
// must equal len(addrs); strategy.PrefixBits must match cfg.PrefixBits.
func NewCluster(cfg Config, strategy ShardStrategy, addrs []string) (*Cluster, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	return cluster.NewCoordinator(index.GeodabExtractor{Fingerprinter: f}, strategy, addrs)
}
