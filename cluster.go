package geodabs

import (
	"context"
	"errors"

	"geodabs/internal/cluster"
	"geodabs/internal/core"
	"geodabs/internal/index"
	"geodabs/internal/shard"
)

// ErrClosed reports an operation on a Cluster after Close. Searches and
// mutations racing a Close either complete normally or return an error
// satisfying errors.Is(err, ErrClosed) — never a panic or a hang.
var ErrClosed = errors.New("geodabs: cluster closed")

// ShardNode is a network server owning a slice of the geodab term space.
// Start nodes with StartShardNode, then front them with NewCluster.
type ShardNode = cluster.Node

// StartShardNode listens on addr (e.g. "127.0.0.1:0") and serves shard
// requests until Close. NodeOptions make the node durable (WithWALDir
// and friends) or turn it into a read replica (WithReplicaOf).
var StartShardNode = cluster.StartNode

// NodeOption configures a ShardNode at start (see StartShardNode).
type NodeOption = cluster.NodeOption

// WithWALDir makes the shard node durable: every mutation is appended to
// a write-ahead log in dir before it is applied, periodic snapshots
// compact the log, and a restarted node (same dir) recovers its exact
// pre-crash state. The directory must be private to one node.
var WithWALDir = cluster.WithWALDir

// WithWALSync tunes the WAL group commit: fsync after every `every`
// records, or after `interval` elapses with unsynced records, whichever
// comes first. WithWALSync(1, 0) syncs every record (most durable);
// larger batches trade a bounded loss window for write throughput.
var WithWALSync = cluster.WithWALSync

// WithWALSegmentBytes caps a WAL segment's size before the log rolls to
// a fresh segment file.
var WithWALSegmentBytes = cluster.WithWALSegmentBytes

// WithSnapshotBytes sets the WAL growth threshold that triggers a
// background snapshot + log truncation (negative disables automatic
// snapshots; ShardNode.Snapshot still works).
var WithSnapshotBytes = cluster.WithSnapshotBytes

// WithReplicaOf starts the node as a read replica of the primary shard
// node at addr: it full-syncs the primary's state, then tails its live
// mutation stream. Replicas reject direct mutations and refuse queries
// whose snapshot epoch their replicated state cannot yet prove complete.
// Register replicas with NewCluster's WithReadReplicas to route reads.
var WithReplicaOf = cluster.WithReplicaOf

// ReadPreference selects how a Cluster routes query reads across each
// shard node's replica set (see WithReadPreference).
type ReadPreference = cluster.ReadPreference

const (
	// ReadPrimary reads from primaries; replicas are failover only. The
	// default.
	ReadPrimary = cluster.ReadPrimary
	// ReadReplicas round-robins reads across each node's replicas,
	// falling back to the primary when a replica errors or is stale.
	ReadReplicas = cluster.ReadReplicas
)

// ShardStrategy maps geodabs to shards along the Z-order space-filling
// curve (locality-preserving) and shards to nodes modulo the cluster size
// (locality-breaking, for balance) — the paper's two-step distribution.
type ShardStrategy = shard.Strategy

// QueryStats reports the fan-out a query would incur (see Cluster.Analyze).
type QueryStats = cluster.QueryStats

// NodeStats is one shard node's term and posting counts, plus its
// durability state — mutation epochs, write-ahead log size and fsync
// counters, and per-replica lag (see Cluster.Stats).
type NodeStats = cluster.NodeStats

// ReplicaStats is one read replica's replication state within a
// NodeStats: its stable epoch, its lag behind the primary (0 = can serve
// every snapshot the primary can), and how many full syncs it has run.
type ReplicaStats = cluster.ReplicaStats

// Cluster is a distributed geodab index: a coordinator that routes
// postings to shard nodes, fans out deletions, and scatter-gathers
// Jaccard-ranked queries. Each trajectory's fingerprint cardinality is
// replicated to its owning nodes, so a search's distance bound is
// enforced node-side too: candidates that provably cannot qualify are
// skipped before they are serialized (SearchStats.NodePruned counts
// them). Results are identical to a local Index over
// the same data; both implement Searcher and Mutator. Reads are
// snapshot-isolated against concurrent writes: every mutation carries an
// epoch, every search takes the committed-epoch watermark before
// scattering, and ranking admits a trajectory only when its last
// mutation committed at or below that snapshot — so a search observes a
// trajectory either fully (all its terms on every node) or not at all.
// Cluster is safe for concurrent use.
type Cluster struct {
	coord *cluster.Coordinator
}

// NewCluster connects to the shard nodes at addrs. The strategy's Nodes
// must equal len(addrs); strategy.PrefixBits must match cfg.PrefixBits.
// WithPointRetention enables exact re-ranking; WithConnsPerNode sizes
// the per-node connection pool.
func NewCluster(cfg Config, strategy ShardStrategy, addrs []string, opts ...Option) (*Cluster, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	o, err := newEngineOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.shardsSet {
		return nil, errors.New("geodabs: WithShards applies to local indexes, not clusters — cluster sharding is configured by the node address list")
	}
	var coordOpts []cluster.Option
	if o.retainPoints {
		coordOpts = append(coordOpts, cluster.WithRetainPoints())
	}
	if o.connsPerNode > 0 {
		coordOpts = append(coordOpts, cluster.WithPoolSize(o.connsPerNode))
	}
	if o.readReplicas != nil {
		coordOpts = append(coordOpts, cluster.WithReadReplicas(o.readReplicas))
	}
	if o.readPrefSet {
		coordOpts = append(coordOpts, cluster.WithReadPreference(o.readPref))
	}
	if o.recoverDir {
		coordOpts = append(coordOpts, cluster.WithDirectoryRecovery())
	}
	coord, err := cluster.NewCoordinator(index.GeodabExtractor{Fingerprinter: f}, strategy, addrs, coordOpts...)
	if err != nil {
		return nil, err
	}
	return &Cluster{coord: coord}, nil
}

// Add fingerprints the trajectory and routes its postings to the
// cluster. IDs must be unique; use Upsert to replace an indexed
// trajectory. A failed add reclaims the postings it already applied
// (best-effort deletes to the nodes it touched) and is retryable.
func (c *Cluster) Add(t *Trajectory) error {
	return translateClusterErr(c.coord.Add(context.Background(), t))
}

// AddContext is Add honoring cancellation and deadlines while waiting on
// the shard nodes.
func (c *Cluster) AddContext(ctx context.Context, t *Trajectory) error {
	return translateClusterErr(c.coord.Add(ctx, t))
}

// Analyze returns the fan-out a query would incur, without executing it.
// It re-runs fingerprint extraction and sharding on every call; for a
// query that will also be searched (or analyzed repeatedly), prepare it
// once and use AnalyzeQuery, which caches both.
func (c *Cluster) Analyze(q *Trajectory) QueryStats { return c.coord.Analyze(q) }

// AnalyzeQuery returns the fan-out a prepared query would incur, without
// executing it. The query's cached extraction and shard partition are
// used — and populated on first call, so a subsequent SearchQuery against
// this cluster starts scattering immediately. A nil query touches
// nothing and reports zero fan-out.
func (c *Cluster) AnalyzeQuery(q *Query) QueryStats {
	if q == nil {
		return QueryStats{}
	}
	set, _ := q.termSet(c.coord.Extractor())
	return q.clusterPlan(c.coord, set).Stats()
}

// DiscardPoints severs the coordinator's point-ownership map: after the
// call, WithExactRerank fails for the trajectories added so far;
// fingerprint-ranked searches are unaffected. The shard nodes' retained
// copies are released lazily — when a trajectory is deleted or
// re-upserted — not eagerly broadcast.
//
// Deprecated: retention is now opt-in at construction — a cluster built
// without WithPointRetention never ships or pins point memory.
// DiscardPoints remains for retaining clusters that want to stop
// re-ranking mid-lifetime.
func (c *Cluster) DiscardPoints() { c.coord.DiscardPoints() }

// Stats gathers per-node term and posting counts, slice index i matching
// node i.
func (c *Cluster) Stats() ([]NodeStats, error) {
	stats, err := c.coord.Stats(context.Background())
	return stats, translateClusterErr(err)
}

// StatsContext is Stats honoring cancellation and deadlines while
// waiting on the shard nodes.
func (c *Cluster) StatsContext(ctx context.Context) ([]NodeStats, error) {
	stats, err := c.coord.Stats(ctx)
	return stats, translateClusterErr(err)
}

// Query returns the indexed trajectories within Jaccard distance
// maxDistance of q, most similar first, truncated to limit (≤ 0 for no
// limit).
//
// Deprecated: use Search, which takes a context, functional options, and
// returns execution statistics. For limit ≥ 0 and maxDistance in [0, 1],
// Query is equivalent to
//
//	Search(context.Background(), q, WithMaxDistance(maxDistance), WithLimit(limit))
//
// Query's negative-limit "no limit" form maps to WithLimit(0) or to
// omitting WithLimit; a legacy maxDistance above 1 (a no-op filter,
// since Jaccard distances never exceed 1) maps to WithMaxDistance(1) or
// to omitting WithMaxDistance.
func (c *Cluster) Query(q *Trajectory, maxDistance float64, limit int) ([]Result, error) {
	return c.coord.Query(q, maxDistance, limit)
}

// Close tears down all node connections. It is idempotent and safe to
// call concurrently with in-flight searches and mutations: later calls
// return nil immediately, racing operations either complete or fail with
// ErrClosed, and every operation after Close returns ErrClosed.
func (c *Cluster) Close() error { return c.coord.Close() }
