// Package client is the Go client for geodabsd, the geodabs network
// service. It speaks the compact length-prefixed binary protocol of
// geodabs/internal/wire (specified in docs/protocol.md) over pooled TCP
// connections.
//
// The client is built for the thin-client split the fingerprint design
// enables: an edge client winnows its trajectory locally (with
// geodabs.NewFingerprinter) and ships only the fingerprint's term set —
// a few bytes per geodab — never raw GPS points:
//
//	f, _ := geodabs.NewFingerprinter(cfg)
//	cl, _ := client.Dial("10.0.0.7:7071")
//	defer cl.Close()
//	res, err := cl.SearchFingerprint(ctx, f.Fingerprint(points),
//	    client.WithMaxDistance(0.4), client.WithKNN(10))
//
// Raw-trajectory search (Search) and mutations (Upsert, Delete) are
// available for trusted clients that prefer server-side winnowing.
//
// Deadlines ride the request: the remaining budget of ctx is sent to the
// server, which propagates it into its engine call, so a client timeout
// cancels work all the way down to the cluster's shard nodes instead of
// merely abandoning the reply. Idempotent reads (Ping and both
// searches) are retried on transport failures and OVERLOADED replies
// while deadline budget remains; mutations are never retried.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"geodabs"
	"geodabs/internal/wire"
)

// Sentinel errors mapping geodabsd's explicit refusal replies. Test with
// errors.Is; ErrNotFound is the public geodabs sentinel, so remote and
// local engines fail the same way.
var (
	// ErrOverloaded reports an OVERLOADED reply: admission control shed
	// the request without executing it. Safe to retry after backoff
	// (reads do so automatically).
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrShuttingDown reports a SHUTTING_DOWN reply: the server is
	// draining and refused the request. Retry against another replica.
	ErrShuttingDown = errors.New("client: server shutting down")
	// ErrClosed reports a call on a closed Client.
	ErrClosed = errors.New("client: closed")
	// ErrNotFound aliases geodabs.ErrNotFound for remote deletes of
	// unknown IDs.
	ErrNotFound = geodabs.ErrNotFound
)

// Option configures a Client at Dial.
type Option func(*Client)

// WithPoolSize bounds the idle connection pool (default 4). The client
// dials beyond the pool under load; surplus connections are closed on
// check-in rather than pooled.
func WithPoolSize(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// WithDialTimeout bounds each dial (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithMaxRetries sets how many times an idempotent read is retried after
// a transport failure or an OVERLOADED reply (default 2, 0 disables).
// Mutations are never retried.
func WithMaxRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.maxRetries = n
		}
	}
}

// Client is a pooled geodabsd client, safe for concurrent use. One
// request is in flight per connection; concurrent calls each check out
// their own connection (dialing on demand) and return it when done.
type Client struct {
	addr        string
	poolSize    int
	dialTimeout time.Duration
	maxRetries  int

	mu     sync.Mutex
	idle   []*conn
	active map[*conn]struct{}
	closed bool

	nextID uint64 // request IDs, informational (one request per conn)
}

// conn is one pooled connection with its read buffer.
type conn struct {
	nc net.Conn
}

// Dial connects to a geodabsd at addr. The returned client pools
// connections lazily: nothing is dialed until the first call.
func Dial(addr string, opts ...Option) (*Client, error) {
	if addr == "" {
		return nil, errors.New("client: empty address")
	}
	c := &Client{
		addr:        addr,
		poolSize:    4,
		dialTimeout: 5 * time.Second,
		maxRetries:  2,
		active:      make(map[*conn]struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Close closes every pooled connection. In-flight calls fail with their
// connections; Close is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*conn(nil), c.idle...)
	for nc := range c.active {
		conns = append(conns, nc)
	}
	c.idle = nil
	c.mu.Unlock()
	var firstErr error
	for _, nc := range conns {
		if err := nc.nc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// checkout hands the caller a connection: an idle one when available, a
// fresh dial otherwise.
func (c *Client) checkout(ctx context.Context) (*conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		nc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.active[nc] = struct{}{}
		c.mu.Unlock()
		return nc, nil
	}
	c.mu.Unlock()

	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, c.dialTimeout)
		defer cancel()
	}
	var d net.Dialer
	raw, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	nc := &conn{nc: raw}
	c.mu.Lock()
	if c.closed { // closed while dialing
		c.mu.Unlock()
		raw.Close()
		return nil, ErrClosed
	}
	c.active[nc] = struct{}{}
	c.mu.Unlock()
	return nc, nil
}

// checkin returns a healthy connection to the idle pool, closing it when
// the pool is full or the client closed.
func (c *Client) checkin(nc *conn) {
	c.mu.Lock()
	delete(c.active, nc)
	if c.closed || len(c.idle) >= c.poolSize {
		c.mu.Unlock()
		nc.nc.Close()
		return
	}
	c.idle = append(c.idle, nc)
	c.mu.Unlock()
}

// discard drops a connection whose stream may be desynchronized; the
// next call dials afresh.
func (c *Client) discard(nc *conn) {
	nc.nc.Close()
	c.mu.Lock()
	delete(c.active, nc)
	c.mu.Unlock()
}

// roundTrip performs one request/response exchange on a checked-out
// connection. A cancelled ctx pokes the connection deadline so blocked
// I/O aborts promptly; transport failures poison the connection.
func (c *Client) roundTrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The remaining deadline budget rides the request so the server's
	// engine call is cancelled in step with the caller.
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms <= 0 {
			return nil, context.DeadlineExceeded
		}
		req.DeadlineMS = uint64(ms)
	}
	nc, err := c.checkout(ctx)
	if err != nil {
		return nil, err
	}
	payload := wire.AppendRequest(nil, req)
	frame, err := wire.AppendFrame(nil, payload)
	if err != nil {
		c.checkin(nc)
		return nil, err
	}

	if dl, ok := ctx.Deadline(); ok {
		// Slack past the ctx deadline: expiry is delivered by the
		// watcher's poke below, which is ordered after ctx.Done — so the
		// failed read reports the context error, not a bare transport
		// timeout. The connection deadline is only a backstop against a
		// missed poke and must not fire first.
		nc.nc.SetDeadline(dl.Add(250 * time.Millisecond))
	} else {
		nc.nc.SetDeadline(time.Time{})
	}
	// Watch for cancellation: poking the deadline into the past unblocks
	// the pending read/write with a timeout error. The watcher must be
	// fully quiesced before the connection goes back to the pool —
	// callers routinely cancel the ctx the moment their call returns,
	// and a stale watcher poking a recycled connection would time out
	// whatever request holds it next.
	watchDone := make(chan struct{})
	watchExited := make(chan struct{})
	go func() {
		defer close(watchExited)
		select {
		case <-ctx.Done():
			nc.nc.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()
	stopWatch := func() {
		close(watchDone)
		<-watchExited
	}
	transportErr := func(err error) (*wire.Response, error) {
		stopWatch()
		c.discard(nc)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, &transportError{err: fmt.Errorf("client: %s: %w", c.addr, err)}
	}
	if _, err := nc.nc.Write(frame); err != nil {
		return transportErr(err)
	}
	respPayload, err := wire.ReadFrame(nc.nc)
	if err != nil {
		return transportErr(err)
	}
	stopWatch()
	resp, err := wire.DecodeResponse(respPayload)
	if err != nil {
		c.discard(nc)
		return nil, fmt.Errorf("client: %s: %w", c.addr, err)
	}
	if resp.ID != req.ID {
		c.discard(nc)
		return nil, fmt.Errorf("client: %s: response id %d for request %d", c.addr, resp.ID, req.ID)
	}
	c.checkin(nc)
	return resp, nil
}

// transportError marks failures of the connection itself — the request
// may never have reached the server, so idempotent reads retry them.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// retryable reports errors an idempotent read may retry: transport
// failures and explicit OVERLOADED sheds.
func retryable(err error) bool {
	var te *transportError
	return errors.As(err, &te) || errors.Is(err, ErrOverloaded)
}

// retryBaseDelay spaces read retries; attempt n waits n× this (capped by
// the deadline budget).
const retryBaseDelay = 25 * time.Millisecond

// do runs one exchange, retrying idempotent reads on retryable errors
// while ctx allows.
func (c *Client) do(ctx context.Context, req *wire.Request, idempotent bool) (*wire.Response, error) {
	c.mu.Lock()
	c.nextID++
	req.ID = c.nextID
	c.mu.Unlock()

	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTrip(ctx, req)
		if err == nil {
			if err = statusErr(resp); err == nil {
				return resp, nil
			}
		}
		lastErr = err
		if !idempotent || attempt >= c.maxRetries || !retryable(err) {
			return nil, lastErr
		}
		select {
		case <-time.After(time.Duration(attempt+1) * retryBaseDelay):
		case <-ctx.Done():
			return nil, lastErr
		}
	}
}

// statusErr maps a non-OK reply onto the client's error surface.
func statusErr(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusOverloaded:
		return ErrOverloaded
	case wire.StatusShuttingDown:
		return ErrShuttingDown
	case wire.StatusNotFound:
		return ErrNotFound
	case wire.StatusDeadlineExceeded:
		return context.DeadlineExceeded
	case wire.StatusBadRequest:
		return fmt.Errorf("client: bad request: %s", resp.Message)
	default:
		return fmt.Errorf("client: server error: %s", resp.Message)
	}
}

// SearchOption configures one remote search.
type SearchOption func(*wire.Request)

// WithMaxDistance keeps only hits within Jaccard distance d, like
// geodabs.WithMaxDistance.
func WithMaxDistance(d float64) SearchOption {
	return func(r *wire.Request) { r.MaxDistance = d }
}

// WithLimit truncates the ranking to its top n, like geodabs.WithLimit.
func WithLimit(n int) SearchOption {
	return func(r *wire.Request) { r.Limit = n }
}

// WithKNN asks for the k nearest neighbors, like geodabs.WithKNN.
// Mutually exclusive with WithLimit.
func WithKNN(k int) SearchOption {
	return func(r *wire.Request) { r.KNN = k }
}

// Metric names a built-in exact rerank metric the server can evaluate.
// Only built-ins are addressable over the wire: a custom function
// cannot cross a process boundary.
type Metric uint8

const (
	// DTW selects dynamic time warping; DFD the discrete Fréchet
	// distance. Both are in meters, matching geodabs.DTW and geodabs.DFD.
	DTW Metric = Metric(wire.MetricDTW)
	DFD Metric = Metric(wire.MetricDFD)
)

// WithExactRerank asks the server to refine the fingerprint ranking
// with the named exact metric, like geodabs.WithExactRerank — the
// server's engine must retain points (and on a cluster the scoring runs
// on the shard nodes owning them; raw candidate points never move).
// Applies to Search only: a fingerprint-only search carries no raw
// query points to score, so SearchFingerprint rejects it, matching the
// local engine's behavior.
func WithExactRerank(m Metric) SearchOption {
	return func(r *wire.Request) { r.Metric = uint8(m) }
}

// Stats reports a remote search's execution statistics, the wire view of
// geodabs.SearchStats (Elapsed is the server-side engine time).
type Stats struct {
	Candidates   int
	Pruned       int
	NodePruned   int
	WirePartials int
	Shards       int
	Nodes        int
	Elapsed      time.Duration
}

// Result is a remote search's outcome: ranked hits plus statistics.
type Result struct {
	Hits  []geodabs.Result
	Stats Stats
}

func searchRequest(op wire.Op, opts []SearchOption) *wire.Request {
	req := &wire.Request{Op: op, MaxDistance: 1}
	for _, opt := range opts {
		opt(req)
	}
	return req
}

func searchResult(resp *wire.Response) *Result {
	hits := make([]geodabs.Result, len(resp.Hits))
	for i, h := range resp.Hits {
		hits[i] = geodabs.Result{ID: geodabs.ID(h.ID), Distance: h.Distance, Shared: int(h.Shared)}
	}
	st := resp.Stats
	return &Result{
		Hits: hits,
		Stats: Stats{
			Candidates:   int(st.Candidates),
			Pruned:       int(st.Pruned),
			NodePruned:   int(st.NodePruned),
			WirePartials: int(st.WirePartials),
			Shards:       int(st.Shards),
			Nodes:        int(st.Nodes),
			Elapsed:      time.Duration(st.ElapsedUS) * time.Microsecond,
		},
	}
}

// Ping round-trips a no-op request, verifying the server is reachable
// and admitting traffic.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpPing}, true)
	return err
}

// SearchFingerprint searches with a locally winnowed fingerprint — the
// thin-client path: only the term set crosses the wire, and the server
// search starts straight from the prepared-query plan cache. The
// fingerprint must come from a Fingerprinter configured identically to
// the server's engine.
func (c *Client) SearchFingerprint(ctx context.Context, fp *geodabs.Fingerprint, opts ...SearchOption) (*Result, error) {
	if fp == nil || fp.Set == nil {
		return nil, errors.New("client: nil fingerprint")
	}
	req := searchRequest(wire.OpSearchFP, opts)
	if req.Metric != 0 {
		return nil, errors.New("client: WithExactRerank needs the query's raw points, which a fingerprint-only search does not carry — use Search instead")
	}
	req.Terms = fp.Set.ToSlice()
	resp, err := c.do(ctx, req, true)
	if err != nil {
		return nil, err
	}
	return searchResult(resp), nil
}

// Search ships raw trajectory points for server-side winnowing. Prefer
// SearchFingerprint where the client can run the geodab pipeline — it
// sends less and reveals less.
func (c *Client) Search(ctx context.Context, points []geodabs.Point, opts ...SearchOption) (*Result, error) {
	req := searchRequest(wire.OpSearch, opts)
	if req.Metric != 0 {
		req.Op = wire.OpSearchRerank
	}
	req.Points = toWirePoints(points)
	resp, err := c.do(ctx, req, true)
	if err != nil {
		return nil, err
	}
	return searchResult(resp), nil
}

// Upsert indexes the trajectory remotely, replacing any previously
// indexed trajectory with the same ID. Not retried: re-run on failure
// (the operation is idempotent server-side, the choice to retry is the
// caller's).
func (c *Client) Upsert(ctx context.Context, t *geodabs.Trajectory) error {
	if t == nil {
		return errors.New("client: nil trajectory")
	}
	req := &wire.Request{Op: wire.OpUpsert, TrajID: uint32(t.ID), Points: toWirePoints(t.Points)}
	_, err := c.do(ctx, req, false)
	return err
}

// Delete removes a trajectory remotely, returning ErrNotFound
// (= geodabs.ErrNotFound) when the ID is not indexed.
func (c *Client) Delete(ctx context.Context, id geodabs.ID) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpDelete, TrajID: uint32(id)}, false)
	return err
}

func toWirePoints(points []geodabs.Point) []wire.Point {
	out := make([]wire.Point, len(points))
	for i, p := range points {
		out[i] = wire.Point{Lat: p.Lat, Lon: p.Lon}
	}
	return out
}
