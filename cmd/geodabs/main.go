// Command geodabs is the command-line interface to the library: generate
// synthetic datasets, inspect and query indexes, and run shard-node
// servers.
//
// Usage:
//
//	geodabs gen   -out DIR [-routes N] [-seed N]     generate a dataset
//	geodabs stats -data FILE                         index a dataset, print stats
//	geodabs query -data FILE -queries FILE [-q N]    run a ranked query
//	geodabs serve -addr HOST:PORT                    run a shard node
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"geodabs"
	"geodabs/internal/trajectory"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "geodabs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return usageError()
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "query":
		return cmdQuery(args[1:])
	case "serve":
		return cmdServe(args[1:])
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: geodabs <gen|stats|query|serve> [flags]")
}

// cmdGen generates a synthetic dataset with held-out queries and ground
// truth, mirroring the paper's evaluation data (§VI-A1).
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "data", "output directory")
	routes := fs.Int("routes", 100, "number of routes (paper: 5000)")
	perDir := fs.Int("per-direction", 10, "trajectories per direction")
	seed := fs.Int64("seed", 1, "random seed")
	geojson := fs.Bool("geojson", false, "also write dataset.geojson for GIS tools")
	if err := fs.Parse(args); err != nil {
		return err
	}
	city, err := geodabs.GenerateCity(geodabs.CityConfig{Seed: *seed})
	if err != nil {
		return err
	}
	cfg := geodabs.DefaultDatasetConfig()
	cfg.Routes = *routes
	cfg.TrajectoriesPerDirection = *perDir
	cfg.Seed = *seed
	data, err := geodabs.GenerateDataset(city, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if err := writeDataset(filepath.Join(*out, "dataset.bin"), data.Dataset); err != nil {
		return err
	}
	queries := &geodabs.Dataset{Trajectories: data.Queries}
	if err := writeDataset(filepath.Join(*out, "queries.bin"), queries); err != nil {
		return err
	}
	if err := writeTruth(filepath.Join(*out, "truth.csv"), data); err != nil {
		return err
	}
	if *geojson {
		f, err := os.Create(filepath.Join(*out, "dataset.geojson"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := geodabs.WriteGeoJSON(f, data.Dataset); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d trajectories, %d queries to %s\n",
		data.Dataset.Len(), len(data.Queries), *out)
	return nil
}

func writeDataset(path string, d *geodabs.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trajectory.WriteDataset(f, d); err != nil {
		return err
	}
	return f.Close()
}

func readDataset(path string) (*geodabs.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trajectory.ReadDataset(f)
}

func writeTruth(path string, data *geodabs.DatasetOutput) error {
	var sb strings.Builder
	sb.WriteString("query_id,relevant_ids\n")
	for _, q := range data.Queries {
		ids := data.Relevant[q.ID]
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = strconv.FormatUint(uint64(id), 10)
		}
		fmt.Fprintf(&sb, "%d,%s\n", q.ID, strings.Join(parts, " "))
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// cmdStats indexes a dataset and prints the index composition.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dataPath := fs.String("data", "data/dataset.bin", "dataset file")
	workers := fs.Int("workers", 8, "parallel fingerprinting workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := readDataset(*dataPath)
	if err != nil {
		return err
	}
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		return err
	}
	start := time.Now()
	if err := idx.AddAll(d, *workers); err != nil {
		return err
	}
	elapsed := time.Since(start)
	s := idx.Stats()
	fmt.Printf("trajectories: %d\n", s.Trajectories)
	fmt.Printf("points:       %d\n", d.TotalPoints())
	fmt.Printf("terms:        %d\n", s.Terms)
	fmt.Printf("postings:     %d\n", s.Postings)
	fmt.Printf("bitmap bytes: %d\n", s.BitmapBytes)
	fmt.Printf("build time:   %v (%d workers)\n", elapsed.Round(time.Millisecond), *workers)
	return nil
}

// cmdQuery runs one held-out query against a dataset and prints the
// ranked results.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dataPath := fs.String("data", "data/dataset.bin", "dataset file")
	queryPath := fs.String("queries", "data/queries.bin", "queries file")
	qn := fs.Int("q", 0, "query number within the queries file")
	limit := fs.Int("limit", 10, "maximum results")
	maxDist := fs.Float64("max-distance", 0.99, "Jaccard distance cutoff Δmax")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := readDataset(*dataPath)
	if err != nil {
		return err
	}
	queries, err := readDataset(*queryPath)
	if err != nil {
		return err
	}
	if *qn < 0 || *qn >= queries.Len() {
		return fmt.Errorf("query %d out of range [0, %d)", *qn, queries.Len())
	}
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		return err
	}
	if err := idx.AddAll(d, 8); err != nil {
		return err
	}
	q := queries.Trajectories[*qn]
	start := time.Now()
	results := idx.Query(q, *maxDist, *limit)
	elapsed := time.Since(start)
	fmt.Printf("query %d: route %d (%s), %d points — %d results in %v\n",
		q.ID, q.Route, q.Dir, q.Len(), len(results), elapsed.Round(time.Microsecond))
	for i, r := range results {
		tr := d.ByID(r.ID)
		fmt.Printf("%2d. trajectory %5d  dJ=%.3f  shared=%3d  route %d (%s)\n",
			i+1, r.ID, r.Distance, r.Shared, tr.Route, tr.Dir)
	}
	return nil
}

// cmdServe runs a shard node until interrupted.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	node, err := geodabs.StartShardNode(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("shard node listening on %s (ctrl-c to stop)\n", node.Addr())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("shutting down")
	return node.Close()
}
