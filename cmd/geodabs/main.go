// Command geodabs is the command-line interface to the library: generate
// synthetic datasets, inspect and query indexes, and run shard-node
// servers.
//
// Usage:
//
//	geodabs gen    -out DIR [-routes N] [-seed N]     generate a dataset
//	geodabs stats  -data FILE [-in SNAP] [-upsert]    index a dataset, print stats
//	geodabs stats  -nodes A,B [-replicas R1|R2,R3]    print live cluster stats (epochs, WAL, replica lag)
//	geodabs query  -data FILE -queries FILE [-q N]    run a ranked query
//	geodabs delete -snapshot FILE ID...               delete trajectories from a snapshot
//	geodabs serve  -addr HOST:PORT [-wal-dir DIR]     run a shard node (durable with -wal-dir,
//	               [-replica-of HOST:PORT]            a read replica with -replica-of)
//
// Remote subcommands speak to a geodabsd service (see cmd/geodabsd)
// instead of a local index:
//
//	geodabs remote-query  -addr HOST:PORT -queries FILE [-q N]   query a geodabsd
//	geodabs remote-upsert -addr HOST:PORT -data FILE             upsert a dataset into a geodabsd
//	geodabs remote-delete -addr HOST:PORT ID...                  delete trajectories from a geodabsd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"geodabs"
	"geodabs/client"
	"geodabs/internal/trajectory"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "geodabs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return usageError()
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "query":
		return cmdQuery(args[1:])
	case "delete":
		return cmdDelete(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "remote-query":
		return cmdRemoteQuery(args[1:])
	case "remote-upsert":
		return cmdRemoteUpsert(args[1:])
	case "remote-delete":
		return cmdRemoteDelete(args[1:])
	default:
		return usageError()
	}
}

func usageError() error {
	return fmt.Errorf("usage: geodabs <gen|stats|query|delete|serve|remote-query|remote-upsert|remote-delete> [flags]")
}

// cmdGen generates a synthetic dataset with held-out queries and ground
// truth, mirroring the paper's evaluation data (§VI-A1).
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "data", "output directory")
	routes := fs.Int("routes", 100, "number of routes (paper: 5000)")
	perDir := fs.Int("per-direction", 10, "trajectories per direction")
	seed := fs.Int64("seed", 1, "random seed")
	geojson := fs.Bool("geojson", false, "also write dataset.geojson for GIS tools")
	if err := fs.Parse(args); err != nil {
		return err
	}
	city, err := geodabs.GenerateCity(geodabs.CityConfig{Seed: *seed})
	if err != nil {
		return err
	}
	cfg := geodabs.DefaultDatasetConfig()
	cfg.Routes = *routes
	cfg.TrajectoriesPerDirection = *perDir
	cfg.Seed = *seed
	data, err := geodabs.GenerateDataset(city, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if err := writeDataset(filepath.Join(*out, "dataset.bin"), data.Dataset); err != nil {
		return err
	}
	queries := &geodabs.Dataset{Trajectories: data.Queries}
	if err := writeDataset(filepath.Join(*out, "queries.bin"), queries); err != nil {
		return err
	}
	if err := writeTruth(filepath.Join(*out, "truth.csv"), data); err != nil {
		return err
	}
	if *geojson {
		f, err := os.Create(filepath.Join(*out, "dataset.geojson"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := geodabs.WriteGeoJSON(f, data.Dataset); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d trajectories, %d queries to %s\n",
		data.Dataset.Len(), len(data.Queries), *out)
	return nil
}

func writeDataset(path string, d *geodabs.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trajectory.WriteDataset(f, d); err != nil {
		return err
	}
	return f.Close()
}

func readDataset(path string) (*geodabs.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trajectory.ReadDataset(f)
}

func writeTruth(path string, data *geodabs.DatasetOutput) error {
	var sb strings.Builder
	sb.WriteString("query_id,relevant_ids\n")
	for _, q := range data.Queries {
		ids := data.Relevant[q.ID]
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = strconv.FormatUint(uint64(id), 10)
		}
		fmt.Fprintf(&sb, "%d,%s\n", q.ID, strings.Join(parts, " "))
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// cmdStats indexes a dataset and prints the index composition,
// optionally snapshotting the built index for later queries. With -in it
// starts from an existing snapshot instead of empty, and with -upsert
// the ingest replaces trajectories whose IDs are already indexed instead
// of failing on duplicates — together they make a refresh pipeline:
// load, upsert the new batch, snapshot.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dataPath := fs.String("data", "data/dataset.bin", "dataset file")
	workers := fs.Int("workers", 8, "parallel fingerprinting workers")
	snapshot := fs.String("snapshot", "", "write the built index to this file (load with query -snapshot)")
	in := fs.String("in", "", "start from this index snapshot instead of an empty index")
	upsert := fs.Bool("upsert", false, "replace already-indexed IDs instead of failing on duplicates")
	shards := fs.Int("shards", 0, "in-process shard count, rounded up to a power of two (0 = auto from GOMAXPROCS, 1 = unsharded)")
	nodes := fs.String("nodes", "", "comma-separated shard node addresses: print cluster stats instead of indexing")
	replicas := fs.String("replicas", "", "per-node read replica addresses, groups comma-separated matching -nodes, members |-separated")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes != "" {
		return clusterStats(*nodes, *replicas)
	}
	if *replicas != "" {
		return fmt.Errorf("stats: -replicas requires -nodes")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	d, err := readDataset(*dataPath)
	if err != nil {
		return err
	}
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(*shards))
	if err != nil {
		return err
	}
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		_, rerr := idx.ReadFrom(f)
		if cerr := f.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return rerr
		}
	}
	start := time.Now()
	if *upsert {
		for _, tr := range d.Trajectories {
			if err := idx.Upsert(ctx, tr); err != nil {
				return err
			}
		}
	} else if err := idx.AddAllContext(ctx, d, *workers); err != nil {
		return err
	}
	elapsed := time.Since(start)
	s := idx.Stats()
	fmt.Printf("trajectories: %d\n", s.Trajectories)
	fmt.Printf("points:       %d\n", d.TotalPoints())
	fmt.Printf("terms:        %d\n", s.Terms)
	fmt.Printf("postings:     %d\n", s.Postings)
	fmt.Printf("bitmap bytes: %d\n", s.BitmapBytes)
	fmt.Printf("shards:       %d\n", s.Shards)
	fmt.Printf("build time:   %v (%d workers)\n", elapsed.Round(time.Millisecond), *workers)
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := idx.WriteTo(f)
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("snapshot:     %s (%d bytes)\n", *snapshot, n)
	}
	return nil
}

// clusterStats dials the given shard nodes (and, optionally, their read
// replicas) and prints each node's index composition and durability
// state: mutation epochs, write-ahead log size and fsync counters, and
// per-replica lag.
func clusterStats(nodeSpec, replicaSpec string) error {
	addrs := strings.Split(nodeSpec, ",")
	cfg := geodabs.DefaultConfig()
	opts := []geodabs.Option{}
	if replicaSpec != "" {
		groups := strings.Split(replicaSpec, ",")
		if len(groups) != len(addrs) {
			return fmt.Errorf("stats: -replicas has %d groups, -nodes has %d addresses", len(groups), len(addrs))
		}
		reps := make([][]string, len(groups))
		for i, g := range groups {
			if g != "" {
				reps[i] = strings.Split(g, "|")
			}
		}
		opts = append(opts, geodabs.WithReadReplicas(reps))
	}
	strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 10000, Nodes: len(addrs)}
	cl, err := geodabs.NewCluster(cfg, strategy, addrs, opts...)
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stats, err := cl.StatsContext(ctx)
	if err != nil {
		return err
	}
	for i, s := range stats {
		fmt.Printf("node %d (%s):\n", s.Node, addrs[i])
		fmt.Printf("  terms=%d postings=%d docs=%d tombstones=%d\n", s.Terms, s.Postings, s.Docs, s.Tombstones)
		fmt.Printf("  epoch=%d stable=%d\n", s.Epoch, s.StableEpoch)
		if s.WALSegments > 0 {
			fmt.Printf("  wal: %d bytes in %d segments, %d records, %d fsyncs (last %v)\n",
				s.WALBytes, s.WALSegments, s.WALRecords, s.WALSyncs, s.WALLastSync.Round(time.Microsecond))
		}
		if s.FullSyncs > 0 || s.Subscribers > 0 {
			fmt.Printf("  replication: %d full syncs served, %d live subscribers\n", s.FullSyncs, s.Subscribers)
		}
		if s.RetainedDocs > 0 || s.RerankScored > 0 || s.RerankSkipped > 0 {
			fmt.Printf("  retained points: %d trajectories, %d points (%d bytes)\n",
				s.RetainedDocs, s.RetainedPoints, s.RetainedBytes)
			fmt.Printf("  rerank: %d candidates scored, %d skipped by lower bound\n",
				s.RerankScored, s.RerankSkipped)
		}
		for _, r := range s.Replicas {
			if r.Err != "" {
				fmt.Printf("  replica %s: unreachable (%s)\n", r.Addr, r.Err)
				continue
			}
			fmt.Printf("  replica %s: stable=%d lag=%d full-syncs=%d\n", r.Addr, r.StableEpoch, r.EpochLag, r.FullSyncs)
		}
	}
	return nil
}

// searchOptions translates the query subcommand's flags to the Search
// API's functional options. limitSet distinguishes an explicit -limit
// from its default, so -knn with an explicit -limit surfaces the
// library's mutual-exclusion error instead of silently dropping one.
func searchOptions(maxDist float64, limit, knn int, rerank string, limitSet bool) ([]geodabs.SearchOption, error) {
	if limit < 0 {
		limit = 0 // the legacy "-limit -1 = unlimited" form maps to WithLimit(0)
	}
	opts := []geodabs.SearchOption{geodabs.WithMaxDistance(maxDist)}
	if knn != 0 { // 0 = not requested; negatives reach WithKNN's validation
		opts = append(opts, geodabs.WithKNN(knn))
		if limitSet && limit != 0 { // an explicit real cap conflicts; -limit 0 means "no cap"
			opts = append(opts, geodabs.WithLimit(limit))
		}
	} else {
		opts = append(opts, geodabs.WithLimit(limit))
	}
	switch rerank {
	case "":
	case "dtw":
		opts = append(opts, geodabs.WithExactRerank(geodabs.DTW))
	case "dfd":
		opts = append(opts, geodabs.WithExactRerank(geodabs.DFD))
	default:
		return nil, fmt.Errorf("unknown rerank metric %q (want dtw or dfd)", rerank)
	}
	return opts, nil
}

// cmdQuery runs a held-out query (or, with -all, the whole query batch)
// against a dataset and prints the ranked results. Queries run prepared
// (geodabs.NewQuery + SearchQuery): with -rerank the fingerprint
// shortlist and the exact rerank share one cached extraction, and -all
// stages the whole batch before the timed SearchQueryBatch.
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dataPath := fs.String("data", "data/dataset.bin", "dataset file")
	queryPath := fs.String("queries", "data/queries.bin", "queries file")
	qn := fs.Int("q", 0, "query number within the queries file")
	limit := fs.Int("limit", 10, "maximum results (0 = unlimited)")
	knn := fs.Int("knn", 0, "return the k nearest trajectories instead of -limit")
	maxDist := fs.Float64("max-distance", 0.99, "Jaccard distance cutoff Δmax")
	rerank := fs.String("rerank", "", "exactly re-rank candidates: dtw or dfd (meters)")
	all := fs.Bool("all", false, "run every query as a parallel batch and report throughput")
	workers := fs.Int("workers", 8, "parallel workers (indexing, -all batches)")
	snapshot := fs.String("snapshot", "", "load the index from this snapshot instead of re-indexing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var d *geodabs.Dataset
	if *snapshot != "" {
		// With a snapshot the dataset only annotates hits; tolerate its
		// absence (hits then print as "(not in -data file)") but surface
		// any other failure, e.g. a corrupt file or a typo'd path.
		dd, err := readDataset(*dataPath)
		switch {
		case err == nil:
			d = dd
		case !os.IsNotExist(err):
			return err
		}
	} else {
		var err error
		if d, err = readDataset(*dataPath); err != nil {
			return err
		}
	}
	queries, err := readDataset(*queryPath)
	if err != nil {
		return err
	}
	if !*all && (*qn < 0 || *qn >= queries.Len()) {
		return fmt.Errorf("query %d out of range [0, %d)", *qn, queries.Len())
	}
	limitSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "limit" {
			limitSet = true
		}
	})
	opts, err := searchOptions(*maxDist, *limit, *knn, *rerank, limitSet)
	if err != nil {
		return err
	}
	var idx *geodabs.Index
	if *snapshot != "" {
		f, err := os.Open(*snapshot)
		if err != nil {
			return err
		}
		defer f.Close()
		if idx, err = geodabs.ReadIndex(geodabs.DefaultConfig(), f); err != nil {
			return err
		}
	} else {
		// Exact re-ranking needs the raw points, which retention keeps;
		// plain fingerprint queries skip that memory cost.
		var iopts []geodabs.Option
		if *rerank != "" {
			iopts = append(iopts, geodabs.WithPointRetention())
		}
		if idx, err = geodabs.NewIndex(geodabs.DefaultConfig(), iopts...); err != nil {
			return err
		}
		if err := idx.AddAllContext(ctx, d, *workers); err != nil {
			return err
		}
	}
	if *all {
		// Prepare the whole batch up front: extraction runs once per query
		// here, off the measured search path, and the batch (or a repeat of
		// it) reuses the cached term sets.
		prepared := make([]*geodabs.Query, queries.Len())
		for i, tr := range queries.Trajectories {
			prepared[i] = geodabs.NewQuery(tr.Points)
		}
		start := time.Now()
		results, err := idx.SearchQueryBatch(ctx, prepared, *workers, opts...)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		hits := 0
		for _, r := range results {
			hits += len(r.Hits)
		}
		fmt.Printf("%d queries on %d workers in %v (%.0f queries/s), %d hits\n",
			len(results), *workers, elapsed.Round(time.Millisecond),
			float64(len(results))/elapsed.Seconds(), hits)
		return nil
	}
	q := queries.Trajectories[*qn]
	pq := geodabs.NewQuery(q.Points)
	if *rerank != "" {
		// The rerank run below reuses the prepared query's cached
		// extraction: the fingerprint shortlist here costs one search, not
		// a second pipeline pass.
		fpOpts, err := searchOptions(*maxDist, *limit, *knn, "", limitSet)
		if err != nil {
			return err
		}
		fpRes, err := idx.SearchQuery(ctx, pq, fpOpts...)
		if err != nil {
			return err
		}
		fmt.Printf("fingerprint ranking: %d results from %d candidates in %v (before %s rerank)\n",
			len(fpRes.Hits), fpRes.Stats.Candidates, fpRes.Stats.Elapsed.Round(time.Microsecond), *rerank)
	}
	res, err := idx.SearchQuery(ctx, pq, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("query %d: route %d (%s), %d points — %d results from %d candidates in %v\n",
		q.ID, q.Route, q.Dir, q.Len(), len(res.Hits), res.Stats.Candidates,
		res.Stats.Elapsed.Round(time.Microsecond))
	unit := "dJ"
	if *rerank != "" {
		unit = *rerank + " m"
	}
	for i, r := range res.Hits {
		// A mismatched or data-less -snapshot can rank IDs that are not
		// resolvable through the -data file.
		desc := "(not in -data file)"
		if d != nil {
			if tr := d.ByID(r.ID); tr != nil {
				desc = fmt.Sprintf("route %d (%s)", tr.Route, tr.Dir)
			}
		}
		fmt.Printf("%2d. trajectory %5d  %s=%.3f  shared=%3d  %s\n",
			i+1, r.ID, unit, r.Distance, r.Shared, desc)
	}
	return nil
}

// cmdDelete removes trajectories from an index snapshot: load, delete
// the IDs given as arguments (reclaiming their postings), write the
// snapshot back.
func cmdDelete(args []string) error {
	fs := flag.NewFlagSet("delete", flag.ContinueOnError)
	snapshot := fs.String("snapshot", "", "index snapshot to mutate (required)")
	out := fs.String("out", "", "write the mutated snapshot here (default: overwrite -snapshot)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" {
		return fmt.Errorf("delete: -snapshot is required")
	}
	if len(fs.Args()) == 0 {
		return fmt.Errorf("delete: no trajectory IDs given")
	}
	ids := make([]geodabs.ID, 0, len(fs.Args()))
	for _, arg := range fs.Args() {
		v, err := strconv.ParseUint(arg, 10, 32)
		if err != nil {
			return fmt.Errorf("delete: bad trajectory ID %q: %w", arg, err)
		}
		ids = append(ids, geodabs.ID(v))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	f, err := os.Open(*snapshot)
	if err != nil {
		return err
	}
	idx, err := geodabs.ReadIndex(geodabs.DefaultConfig(), f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	before := idx.Stats()
	deleted, err := idx.DeleteAll(ctx, ids, 1)
	if err != nil {
		return err
	}
	after := idx.Stats()
	if *out == "" {
		*out = *snapshot
	}
	// Write to a sibling temp file and rename over the target, so a
	// failed write never truncates the only copy of the snapshot.
	w, err := os.CreateTemp(filepath.Dir(*out), filepath.Base(*out)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := w.Name()
	if _, err := idx.WriteTo(w); err != nil {
		_ = w.Close() // the write error is the one worth reporting
		os.Remove(tmp)
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, *out); err != nil {
		os.Remove(tmp)
		return err
	}
	fmt.Printf("deleted %d of %d trajectories (%d unknown), postings %d → %d, wrote %s\n",
		deleted, len(ids), len(ids)-deleted, before.Postings, after.Postings, *out)
	return nil
}

// cmdRemoteQuery runs a held-out query against a geodabsd service. By
// default it winnows locally and ships only the fingerprint (the
// thin-client path); -raw ships the raw points for server-side
// winnowing instead. -rerank dtw|dfd asks the server for the exact
// refinement (SEARCH_RERANK) — that always ships raw points, since the
// exact metrics compare trajectories, not term sets.
func cmdRemoteQuery(args []string) error {
	fs := flag.NewFlagSet("remote-query", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "geodabsd address")
	queryPath := fs.String("queries", "data/queries.bin", "queries file")
	qn := fs.Int("q", 0, "query number within the queries file")
	limit := fs.Int("limit", 10, "maximum results (0 = unlimited)")
	knn := fs.Int("knn", 0, "return the k nearest trajectories instead of -limit")
	maxDist := fs.Float64("max-distance", 0.99, "Jaccard distance cutoff Δmax")
	raw := fs.Bool("raw", false, "ship raw points instead of a locally winnowed fingerprint")
	rerank := fs.String("rerank", "", "exactly re-rank candidates server-side: dtw or dfd (meters; implies raw points)")
	timeout := fs.Duration("timeout", 5*time.Second, "request deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	queries, err := readDataset(*queryPath)
	if err != nil {
		return err
	}
	if *qn < 0 || *qn >= queries.Len() {
		return fmt.Errorf("query %d out of range [0, %d)", *qn, queries.Len())
	}
	q := queries.Trajectories[*qn]
	var opts []client.SearchOption
	opts = append(opts, client.WithMaxDistance(*maxDist))
	if *knn != 0 {
		opts = append(opts, client.WithKNN(*knn))
	} else if *limit > 0 {
		opts = append(opts, client.WithLimit(*limit))
	}
	switch *rerank {
	case "":
	case "dtw":
		opts = append(opts, client.WithExactRerank(client.DTW))
	case "dfd":
		opts = append(opts, client.WithExactRerank(client.DFD))
	default:
		return fmt.Errorf("unknown rerank metric %q (want dtw or dfd)", *rerank)
	}
	cl, err := client.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var res *client.Result
	if *raw || *rerank != "" {
		// Rerank needs the query's raw points server-side: the exact
		// metrics compare trajectories, not term sets.
		res, err = cl.Search(ctx, q.Points, opts...)
	} else {
		// The thin-client split: run the geodab pipeline locally so only
		// the fingerprint's term set crosses the wire.
		f, ferr := geodabs.NewFingerprinter(geodabs.DefaultConfig())
		if ferr != nil {
			return ferr
		}
		res, err = cl.SearchFingerprint(ctx, f.Fingerprint(q.Points), opts...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("query %d: %d points — %d results from %d candidates in %v (server), %d/%d shards/nodes\n",
		q.ID, q.Len(), len(res.Hits), res.Stats.Candidates, res.Stats.Elapsed.Round(time.Microsecond),
		res.Stats.Shards, res.Stats.Nodes)
	unit := "dJ"
	if *rerank != "" {
		unit = *rerank + " m"
	}
	for i, r := range res.Hits {
		fmt.Printf("%2d. trajectory %5d  %s=%.3f  shared=%3d\n", i+1, r.ID, unit, r.Distance, r.Shared)
	}
	return nil
}

// cmdRemoteUpsert streams a dataset into a geodabsd service.
func cmdRemoteUpsert(args []string) error {
	fs := flag.NewFlagSet("remote-upsert", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "geodabsd address")
	dataPath := fs.String("data", "data/dataset.bin", "dataset file")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := readDataset(*dataPath)
	if err != nil {
		return err
	}
	cl, err := client.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	start := time.Now()
	for _, tr := range d.Trajectories {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err := cl.Upsert(ctx, tr)
		cancel()
		if err != nil {
			return fmt.Errorf("upsert %d: %w", tr.ID, err)
		}
	}
	fmt.Printf("upserted %d trajectories in %v\n", d.Len(), time.Since(start).Round(time.Millisecond))
	return nil
}

// cmdRemoteDelete deletes the given trajectory IDs from a geodabsd
// service.
func cmdRemoteDelete(args []string) error {
	fs := flag.NewFlagSet("remote-delete", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "geodabsd address")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(fs.Args()) == 0 {
		return fmt.Errorf("remote-delete: no trajectory IDs given")
	}
	cl, err := client.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	deleted := 0
	for _, arg := range fs.Args() {
		v, err := strconv.ParseUint(arg, 10, 32)
		if err != nil {
			return fmt.Errorf("remote-delete: bad trajectory ID %q: %w", arg, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err = cl.Delete(ctx, geodabs.ID(v))
		cancel()
		switch {
		case err == nil:
			deleted++
		case errors.Is(err, client.ErrNotFound):
			fmt.Printf("trajectory %d not indexed\n", v)
		default:
			return err
		}
	}
	fmt.Printf("deleted %d of %d trajectories\n", deleted, len(fs.Args()))
	return nil
}

// cmdServe runs a shard node until interrupted. With -wal-dir the node
// is durable (write-ahead logged, snapshot-compacted, crash-recoverable);
// with -replica-of it is a read replica tailing the given primary. The
// two are mutually exclusive — replicas rebuild from their primary, not
// from a log of their own.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	walDir := fs.String("wal-dir", "", "write-ahead log directory (enables durability)")
	replicaOf := fs.String("replica-of", "", "run as a read replica of the primary at this address")
	syncEvery := fs.Int("wal-sync-every", 0, "fsync after this many WAL records (0 = library default)")
	syncInterval := fs.Duration("wal-sync-interval", 0, "fsync after this long with unsynced WAL records (0 = library default)")
	segmentBytes := fs.Int64("wal-segment-bytes", 0, "roll WAL segments at this size (0 = library default)")
	snapshotBytes := fs.Int64("snapshot-bytes", 0, "WAL growth that triggers a compacting snapshot (0 = default, negative = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walDir != "" && *replicaOf != "" {
		return fmt.Errorf("serve: -wal-dir and -replica-of are mutually exclusive")
	}
	var opts []geodabs.NodeOption
	if *walDir != "" {
		opts = append(opts, geodabs.WithWALDir(*walDir))
		if *syncEvery != 0 || *syncInterval != 0 {
			opts = append(opts, geodabs.WithWALSync(*syncEvery, *syncInterval))
		}
		if *segmentBytes != 0 {
			opts = append(opts, geodabs.WithWALSegmentBytes(*segmentBytes))
		}
		if *snapshotBytes != 0 {
			opts = append(opts, geodabs.WithSnapshotBytes(*snapshotBytes))
		}
	}
	if *replicaOf != "" {
		opts = append(opts, geodabs.WithReplicaOf(*replicaOf))
	}
	node, err := geodabs.StartShardNode(*addr, opts...)
	if err != nil {
		return err
	}
	switch {
	case *replicaOf != "":
		fmt.Printf("read replica of %s listening on %s (ctrl-c to stop)\n", *replicaOf, node.Addr())
	case *walDir != "":
		fmt.Printf("durable shard node listening on %s, WAL in %s (ctrl-c to stop)\n", node.Addr(), *walDir)
	default:
		fmt.Printf("shard node listening on %s (ctrl-c to stop)\n", node.Addr())
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("shutting down")
	return node.Close()
}
