// Command geodabsd serves a geodabs engine over the network: the
// service front-end of the paper's "at scale" story. It exposes the
// Searcher/Mutator surface — fingerprint and raw-trajectory search,
// upsert, delete — over the compact binary protocol of docs/protocol.md,
// with admission control, per-request deadlines, Prometheus-style
// metrics, and graceful drain on SIGTERM.
//
// Backends (exactly one):
//
//	-snapshot FILE        serve a local index snapshot (geodabs stats -snapshot)
//	-nodes A,B,C          front a cluster of shard nodes (geodabs serve)
//	-wal-dir DIR          serve an embedded durable shard node: mutations are
//	                      write-ahead logged and snapshot-compacted in DIR, and a
//	                      restart (even after SIGKILL) recovers the exact
//	                      pre-crash state, coordinator directory included
//
// Usage:
//
//	geodabsd -addr :7071 -snapshot index.snap
//	geodabsd -addr :7071 -nodes 10.0.0.1:7070,10.0.0.2:7070 -shards 1024
//	geodabsd -addr :7071 -wal-dir /var/lib/geodabs
//
// With -nodes, -replicas registers per-node read replicas (groups
// comma-separated matching -nodes order, members |-separated) routed per
// -read-from, and -recover-directory rebuilds the coordinator's ranking
// directory from the nodes' durable state at startup.
//
// With -nodes or -wal-dir, -retain-points spills each trajectory's raw
// points to its owner shard node at ingest, enabling the SEARCH_RERANK
// op (exact DTW/Fréchet refinement, scored node-side).
//
// Operational flags: -max-inflight, -max-queue, -max-pipeline,
// -max-conns bound the admission pipeline; -default-deadline and
// -max-deadline bound request execution; -metrics-addr serves /metrics
// (cluster backends also export WAL and replication gauges there);
// -drain-timeout bounds the SIGTERM drain (the process exits 0 when
// in-flight requests finished in time).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"geodabs"
	"geodabs/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "geodabsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("geodabsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "listen address")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty = off)")
	snapshot := fs.String("snapshot", "", "serve this local index snapshot")
	nodes := fs.String("nodes", "", "comma-separated shard node addresses to front as a cluster")
	shards := fs.Int("shards", 1024, "cluster shard count (with -nodes)")
	connsPerNode := fs.Int("conns-per-node", 4, "pooled connections per shard node (with -nodes)")
	replicas := fs.String("replicas", "", "per-node read replica addresses (with -nodes): groups comma-separated, members |-separated")
	readFrom := fs.String("read-from", "primary", "read routing across replicas: primary or replicas")
	recoverDirectory := fs.Bool("recover-directory", false, "rebuild the coordinator directory from the nodes' durable state at startup (with -nodes)")
	retainPoints := fs.Bool("retain-points", false, "spill raw trajectory points to their owner shard nodes at ingest, enabling exact rerank (with -nodes or -wal-dir)")
	walDir := fs.String("wal-dir", "", "serve an embedded durable shard node, WAL and snapshots in this directory")
	walSyncEvery := fs.Int("wal-sync-every", 0, "fsync after this many WAL records (0 = library default; with -wal-dir)")
	walSyncInterval := fs.Duration("wal-sync-interval", 0, "fsync after this long with unsynced WAL records (0 = library default; with -wal-dir)")
	snapshotBytes := fs.Int64("snapshot-bytes", 0, "WAL growth that triggers a compacting snapshot (0 = default, negative = never; with -wal-dir)")
	maxInFlight := fs.Int("max-inflight", 128, "maximum concurrently executing requests")
	maxQueue := fs.Int("max-queue", 0, "maximum requests waiting for a slot (0 = -max-inflight)")
	maxPipeline := fs.Int("max-pipeline", 32, "maximum outstanding requests per connection")
	maxConns := fs.Int("max-conns", 1024, "maximum client connections")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline applied to requests that carry none (0 = none)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = no cap)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backends := 0
	for _, set := range []bool{*snapshot != "", *nodes != "", *walDir != ""} {
		if set {
			backends++
		}
	}
	if backends != 1 {
		return fmt.Errorf("exactly one backend is required: -snapshot, -nodes, or -wal-dir")
	}
	if *retainPoints && *snapshot != "" {
		return fmt.Errorf("-retain-points needs a cluster backend (-nodes or -wal-dir): a snapshot-loaded index carries no raw points to retain")
	}

	var engine server.Engine
	var cl *geodabs.Cluster // non-nil for the cluster-backed backends
	cfg := geodabs.DefaultConfig()
	switch {
	case *snapshot != "":
		f, err := os.Open(*snapshot)
		if err != nil {
			return err
		}
		idx, err := geodabs.ReadIndex(cfg, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("read snapshot %s: %w", *snapshot, err)
		}
		st := idx.Stats()
		fmt.Printf("loaded snapshot %s: %d trajectories, %d terms\n", *snapshot, st.Trajectories, st.Terms)
		engine = idx
	case *walDir != "":
		// The embedded durable backend: one in-process WAL-backed shard
		// node on a loopback port, fronted by a single-node cluster that
		// recovers its ranking directory from the node's state — so a
		// restarted geodabsd (same -wal-dir) serves exactly what the
		// killed one did.
		nodeOpts := []geodabs.NodeOption{geodabs.WithWALDir(*walDir)}
		if *walSyncEvery != 0 || *walSyncInterval != 0 {
			nodeOpts = append(nodeOpts, geodabs.WithWALSync(*walSyncEvery, *walSyncInterval))
		}
		if *snapshotBytes != 0 {
			nodeOpts = append(nodeOpts, geodabs.WithSnapshotBytes(*snapshotBytes))
		}
		node, err := geodabs.StartShardNode("127.0.0.1:0", nodeOpts...)
		if err != nil {
			return err
		}
		defer node.Close()
		strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: *shards, Nodes: 1}
		clOpts := []geodabs.Option{geodabs.WithConnsPerNode(*connsPerNode), geodabs.WithDirectoryRecovery()}
		if *retainPoints {
			clOpts = append(clOpts, geodabs.WithPointRetention())
		}
		cl, err = geodabs.NewCluster(cfg, strategy, []string{node.Addr()}, clOpts...)
		if err != nil {
			return err
		}
		defer cl.Close()
		fmt.Printf("serving embedded durable shard node %s, WAL in %s\n", node.Addr(), *walDir)
		engine = cl
	default:
		addrs := strings.Split(*nodes, ",")
		strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: *shards, Nodes: len(addrs)}
		opts := []geodabs.Option{geodabs.WithConnsPerNode(*connsPerNode)}
		if *replicas != "" {
			groups := strings.Split(*replicas, ",")
			if len(groups) != len(addrs) {
				return fmt.Errorf("-replicas has %d groups, -nodes has %d addresses", len(groups), len(addrs))
			}
			reps := make([][]string, len(groups))
			for i, g := range groups {
				if g != "" {
					reps[i] = strings.Split(g, "|")
				}
			}
			opts = append(opts, geodabs.WithReadReplicas(reps))
		}
		switch *readFrom {
		case "primary":
		case "replicas":
			opts = append(opts, geodabs.WithReadPreference(geodabs.ReadReplicas))
		default:
			return fmt.Errorf("-read-from must be primary or replicas, got %q", *readFrom)
		}
		if *recoverDirectory {
			opts = append(opts, geodabs.WithDirectoryRecovery())
		}
		if *retainPoints {
			opts = append(opts, geodabs.WithPointRetention())
		}
		var err error
		cl, err = geodabs.NewCluster(cfg, strategy, addrs, opts...)
		if err != nil {
			return err
		}
		defer cl.Close()
		fmt.Printf("fronting %d shard nodes, %d shards\n", len(addrs), *shards)
		engine = cl
	}

	srv, err := server.Listen(*addr, engine, server.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		MaxPipeline:     *maxPipeline,
		MaxConns:        *maxConns,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
	})
	if err != nil {
		return err
	}
	fmt.Printf("geodabsd listening on %s\n", srv.Addr())

	if cl != nil {
		srv.Metrics().SetCollector(clusterCollector(cl))
	}

	if *metricsAddr != "" {
		// Bind before logging so the printed address is the real one
		// (":0" resolves to a concrete port scripts can scrape).
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics().Handler())
		msrv := &http.Server{Handler: mux}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	fmt.Printf("%s: draining (up to %v)\n", sig, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("drained cleanly")
	return nil
}

// clusterCollector returns a metrics hook that exports the cluster's
// durability and replication state as Prometheus gauges on every scrape:
// per-node WAL size, segment and fsync counters, last fsync latency,
// mutation epochs, full syncs served, live stream subscribers,
// per-replica epoch lag, and the exact-rerank pushdown state — retained
// point footprint and lower-bound scored/skipped counters.
func clusterCollector(cl *geodabs.Cluster) func(w *strings.Builder) {
	var scrapeErrs atomic.Uint64
	return func(w *strings.Builder) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		stats, err := cl.StatsContext(ctx)
		cancel()
		if err != nil {
			scrapeErrs.Add(1)
		}
		fmt.Fprintf(w, "# HELP geodabsd_cluster_stats_errors_total Failed cluster stats gathers during metrics scrapes.\n# TYPE geodabsd_cluster_stats_errors_total counter\ngeodabsd_cluster_stats_errors_total %d\n", scrapeErrs.Load())
		if err != nil {
			return
		}
		w.WriteString("# HELP geodabsd_node_epoch Highest mutation epoch the shard node has applied.\n# TYPE geodabsd_node_epoch gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_epoch{node=\"%d\"} %d\n", s.Node, s.Epoch)
		}
		w.WriteString("# HELP geodabsd_node_wal_bytes Live write-ahead log size in bytes.\n# TYPE geodabsd_node_wal_bytes gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_wal_bytes{node=\"%d\"} %d\n", s.Node, s.WALBytes)
		}
		w.WriteString("# HELP geodabsd_node_wal_segments Live write-ahead log segment files.\n# TYPE geodabsd_node_wal_segments gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_wal_segments{node=\"%d\"} %d\n", s.Node, s.WALSegments)
		}
		w.WriteString("# HELP geodabsd_node_wal_fsyncs_total WAL fsync batches since the node started.\n# TYPE geodabsd_node_wal_fsyncs_total counter\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_wal_fsyncs_total{node=\"%d\"} %d\n", s.Node, s.WALSyncs)
		}
		w.WriteString("# HELP geodabsd_node_wal_last_fsync_seconds Duration of the node's most recent WAL fsync.\n# TYPE geodabsd_node_wal_last_fsync_seconds gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_wal_last_fsync_seconds{node=\"%d\"} %g\n", s.Node, s.WALLastSync.Seconds())
		}
		w.WriteString("# HELP geodabsd_node_full_syncs_total Replica full syncs the node has served.\n# TYPE geodabsd_node_full_syncs_total counter\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_full_syncs_total{node=\"%d\"} %d\n", s.Node, s.FullSyncs)
		}
		w.WriteString("# HELP geodabsd_node_replica_subscribers Replicas currently tailing the node's mutation stream.\n# TYPE geodabsd_node_replica_subscribers gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_replica_subscribers{node=\"%d\"} %d\n", s.Node, s.Subscribers)
		}
		w.WriteString("# HELP geodabsd_node_retained_points Raw trajectory points the node retains as point owner for exact rerank.\n# TYPE geodabsd_node_retained_points gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_retained_points{node=\"%d\"} %d\n", s.Node, s.RetainedPoints)
		}
		w.WriteString("# HELP geodabsd_node_retained_bytes Approximate memory held by the node's retained raw points.\n# TYPE geodabsd_node_retained_bytes gauge\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_retained_bytes{node=\"%d\"} %d\n", s.Node, s.RetainedBytes)
		}
		w.WriteString("# HELP geodabsd_node_rerank_scored_total Rerank candidates the node scored with the full exact metric.\n# TYPE geodabsd_node_rerank_scored_total counter\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_rerank_scored_total{node=\"%d\"} %d\n", s.Node, s.RerankScored)
		}
		w.WriteString("# HELP geodabsd_node_rerank_lb_skipped_total Rerank candidates the node's lower bound pruned without scoring.\n# TYPE geodabsd_node_rerank_lb_skipped_total counter\n")
		for _, s := range stats {
			fmt.Fprintf(w, "geodabsd_node_rerank_lb_skipped_total{node=\"%d\"} %d\n", s.Node, s.RerankSkipped)
		}
		headerDone := false
		for _, s := range stats {
			for _, r := range s.Replicas {
				if !headerDone {
					w.WriteString("# HELP geodabsd_replica_epoch_lag Primary epoch minus replica stable epoch; 0 means fully caught up. -1: unreachable.\n# TYPE geodabsd_replica_epoch_lag gauge\n")
					headerDone = true
				}
				lag := int64(r.EpochLag)
				if r.Err != "" {
					lag = -1
				}
				fmt.Fprintf(w, "geodabsd_replica_epoch_lag{node=\"%d\",replica=%q} %d\n", s.Node, r.Addr, lag)
			}
		}
	}
}
