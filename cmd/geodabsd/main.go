// Command geodabsd serves a geodabs engine over the network: the
// service front-end of the paper's "at scale" story. It exposes the
// Searcher/Mutator surface — fingerprint and raw-trajectory search,
// upsert, delete — over the compact binary protocol of docs/protocol.md,
// with admission control, per-request deadlines, Prometheus-style
// metrics, and graceful drain on SIGTERM.
//
// Backends (exactly one):
//
//	-snapshot FILE        serve a local index snapshot (geodabs stats -snapshot)
//	-nodes A,B,C          front a cluster of shard nodes (geodabs serve)
//
// Usage:
//
//	geodabsd -addr :7071 -snapshot index.snap
//	geodabsd -addr :7071 -nodes 10.0.0.1:7070,10.0.0.2:7070 -shards 1024
//
// Operational flags: -max-inflight, -max-queue, -max-pipeline,
// -max-conns bound the admission pipeline; -default-deadline and
// -max-deadline bound request execution; -metrics-addr serves /metrics;
// -drain-timeout bounds the SIGTERM drain (the process exits 0 when
// in-flight requests finished in time).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"geodabs"
	"geodabs/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "geodabsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("geodabsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7071", "listen address")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty = off)")
	snapshot := fs.String("snapshot", "", "serve this local index snapshot")
	nodes := fs.String("nodes", "", "comma-separated shard node addresses to front as a cluster")
	shards := fs.Int("shards", 1024, "cluster shard count (with -nodes)")
	connsPerNode := fs.Int("conns-per-node", 4, "pooled connections per shard node (with -nodes)")
	maxInFlight := fs.Int("max-inflight", 128, "maximum concurrently executing requests")
	maxQueue := fs.Int("max-queue", 0, "maximum requests waiting for a slot (0 = -max-inflight)")
	maxPipeline := fs.Int("max-pipeline", 32, "maximum outstanding requests per connection")
	maxConns := fs.Int("max-conns", 1024, "maximum client connections")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline applied to requests that carry none (0 = none)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = no cap)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*snapshot == "") == (*nodes == "") {
		return fmt.Errorf("exactly one backend is required: -snapshot or -nodes")
	}

	var engine server.Engine
	cfg := geodabs.DefaultConfig()
	if *snapshot != "" {
		f, err := os.Open(*snapshot)
		if err != nil {
			return err
		}
		idx, err := geodabs.ReadIndex(cfg, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("read snapshot %s: %w", *snapshot, err)
		}
		st := idx.Stats()
		fmt.Printf("loaded snapshot %s: %d trajectories, %d terms\n", *snapshot, st.Trajectories, st.Terms)
		engine = idx
	} else {
		addrs := strings.Split(*nodes, ",")
		strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: *shards, Nodes: len(addrs)}
		cl, err := geodabs.NewCluster(cfg, strategy, addrs, geodabs.WithConnsPerNode(*connsPerNode))
		if err != nil {
			return err
		}
		defer cl.Close()
		fmt.Printf("fronting %d shard nodes, %d shards\n", len(addrs), *shards)
		engine = cl
	}

	srv, err := server.Listen(*addr, engine, server.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		MaxPipeline:     *maxPipeline,
		MaxConns:        *maxConns,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
	})
	if err != nil {
		return err
	}
	fmt.Printf("geodabsd listening on %s\n", srv.Addr())

	if *metricsAddr != "" {
		// Bind before logging so the printed address is the real one
		// (":0" resolves to a concrete port scripts can scrape).
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", srv.Metrics().Handler())
		msrv := &http.Server{Handler: mux}
		go msrv.Serve(mln)
		defer msrv.Close()
		fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	fmt.Printf("%s: draining (up to %v)\n", sig, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("drained cleanly")
	return nil
}
