package main

import (
	"geodabs/internal/core"
	"geodabs/internal/eval"
	"geodabs/internal/index"
	"geodabs/internal/shard"
)

// Ablations quantify the design choices DESIGN.md §5 calls out. They are
// not paper figures but document where this reproduction's knobs sit.

// runAblNorm quantifies the two normalization steps this reproduction
// adds on top of the paper's grid snapping (moving-average smoothing and
// cell debouncing): PR curves with each combination on the standard
// workload. See EXPERIMENTS.md "Known deviations".
func runAblNorm(o options) error {
	out, err := retrievalWorkload(o)
	if err != nil {
		return err
	}
	variants := []struct {
		name           string
		smooth, minPts int
	}{
		{"paper-raw", 1, 1},       // the paper's bare grid snapping
		{"smooth-only", 5, 1},     // + moving average
		{"debounce-only", 1, 2},   // + jitter-cell debouncing
		{"smooth+debounce", 5, 2}, // this repository's default
	}
	row("variant", "recall", "precision")
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.SmoothWindow = v.smooth
		cfg.MinCellPoints = v.minPts
		f, err := core.NewFingerprinter(cfg)
		if err != nil {
			return err
		}
		ix, err := buildIndex(index.GeodabExtractor{Fingerprinter: f}, out.Dataset)
		if err != nil {
			return err
		}
		for _, p := range eval.InterpolatedPR(runsOf(ix, out)) {
			row(v.name, p.Recall, p.Precision)
		}
	}
	return nil
}

// runAblPrefix sweeps the geodab prefix width P: retrieval quality
// (suffix discrimination shrinks as P grows) against shard fan-out
// (locality improves as P grows). The paper fixes P = 16.
func runAblPrefix(o options) error {
	out, err := retrievalWorkload(o)
	if err != nil {
		return err
	}
	row("prefix_bits", "recall", "precision", "mean_shards_touched")
	for _, bits := range []uint8{8, 16, 24} {
		cfg := core.DefaultConfig()
		cfg.PrefixBits = bits
		f, err := core.NewFingerprinter(cfg)
		if err != nil {
			return err
		}
		ix, err := buildIndex(index.GeodabExtractor{Fingerprinter: f}, out.Dataset)
		if err != nil {
			return err
		}
		// Fan-out over a world-scale shard layout.
		s := shard.Strategy{PrefixBits: bits, Shards: 10000, Nodes: 10}
		totalShards := 0
		for _, q := range out.Queries {
			fp := f.Fingerprint(q.Points)
			totalShards += len(s.ShardsOf(fp.Geodabs))
		}
		meanShards := float64(totalShards) / float64(len(out.Queries))
		for _, p := range eval.InterpolatedPR(runsOf(ix, out)) {
			row(int(bits), p.Recall, p.Precision, meanShards)
		}
	}
	return nil
}

// runAblWindow sweeps the winnowing guarantee threshold t: smaller
// windows keep more fingerprints (better recall, bigger index).
func runAblWindow(o options) error {
	out, err := retrievalWorkload(o)
	if err != nil {
		return err
	}
	row("t", "recall", "precision", "postings")
	for _, tval := range []int{8, 12, 20} {
		cfg := core.DefaultConfig()
		cfg.T = tval
		f, err := core.NewFingerprinter(cfg)
		if err != nil {
			return err
		}
		ix, err := buildIndex(index.GeodabExtractor{Fingerprinter: f}, out.Dataset)
		if err != nil {
			return err
		}
		postings := ix.Stats().Postings
		for _, p := range eval.InterpolatedPR(runsOf(ix, out)) {
			row(tval, p.Recall, p.Precision, postings)
		}
	}
	return nil
}
