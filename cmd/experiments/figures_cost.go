package main

import (
	"time"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/distance"
	"geodabs/internal/geo"
	"geodabs/internal/motif"
)

// Figures 9 and 10 compare the cost of answering "how similar are these
// candidates to the query" with DFD, DTW and geodab Jaccard. The paper's
// caption/body labels for the two sweeps are swapped; we follow the
// captions: Fig 9 sweeps the candidate count at fixed length, Fig 10
// sweeps the trajectory length at fixed candidate count.

// runFig9 reproduces Figure 9: candidate count 2..10, trajectories of
// 1'000 points. DFD/DTW grow linearly in the candidate count with a huge
// constant (O(t²) each); geodab Jaccard stays at microseconds.
func runFig9(o options) error {
	const length = 1000
	trajectories, err := longTrajectories(11, length, o.seed)
	if err != nil {
		return err
	}
	query, candidates := trajectories[0], trajectories[1:]
	row("candidates", "dfd_ms", "dtw_ms", "geodabs_ms")
	for c := 2; c <= 10; c += 2 {
		dfd, dtw, geodab := scoreCosts(query, candidates[:c])
		row(c, ms(dfd), ms(dtw), ms(geodab))
	}
	return nil
}

// runFig10 reproduces Figure 10: trajectory length 200..1000 points, 10
// candidates. DFD/DTW grow quadratically in the length; geodabs grow
// mildly (normalization is linear) and stay orders of magnitude cheaper.
func runFig10(o options) error {
	row("length", "dfd_ms", "dtw_ms", "geodabs_ms")
	for length := 200; length <= 1000; length += 200 {
		trajectories, err := longTrajectories(11, length, o.seed)
		if err != nil {
			return err
		}
		dfd, dtw, geodab := scoreCosts(trajectories[0], trajectories[1:])
		row(length, ms(dfd), ms(dtw), ms(geodab))
	}
	return nil
}

// scoreCosts measures the time to score all candidates against the query
// under each distance. The geodab cost includes fingerprinting the query
// and all candidates from raw points — the worst case for geodabs, since
// an index stores candidate fingerprints precomputed.
func scoreCosts(query []geo.Point, candidates [][]geo.Point) (dfd, dtw, geodab time.Duration) {
	start := time.Now()
	for _, c := range candidates {
		distance.DFD(query, c)
	}
	dfd = time.Since(start)

	start = time.Now()
	for _, c := range candidates {
		distance.DTW(query, c)
	}
	dtw = time.Since(start)

	f := core.MustFingerprinter(core.DefaultConfig())
	start = time.Now()
	qf := f.Fingerprint(query)
	for _, c := range candidates {
		cf := f.Fingerprint(c)
		bitmap.JaccardDistance(qf.Set, cf.Set)
	}
	geodab = time.Since(start)
	return dfd, dtw, geodab
}

// runFig11 reproduces Figure 11: motif discovery between a query and a
// growing candidate set, BTM (exact discrete-Fréchet search with endpoint
// pruning) against geodab window scanning. Trajectories are 300 points,
// motifs ≈50 points / 600 m: even at this reduced scale BTM is thousands
// of times more expensive, matching the paper's shape.
func runFig11(o options) error {
	const (
		length      = 300
		motifPoints = 50
		motifMeters = 600
	)
	trajectories, err := longTrajectories(11, length, o.seed)
	if err != nil {
		return err
	}
	query, candidates := trajectories[0], trajectories[1:]
	f := core.MustFingerprinter(core.DefaultConfig())
	row("candidates", "btm_ms", "geodabs_ms")
	for c := 2; c <= 10; c += 2 {
		start := time.Now()
		for _, cand := range candidates[:c] {
			if _, err := motif.FindBTM(query, cand, motifPoints); err != nil {
				return err
			}
		}
		btm := time.Since(start)

		start = time.Now()
		for _, cand := range candidates[:c] {
			if _, err := motif.FindGeodab(f, query, cand, motifMeters); err != nil && err != motif.ErrTooShort {
				return err
			}
		}
		geodab := time.Since(start)
		row(c, ms(btm), ms(geodab))
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
