package main

import (
	"context"
	"fmt"
	"math/rand"

	"geodabs/internal/core"
	"geodabs/internal/eval"
	"geodabs/internal/gen"
	"geodabs/internal/geo"
	"geodabs/internal/index"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// londonCity builds the evaluation road network: the paper's ≈300 km²
// disk around central London.
func londonCity(seed int64) (*roadnet.Graph, error) {
	return roadnet.GenerateCity(roadnet.CityConfig{Seed: seed})
}

// retrievalWorkload generates the dataset + queries used by the retrieval
// experiments (Figs 8, 12, 13, 14).
func retrievalWorkload(o options) (*gen.Output, error) {
	city, err := londonCity(o.seed)
	if err != nil {
		return nil, err
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = o.routes
	cfg.Seed = o.seed
	out, err := gen.Generate(city, cfg)
	if err != nil {
		return nil, err
	}
	if len(out.Queries) > o.queries {
		out.Queries = out.Queries[:o.queries]
	}
	return out, nil
}

// buildIndex constructs an inverted index over the dataset with the given
// extractor.
func buildIndex(ex index.Extractor, d *trajectory.Dataset) (*index.Inverted, error) {
	ix := index.NewInverted(ex)
	if err := ix.AddAll(context.Background(), d, 8); err != nil {
		return nil, err
	}
	return ix, nil
}

// runsOf executes every query against the index and pairs the rankings
// with the ground truth.
func runsOf(ix *index.Inverted, out *gen.Output) []eval.Run {
	ctx := context.Background()
	runs := make([]eval.Run, 0, len(out.Queries))
	for _, q := range out.Queries {
		results, _, err := ix.Search(ctx, q, 1.0, 0)
		if err != nil {
			panic(err) // Background context: unreachable
		}
		ranked := make([]trajectory.ID, len(results))
		for i, r := range results {
			ranked[i] = r.ID
		}
		rel := make(map[trajectory.ID]bool, len(out.Relevant[q.ID]))
		for _, id := range out.Relevant[q.ID] {
			rel[id] = true
		}
		runs = append(runs, eval.Run{Ranked: ranked, Relevant: rel, Total: out.Dataset.Len()})
	}
	return runs
}

// geodabExtractor returns the paper's extractor at the given grid depth
// (0 = default 36 bits).
func geodabExtractor(depth uint8) (index.GeodabExtractor, error) {
	cfg := core.DefaultConfig()
	if depth != 0 {
		cfg.NormDepth = depth
	}
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return index.GeodabExtractor{}, err
	}
	return index.GeodabExtractor{Fingerprinter: f}, nil
}

// longTrajectories samples trajectories of exactly points points, for the
// cost experiments (Figs 9-11). A vehicle drives its route out-and-back
// until enough 1 Hz samples accumulate, so any requested length is
// reachable on city-scale routes.
func longTrajectories(count, points int, seed int64) ([][]geo.Point, error) {
	city, err := londonCity(seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := gen.DefaultConfig()
	out := make([][]geo.Point, 0, count)
	for len(out) < count {
		route, err := roadnet.RandomRoute(city, 6000, rng)
		if err != nil {
			return nil, fmt.Errorf("sampling long trajectories: %w", err)
		}
		legs := route.Legs(city)
		var t []geo.Point
		for lap := 0; len(t) < points; lap++ {
			t = append(t, sampleAlong(legs, cfg, rng)...)
			legs = roadnet.ReverseLegs(legs)
		}
		out = append(out, t[:points])
	}
	return out, nil
}

// sampleAlong emits 1 Hz noisy samples along legs (a trimmed-down version
// of the generator's sampler, enough for the cost experiments).
func sampleAlong(legs []roadnet.Leg, cfg gen.Config, rng *rand.Rand) []geo.Point {
	var pts []geo.Point
	sigma := cfg.NoiseMeters / 1.4142
	emitAt, clock := 0.0, 0.0
	if len(legs) == 0 {
		return nil
	}
	pts = append(pts, noisy(legs[0].From, sigma, rng))
	emitAt++
	for _, leg := range legs {
		dur := leg.Length / leg.Speed
		for emitAt <= clock+dur {
			f := (emitAt - clock) / dur
			pts = append(pts, noisy(geo.Interpolate(leg.From, leg.To, f), sigma, rng))
			emitAt++
		}
		clock += dur
	}
	return pts
}

func noisy(p geo.Point, sigma float64, rng *rand.Rand) geo.Point {
	return geo.Offset(p, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
}
