// Command experiments regenerates every figure of the paper's evaluation
// (§VI, Figures 8-16) on the synthetic substrates of this repository and
// prints the series each figure plots as CSV-style rows.
//
// Usage:
//
//	experiments [flags] fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|all
//
// The default workload is laptop-scale (hundreds of routes, ten thousand
// trajectories for the density experiments); -routes and -samples scale it
// up toward the paper's 5'000 routes and full world model.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// options collects the shared experiment flags.
type options struct {
	routes  int   // routes for retrieval experiments
	queries int   // queries per retrieval experiment
	samples int   // world samples for Figs 15-16
	seed    int64 // master seed
}

// experiment is one figure reproduction.
type experiment struct {
	name  string
	about string
	run   func(o options) error
}

var experiments = []experiment{
	{"fig8", "PR curves across normalization grid depths (32-40 bits)", runFig8},
	{"fig9", "query cost vs number of candidates: DFD/DTW vs geodabs", runFig9},
	{"fig10", "query cost vs trajectory length: DFD/DTW vs geodabs", runFig10},
	{"fig11", "motif discovery cost: BTM vs geodabs", runFig11},
	{"fig12", "PR curves: geodab vs geohash index", runFig12},
	{"fig13", "ROC curves and AUC: geodab vs geohash index", runFig13},
	{"fig14", "100-query latency vs dataset density", runFig14},
	{"fig15", "trajectories per depth-16 geohash cell (world model)", runFig15},
	{"fig16", "per-node load: 100 vs 10'000 shards on 10 nodes", runFig16},
	{"abl-norm", "ablation: smoothing/debouncing vs the paper's raw grid snapping", runAblNorm},
	{"abl-prefix", "ablation: geodab prefix width vs quality and shard fan-out", runAblPrefix},
	{"abl-window", "ablation: winnowing threshold t vs quality and index size", runAblWindow},
}

func main() {
	o := options{}
	flag.IntVar(&o.routes, "routes", 200, "routes in the synthetic dataset (paper: 5000)")
	flag.IntVar(&o.queries, "queries", 100, "queries per retrieval experiment")
	flag.IntVar(&o.samples, "samples", 500000, "world samples for fig15/fig16")
	flag.Int64Var(&o.seed, "seed", 1, "master seed")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	target := strings.ToLower(flag.Arg(0))
	ran := false
	for _, e := range experiments {
		if target == "all" || target == e.name {
			fmt.Printf("# %s — %s\n", e.name, e.about)
			start := time.Now()
			if err := e.run(o); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Printf("# %s done in %v\n\n", e.name, time.Since(start).Round(time.Millisecond))
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", target)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: experiments [flags] <figure|all>\n\nfigures:\n")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.name, e.about)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

// row prints one CSV row.
func row(values ...any) {
	parts := make([]string, len(values))
	for i, v := range values {
		switch v := v.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%.6g", v)
		default:
			parts[i] = fmt.Sprint(v)
		}
	}
	fmt.Println(strings.Join(parts, ","))
}
