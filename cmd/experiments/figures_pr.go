package main

import (
	"fmt"

	"geodabs/internal/core"
	"geodabs/internal/eval"
	"geodabs/internal/index"
)

// runFig8 reproduces Figure 8: PR curves for normalization grids of 32,
// 34, 36, 38 and 40 bits. The paper finds 36 bits (≈95×76 m cells in
// London) clearly best; coarser grids oversimplify (short, ambiguous cell
// sequences) and finer grids stop absorbing the 20 m GPS noise.
func runFig8(o options) error {
	out, err := retrievalWorkload(o)
	if err != nil {
		return err
	}
	row("depth_bits", "recall", "precision")
	for _, depth := range []uint8{32, 34, 36, 38, 40} {
		ex, err := geodabExtractor(depth)
		if err != nil {
			return err
		}
		ix, err := buildIndex(ex, out.Dataset)
		if err != nil {
			return err
		}
		for _, p := range eval.InterpolatedPR(runsOf(ix, out)) {
			row(int(depth), p.Recall, p.Precision)
		}
	}
	return nil
}

// runFig12 reproduces Figure 12: PR curves of the geodab index against
// the geohash-cell baseline. The baseline cannot discriminate the
// direction of travel, so with every route generating both directions its
// precision collapses toward 0.5 as recall grows.
func runFig12(o options) error {
	out, err := retrievalWorkload(o)
	if err != nil {
		return err
	}
	row("method", "recall", "precision")
	for _, m := range retrievalMethods() {
		ix, err := buildIndex(m.ex, out.Dataset)
		if err != nil {
			return err
		}
		for _, p := range eval.InterpolatedPR(runsOf(ix, out)) {
			row(m.name, p.Recall, p.Precision)
		}
	}
	return nil
}

// runFig13 reproduces Figure 13: ROC curves (sensitivity against
// 1−specificity) and the in-text AUC values (≈0.9999 for both methods,
// geodabs climbing more steeply at the very start).
func runFig13(o options) error {
	out, err := retrievalWorkload(o)
	if err != nil {
		return err
	}
	type curveOut struct {
		name  string
		curve []eval.ROCPoint
		auc   float64
	}
	var curves []curveOut
	for _, m := range retrievalMethods() {
		ix, err := buildIndex(m.ex, out.Dataset)
		if err != nil {
			return err
		}
		c := eval.ROC(runsOf(ix, out))
		curves = append(curves, curveOut{m.name, c, eval.AUC(c)})
	}
	row("method", "fpr", "tpr")
	for _, c := range curves {
		for _, p := range c.curve {
			// The paper's plot focuses on the [0, 5e-4] specificity
			// interval; emit that region densely plus the end point.
			if p.FPR <= 5e-4 || p.FPR == 1 {
				row(c.name, p.FPR, p.TPR)
			}
		}
	}
	for _, c := range curves {
		fmt.Printf("# AUC %s = %.6f (paper: geodabs 0.999889, geohash 0.9999521)\n", c.name, c.auc)
	}
	return nil
}

// retrievalMethod pairs an extractor with its display name.
type retrievalMethod struct {
	name string
	ex   index.Extractor
}

func retrievalMethods() []retrievalMethod {
	geodab := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	cells, err := index.NewCellExtractor(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	return []retrievalMethod{
		{"geodabs", geodab},
		{"geohash", cells},
	}
}
