package main

import "testing"

// TestEveryExperimentRuns executes each figure reproduction and ablation
// at a tiny scale, as an integration test of the whole pipeline: road
// network → generator → fingerprinting → indexes → evaluation.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	tiny := options{routes: 8, queries: 6, samples: 20000, seed: 42}
	for _, e := range experiments {
		t.Run(e.name, func(t *testing.T) {
			if err := e.run(tiny); err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
		})
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
		if e.about == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.name)
		}
	}
}
