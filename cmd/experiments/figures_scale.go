package main

import (
	"context"
	"fmt"
	"sort"
	"time"

	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/index"
	"geodabs/internal/roadnet"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

// runFig14 reproduces Figure 14: the average time to execute 100 queries
// against inverted indexes of growing density (up to 10'000 trajectories
// at the default -routes 500... the flag scales this). The geohash
// baseline cannot discriminate, so its candidate sets — and its ranking
// cost — grow with density much faster than the geodab index's.
func runFig14(o options) error {
	// Densest setting: routes × 20 trajectories.
	out, err := retrievalWorkload(o)
	if err != nil {
		return err
	}
	methods := retrievalMethods()
	indexes := make([]*index.Inverted, len(methods))
	for i, m := range methods {
		indexes[i] = index.NewInverted(m.ex)
	}
	queries := out.Queries

	ctx := context.Background()
	total := out.Dataset.Len()
	step := total / 10
	if step == 0 {
		step = total
	}
	row("trajectories", "geodabs_ms", "geohash_ms")
	for lo := 0; lo < total; lo += step {
		hi := min(lo+step, total)
		chunk := &trajectory.Dataset{Trajectories: out.Dataset.Trajectories[lo:hi]}
		times := make([]float64, len(methods))
		for i := range methods {
			if err := indexes[i].AddAll(ctx, chunk, 8); err != nil {
				return err
			}
			start := time.Now()
			for _, q := range queries {
				if _, _, err := indexes[i].Search(ctx, q, 1.0, 0); err != nil {
					return err
				}
			}
			times[i] = ms(time.Since(start))
		}
		row(hi, times[0], times[1])
	}
	return nil
}

// runFig15 reproduces Figure 15: the distribution of trajectories over
// depth-16 geohash cells for a world-scale dataset. The synthetic world
// model shows the paper's shape: a few towering metropolitan peaks (the
// tallest around Mexico City) separated by oceanic voids.
func runFig15(o options) error {
	sampler := roadnet.NewWorldSampler(0, o.seed)
	counts := make(map[uint64]int)
	for i := 0; i < o.samples; i++ {
		h := geohash.Encode(sampler.Sample(), 16)
		counts[h.CurvePosition()]++
	}
	row("geohash_curve_position", "trajectories")
	positions := make([]int, 0, len(counts))
	for p := range counts {
		positions = append(positions, int(p))
	}
	sort.Ints(positions)
	for _, p := range positions {
		row(p, counts[uint64(p)])
	}
	// Summary: peaks and voids.
	fmt.Printf("# non-empty cells: %d of %d\n", len(counts), 1<<16)
	type peak struct {
		pos   uint64
		count int
	}
	var top peak
	for p, c := range counts {
		if c > top.count {
			top = peak{p, c}
		}
	}
	center := (geohash.Hash{Bits: top.pos, Depth: 16}).Center()
	name, d := nearestCity(center)
	fmt.Printf("# tallest peak: curve position %d (%d trajectories), %.0f km from %s (paper: Mexico City)\n",
		top.pos, top.count, d/1000, name)
	return nil
}

func nearestCity(p geo.Point) (string, float64) {
	best, bestD := "", -1.0
	for _, c := range roadnet.WorldCities() {
		if d := geo.Haversine(p, c.Center); bestD < 0 || d < bestD {
			best, bestD = c.Name, d
		}
	}
	return best, bestD
}

// runFig16 reproduces Figure 16: distributing the world dataset over a
// 10-node cluster. 100 shards leave nodes wildly unbalanced (whole dense
// regions land on one node); 10'000 shards slice the space-filling curve
// finely enough for the modulo step to even the load out.
func runFig16(o options) error {
	sampler := roadnet.NewWorldSampler(0, o.seed)
	points := sampler.SampleN(o.samples)
	row("shards", "node", "trajectories")
	for _, shards := range []int{100, 10000} {
		s := shard.Strategy{PrefixBits: 16, Shards: shards, Nodes: 10}
		perShard := make([]int, shards)
		for _, p := range points {
			g := uint32(geohash.Encode(p, 16).Bits) << 16
			perShard[s.ShardOf(g)]++
		}
		b := s.BalanceOf(perShard)
		for node, load := range b.PerNode {
			row(shards, node, load)
		}
		fmt.Printf("# %d shards: max/mean imbalance %.2f, CV %.3f\n", shards, b.Imbalance, b.CV)
	}
	return nil
}
