// Command geodabs-vet runs the project-specific analyzer suite over
// the repository: lockhold (no blocking ops under a mutex), ctxflow
// (no dropped contexts), errlatch (no ignored write-side file errors),
// and noalloc (annotated hot paths stay heap-allocation free, checked
// against compiler escape analysis).
//
// Usage:
//
//	go run ./cmd/geodabs-vet ./...
//
// It prints findings as file:line:col: analyzer: message and exits
// non-zero if any survive the //geodabs:vet-ignore directives. The
// enforced invariants are catalogued in docs/invariants.md. CI runs
// this as a blocking lint step.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"geodabs/internal/analysis"
	"geodabs/internal/analysis/ctxflow"
	"geodabs/internal/analysis/errlatch"
	"geodabs/internal/analysis/load"
	"geodabs/internal/analysis/lockhold"
	"geodabs/internal/analysis/noalloc"
)

var analyzers = []*analysis.Analyzer{
	lockhold.Analyzer,
	ctxflow.Analyzer,
	errlatch.Analyzer,
}

func main() {
	verbose := flag.Bool("v", false, "print per-package and per-target progress")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: geodabs-vet [-v] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", "noalloc", noalloc.Doc)
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if err := run(".", patterns, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "geodabs-vet:", err)
		os.Exit(2)
	}
}

func run(dir string, patterns []string, verbose bool) error {
	pkgs, fset, err := load.Dir(dir, patterns...)
	if err != nil {
		return err
	}
	if len(pkgs) == 0 {
		return fmt.Errorf("no packages match %v", patterns)
	}

	exit := 0
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if verbose {
			fmt.Fprintf(os.Stderr, "geodabs-vet: checking %s\n", pkg.ImportPath)
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "geodabs-vet: %s: type error: %v\n", pkg.ImportPath, terr)
			exit = 1
		}
		for _, pos := range pkg.Suppress.Bare {
			diags = append(diags, analysis.Diagnostic{
				Pos:      pos,
				Analyzer: "directive",
				Message:  "//geodabs:vet-ignore requires a reason",
			})
		}
		for _, a := range analyzers {
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info, pkg.Suppress)
			if err := a.Run(pass); err != nil {
				return fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
	}

	nd, err := noalloc.Check(dir, patterns, pkgs, fset)
	if err != nil {
		return err
	}
	diags = append(diags, nd...)
	if verbose {
		for _, name := range noalloc.Targets(fset, pkgs) {
			fmt.Fprintf(os.Stderr, "geodabs-vet: noalloc target %s\n", name)
		}
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		if pos.IsValid() {
			fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
		} else {
			fmt.Printf("%s: %s\n", d.Analyzer, d.Message)
		}
		exit = 1
	}

	if exit != 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "geodabs-vet: ok (%d packages, %d noalloc targets)\n",
		len(pkgs), len(noalloc.Targets(fset, pkgs)))
	return nil
}
