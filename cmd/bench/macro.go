package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/gen"
	"geodabs/internal/index"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// The macro benchmark is the scale proof the micro-benches cannot give:
// it ingests on the order of a million synthetic trajectories (chunked
// generation on one city graph, so memory holds the indexes rather than
// the raw dataset) into the in-process sharded engine and the flat
// single-lock engine, checks their rankings stay byte-identical on the
// live corpus, measures ingest throughput, closed-loop search qps and
// p50/p99 latency at several operating points, RSS, and a v3 snapshot
// write — and anchors everything with a brute-force linear-scan baseline
// (full-corpus bitmap Jaccard per query), the geo-index-rtree
// comparison-table idiom, for the speedup_vs_brute headline.

type macroSearchResult struct {
	Engine      string  `json:"engine"`
	MaxDistance float64 `json:"max_distance"`
	KNN         int     `json:"knn"`
	Workers     int     `json:"workers"`
	Requests    int     `json:"requests"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
}

type macroIngestResult struct {
	Engine     string  `json:"engine"`
	Shards     int     `json:"shards"`
	Trajs      int     `json:"trajectories"`
	Seconds    float64 `json:"seconds"`
	TrajPerSec float64 `json:"traj_per_sec"`
}

type macroBruteResult struct {
	Queries int     `json:"queries"`
	AvgMS   float64 `json:"avg_ms"`
	QPS     float64 `json:"qps"`
}

type macroMemory struct {
	HeapInuseBytes uint64 `json:"heap_inuse_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	VmRSSBytes     int64  `json:"vm_rss_bytes"`
}

type macroReport struct {
	Workload string `json:"workload"`

	Trajectories int   `json:"trajectories"`
	TotalPoints  int64 `json:"total_points"`
	QueryPool    int   `json:"query_pool"`
	Shards       int   `json:"shards"`

	Ingest []macroIngestResult `json:"ingest"`
	Search []macroSearchResult `json:"search"`
	Brute  macroBruteResult    `json:"brute_force"`

	// SpeedupVsBrute is the headline: sharded single-worker qps at the
	// widest operating point over the brute-force linear scan's qps.
	SpeedupVsBrute float64 `json:"speedup_vs_brute"`
	// ShardedVsSingleQPS compares sharded to the flat engine at the same
	// operating point (multi-worker where it exists): > 1 means the
	// fan-out won, ≈ 1 is the expected single-core result.
	ShardedVsSingleQPS float64 `json:"sharded_vs_single_qps"`

	// Parity records the byte-identical check between the two engines on
	// the live corpus ("ok: N queries" or a failure is fatal before the
	// report is written).
	Parity string `json:"parity"`

	// Memory is sampled after both engines are built (both resident, so
	// roughly twice a production footprint of one engine).
	Memory            macroMemory `json:"memory_after_ingest"`
	SnapshotV3Bytes   int64       `json:"snapshot_v3_bytes"`
	SnapshotV3Seconds float64     `json:"snapshot_v3_seconds"`
}

// macroChunk is one generated slice of the corpus: trajectory IDs are
// reassigned to a global offset so chunks cannot collide.
func macroChunk(city *roadnet.Graph, chunkIdx int, routes, perDirection, queriesPerRoute int) (*trajectory.Dataset, []*trajectory.Trajectory, error) {
	cfg := gen.DefaultConfig()
	cfg.Routes = routes
	cfg.TrajectoriesPerDirection = perDirection
	cfg.QueriesPerRoute = queriesPerRoute
	cfg.MinRouteMeters = 1000 // ~100-point trajectories: a dense urban corpus that fits 1M in memory
	cfg.Seed = int64(1000 + chunkIdx)
	out, err := gen.Generate(city, cfg)
	if err != nil {
		return nil, nil, err
	}
	return out.Dataset, out.Queries, nil
}

func runMacro(n, shards, queryPool int, pointDur time.Duration) macroReport {
	gomax := runtime.GOMAXPROCS(0)
	if shards <= 0 {
		// Default the shard count to at least 2 so the fan-out machinery is
		// genuinely exercised even on a single-core box (where a GOMAXPROCS
		// default would collapse to the flat engine).
		shards = 2
		for shards < gomax {
			shards <<= 1
		}
	}
	ctx := context.Background()
	cf := core.MustFingerprinter(core.DefaultConfig())
	ex := index.GeodabExtractor{Fingerprinter: cf}
	sharded := index.NewSharded(ex, shards)
	single := index.NewInverted(ex)
	log.Printf("macro: target %d trajectories, %d shards, GOMAXPROCS=%d", n, sharded.NumShards(), gomax)

	city, err := roadnet.GenerateCity(roadnet.CityConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Chunked generate-and-ingest: each chunk is generated once, pushed
	// through both engines' AddAll (so each ingest number includes the
	// fingerprint extraction it would pay in production), then dropped.
	const chunkRoutes, perDirection = 128, 10
	chunkSize := chunkRoutes * 2 * perDirection
	var (
		queries      []*trajectory.Trajectory
		total        int
		totalPoints  int64
		genSeconds   float64
		shardedSecs  float64
		singleSecs   float64
		workers      = gomax
		chunkIdx     int
		logEvery     = 1
		nextLogCount = 0
	)
	if workers < 2 {
		workers = 2 // overlap extraction with insertion even on one core
	}
	for total < n {
		t0 := time.Now()
		queriesPerRoute := 0
		if chunkIdx == 0 {
			queriesPerRoute = (queryPool + chunkRoutes - 1) / chunkRoutes
		}
		chunk, held, err := macroChunk(city, chunkIdx, chunkRoutes, perDirection, queriesPerRoute)
		if err != nil {
			log.Fatal(err)
		}
		if chunkIdx == 0 {
			queries = held
			if len(queries) > queryPool {
				queries = queries[:queryPool]
			}
		}
		// Rebase IDs onto the global sequence; sequential IDs are the
		// adversarial case for naive placement, which the hash handles.
		if len(chunk.Trajectories) > n-total {
			chunk.Trajectories = chunk.Trajectories[:n-total]
		}
		for i, tr := range chunk.Trajectories {
			tr.ID = trajectory.ID(total + i)
			totalPoints += int64(len(tr.Points))
		}
		genSeconds += time.Since(t0).Seconds()

		t0 = time.Now()
		if err := sharded.AddAll(ctx, chunk, workers); err != nil {
			log.Fatal(err)
		}
		shardedSecs += time.Since(t0).Seconds()
		t0 = time.Now()
		if err := single.AddAll(ctx, chunk, workers); err != nil {
			log.Fatal(err)
		}
		singleSecs += time.Since(t0).Seconds()
		total += len(chunk.Trajectories)
		chunkIdx++
		if total >= nextLogCount {
			log.Printf("macro: ingested %d/%d (gen %.0fs, sharded %.0fs, single %.0fs)",
				total, n, genSeconds, shardedSecs, singleSecs)
			logEvery *= 2
			nextLogCount = total + chunkSize*logEvery
		}
	}
	if len(queries) == 0 {
		log.Fatal("macro: no held-out queries generated")
	}
	log.Printf("macro: corpus built — %d trajectories, %d points, %d queries", total, totalPoints, len(queries))

	// Pre-extract the query fingerprint sets once: the search loops below
	// measure the engines' ranked retrieval, the prepared-query steady
	// state of a production workload.
	querySets := make([]*bitmap.Bitmap, len(queries))
	for i, q := range queries {
		querySets[i] = cf.FingerprintSet(q.Points)
	}

	// Parity: the tentpole contract on the live corpus. Byte-identical or
	// the run dies before writing a report.
	parityQueries := len(querySets)
	if parityQueries > 32 {
		parityQueries = 32
	}
	for i := 0; i < parityQueries; i++ {
		for _, op := range []struct {
			d float64
			k int
		}{{1, 10}, {0.5, 10}} {
			a, _, err := sharded.SearchFingerprints(ctx, querySets[i], op.d, op.k)
			if err != nil {
				log.Fatal(err)
			}
			b, _, err := single.SearchFingerprints(ctx, querySets[i], op.d, op.k)
			if err != nil {
				log.Fatal(err)
			}
			if len(a) != len(b) {
				log.Fatalf("macro: parity failure on query %d (d=%.1f): %d vs %d hits", i, op.d, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					log.Fatalf("macro: parity failure on query %d (d=%.1f) hit %d: %+v vs %+v", i, op.d, j, a[j], b[j])
				}
			}
		}
	}
	parity := fmt.Sprintf("ok: %d queries x 2 operating points byte-identical", parityQueries)
	log.Printf("macro: parity %s", parity)

	mem := sampleMemory()
	log.Printf("macro: memory heap_inuse=%dMB sys=%dMB vmrss=%dMB",
		mem.HeapInuseBytes>>20, mem.SysBytes>>20, mem.VmRSSBytes>>20)

	ingest := []macroIngestResult{
		{Engine: "sharded", Shards: sharded.NumShards(), Trajs: total,
			Seconds: shardedSecs, TrajPerSec: float64(total) / shardedSecs},
		{Engine: "single", Shards: 1, Trajs: total,
			Seconds: singleSecs, TrajPerSec: float64(total) / singleSecs},
	}
	for _, r := range ingest {
		log.Printf("macro: ingest %-8s %8.0f traj/s (%.1fs)", r.Engine, r.TrajPerSec, r.Seconds)
	}

	// Closed-loop search at the operating-point grid. Worker counts cover
	// the single-caller latency view and a saturating concurrent load.
	workerPoints := []int{1, gomax}
	if gomax == 1 {
		workerPoints = []int{1, 4} // still measure concurrent callers queuing on one core
	}
	var search []macroSearchResult
	engines := []struct {
		name string
		eng  index.Engine
	}{{"sharded", sharded}, {"single", single}}
	for _, e := range engines {
		for _, op := range []struct {
			d float64
			k int
		}{{1, 10}, {0.5, 10}} {
			for _, w := range workerPoints {
				r := runMacroSearch(ctx, e.eng, querySets, op.d, op.k, w, pointDur)
				r.Engine = e.name
				search = append(search, r)
				log.Printf("macro: search %-8s d=%.1f k=%d w=%-2d %8.0f qps  p50=%.3fms p99=%.3fms",
					e.name, op.d, op.k, w, r.QPS, r.P50MS, r.P99MS)
			}
		}
	}

	// Brute force: full-corpus linear scan per query, Jaccard on every
	// document bitmap, ranked through the shared sort contract. This is
	// the PostGIS-table-scan analogue anchoring the speedup headline.
	bruteQueries := len(querySets)
	if bruteQueries > 8 {
		bruteQueries = 8
	}
	t0 := time.Now()
	for i := 0; i < bruteQueries; i++ {
		got := bruteForceScan(single, querySets[i], 1, 10)
		want, _, err := sharded.SearchFingerprints(ctx, querySets[i], 1, 10)
		if err != nil {
			log.Fatal(err)
		}
		if len(got) != len(want) {
			log.Fatalf("macro: brute-force mismatch on query %d: %d vs %d hits", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				log.Fatalf("macro: brute-force mismatch on query %d hit %d: %+v vs %+v", i, j, got[j], want[j])
			}
		}
	}
	bruteElapsed := time.Since(t0)
	brute := macroBruteResult{
		Queries: bruteQueries,
		AvgMS:   bruteElapsed.Seconds() * 1000 / float64(bruteQueries),
		QPS:     float64(bruteQueries) / bruteElapsed.Seconds(),
	}
	log.Printf("macro: brute force %d queries, avg %.1fms (%.2f qps)", brute.Queries, brute.AvgMS, brute.QPS)

	// Snapshot the sharded corpus (v3) to a byte-counting sink: the
	// durability cost of the scale corpus without touching disk.
	t0 = time.Now()
	snapBytes, err := sharded.WriteTo(countingDiscard{})
	if err != nil {
		log.Fatal(err)
	}
	snapSecs := time.Since(t0).Seconds()
	log.Printf("macro: v3 snapshot %d bytes in %.1fs", snapBytes, snapSecs)

	findQPS := func(engine string, d float64, w int) float64 {
		for _, r := range search {
			if r.Engine == engine && r.MaxDistance == d && r.Workers == w {
				return r.QPS
			}
		}
		return 0
	}
	concurrent := workerPoints[len(workerPoints)-1]
	rep := macroReport{
		Workload: fmt.Sprintf("synthetic city seed 7, chunked %d-route x %d/direction generation, 1km+ routes, default fingerprint config",
			chunkRoutes, perDirection),
		Trajectories:       total,
		TotalPoints:        totalPoints,
		QueryPool:          len(querySets),
		Shards:             sharded.NumShards(),
		Ingest:             ingest,
		Search:             search,
		Brute:              brute,
		SpeedupVsBrute:     findQPS("sharded", 1, 1) / brute.QPS,
		ShardedVsSingleQPS: findQPS("sharded", 1, concurrent) / findQPS("single", 1, concurrent),
		Parity:             parity,
		Memory:             mem,
		SnapshotV3Bytes:    snapBytes,
		SnapshotV3Seconds:  snapSecs,
	}
	log.Printf("macro: speedup_vs_brute %.0fx, sharded_vs_single %.2fx (w=%d)",
		rep.SpeedupVsBrute, rep.ShardedVsSingleQPS, concurrent)
	return rep
}

// runMacroSearch drives one engine closed-loop from w workers for
// roughly dur, cycling the query pool, and reports throughput and
// latency quantiles.
func runMacroSearch(ctx context.Context, eng index.Engine, querySets []*bitmap.Bitmap, maxDistance float64, knn, w int, dur time.Duration) macroSearchResult {
	var mu sync.Mutex
	var lats []time.Duration
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var local []time.Duration
			dst := make([]index.Result, 0, knn)
			for qi := seed; time.Now().Before(deadline); qi++ {
				set := querySets[qi%len(querySets)]
				t0 := time.Now()
				out, _, err := eng.AppendSearchSet(ctx, dst[:0], set, set.Cardinality(), maxDistance, knn)
				if err != nil {
					log.Fatal(err)
				}
				local = append(local, time.Since(t0))
				dst = out[:0]
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return float64(lats[int(q*float64(len(lats)-1))].Microseconds()) / 1000
	}
	return macroSearchResult{
		MaxDistance: maxDistance,
		KNN:         knn,
		Workers:     w,
		Requests:    len(lats),
		QPS:         float64(len(lats)) / elapsed.Seconds(),
		P50MS:       quantile(0.50),
		P99MS:       quantile(0.99),
	}
}

// bruteForceScan is the baseline: walk every indexed document, compute
// the exact Jaccard distance from the cached cardinality and a full
// bitmap intersection, rank through the shared contract. No postings, no
// counting merge, no pruning — what retrieval costs without the index.
func bruteForceScan(eng index.Engine, set *bitmap.Bitmap, maxDistance float64, limit int) []index.Result {
	qc := set.Cardinality()
	var results []index.Result
	eng.ScanDocs(func(id trajectory.ID, doc *bitmap.Bitmap, card int) bool {
		shared := bitmap.AndCardinality(set, doc)
		if shared == 0 {
			return true
		}
		union := qc + card - shared
		d := 1.0
		if union > 0 {
			d = 1 - float64(shared)/float64(union)
		}
		if d <= maxDistance {
			results = append(results, index.Result{ID: id, Distance: d, Shared: shared})
		}
		return true
	})
	index.SortResults(results)
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results
}

// sampleMemory reads the Go heap gauges and the OS-observed RSS.
func sampleMemory() macroMemory {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return macroMemory{
		HeapInuseBytes: ms.HeapInuse,
		SysBytes:       ms.Sys,
		VmRSSBytes:     readVmRSS(),
	}
}

// readVmRSS parses VmRSS from /proc/self/status; -1 when unavailable
// (non-Linux platforms).
func readVmRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return -1
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return -1
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return -1
		}
		return kb << 10
	}
	return -1
}

// countingDiscard is an io.Writer sink: the snapshot benchmark measures
// serialization, not disk.
type countingDiscard struct{}

func (countingDiscard) Write(p []byte) (int, error) { return len(p), nil }

var _ io.Writer = countingDiscard{}
