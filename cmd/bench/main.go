// Command bench pins the repository's performance trajectory: it runs the
// headline retrieval benchmarks — public Search and its prepared-Query
// counterparts, the zero-alloc counting core, SearchBatch, and a live
// three-node cluster scatter-gather — via testing.Benchmark and writes
// the results, together with the threshold pruning statistics of a
// pinned query (local index and cluster) and the prepared-vs-unprepared
// speedup, to a JSON file.
//
// Since issue 6 it also measures the served path: a geodabsd front-end
// on the same live cluster, driven by N concurrent client connections
// over the binary protocol, reporting qps and client-observed p50/p99.
//
// Since issue 7 it also measures the durable write path: ingest into a
// WAL-backed shard node at SyncEvery=1 (fsync per mutation) versus the
// batched group-commit default, quantifying what durability costs and
// what group commit buys back.
//
// Since issue 8 the -macro mode is the scale proof: it ingests on the
// order of a million synthetic trajectories into the in-process sharded
// engine and the flat single-lock engine, verifies their rankings stay
// byte-identical, and reports ingest throughput, closed-loop search qps
// with p50/p99 latency, RSS, and a brute-force linear-scan baseline for
// the speedup headline (see macro.go).
//
// Since issue 9 it also measures the pushed-down exact rerank: the
// cluster is built with point retention (raw points spill to their
// owner nodes at ingest), and a kNN+DTW search that scores its
// shortlist on the shard nodes is compared against a reproduction of
// the pre-pushdown architecture — the coordinator scoring every
// shortlist candidate serially in its own process. The report carries
// the speedup and the nodes' lower-bound skip rate.
//
// Regenerate the committed snapshot with:
//
//	go run ./cmd/bench -macro -out BENCH_9.json
//
// (-macro appends the million-trajectory section to the same report;
// without it only the micro benches run). The workload is deterministic
// (seeded synthetic city), so the numbers move only with the hardware
// and the code.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"geodabs"
	"geodabs/client"

	"geodabs/internal/core"
	"geodabs/internal/gen"
	"geodabs/internal/index"
	"geodabs/internal/roadnet"
	"geodabs/internal/server"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Ops         int     `json:"ops"`
}

type pruningStats struct {
	MaxDistance float64 `json:"max_distance"`
	KNN         int     `json:"knn"`
	Candidates  int     `json:"candidates"`
	Pruned      int     `json:"pruned"`
	Hits        int     `json:"hits"`
}

// clusterPruningStats quantifies the scatter-gather wire traffic of one
// pinned query: WireBefore partial entries would have crossed the wire
// without node-side pruning, WireAfter actually did (the difference is
// NodePruned, skipped at the shard nodes by the replicated-cardinality
// window before gob serialization).
type clusterPruningStats struct {
	MaxDistance float64 `json:"max_distance"`
	KNN         int     `json:"knn"`
	WireBefore  int     `json:"wire_partials_before"`
	WireAfter   int     `json:"wire_partials_after"`
	NodePruned  int     `json:"node_pruned"`
	Candidates  int     `json:"candidates"`
	Pruned      int     `json:"coordinator_pruned"`
	Hits        int     `json:"hits"`
	Nodes       int     `json:"nodes_touched"`
}

// servedResult is one operating point of the served-workload benchmark:
// conns closed-loop client connections issuing fingerprint searches
// against a geodabsd fronting the live cluster. Latencies are
// client-observed (full protocol round trip), shed counts OVERLOADED
// refusals during the run.
type servedResult struct {
	Conns    int     `json:"conns"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	Shed     uint64  `json:"shed"`
}

// durableWriteResult is one operating point of the durable ingest
// benchmark: the full dataset added through a coordinator into one
// WAL-backed shard node. Mode names the fsync policy; TrajPerSec is the
// end-to-end ingest rate, NsPerAdd the per-trajectory latency, Fsyncs
// how many fsync batches the run issued (the group-commit story in one
// number: "batched" covers the same records in far fewer syncs).
type durableWriteResult struct {
	Mode       string  `json:"mode"`
	SyncEvery  int     `json:"sync_every"`
	Trajs      int     `json:"trajectories"`
	TrajPerSec float64 `json:"traj_per_sec"`
	NsPerAdd   float64 `json:"ns_per_add"`
	Fsyncs     uint64  `json:"fsyncs"`
	WALBytes   int64   `json:"wal_bytes"`
}

// rerankResult quantifies the pushed-down exact rerank against the
// architecture it replaced. Pushdown ships the fingerprint shortlist to
// the shard nodes owning the retained points and merges (ID, score)
// pairs; the coordinator baseline reproduces the old design — the same
// fingerprint shortlist, then every candidate scored serially in the
// coordinator process from a local ID→points map. Scored and Skipped
// are the nodes' counters summed over the measured pushdown runs:
// skipped candidates were discarded by the cheap lower bound without
// paying the O(n·m) dynamic program.
type rerankResult struct {
	Metric             string  `json:"metric"`
	KNN                int     `json:"knn"`
	Shortlist          int     `json:"shortlist"`
	NsPerOpPushdown    float64 `json:"ns_per_op_pushdown"`
	NsPerOpCoordinator float64 `json:"ns_per_op_coordinator_baseline"`
	PushdownSpeedup    float64 `json:"rerank_pushdown_speedup"`
	Scored             uint64  `json:"rerank_scored"`
	Skipped            uint64  `json:"rerank_skipped"`
	SkipRate           float64 `json:"rerank_lb_skip_rate"`
}

type report struct {
	Issue      int    `json:"issue"`
	Regenerate string `json:"regenerate"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workload   string `json:"workload"`
	// PreparedSpeedupSearch is ns/op(Search) ÷ ns/op(SearchPrepared): how
	// much a repeated search gains from a prepared *Query's cached
	// extraction (the issue 5 acceptance bar is ≥ 2×).
	PreparedSpeedupSearch  float64               `json:"prepared_speedup_search"`
	PreparedSpeedupCluster float64               `json:"prepared_speedup_cluster"`
	Benches                []benchResult         `json:"benches"`
	Pruning                []pruningStats        `json:"pruning"`
	ClusterPruning         []clusterPruningStats `json:"cluster_pruning"`
	Served                 []servedResult        `json:"served"`
	DurableWrites          []durableWriteResult  `json:"durable_writes"`
	Rerank                 *rerankResult         `json:"rerank,omitempty"`
	// Macro is the million-trajectory sharded-engine section, present when
	// the run was invoked with -macro (see macro.go).
	Macro *macroReport `json:"macro,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_9.json", "output JSON path")
	servedDur := flag.Duration("served-duration", 1500*time.Millisecond, "duration of each served-workload operating point")
	macro := flag.Bool("macro", false, "also run the million-trajectory macro benchmark")
	macroN := flag.Int("n", 1_000_000, "macro: number of trajectories to ingest")
	macroShards := flag.Int("macro-shards", 0, "macro: shard count (0 = power of two from GOMAXPROCS, min 2)")
	macroDur := flag.Duration("macro-duration", 3*time.Second, "macro: duration of each search operating point")
	macroQueries := flag.Int("macro-queries", 64, "macro: held-out query pool size")
	flag.Parse()

	city, err := roadnet.GenerateCity(roadnet.CityConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = 50
	cfg.Seed = 7
	workload, err := gen.Generate(city, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.AddAll(workload.Dataset, 8); err != nil {
		log.Fatal(err)
	}
	queries := workload.Queries
	q := queries[0]

	var results []benchResult
	nsOf := func(name string) float64 {
		for _, r := range results {
			if r.Name == name {
				return r.NsPerOp
			}
		}
		log.Fatalf("benchmark %q not recorded", name)
		return 0
	}
	record := func(name string, r testing.BenchmarkResult) {
		results = append(results, benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Ops:         r.N,
		})
		fmt.Printf("%-24s %12.0f ns/op %8d B/op %6d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	record("Search", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.Search(ctx, q, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The same search over a prepared *Query: extraction runs once at
	// preparation, every iteration reuses the cached term set. The ratio
	// to Search above is the headline number of the Query redesign.
	pq := geodabs.NewQuery(q.Points)
	if _, err := idx.SearchQuery(ctx, pq); err != nil { // warm the cache
		log.Fatal(err)
	}
	record("SearchPrepared", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.SearchQuery(ctx, pq, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The prepared batch: the recurring-query-set steady state, where the
	// whole batch reuses cached extractions across repeats.
	prepared := make([]*geodabs.Query, len(queries))
	for i, tr := range queries {
		prepared[i] = geodabs.NewQuery(tr.Points)
	}
	if _, err := idx.SearchQueryBatch(ctx, prepared, 8, geodabs.WithLimit(10)); err != nil {
		log.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		record(fmt.Sprintf("SearchBatchPrepared/w%d", workers), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := idx.SearchQueryBatch(ctx, prepared, workers, geodabs.WithLimit(10)); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// The counting core alone: pre-extracted query set, recycled result
	// buffer — the allocation-free steady state.
	cf := core.MustFingerprinter(core.DefaultConfig())
	inv := index.NewInverted(index.GeodabExtractor{Fingerprinter: cf})
	if err := inv.AddAll(ctx, workload.Dataset, 8); err != nil {
		log.Fatal(err)
	}
	set := cf.FingerprintSet(q.Points)
	record("SearchCore", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]index.Result, 0, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, _, err := inv.AppendSearchFingerprints(ctx, buf[:0], set, 1, 10)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	}))

	for _, workers := range []int{1, 8} {
		record(fmt.Sprintf("SearchBatch/w%d", workers), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := idx.SearchBatch(ctx, queries, workers, geodabs.WithLimit(10)); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// A live three-node cluster on loopback: the scatter-gather inherits
	// the counting core through the shard nodes' query handlers, and the
	// nodes threshold-prune with the replicated cardinalities before
	// serializing their partials.
	const nodes = 3
	strategy := geodabs.ShardStrategy{PrefixBits: 16, Shards: 256, Nodes: nodes}
	addrs := make([]string, nodes)
	for i := range addrs {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		addrs[i] = n.Addr()
	}
	cl, err := geodabs.NewCluster(geodabs.DefaultConfig(), strategy, addrs,
		geodabs.WithPointRetention())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	for _, t := range workload.Dataset.Trajectories {
		if err := cl.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	record("ClusterSearch", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Search(ctx, q, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The same scatter-gather under a tight distance bound, where the
	// node-side cardinality window does real work: fewer partials are
	// gob-encoded, shipped and merged.
	record("ClusterSearchPruned", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Search(ctx, q, geodabs.WithMaxDistance(0.5), geodabs.WithKNN(5)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The prepared scatter-gather: the *Query's cached extraction and
	// per-shard term partition take both the fingerprint pipeline and the
	// per-node grouping off the scatter path.
	cpq := geodabs.NewQuery(q.Points)
	if _, err := cl.SearchQuery(ctx, cpq); err != nil { // warm both caches
		log.Fatal(err)
	}
	record("ClusterSearchPrepared", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.SearchQuery(ctx, cpq, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The pushed-down exact rerank versus the architecture it replaced.
	// Pushdown: the top k×8 fingerprint shortlist ships to the owner
	// nodes, DTW runs node-side behind the lower-bound gate, (ID, score)
	// pairs come back. Coordinator baseline: the same shortlist, every
	// candidate scored serially in this process from a local ID→points
	// map — the pre-pushdown coordinator-retention design. The nodes'
	// scored/skipped counter deltas over the measured pushdown runs give
	// the lower-bound skip rate.
	const rerankK = 10
	statsBefore, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	record("ClusterRerankPushdown", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Search(ctx, q, geodabs.WithKNN(rerankK), geodabs.WithExactRerank(geodabs.DTW)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	statsAfter, err := cl.Stats()
	if err != nil {
		log.Fatal(err)
	}
	var rerankScored, rerankSkipped uint64
	for i := range statsAfter {
		rerankScored += statsAfter[i].RerankScored - statsBefore[i].RerankScored
		rerankSkipped += statsAfter[i].RerankSkipped - statsBefore[i].RerankSkipped
	}
	ptsByID := make(map[geodabs.ID][]geodabs.Point, len(workload.Dataset.Trajectories))
	for _, t := range workload.Dataset.Trajectories {
		ptsByID[t.ID] = t.Points
	}
	record("ClusterRerankCoordinator", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := cl.Search(ctx, q, geodabs.WithLimit(rerankK*8))
			if err != nil {
				b.Fatal(err)
			}
			hits := res.Hits
			for j := range hits {
				hits[j].Distance = geodabs.DTW(q.Points, ptsByID[hits[j].ID])
			}
			sort.Slice(hits, func(a, b int) bool {
				if hits[a].Distance != hits[b].Distance {
					return hits[a].Distance < hits[b].Distance
				}
				return hits[a].ID < hits[b].ID
			})
			if len(hits) > rerankK {
				hits = hits[:rerankK]
			}
		}
	}))
	rerank := &rerankResult{
		Metric:             "dtw",
		KNN:                rerankK,
		Shortlist:          rerankK * 8,
		NsPerOpPushdown:    nsOf("ClusterRerankPushdown"),
		NsPerOpCoordinator: nsOf("ClusterRerankCoordinator"),
		PushdownSpeedup:    nsOf("ClusterRerankCoordinator") / nsOf("ClusterRerankPushdown"),
		Scored:             rerankScored,
		Skipped:            rerankSkipped,
	}
	if total := rerankScored + rerankSkipped; total > 0 {
		rerank.SkipRate = float64(rerankSkipped) / float64(total)
	}
	fmt.Printf("rerank pushdown speedup: %.2fx  lb skip rate: %.1f%% (%d skipped of %d shortlist candidates)\n",
		rerank.PushdownSpeedup, 100*rerank.SkipRate, rerankSkipped, rerankScored+rerankSkipped)

	// The served workload: a geodabsd front-end on the live cluster,
	// driven closed-loop by N concurrent client connections shipping the
	// pinned query's fingerprint (the thin-client path). Latency is the
	// full client-observed round trip: framing, admission, scatter-gather,
	// response decode.
	srv, err := server.Listen("127.0.0.1:0", cl, server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fper, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	qfp := fper.Fingerprint(q.Points)
	var served []servedResult
	for _, conns := range []int{1, 8, 32} {
		r, err := runServed(ctx, srv, qfp, conns, *servedDur)
		if err != nil {
			log.Fatal(err)
		}
		served = append(served, r)
		fmt.Printf("served conns=%-3d %8.0f qps  p50=%.2fms p99=%.2fms  shed=%d\n",
			r.Conns, r.QPS, r.P50MS, r.P99MS, r.Shed)
	}

	// The durable write path: the whole dataset ingested by 8 concurrent
	// writers through a coordinator into one WAL-backed shard node. At
	// SyncEvery=1 every mutation is fsynced before its ack, but group
	// commit folds concurrent appenders into shared syncs; the batched
	// policy (SyncEvery=256 + 50ms flusher) acks after the buffered write
	// and trades a bounded loss window for throughput.
	var durableWrites []durableWriteResult
	for _, pt := range []struct {
		mode      string
		syncEvery int
	}{{"every-record", 1}, {"batched", 256}} {
		r, err := runDurableWrites(workload.Dataset.Trajectories, pt.mode, pt.syncEvery)
		if err != nil {
			log.Fatal(err)
		}
		durableWrites = append(durableWrites, r)
		fmt.Printf("durable %-12s %8.0f traj/s  %10.0f ns/add  fsyncs=%d  wal=%dB\n",
			r.Mode, r.TrajPerSec, r.NsPerAdd, r.Fsyncs, r.WALBytes)
	}

	// Pruning statistics of pinned queries: how much of the candidate set
	// the threshold bounds discard before scoring.
	var pruning []pruningStats
	points := []struct {
		maxDistance float64
		knn         int
	}{{0.5, 5}, {0.9, 10}, {1, 10}}
	for _, p := range points {
		res, err := idx.Search(ctx, q, geodabs.WithMaxDistance(p.maxDistance), geodabs.WithKNN(p.knn))
		if err != nil {
			log.Fatal(err)
		}
		pruning = append(pruning, pruningStats{
			MaxDistance: p.maxDistance,
			KNN:         p.knn,
			Candidates:  res.Stats.Candidates,
			Pruned:      res.Stats.Pruned,
			Hits:        len(res.Hits),
		})
		fmt.Printf("pruning maxDist=%.2f k=%-3d candidates=%d pruned=%d hits=%d\n",
			p.maxDistance, p.knn, res.Stats.Candidates, res.Stats.Pruned, len(res.Hits))
	}

	// The same operating points on the cluster: wire partials before and
	// after node-side pruning (before = shipped + node-pruned, exact
	// because the window is the only node-side candidate filter).
	var clusterPruning []clusterPruningStats
	for _, p := range points {
		res, err := cl.Search(ctx, q, geodabs.WithMaxDistance(p.maxDistance), geodabs.WithKNN(p.knn))
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		clusterPruning = append(clusterPruning, clusterPruningStats{
			MaxDistance: p.maxDistance,
			KNN:         p.knn,
			WireBefore:  s.WirePartials + s.NodePruned,
			WireAfter:   s.WirePartials,
			NodePruned:  s.NodePruned,
			Candidates:  s.Candidates,
			Pruned:      s.Pruned,
			Hits:        len(res.Hits),
			Nodes:       s.NodesTouched,
		})
		fmt.Printf("cluster maxDist=%.2f k=%-3d wire=%d→%d nodePruned=%d candidates=%d pruned=%d hits=%d\n",
			p.maxDistance, p.knn, s.WirePartials+s.NodePruned, s.WirePartials, s.NodePruned,
			s.Candidates, s.Pruned, len(res.Hits))
	}

	rep := report{
		Issue:                  9,
		Regenerate:             "go run ./cmd/bench -macro -out BENCH_9.json",
		GoVersion:              runtime.Version(),
		GOMAXPROCS:             runtime.GOMAXPROCS(0),
		Workload:               "synthetic city seed 7, 50 routes, default fingerprint config",
		PreparedSpeedupSearch:  nsOf("Search") / nsOf("SearchPrepared"),
		PreparedSpeedupCluster: nsOf("ClusterSearch") / nsOf("ClusterSearchPrepared"),
		Benches:                results,
		Pruning:                pruning,
		ClusterPruning:         clusterPruning,
		Served:                 served,
		DurableWrites:          durableWrites,
		Rerank:                 rerank,
	}
	fmt.Printf("prepared speedup: search %.2fx, cluster %.2fx\n",
		rep.PreparedSpeedupSearch, rep.PreparedSpeedupCluster)

	if *macro {
		m := runMacro(*macroN, *macroShards, *macroQueries, *macroDur)
		rep.Macro = &m
	}
	writeReport(rep, *out)
}

// writeReport marshals rep to indented JSON and writes it to path.
func writeReport(rep report, path string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runDurableWrites ingests trajs from 8 concurrent writers through a
// fresh coordinator into a fresh WAL-backed shard node (temp dir,
// removed afterwards) under the given fsync policy and reports the
// ingest rate and the WAL's fsync and size counters.
func runDurableWrites(trajs []*geodabs.Trajectory, mode string, syncEvery int) (durableWriteResult, error) {
	dir, err := os.MkdirTemp("", "geodabs-bench-wal-*")
	if err != nil {
		return durableWriteResult{}, err
	}
	defer os.RemoveAll(dir)
	opts := []geodabs.NodeOption{
		geodabs.WithWALDir(dir),
		geodabs.WithSnapshotBytes(-1),
		geodabs.WithWALSync(syncEvery, 50*time.Millisecond),
	}
	n, err := geodabs.StartShardNode("127.0.0.1:0", opts...)
	if err != nil {
		return durableWriteResult{}, err
	}
	defer n.Close()
	const workers = 8
	strategy := geodabs.ShardStrategy{PrefixBits: 16, Shards: 256, Nodes: 1}
	cl, err := geodabs.NewCluster(geodabs.DefaultConfig(), strategy, []string{n.Addr()},
		geodabs.WithConnsPerNode(workers))
	if err != nil {
		return durableWriteResult{}, err
	}
	defer cl.Close()
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(trajs); i += workers {
				if err := cl.Add(trajs[i]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return durableWriteResult{}, err
	default:
	}
	stats, err := cl.Stats()
	if err != nil {
		return durableWriteResult{}, err
	}
	return durableWriteResult{
		Mode:       mode,
		SyncEvery:  syncEvery,
		Trajs:      len(trajs),
		TrajPerSec: float64(len(trajs)) / elapsed.Seconds(),
		NsPerAdd:   float64(elapsed.Nanoseconds()) / float64(len(trajs)),
		Fsyncs:     stats[0].WALSyncs,
		WALBytes:   stats[0].WALBytes,
	}, nil
}

// runServed drives the server closed-loop from conns client connections
// for roughly dur, each issuing the pinned fingerprint search
// back-to-back, and reports throughput and client-observed latency
// quantiles.
func runServed(ctx context.Context, srv *server.Server, fp *geodabs.Fingerprint, conns int, dur time.Duration) (servedResult, error) {
	shedBefore := srv.Metrics().Shed()
	var mu sync.Mutex
	var lats []time.Duration
	var firstErr error
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One connection per worker: WithPoolSize(1) pins the pool so
			// the closed loop measures per-connection round trips.
			cc, err := client.Dial(srv.Addr(), client.WithPoolSize(1))
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer cc.Close()
			var local []time.Duration
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := cc.SearchFingerprint(ctx, fp, client.WithMaxDistance(1), client.WithLimit(10)); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return servedResult{}, firstErr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return float64(lats[i].Microseconds()) / 1000
	}
	return servedResult{
		Conns:    conns,
		Requests: len(lats),
		QPS:      float64(len(lats)) / elapsed.Seconds(),
		P50MS:    quantile(0.50),
		P99MS:    quantile(0.99),
		Shed:     srv.Metrics().Shed() - shedBefore,
	}, nil
}
