package geodabs

import (
	"context"
	"errors"

	"geodabs/internal/cluster"
)

// ErrNotFound reports a mutation aimed at a trajectory the index does
// not hold. Delete returns it (test with errors.Is); DeleteAll skips
// unknown IDs instead.
var ErrNotFound = errors.New("geodabs: trajectory not found")

// Mutator is the write surface shared by the local *Index and the
// distributed *Cluster, the mutation-side mirror of Searcher: one
// lifecycle model, one visibility guarantee. Every mutation is atomic
// with respect to searches — a concurrent search observes a trajectory
// either fully or not at all, never a half-applied write (on a Cluster,
// reads are snapshot-isolated by mutation epochs). Delete reclaims the
// trajectory's postings on both engines. Failure atomicity differs: a
// local Upsert cannot fail partway, while a cluster Upsert that errors
// between its delete and add legs leaves the ID unindexed until retried
// (see Cluster.Upsert).
type Mutator interface {
	// Upsert indexes the trajectory, replacing any previously indexed
	// trajectory with the same ID.
	Upsert(ctx context.Context, t *Trajectory) error
	// Delete removes a trajectory and reclaims its postings. It returns
	// ErrNotFound when the ID is not indexed.
	Delete(ctx context.Context, id ID) error
	// DeleteAll deletes a batch of IDs on the given number of parallel
	// workers and reports how many were actually indexed; unknown IDs are
	// skipped, so the call is idempotent.
	DeleteAll(ctx context.Context, ids []ID, workers int) (int, error)
}

// Compile-time proof that both engines present the one mutation surface.
var (
	_ Mutator = (*Index)(nil)
	_ Mutator = (*Cluster)(nil)
)

// Delete removes a trajectory from the index and reclaims its postings:
// the trajectory is withdrawn from every posting list and lists left
// empty are compacted away, under the same write lock searches read
// under — a concurrent search sees the index before or after the
// deletion, never in between. Returns ErrNotFound for an unknown ID.
func (ix *Index) Delete(ctx context.Context, id ID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !ix.eng.Delete(id) {
		return ErrNotFound
	}
	return nil
}

// Upsert fingerprints and indexes the trajectory, replacing any
// previously indexed trajectory with the same ID. The swap is atomic: a
// concurrent search observes the old version or the new one in full,
// never a mixture.
func (ix *Index) Upsert(ctx context.Context, t *Trajectory) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.eng.Upsert(t)
	return nil
}

// DeleteAll deletes a batch of IDs and reports how many were actually
// indexed; unknown IDs are skipped. Local deletions serialize on the
// index's write lock, so workers buys no parallelism here — the
// parameter exists for signature parity with Cluster.DeleteAll.
func (ix *Index) DeleteAll(ctx context.Context, ids []ID, workers int) (int, error) {
	_ = workers
	return ix.eng.DeleteAll(ctx, ids)
}

// Epoch returns the index's mutation epoch: a monotone counter bumped by
// every insert, delete and upsert, persisted by WriteTo/ReadFrom so
// snapshot lineages of a mutated index stay ordered.
func (ix *Index) Epoch() uint64 { return ix.eng.Epoch() }

// Delete withdraws a trajectory from the cluster and reclaims its
// postings on every shard node, honoring ctx cancellation while waiting
// on them. The trajectory vanishes from ranking atomically; node-side
// deletion is idempotent, so a Delete that failed against a wedged node
// can be retried until the postings are reclaimed. Returns ErrNotFound
// for an unknown ID.
func (c *Cluster) Delete(ctx context.Context, id ID) error {
	return translateClusterErr(c.coord.Delete(ctx, id))
}

// Upsert replaces a trajectory across the cluster: an indexed ID is
// deleted first, then the new version is added under a fresh mutation
// epoch. Concurrent searches observe the old version, nothing, or the
// new version — never a mixture of the two.
//
// Unlike Index.Upsert, the two legs are separate distributed mutations:
// if the add leg fails after the delete committed, Upsert returns the
// error with the ID unindexed (the old version is already gone). The
// failed add is cleaned up and the ID is free, so retrying the same
// Upsert completes the replacement.
func (c *Cluster) Upsert(ctx context.Context, t *Trajectory) error {
	return translateClusterErr(c.coord.Upsert(ctx, t))
}

// DeleteAll deletes a batch of IDs on the given number of parallel
// workers and reports how many were actually indexed; unknown IDs are
// skipped. The first hard error cancels the remaining work.
func (c *Cluster) DeleteAll(ctx context.Context, ids []ID, workers int) (int, error) {
	n, err := c.coord.DeleteAll(ctx, ids, workers)
	return n, translateClusterErr(err)
}

// translateClusterErr maps the internal cluster sentinels onto the
// public ones so errors.Is(err, ErrNotFound) and errors.Is(err,
// ErrClosed) work across both engines.
func translateClusterErr(err error) error {
	switch {
	case errors.Is(err, cluster.ErrNotFound):
		return ErrNotFound
	case errors.Is(err, cluster.ErrClosed):
		return ErrClosed
	default:
		return err
	}
}
