// Benchmarks regenerating the measured quantity of every figure in the
// paper's evaluation (one benchmark per figure), plus ablations of the
// design choices called out in DESIGN.md. The full parameter sweeps live
// in cmd/experiments; these benches pin the headline operating points so
// `go test -bench=. -benchmem` tracks them over time.
package geodabs_test

import (
	"context"
	"sync"
	"testing"

	"geodabs"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/distance"
	"geodabs/internal/eval"
	"geodabs/internal/gen"
	"geodabs/internal/geohash"
	"geodabs/internal/index"
	"geodabs/internal/motif"
	"geodabs/internal/roadnet"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

// benchWorkload generates a moderate retrieval workload once per process.
var benchWorkload = sync.OnceValue(func() *gen.Output {
	city, err := roadnet.GenerateCity(roadnet.CityConfig{Seed: 7})
	if err != nil {
		panic(err)
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = 50
	cfg.Seed = 7
	out, err := gen.Generate(city, cfg)
	if err != nil {
		panic(err)
	}
	return out
})

// benchLongTrajectories samples n trajectories of the given length.
var benchLongTrajectories = sync.OnceValue(func() [][]geodabs.Point {
	city, err := roadnet.GenerateCity(roadnet.CityConfig{Seed: 9})
	if err != nil {
		panic(err)
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = 6
	cfg.TrajectoriesPerDirection = 1
	cfg.QueriesPerRoute = 0
	cfg.MinRouteMeters = 8000
	cfg.Seed = 9
	out, err := gen.Generate(city, cfg)
	if err != nil {
		panic(err)
	}
	pts := make([][]geodabs.Point, 0, out.Dataset.Len())
	for _, t := range out.Dataset.Trajectories {
		pts = append(pts, t.Points)
	}
	return pts
})

func builtIndex(b *testing.B, ex index.Extractor) *index.Inverted {
	b.Helper()
	ix := index.NewInverted(ex)
	if err := ix.AddAll(context.Background(), benchWorkload().Dataset, 8); err != nil {
		b.Fatal(err)
	}
	return ix
}

func geodabEx() index.GeodabExtractor {
	return index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
}

func cellEx(b *testing.B) index.CellExtractor {
	b.Helper()
	ex, err := index.NewCellExtractor(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return ex
}

// BenchmarkFig08Normalization measures one build-and-evaluate pass at the
// paper's chosen 36-bit grid (the sweep over 32-40 bits is
// `experiments fig8`).
func BenchmarkFig08Normalization(b *testing.B) {
	out := benchWorkload()
	for i := 0; i < b.N; i++ {
		ix := index.NewInverted(geodabEx())
		if err := ix.AddAll(context.Background(), out.Dataset, 8); err != nil {
			b.Fatal(err)
		}
		runs := make([]eval.Run, 0, len(out.Queries))
		for _, q := range out.Queries[:20] {
			results := ix.Query(q, 1, 0)
			ranked := make([]trajectory.ID, len(results))
			for j, r := range results {
				ranked[j] = r.ID
			}
			rel := make(map[trajectory.ID]bool)
			for _, id := range out.Relevant[q.ID] {
				rel[id] = true
			}
			runs = append(runs, eval.Run{Ranked: ranked, Relevant: rel, Total: out.Dataset.Len()})
		}
		eval.InterpolatedPR(runs)
	}
}

// BenchmarkFig09DFDTenCandidates is the paper's worst case of Fig 9: DFD
// of a 1000-ish-point query against 5 candidates.
func BenchmarkFig09DFDTenCandidates(b *testing.B) {
	pts := benchLongTrajectories()
	query, candidates := pts[0], pts[1:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range candidates {
			distance.DFD(query, c)
		}
	}
}

// BenchmarkFig09GeodabsTenCandidates is the same workload scored by
// fingerprinting + Jaccard — the paper's flat line.
func BenchmarkFig09GeodabsTenCandidates(b *testing.B) {
	pts := benchLongTrajectories()
	f := core.MustFingerprinter(core.DefaultConfig())
	query, candidates := pts[0], pts[1:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qf := f.Fingerprint(query)
		for _, c := range candidates {
			bitmap.JaccardDistance(qf.Set, f.Fingerprint(c).Set)
		}
	}
}

// BenchmarkFig10DTWLong is Fig 10's right edge: DTW on long trajectories.
func BenchmarkFig10DTWLong(b *testing.B) {
	pts := benchLongTrajectories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distance.DTW(pts[0], pts[1])
	}
}

// BenchmarkFig11MotifBTM and BenchmarkFig11MotifGeodabs compare motif
// discovery on one trajectory pair (Fig 11's per-candidate cost).
func BenchmarkFig11MotifBTM(b *testing.B) {
	pts := benchLongTrajectories()
	a, c := clip(pts[0], 300), clip(pts[1], 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := motif.FindBTM(a, c, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MotifGeodabs(b *testing.B) {
	pts := benchLongTrajectories()
	f := core.MustFingerprinter(core.DefaultConfig())
	a, c := clip(pts[0], 300), clip(pts[1], 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := motif.FindGeodab(f, a, c, 600); err != nil && err != motif.ErrTooShort {
			b.Fatal(err)
		}
	}
}

func clip(pts []geodabs.Point, n int) []geodabs.Point {
	if len(pts) > n {
		return pts[:n]
	}
	return pts
}

// BenchmarkFig12QueryGeodab and BenchmarkFig12QueryGeohash measure one
// ranked query against each index (the per-query cost behind the PR
// comparison).
func BenchmarkFig12QueryGeodab(b *testing.B) {
	ix := builtIndex(b, geodabEx())
	q := benchWorkload().Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 1, 0)
	}
}

func BenchmarkFig12QueryGeohash(b *testing.B) {
	ix := builtIndex(b, cellEx(b))
	q := benchWorkload().Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 1, 0)
	}
}

// BenchmarkFig13ROC measures computing the ROC curve + AUC over the
// query runs.
func BenchmarkFig13ROC(b *testing.B) {
	ix := builtIndex(b, geodabEx())
	out := benchWorkload()
	runs := make([]eval.Run, 0, len(out.Queries))
	for _, q := range out.Queries[:20] {
		results := ix.Query(q, 1, 0)
		ranked := make([]trajectory.ID, len(results))
		for j, r := range results {
			ranked[j] = r.ID
		}
		rel := make(map[trajectory.ID]bool)
		for _, id := range out.Relevant[q.ID] {
			rel[id] = true
		}
		runs = append(runs, eval.Run{Ranked: ranked, Relevant: rel, Total: out.Dataset.Len()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.AUC(eval.ROC(runs))
	}
}

// BenchmarkFig14HundredQueriesGeodab and ...Geohash measure the paper's
// Fig 14 quantity — a 100-query batch — at the bench workload's density.
func BenchmarkFig14HundredQueriesGeodab(b *testing.B) {
	ix := builtIndex(b, geodabEx())
	queries := benchWorkload().Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			ix.Query(queries[j%len(queries)], 1, 0)
		}
	}
}

func BenchmarkFig14HundredQueriesGeohash(b *testing.B) {
	ix := builtIndex(b, cellEx(b))
	queries := benchWorkload().Queries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			ix.Query(queries[j%len(queries)], 1, 0)
		}
	}
}

// BenchmarkFig15WorldDistribution measures histogramming world samples
// into depth-16 cells.
func BenchmarkFig15WorldDistribution(b *testing.B) {
	sampler := roadnet.NewWorldSampler(0, 1)
	points := sampler.SampleN(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := make(map[uint64]int)
		for _, p := range points {
			counts[geohash.Encode(p, 16).CurvePosition()]++
		}
	}
}

// BenchmarkFig16ShardBalance measures computing the 10'000-shard balance
// over the world sample.
func BenchmarkFig16ShardBalance(b *testing.B) {
	sampler := roadnet.NewWorldSampler(0, 1)
	points := sampler.SampleN(100000)
	s := shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perShard := make([]int, s.Shards)
		for _, p := range points {
			perShard[s.ShardOf(uint32(geohash.Encode(p, 16).Bits)<<16)]++
		}
		s.BalanceOf(perShard)
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationPrefixStrategy compares the covering-prefix and
// centroid geodab prefix derivations.
func BenchmarkAblationPrefixStrategy(b *testing.B) {
	for _, strat := range []struct {
		name string
		s    core.PrefixStrategy
	}{{"cover", core.PrefixCover}, {"centroid", core.PrefixCentroid}} {
		b.Run(strat.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Strategy = strat.s
			f := core.MustFingerprinter(cfg)
			pts := benchLongTrajectories()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Fingerprint(pts)
			}
		})
	}
}

// BenchmarkAblationPrefixBits sweeps the geodab prefix width: wider
// prefixes localize more finely but leave fewer discriminating suffix
// bits.
func BenchmarkAblationPrefixBits(b *testing.B) {
	for _, bits := range []uint8{8, 16, 24} {
		b.Run(map[uint8]string{8: "p8", 16: "p16", 24: "p24"}[bits], func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.PrefixBits = bits
			f := core.MustFingerprinter(cfg)
			pts := benchLongTrajectories()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Fingerprint(pts)
			}
		})
	}
}

// BenchmarkAblationWindow sweeps the winnowing guarantee threshold t
// (window w = t−k+1): denser fingerprints cost more per trajectory.
func BenchmarkAblationWindow(b *testing.B) {
	for _, t := range []int{8, 12, 20} {
		b.Run(map[int]string{8: "t8", 12: "t12", 20: "t20"}[t], func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.T = t
			f := core.MustFingerprinter(cfg)
			pts := benchLongTrajectories()[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Fingerprint(pts)
			}
		})
	}
}

// BenchmarkIndexBuildParallel compares sequential and parallel index
// construction.
func BenchmarkIndexBuildParallel(b *testing.B) {
	out := benchWorkload()
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "seq", 8: "par8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix := index.NewInverted(geodabEx())
				if err := ix.AddAll(context.Background(), out.Dataset, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Public Searcher API ---

// builtPublicIndex builds a public geodab index over the bench workload.
func builtPublicIndex(b *testing.B) *geodabs.Index {
	b.Helper()
	// Retention keeps the exact-rerank benchmark runnable.
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithPointRetention())
	if err != nil {
		b.Fatal(err)
	}
	if err := idx.AddAll(benchWorkload().Dataset, 8); err != nil {
		b.Fatal(err)
	}
	return idx
}

// BenchmarkSearch measures one ranked search through the public Searcher
// surface (option resolution + stats included), the counterpart of
// BenchmarkFig12QueryGeodab's internal path.
func BenchmarkSearch(b *testing.B) {
	idx := builtPublicIndex(b)
	q := benchWorkload().Queries[0]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(ctx, q, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSharded measures the ranked search through the
// in-process sharded engine (4 shards): the same counting merge per
// shard, fanned out in parallel and merged through one Ranker. On a
// single core the fan-out adds goroutine overhead over BenchmarkSearch;
// on multi-core machines the per-shard merges overlap. Rankings are
// byte-identical either way (TestShardedMatchesInverted).
func BenchmarkSearchSharded(b *testing.B) {
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	if err := idx.AddAll(benchWorkload().Dataset, 8); err != nil {
		b.Fatal(err)
	}
	q := benchWorkload().Queries[0]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(ctx, q, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchPrepared measures the same ranked search over a
// prepared *Query: extraction is cached inside the value, so an
// iteration pays only the counting-merge core plus option resolution.
// The gap to BenchmarkSearch is the per-call preparation cost the Query
// API converts to per-query-lifetime.
func BenchmarkSearchPrepared(b *testing.B) {
	idx := builtPublicIndex(b)
	q := geodabs.NewQuery(benchWorkload().Queries[0].Points)
	ctx := context.Background()
	if _, err := idx.SearchQuery(ctx, q); err != nil { // warm the extraction cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.SearchQuery(ctx, q, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchBatch measures the throughput surface: the full query
// set fanned out over a worker pool.
func BenchmarkSearchBatch(b *testing.B) {
	idx := builtPublicIndex(b)
	queries := benchWorkload().Queries
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "w1", 8: "w8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.SearchBatch(ctx, queries, workers, geodabs.WithLimit(10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchBatchPrepared is BenchmarkSearchBatch over prepared
// queries: the batch reuses every query's cached extraction across
// iterations, so it measures the steady state of a recurring query set.
func BenchmarkSearchBatchPrepared(b *testing.B) {
	idx := builtPublicIndex(b)
	ctx := context.Background()
	prepared := make([]*geodabs.Query, len(benchWorkload().Queries))
	for i, tr := range benchWorkload().Queries {
		prepared[i] = geodabs.NewQuery(tr.Points)
	}
	if _, err := idx.SearchQueryBatch(ctx, prepared, 8, geodabs.WithLimit(10)); err != nil {
		b.Fatal(err) // warm every extraction cache
	}
	for _, workers := range []int{1, 8} {
		b.Run(map[int]string{1: "w1", 8: "w8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := idx.SearchQueryBatch(ctx, prepared, workers, geodabs.WithLimit(10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchCore measures the ranked-retrieval core alone: the
// term-at-a-time counting merge over a pre-extracted query fingerprint
// set, appending into a recycled result buffer. In steady state this path
// performs zero heap allocations (report: allocs/op).
func BenchmarkSearchCore(b *testing.B) {
	ix := builtIndex(b, geodabEx())
	set := geodabEx().Extract(benchWorkload().Queries[0].Points)
	ctx := context.Background()
	buf := make([]index.Result, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _, err := ix.AppendSearchFingerprints(ctx, buf[:0], set, 1, 10)
		if err != nil {
			b.Fatal(err)
		}
		buf = results[:0]
	}
}

// BenchmarkSearchCoreKNN is the core under a tight distance cutoff and a
// top-k cap, where threshold pruning and the rising heap bar do real
// work.
func BenchmarkSearchCoreKNN(b *testing.B) {
	ix := builtIndex(b, geodabEx())
	set := geodabEx().Extract(benchWorkload().Queries[0].Points)
	ctx := context.Background()
	buf := make([]index.Result, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, _, err := ix.AppendSearchFingerprints(ctx, buf[:0], set, 0.5, 5)
		if err != nil {
			b.Fatal(err)
		}
		buf = results[:0]
	}
}

// BenchmarkClusterSearch measures one scatter-gather against a live
// three-node loopback cluster, at the open distance bound (d=1: the
// node-side cardinality window is unbounded, every candidate partial
// crosses the wire) and at a tight bound (d=0.5: shard nodes prune
// non-qualifying candidates before gob serialization).
func BenchmarkClusterSearch(b *testing.B) {
	cfg := geodabs.DefaultConfig()
	const nodeCount = 3
	strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 1000, Nodes: nodeCount}
	addrs := make([]string, nodeCount)
	for i := range addrs {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		addrs[i] = n.Addr()
	}
	cl, err := geodabs.NewCluster(cfg, strategy, addrs)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, t := range benchWorkload().Dataset.Trajectories {
		if err := cl.Add(t); err != nil {
			b.Fatal(err)
		}
	}
	q := benchWorkload().Queries[0]
	ctx := context.Background()
	for _, bc := range []struct {
		name        string
		maxDistance float64
	}{{"d1", 1}, {"d05", 0.5}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Search(ctx, q, geodabs.WithMaxDistance(bc.maxDistance), geodabs.WithLimit(10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The prepared counterpart: the *Query's cached extraction and shard
	// partition take both the fingerprint pipeline and the per-node
	// grouping off the scatter path.
	b.Run("prepared", func(b *testing.B) {
		pq := geodabs.NewQuery(q.Points)
		if _, err := cl.SearchQuery(ctx, pq, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
			b.Fatal(err) // warm the extraction and partition caches
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.SearchQuery(ctx, pq, geodabs.WithMaxDistance(1), geodabs.WithLimit(10)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkClusterRerank measures the pushed-down §VI-C refinement on a
// live cluster: the fingerprint shortlist ships to the shard nodes that
// retain the raw points, DTW runs node-side behind the lower-bound
// gate, and only (ID, score) pairs cross the wire back to the merging
// coordinator.
func BenchmarkClusterRerank(b *testing.B) {
	cfg := geodabs.DefaultConfig()
	const nodeCount = 3
	strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 1000, Nodes: nodeCount}
	addrs := make([]string, nodeCount)
	for i := range addrs {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer n.Close()
		addrs[i] = n.Addr()
	}
	cl, err := geodabs.NewCluster(cfg, strategy, addrs, geodabs.WithPointRetention())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	for _, t := range benchWorkload().Dataset.Trajectories {
		if err := cl.Add(t); err != nil {
			b.Fatal(err)
		}
	}
	q := benchWorkload().Queries[0]
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Search(ctx, q, geodabs.WithKNN(5), geodabs.WithExactRerank(geodabs.DTW)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchExactRerank measures the §VI-C refinement: fingerprint
// pruning plus a DTW pass over the shortlist.
func BenchmarkSearchExactRerank(b *testing.B) {
	idx := builtPublicIndex(b)
	q := benchWorkload().Queries[0]
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(ctx, q,
			geodabs.WithMaxDistance(0.9),
			geodabs.WithKNN(5),
			geodabs.WithExactRerank(geodabs.DTW)); err != nil {
			b.Fatal(err)
		}
	}
}
