package geodabs_test

import (
	"context"
	"fmt"

	"geodabs"
)

// ExampleIndex demonstrates the core workflow: index a dataset, run a
// ranked similarity search through the Searcher API.
func ExampleIndex() {
	city, err := geodabs.GenerateCity(geodabs.CityConfig{RadiusMeters: 3000, Seed: 5})
	if err != nil {
		fmt.Println(err)
		return
	}
	cfg := geodabs.DefaultDatasetConfig()
	cfg.Routes = 5
	cfg.TrajectoriesPerDirection = 3
	cfg.MinRouteMeters = 2000
	data, err := geodabs.GenerateDataset(city, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := idx.AddAll(data.Dataset, 4); err != nil {
		fmt.Println(err)
		return
	}
	q := data.Queries[0]
	res, err := idx.Search(context.Background(), q,
		geodabs.WithMaxDistance(0.95),
		geodabs.WithKNN(3))
	if err != nil {
		fmt.Println(err)
		return
	}
	top := data.Dataset.ByID(res.Hits[0].ID)
	fmt.Println("top result shares the query's route:", top.Route == q.Route && top.Dir == q.Dir)
	// Output:
	// top result shares the query's route: true
}

// ExampleFingerprinter shows fingerprint extraction with a reusable
// Fingerprinter and the Jaccard distance between two fingerprint sets.
func ExampleFingerprinter() {
	// A short straight drive, two noise-free recordings.
	var a, b []geodabs.Point
	start := geodabs.Point{Lat: 51.5074, Lon: -0.1278}
	for i := 0; i < 600; i++ {
		p := offsetNE(start, float64(i)*10, float64(i)*10)
		a = append(a, p)
		b = append(b, p)
	}
	fp, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fa := fp.Fingerprint(a)
	fb := fp.Fingerprint(b)
	fmt.Printf("distance between identical recordings: %.1f\n", geodabs.JaccardDistance(fa, fb))
	// Output:
	// distance between identical recordings: 0.0
}

// offsetNE displaces a point north and east in meters (flat-earth
// approximation good enough for an example).
func offsetNE(p geodabs.Point, north, east float64) geodabs.Point {
	const mPerDegLat = 111_195.0
	return geodabs.Point{
		Lat: p.Lat + north/mPerDegLat,
		Lon: p.Lon + east/(mPerDegLat*0.6225), // cos(51.5°)
	}
}

// ExampleSimplify reduces a dense polyline with Douglas-Peucker.
func ExampleSimplify() {
	var line []geodabs.Point
	start := geodabs.Point{Lat: 51.5, Lon: -0.12}
	for i := 0; i < 100; i++ {
		line = append(line, offsetNE(start, 0, float64(i)*10))
	}
	simplified := geodabs.Simplify(line, 5)
	fmt.Println("points:", len(line), "->", len(simplified))
	// Output:
	// points: 100 -> 2
}
