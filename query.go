package geodabs

import (
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/cluster"
	"geodabs/internal/index"
)

// Query is a prepared, reusable retrieval query. Query preparation —
// fingerprint extraction (FNV suffix hashing + geohash encoding) and, on
// a Cluster, partitioning the term set by owning shard node — dominates
// per-query cost, so Query converts it from a per-call expense into a
// per-query-lifetime one: the extracted term set, its cardinality, and
// the per-strategy shard partition are computed once and cached inside
// the value, and every SearchQuery, SearchQueryBatch and AnalyzeQuery
// call against any engine reuses them.
//
// Construct one with:
//
//   - NewQuery(points): lazy — extraction runs on first use, with the
//     engine's own fingerprinting configuration, and is cached for
//     subsequent uses against engines sharing that configuration.
//   - Fingerprinter.Prepare(points): eager — extraction runs immediately
//     with the Fingerprinter's configuration, off the search path.
//   - QueryFromFingerprint(fp): fingerprint-only — no raw points ever;
//     for clients that ship compact fingerprints instead of GPS traces.
//
// A Query is safe for concurrent use: one value can be shared across
// SearchBatch workers and engines. A lazily-constructed Query used
// against engines with different fingerprinting configurations (say a
// geodab Index and a geohash-cell baseline Index) stays correct — the
// cache is keyed by configuration and re-derives on a mismatch — but
// then alternating engines re-extracts per call; prefer one Query per
// configuration for such workloads.
type Query struct {
	points []Point
	// fpOnly marks a Query built from a bare fingerprint: the term set is
	// authoritative as constructed (never re-derived), and there are no
	// raw points for WithExactRerank to refine against.
	fpOnly bool

	mu sync.RWMutex
	// ext is the cached extraction; plans caches the per-strategy shard
	// partitions derived from ext.set (invalidated implicitly: each plan
	// records the set it was built from, so a re-derived set makes the
	// lookup miss).
	ext   extraction
	plans map[ShardStrategy]*cluster.QueryPlan
}

// extraction is one cached term-set derivation: the set, its cardinality,
// and the configuration key it was derived under.
type extraction struct {
	valid bool
	key   extractorKey
	keyed bool
	set   *bitmap.Bitmap
	card  int
}

// extractorKey identifies an extraction's provenance: the index flavor
// (geodab fingerprints vs bare geohash cells) and the fingerprinting
// configuration. Extraction is a pure function of (key, points), so equal
// keys may share a cached term set even across distinct engine instances.
type extractorKey struct {
	cell bool
	cfg  Config
}

// keyOf maps an engine's extractor to its cache key. Only the two public
// index flavors are keyable; an unknown extractor type reports false and
// its extractions are not cached across engines.
func keyOf(ex index.Extractor) (extractorKey, bool) {
	switch e := ex.(type) {
	case index.GeodabExtractor:
		return extractorKey{cfg: e.Config()}, true
	case index.CellExtractor:
		return extractorKey{cell: true, cfg: e.Config()}, true
	}
	return extractorKey{}, false
}

// NewQuery prepares a lazy query over a raw point sequence. The slice
// header is shared, not copied; extraction runs on the first search (or
// analysis) and is cached inside the value. Use Fingerprinter.Prepare to
// pay the extraction eagerly instead, off the search path.
func NewQuery(points []Point) *Query {
	return &Query{points: points}
}

// QueryFromFingerprint prepares a query from a bare fingerprint, for
// clients that never hold the raw GPS trace — an edge device can winnow
// locally and ship the compact fingerprint instead of its points. The
// fingerprint must have been produced under the target engine's
// configuration; its set is shared with the query (not copied) and must
// not be mutated afterwards.
//
// A fingerprint-only query carries no raw points, so WithExactRerank
// fails against it with a pointed error; every fingerprint-ranked search
// works unchanged.
func QueryFromFingerprint(fp *Fingerprint) *Query {
	set := fp.Set
	if set == nil {
		set = bitmap.New()
	}
	return &Query{
		fpOnly: true,
		ext:    extraction{valid: true, set: set, card: set.Cardinality()},
	}
}

// Points returns the query's raw point sequence, or nil for a
// fingerprint-only query.
func (q *Query) Points() []Point { return q.points }

// FingerprintOnly reports whether the query was built from a bare
// fingerprint (QueryFromFingerprint) and therefore cannot take part in
// exact re-ranking.
func (q *Query) FingerprintOnly() bool { return q.fpOnly }

// bind installs an eager extraction at construction time
// (Fingerprinter.Prepare); no locking — the value has not escaped yet.
func (q *Query) bind(key extractorKey, set *bitmap.Bitmap) {
	q.ext = extraction{valid: true, key: key, keyed: true, set: set, card: set.Cardinality()}
}

// termSet returns the query's term set and cardinality under the given
// extractor, deriving and caching it on first use. A fingerprint-only
// query always returns its construction-time set; a lazy or prepared
// query returns the cached extraction when its configuration key matches
// and re-derives (replacing the cache and implicitly staling the shard
// plans) otherwise. Racing first uses may extract redundantly; all arrive
// at the same set values, so correctness is unaffected.
func (q *Query) termSet(ex index.Extractor) (*bitmap.Bitmap, int) {
	key, keyable := keyOf(ex)
	q.mu.RLock()
	if q.ext.valid && (q.fpOnly || (keyable && q.ext.keyed && q.ext.key == key)) {
		set, card := q.ext.set, q.ext.card
		q.mu.RUnlock()
		return set, card
	}
	q.mu.RUnlock()

	set := ex.Extract(q.points)
	card := set.Cardinality()
	if !keyable {
		// Unknown extractor flavor: usable, but never cached — a later use
		// under a keyable engine must not inherit a set of unknown
		// provenance.
		return set, card
	}
	q.mu.Lock()
	q.ext = extraction{valid: true, key: key, keyed: true, set: set, card: card}
	q.mu.Unlock()
	return set, card
}

// clusterPlan returns the query's shard partition for the coordinator's
// strategy, building and caching it on first use. The plan is validated
// against the set it was built from, so a re-derived term set (a lazy
// query crossing configurations) never reuses a stale partition; equal
// strategies share one plan even across distinct Cluster values.
func (q *Query) clusterPlan(coord *cluster.Coordinator, set *bitmap.Bitmap) *cluster.QueryPlan {
	strat := coord.Strategy()
	q.mu.RLock()
	p := q.plans[strat]
	q.mu.RUnlock()
	if p != nil && p.Set() == set {
		return p
	}
	p = coord.Plan(set)
	q.mu.Lock()
	if q.plans == nil {
		q.plans = make(map[ShardStrategy]*cluster.QueryPlan, 1)
	}
	q.plans[strat] = p
	q.mu.Unlock()
	return p
}
