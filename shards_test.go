package geodabs_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"geodabs"
)

// TestWithShardsMatchesUnsharded pins the public contract: the same
// corpus behind WithShards(1) and WithShards(4) returns byte-identical
// rankings through Search, SearchQuery and the deprecated Query.
func TestWithShardsMatchesUnsharded(t *testing.T) {
	_, w := testWorld()
	flat, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range []*geodabs.Index{flat, sharded} {
		if err := ix.AddAll(w.Dataset, 4); err != nil {
			t.Fatal(err)
		}
	}
	if got := sharded.Stats().Shards; got != 4 {
		t.Fatalf("sharded Stats.Shards = %d, want 4", got)
	}
	if got := flat.Stats().Shards; got != 1 {
		t.Fatalf("flat Stats.Shards = %d, want 1", got)
	}
	ctx := context.Background()
	for _, q := range w.Queries {
		want, err := flat.Search(ctx, q, geodabs.WithMaxDistance(0.99), geodabs.WithLimit(10))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Search(ctx, q, geodabs.WithMaxDistance(0.99), geodabs.WithLimit(10))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("sharded %d hits, flat %d", len(got.Hits), len(want.Hits))
		}
		for i := range got.Hits {
			g, f := got.Hits[i], want.Hits[i]
			if g.ID != f.ID || g.Shared != f.Shared ||
				math.Float64bits(g.Distance) != math.Float64bits(f.Distance) {
				t.Fatalf("hit %d: sharded %+v, flat %+v", i, g, f)
			}
		}
		// Prepared queries run the same engine path.
		pq := geodabs.NewQuery(q.Points)
		got2, err := sharded.SearchQuery(ctx, pq, geodabs.WithMaxDistance(0.99), geodabs.WithLimit(10))
		if err != nil {
			t.Fatal(err)
		}
		if len(got2.Hits) != len(got.Hits) {
			t.Fatalf("prepared sharded %d hits, direct %d", len(got2.Hits), len(got.Hits))
		}
	}
}

// TestWithShardsMutations drives the Mutator surface through the sharded
// engine: upsert replaces in place, delete reclaims, epochs advance.
func TestWithShardsMutations(t *testing.T) {
	_, w := testWorld()
	ix, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before := ix.Epoch()
	victim := w.Dataset.Trajectories[0]
	if err := ix.Delete(ctx, victim.ID); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != w.Dataset.Len()-1 {
		t.Fatalf("Len after delete = %d", ix.Len())
	}
	if err := ix.Upsert(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != w.Dataset.Len() {
		t.Fatalf("Len after upsert = %d", ix.Len())
	}
	if ix.Epoch() <= before {
		t.Fatalf("epoch did not advance: %d -> %d", before, ix.Epoch())
	}
}

// TestWithShardsSnapshotInterop round-trips a sharded index through its
// v3 snapshot into both a sharded and an unsharded receiver, at the
// public API level (the geodabsd -snapshot path).
func TestWithShardsSnapshotInterop(t *testing.T) {
	_, w := testWorld()
	src, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if _, err := src.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		dst, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dst.ReadFrom(bytes.NewReader(snap.Bytes())); err != nil {
			t.Fatal(err)
		}
		if dst.Len() != src.Len() {
			t.Fatalf("shards=%d: loaded Len = %d, want %d", shards, dst.Len(), src.Len())
		}
		if dst.Epoch() != src.Epoch() {
			t.Fatalf("shards=%d: loaded Epoch = %d, want %d", shards, dst.Epoch(), src.Epoch())
		}
		q := w.Queries[0]
		want := src.Query(q, 0.99, 10)
		got := dst.Query(q, 0.99, 10)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: loaded %d hits, want %d", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: hit %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
	// ReadIndex (the geodabsd -snapshot loader) accepts v3 too.
	loaded, err := geodabs.ReadIndex(geodabs.DefaultConfig(), bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != src.Len() {
		t.Fatalf("ReadIndex Len = %d, want %d", loaded.Len(), src.Len())
	}
}

func TestWithShardsValidation(t *testing.T) {
	if _, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(-1)); err == nil {
		t.Fatal("WithShards(-1) accepted")
	}
	// Non-power-of-two counts round up.
	ix, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Stats().Shards; got != 4 {
		t.Fatalf("WithShards(3) Stats.Shards = %d, want 4", got)
	}
	strategy := geodabs.ShardStrategy{PrefixBits: 16, Shards: 100, Nodes: 1}
	if _, err := geodabs.NewCluster(geodabs.DefaultConfig(), strategy,
		[]string{"127.0.0.1:0"},
		geodabs.WithShards(2)); err == nil || !strings.Contains(err.Error(), "WithShards") {
		t.Fatalf("NewCluster with WithShards: err = %v, want rejection", err)
	}
}
