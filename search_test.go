package geodabs_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"geodabs"
)

// builtTestIndex indexes the shared test dataset into a fresh geodab
// index. Points are retained so the rerank tests can run against it.
func builtTestIndex(t *testing.T) *geodabs.Index {
	t.Helper()
	_, w := testWorld()
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithPointRetention())
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	return idx
}

// builtTestCluster starts nodes, fronts them with a coordinator and
// indexes the shared test dataset. Points are retained so the rerank
// tests can run against it.
func builtTestCluster(t *testing.T, nodes int) *geodabs.Cluster {
	t.Helper()
	_, w := testWorld()
	var addrs []string
	for i := 0; i < nodes; i++ {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
	}
	cfg := geodabs.DefaultConfig()
	cl, err := geodabs.NewCluster(cfg, geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 1000, Nodes: nodes}, addrs,
		geodabs.WithPointRetention())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	for _, tr := range w.Dataset.Trajectories {
		if err := cl.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

func TestSearchDefaultsMatchUnboundedQuery(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	q := w.Queries[0]
	res, err := idx.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := idx.Query(q, 1, 0)
	if !reflect.DeepEqual(res.Hits, want) {
		t.Errorf("default Search returned %d hits, legacy unbounded Query %d", len(res.Hits), len(want))
	}
	if res.Stats.Candidates < len(res.Hits) || res.Stats.Candidates == 0 {
		t.Errorf("Candidates = %d with %d hits", res.Stats.Candidates, len(res.Hits))
	}
	if res.Stats.Elapsed <= 0 {
		t.Errorf("Elapsed = %v", res.Stats.Elapsed)
	}
	if res.Stats.ShardsTouched != 0 || res.Stats.NodesTouched != 0 {
		t.Errorf("local search reports distributed fan-out: %+v", res.Stats)
	}
}

func TestSearchOptionValidation(t *testing.T) {
	idx := builtTestIndex(t)
	_, w := testWorld()
	q := w.Queries[0]
	ctx := context.Background()
	for name, opts := range map[string][]geodabs.SearchOption{
		"negative distance":  {geodabs.WithMaxDistance(-0.1)},
		"distance above one": {geodabs.WithMaxDistance(1.5)},
		"zero knn":           {geodabs.WithKNN(0)},
		"negative knn":       {geodabs.WithKNN(-3)},
		"negative limit":     {geodabs.WithLimit(-1)},
		"nil rerank":         {geodabs.WithExactRerank(nil)},
		"knn with limit":     {geodabs.WithKNN(5), geodabs.WithLimit(5)},
	} {
		if _, err := idx.Search(ctx, q, opts...); err == nil {
			t.Errorf("%s: Search accepted invalid options", name)
		}
		if _, err := idx.SearchBatch(ctx, w.Queries, 2, opts...); err == nil {
			t.Errorf("%s: SearchBatch accepted invalid options", name)
		}
	}
}

// TestSearchParityWithLegacyQuery is the acceptance gate of the redesign:
// Search with WithMaxDistance+WithLimit returns byte-identical rankings
// to the legacy Query signature, on both Searcher implementations.
func TestSearchParityWithLegacyQuery(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	for _, q := range w.Queries {
		want := idx.Query(q, 0.99, 5)
		res, err := idx.Search(ctx, q, geodabs.WithMaxDistance(0.99), geodabs.WithLimit(5))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Hits, want) {
			t.Fatalf("query %d: index Search = %+v, legacy Query = %+v", q.ID, res.Hits, want)
		}
		clWant, err := cl.Query(q, 0.99, 5)
		if err != nil {
			t.Fatal(err)
		}
		clRes, err := cl.Search(ctx, q, geodabs.WithMaxDistance(0.99), geodabs.WithLimit(5))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(clRes.Hits, clWant) {
			t.Fatalf("query %d: cluster Search = %+v, legacy Query = %+v", q.ID, clRes.Hits, clWant)
		}
		// And the two implementations agree with each other (§IV).
		if !reflect.DeepEqual(res.Hits, clRes.Hits) {
			t.Fatalf("query %d: index and cluster rankings diverge", q.ID)
		}
	}
}

func TestSearchKNNVersusRange(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	ctx := context.Background()
	q := w.Queries[0]
	full, err := idx.Search(ctx, q) // unbounded ranking
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Hits) < 4 {
		t.Skipf("only %d hits; dataset too sparse for the kNN check", len(full.Hits))
	}
	knn, err := idx.Search(ctx, q, geodabs.WithKNN(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(knn.Hits, full.Hits[:3]) {
		t.Errorf("WithKNN(3) is not the 3-prefix of the full ranking")
	}
	// Ranged kNN: the distance bound applies before the k cut.
	ranged, err := idx.Search(ctx, q, geodabs.WithKNN(len(full.Hits)), geodabs.WithMaxDistance(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ranged.Hits {
		if h.Distance > 0.5 {
			t.Errorf("ranged kNN returned hit at distance %.3f", h.Distance)
		}
	}
}

func TestSearchExactRerank(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	ctx := context.Background()
	q := w.Queries[0]
	res, err := idx.Search(ctx, q,
		geodabs.WithMaxDistance(0.99),
		geodabs.WithKNN(5),
		geodabs.WithExactRerank(geodabs.DTW))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("rerank returned nothing")
	}
	for i, h := range res.Hits {
		// DTW distances are meters between city trajectories: well above
		// the Jaccard range unless the hit is a near-duplicate.
		want := geodabs.DTW(q.Points, w.Dataset.ByID(h.ID).Points)
		if h.Distance != want {
			t.Errorf("hit %d: Distance = %v, DTW = %v", i, h.Distance, want)
		}
		if i > 0 && res.Hits[i-1].Distance > h.Distance {
			t.Errorf("rerank order violated at %d", i)
		}
	}
	// The cluster path reranks identically.
	cl := builtTestCluster(t, 2)
	clRes, err := cl.Search(ctx, q,
		geodabs.WithMaxDistance(0.99),
		geodabs.WithKNN(5),
		geodabs.WithExactRerank(geodabs.DTW))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clRes.Hits, res.Hits) {
		t.Errorf("cluster rerank diverges from index rerank")
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	ctx := context.Background()
	opts := []geodabs.SearchOption{geodabs.WithMaxDistance(0.99), geodabs.WithLimit(5)}
	batch, err := idx.SearchBatch(ctx, w.Queries, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(w.Queries) {
		t.Fatalf("batch returned %d results for %d queries", len(batch), len(w.Queries))
	}
	for i, q := range w.Queries {
		single, err := idx.Search(ctx, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Hits, single.Hits) {
			t.Errorf("query %d: batch hits diverge from single search", q.ID)
		}
	}
	cl := builtTestCluster(t, 2)
	clBatch, err := cl.SearchBatch(ctx, w.Queries, 4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Queries {
		if !reflect.DeepEqual(clBatch[i].Hits, batch[i].Hits) {
			t.Errorf("query %d: cluster batch diverges from index batch", w.Queries[i].ID)
		}
	}
}

func TestSearchCancelledContext(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.Search(ctx, w.Queries[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("index Search on cancelled context: %v", err)
	}
	if _, err := idx.SearchBatch(ctx, w.Queries, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("index SearchBatch on cancelled context: %v", err)
	}
	if err := idx.AddAllContext(ctx, w.Dataset, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("AddAllContext on cancelled context: %v", err)
	}
}

// TestClusterSearchCancelledContext is the acceptance criterion: a
// cluster Search with an already-cancelled context returns promptly with
// context.Canceled instead of completing the scatter-gather.
func TestClusterSearchCancelledContext(t *testing.T) {
	_, w := testWorld()
	cl := builtTestCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := cl.Search(ctx, w.Queries[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cluster Search on cancelled context: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled Search took %v, want prompt return", elapsed)
	}
}

func TestIndexSnapshotPublicRoundTrip(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	var buf bytes.Buffer
	if n, err := idx.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo = (%d, %v), buffer has %d bytes", n, err, buf.Len())
	}
	loaded, err := geodabs.ReadIndex(geodabs.DefaultConfig(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("loaded %d trajectories, want %d", loaded.Len(), idx.Len())
	}
	ctx := context.Background()
	for _, q := range w.Queries {
		want, err := idx.Search(ctx, q, geodabs.WithMaxDistance(0.99), geodabs.WithLimit(10))
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(ctx, q, geodabs.WithMaxDistance(0.99), geodabs.WithLimit(10))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Hits, want.Hits) {
			t.Fatalf("query %d: snapshot-loaded ranking diverges", q.ID)
		}
	}
	// Raw points are not part of the snapshot, so exact re-ranking must
	// fail loudly rather than rank on garbage.
	_, err = loaded.Search(ctx, w.Queries[0], geodabs.WithExactRerank(geodabs.DTW))
	if err == nil || !strings.Contains(err.Error(), "rerank") {
		t.Errorf("rerank on snapshot-loaded index: %v, want rerank error", err)
	}
	// A bad snapshot fails cleanly.
	if _, err := geodabs.ReadIndex(geodabs.DefaultConfig(), bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("ReadIndex accepted garbage")
	}
}

func TestDiscardPointsDisablesRerank(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	ctx := context.Background()
	q := w.Queries[0]
	if _, err := idx.Search(ctx, q, geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW)); err != nil {
		t.Fatalf("rerank before DiscardPoints: %v", err)
	}
	idx.DiscardPoints()
	if _, err := idx.Search(ctx, q, geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW)); err == nil || !strings.Contains(err.Error(), "rerank") {
		t.Errorf("rerank after DiscardPoints: %v, want rerank error", err)
	}
	// Fingerprint-ranked searches are unaffected.
	res, err := idx.Search(ctx, q, geodabs.WithKNN(3))
	if err != nil || len(res.Hits) == 0 {
		t.Errorf("plain search after DiscardPoints: %d hits, %v", len(res.Hits), err)
	}
}

func TestClusterDiscardPointsDisablesRerank(t *testing.T) {
	_, w := testWorld()
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	q := w.Queries[0]
	if _, err := cl.Search(ctx, q, geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW)); err != nil {
		t.Fatalf("rerank before DiscardPoints: %v", err)
	}
	cl.DiscardPoints()
	if _, err := cl.Search(ctx, q, geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW)); err == nil || !strings.Contains(err.Error(), "rerank") {
		t.Errorf("rerank after DiscardPoints: %v, want rerank error", err)
	}
	res, err := cl.Search(ctx, q, geodabs.WithKNN(3))
	if err != nil || len(res.Hits) == 0 {
		t.Errorf("plain search after DiscardPoints: %d hits, %v", len(res.Hits), err)
	}
}
