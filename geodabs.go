// Package geodabs implements trajectory indexing by fingerprinting, a Go
// reproduction of Chapuis & Garbinato, "Geodabs: Trajectory Indexing Meets
// Fingerprinting at Scale" (ICDCS 2018).
//
// A geodab is a 32-bit fingerprint of a k-gram of trajectory points whose
// prefix is a geohash (spatial locality: sharding, few shards per query)
// and whose suffix is an order-sensitive hash (discrimination: path and
// direction). Trajectories are normalized onto a geohash grid, fingerprinted
// with the winnowing algorithm, and indexed in an inverted index whose
// posting lists are roaring bitmaps; queries are ranked by Jaccard
// distance.
//
// # Quick start
//
//	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
//	if err != nil { ... }
//	idx.Add(&geodabs.Trajectory{ID: 1, Points: points})
//	results := idx.Query(&geodabs.Trajectory{Points: query}, 0.9, 10)
//
// The subpackages under internal implement the substrates (geohash,
// roaring bitmaps, road networks, map matching, the synthetic dataset
// generator, the distributed index); this package is the stable public
// surface.
package geodabs

import (
	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/distance"
	"geodabs/internal/gen"
	"geodabs/internal/geo"
	"geodabs/internal/index"
	"geodabs/internal/motif"
	"geodabs/internal/normalize"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// Core model types, aliased from the internal packages so their methods
// are available on the public names.
type (
	// Point is a latitude/longitude position in degrees.
	Point = geo.Point
	// Trajectory is a sequence of points with its identifiers.
	Trajectory = trajectory.Trajectory
	// ID identifies a trajectory within a dataset.
	ID = trajectory.ID
	// Dataset is an ordered collection of trajectories.
	Dataset = trajectory.Dataset
	// Direction tells which way a trajectory travels along its route.
	Direction = trajectory.Direction
	// Config parameterizes fingerprinting (k, t, grid depth, prefix bits).
	Config = core.Config
	// Fingerprint is the winnowed geodab sequence and set of a trajectory.
	Fingerprint = core.Fingerprint
	// Result is one ranked retrieval hit.
	Result = index.Result
	// MotifMatch is a discovered pair of similar sub-trajectories.
	MotifMatch = motif.Match
	// RoadNetwork is a routable road graph (the map-matching substrate).
	RoadNetwork = roadnet.Graph
)

// Directions of travel along a route.
const (
	Forward = trajectory.Forward
	Reverse = trajectory.Reverse
)

// DefaultConfig returns the configuration the paper's evaluation settled
// on: 36-bit normalization grid, k = 6, t = 12, 16-bit shard prefixes.
func DefaultConfig() Config { return core.DefaultConfig() }

// Index is an inverted trajectory index with Jaccard-ranked retrieval.
// Create one with NewIndex (geodab fingerprints, the paper's method) or
// NewGeohashIndex (bare geohash cells, the baseline of Figs 12-14).
// Index is safe for concurrent use.
type Index struct {
	inv *index.Inverted
}

// NewIndex returns an empty geodab index.
func NewIndex(cfg Config) (*Index, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	return &Index{inv: index.NewInverted(index.GeodabExtractor{Fingerprinter: f})}, nil
}

// NewGeohashIndex returns an empty baseline index whose terms are the
// geohash cells a trajectory traverses, with no ordering information.
func NewGeohashIndex(cfg Config) (*Index, error) {
	ex, err := index.NewCellExtractor(cfg)
	if err != nil {
		return nil, err
	}
	return &Index{inv: index.NewInverted(ex)}, nil
}

// Add fingerprints and indexes a trajectory. IDs must be unique.
func (ix *Index) Add(t *Trajectory) error { return ix.inv.Add(t) }

// AddAll indexes a whole dataset, fingerprinting on the given number of
// parallel workers.
func (ix *Index) AddAll(d *Dataset, workers int) error { return ix.inv.AddAll(d, workers) }

// Query returns the indexed trajectories within Jaccard distance
// maxDistance of q, most similar first, truncated to limit (≤ 0 for no
// limit).
func (ix *Index) Query(q *Trajectory, maxDistance float64, limit int) []Result {
	return ix.inv.Query(q, maxDistance, limit)
}

// Len returns the number of indexed trajectories.
func (ix *Index) Len() int { return ix.inv.Len() }

// Stats summarizes the index composition.
func (ix *Index) Stats() index.Stats { return ix.inv.Stats() }

// FingerprintTrajectory runs the geodab pipeline on a point sequence:
// normalization, k-grams, geodab construction and winnowing.
func FingerprintTrajectory(cfg Config, points []Point) (*Fingerprint, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	return f.Fingerprint(points), nil
}

// Distances between trajectories (paper §VI-B). DTW and DFD are the
// polynomial-cost measures geodabs replace; JaccardDistance is the
// fingerprint-set distance used for ranking. LCSS and EDR are the classic
// edit-style measures, provided for completeness.
var (
	// DTW is the dynamic time-warping distance in meters.
	DTW = distance.DTW
	// DFD is the discrete Fréchet distance in meters.
	DFD = distance.DFD
	// LCSSDistance is the normalized longest-common-subsequence distance
	// with a matching radius in meters.
	LCSSDistance = distance.LCSSDistance
	// EDR is the edit distance on real sequences with a matching radius
	// in meters.
	EDR = distance.EDR
	// Haversine is the great-circle ground distance in meters.
	Haversine = geo.Haversine
	// Simplify reduces a polyline with Douglas-Peucker at a tolerance in
	// meters.
	Simplify = geo.Simplify
)

// JaccardDistance returns dJ = 1 − |F∩G| / |F∪G| between two fingerprint
// sets.
func JaccardDistance(a, b *Fingerprint) float64 {
	return bitmap.JaccardDistance(a.Set, b.Set)
}

// FindMotif discovers the most similar pair of sub-trajectories of the
// given ground length (meters) between a and b using geodab fingerprints
// (approximate, near-linear cost).
func FindMotif(cfg Config, a, b []Point, lengthMeters float64) (MotifMatch, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return MotifMatch{}, err
	}
	return motif.FindGeodab(f, a, b, lengthMeters)
}

// FindMotifExact discovers the minimum discrete-Fréchet pair of length-l
// (points) sub-trajectories, the BTM-style exact baseline with O(n²·l²)
// worst-case cost.
func FindMotifExact(a, b []Point, l int) (MotifMatch, error) {
	return motif.FindBTM(a, b, l)
}

// GenerateCity builds a synthetic city road network comparable to the
// paper's London extract. See roadnet.CityConfig for parameters.
var GenerateCity = roadnet.GenerateCity

// CityConfig parameterizes GenerateCity.
type CityConfig = roadnet.CityConfig

// GenerateDataset builds the paper's synthetic dense trajectory dataset on
// a road network: routes × trajectories per direction, 1 Hz samples,
// Gaussian noise, held-out queries with ground truth.
var GenerateDataset = gen.Generate

// DatasetConfig parameterizes GenerateDataset.
type DatasetConfig = gen.Config

// DatasetOutput is what GenerateDataset returns: the dataset, the held-out
// queries and the ground truth relevance sets.
type DatasetOutput = gen.Output

// DefaultDatasetConfig is a laptop-scale dataset: 500 routes × 20
// trajectories.
func DefaultDatasetConfig() DatasetConfig { return gen.DefaultConfig() }

// Resample re-samples a trajectory's path at a constant spacing in meters,
// normalizing away differing recorder rates before fingerprinting.
var Resample = trajectory.Resample

// WriteGeoJSON and ReadGeoJSON convert datasets to/from a GeoJSON
// FeatureCollection of LineStrings (RFC 7946), for GIS interop.
var (
	WriteGeoJSON = trajectory.WriteGeoJSON
	ReadGeoJSON  = trajectory.ReadGeoJSON
)

// MapMatch normalizes a trajectory onto a road network with an HMM decoded
// by Viterbi (Newson & Krumm), the paper's §V-B normalization. It returns
// the matched node positions.
func MapMatch(g *RoadNetwork, points []Point) ([]Point, error) {
	return normalize.NewMapMatcher(g).Normalize(points)
}

// GridNormalize snaps a trajectory to geohash cell centers at the given
// depth, the paper's §V-A normalization (0 uses the default 36 bits).
func GridNormalize(depth uint8, points []Point) ([]Point, error) {
	return normalize.Grid{Depth: depth}.Normalize(points)
}
