// Package geodabs implements trajectory indexing by fingerprinting, a Go
// reproduction of Chapuis & Garbinato, "Geodabs: Trajectory Indexing Meets
// Fingerprinting at Scale" (ICDCS 2018).
//
// A geodab is a 32-bit fingerprint of a k-gram of trajectory points whose
// prefix is a geohash (spatial locality: sharding, few shards per query)
// and whose suffix is an order-sensitive hash (discrimination: path and
// direction). Trajectories are normalized onto a geohash grid, fingerprinted
// with the winnowing algorithm, and indexed in an inverted index whose
// posting lists are roaring bitmaps; queries are ranked by Jaccard
// distance.
//
// # Quick start
//
// Retrieval goes through the Searcher interface, implemented by both the
// local *Index and the distributed *Cluster — one query model, identical
// results (§IV):
//
//	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
//	if err != nil { ... }
//	idx.Add(&geodabs.Trajectory{ID: 1, Points: points})
//	res, err := idx.Search(ctx, &geodabs.Trajectory{Points: query},
//		geodabs.WithMaxDistance(0.9), // range semantics: Jaccard distance ≤ 0.9
//		geodabs.WithLimit(10))        // or geodabs.WithKNN(10) for the 10 nearest
//	if err != nil { ... }
//	for _, hit := range res.Hits { ... }
//
// Search honors ctx cancellation and deadlines (a cluster scatter-gather
// aborts promptly), reports execution statistics in res.Stats, and can
// refine the fingerprint ranking with an exact distance
// (geodabs.WithExactRerank(geodabs.DTW), the paper's §VI-C step — the
// engine must be constructed with geodabs.WithPointRetention).
// SearchBatch fans a query batch out over a worker pool.
//
// # Prepared queries
//
// Query preparation — fingerprint extraction, and sharding on a Cluster —
// dominates per-query cost. A first-class *Query value pays it once per
// query lifetime instead of once per call:
//
//	q := geodabs.NewQuery(points) // lazy; or Fingerprinter.Prepare(points) eagerly
//	for range ticker.C {          // every repeat reuses the cached extraction
//		res, err := idx.SearchQuery(ctx, q, geodabs.WithKNN(10))
//		...
//	}
//
// SearchQueryBatch runs a prepared batch over a worker pool, and
// Cluster.AnalyzeQuery reports a prepared query's fan-out; on a Cluster,
// the query also caches its per-shard term partition, so repeated
// scatter-gathers skip re-sharding too. Clients that never hold raw GPS
// traces can ship compact fingerprints instead and search with
// geodabs.QueryFromFingerprint(fp) — fingerprint-only queries support
// everything except WithExactRerank, which needs the raw points and
// fails with a pointed error. Search(ctx, t, ...) is exactly
// SearchQuery(ctx, NewQuery(t.Points), ...): both paths return
// byte-identical results.
//
// Writes go through the Mutator interface, the mutation-side mirror of
// Searcher, implemented by both engines: Upsert replaces a trajectory in
// place, Delete and DeleteAll reclaim postings, and every mutation is
// atomic with respect to searches — on a Cluster, reads are
// snapshot-isolated by mutation epochs, so a search never observes a
// half-applied write. For repeated fingerprinting outside an index,
// construct one Fingerprinter and reuse it. Indexes persist with
// Index.WriteTo and load with ReadIndex.
//
// The subpackages under internal implement the substrates (geohash,
// roaring bitmaps, road networks, map matching, the synthetic dataset
// generator, the distributed index); this package is the stable public
// surface.
package geodabs

import (
	"context"
	"io"
	"runtime"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/distance"
	"geodabs/internal/gen"
	"geodabs/internal/geo"
	"geodabs/internal/index"
	"geodabs/internal/motif"
	"geodabs/internal/normalize"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// Core model types, aliased from the internal packages so their methods
// are available on the public names.
type (
	// Point is a latitude/longitude position in degrees.
	Point = geo.Point
	// Trajectory is a sequence of points with its identifiers.
	Trajectory = trajectory.Trajectory
	// ID identifies a trajectory within a dataset.
	ID = trajectory.ID
	// Dataset is an ordered collection of trajectories.
	Dataset = trajectory.Dataset
	// Direction tells which way a trajectory travels along its route.
	Direction = trajectory.Direction
	// Config parameterizes fingerprinting (k, t, grid depth, prefix bits).
	Config = core.Config
	// Fingerprint is the winnowed geodab sequence and set of a trajectory.
	Fingerprint = core.Fingerprint
	// Result is one ranked retrieval hit.
	Result = index.Result
	// MotifMatch is a discovered pair of similar sub-trajectories.
	MotifMatch = motif.Match
	// RoadNetwork is a routable road graph (the map-matching substrate).
	RoadNetwork = roadnet.Graph
)

// Directions of travel along a route.
const (
	Forward = trajectory.Forward
	Reverse = trajectory.Reverse
)

// DefaultConfig returns the configuration the paper's evaluation settled
// on: 36-bit normalization grid, k = 6, t = 12, 16-bit shard prefixes.
func DefaultConfig() Config { return core.DefaultConfig() }

// Index is an inverted trajectory index with Jaccard-ranked retrieval
// and in-place mutation (see Mutator). Create one with NewIndex (geodab
// fingerprints, the paper's method) or NewGeohashIndex (bare geohash
// cells, the baseline of Figs 12-14). Index is safe for concurrent use:
// mutations and searches interleave without a search ever observing a
// half-applied write.
//
// When constructed with WithPointRetention, Add, AddAll and Upsert also
// retain each trajectory's raw point slice (a header sharing the
// caller's backing array, not a copy) so searches can refine candidates
// with WithExactRerank. Retention is off by default — rerank-free
// workloads no longer pay the pinned point memory.
//
// With WithShards(n), the index is split into n in-process shards (own
// locks, own posting lists) whose searches fan out in parallel and whose
// mutations stop contending — rankings stay byte-identical to the
// unsharded engine. The default WithShards(0) sizes the shard count from
// GOMAXPROCS, so a single-core process keeps the unsharded engine.
type Index struct {
	eng index.Engine
}

// NewIndex returns an empty geodab index.
func NewIndex(cfg Config, opts ...Option) (*Index, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	return newIndex(index.GeodabExtractor{Fingerprinter: f}, opts)
}

// NewGeohashIndex returns an empty baseline index whose terms are the
// geohash cells a trajectory traverses, with no ordering information.
func NewGeohashIndex(cfg Config, opts ...Option) (*Index, error) {
	ex, err := index.NewCellExtractor(cfg)
	if err != nil {
		return nil, err
	}
	return newIndex(ex, opts)
}

// newIndex resolves construction options around an extractor.
func newIndex(ex index.Extractor, opts []Option) (*Index, error) {
	o, err := newEngineOptions(opts)
	if err != nil {
		return nil, err
	}
	if err := o.localOnly(); err != nil {
		return nil, err
	}
	var invOpts []index.InvertedOption
	if o.retainPoints {
		invOpts = append(invOpts, index.RetainPoints())
	}
	shards := o.shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards == 1 {
		// One shard is exactly the unsharded engine; keep it, so single-core
		// processes also keep the v2 snapshot format.
		return &Index{eng: index.NewInverted(ex, invOpts...)}, nil
	}
	return &Index{eng: index.NewSharded(ex, shards, invOpts...)}, nil
}

// Add fingerprints and indexes a trajectory. IDs must be unique; use
// Upsert to replace an indexed trajectory in place.
func (ix *Index) Add(t *Trajectory) error { return ix.eng.Add(t) }

// AddAll indexes a whole dataset, fingerprinting on the given number of
// parallel workers. It fails fast — the first error stops job dispatch —
// and is all-or-nothing: on failure the trajectories this call inserted
// are removed again, so the same dataset can be retried after fixing the
// cause.
func (ix *Index) AddAll(d *Dataset, workers int) error {
	return ix.eng.AddAll(context.Background(), d, workers)
}

// AddAllContext is AddAll honoring cancellation and deadlines: a
// cancelled ctx stops dispatching fingerprint jobs, rolls back this
// call's insertions, and returns the context's error.
func (ix *Index) AddAllContext(ctx context.Context, d *Dataset, workers int) error {
	return ix.eng.AddAll(ctx, d, workers)
}

// Query returns the indexed trajectories within Jaccard distance
// maxDistance of q, most similar first, truncated to limit (≤ 0 for no
// limit).
//
// Deprecated: use Search, which takes a context, functional options, and
// returns execution statistics. For limit ≥ 0 and maxDistance in [0, 1],
// Query is equivalent to
//
//	Search(context.Background(), q, WithMaxDistance(maxDistance), WithLimit(limit))
//
// Query's negative-limit "no limit" form maps to WithLimit(0) or to
// omitting WithLimit; a legacy maxDistance above 1 (a no-op filter,
// since Jaccard distances never exceed 1) maps to WithMaxDistance(1) or
// to omitting WithMaxDistance.
func (ix *Index) Query(q *Trajectory, maxDistance float64, limit int) []Result {
	return ix.eng.Query(q, maxDistance, limit)
}

// DiscardPoints releases the raw point sequences retained for exact
// re-ranking, shrinking the index to its fingerprint bitmaps. After the
// call, WithExactRerank fails for the trajectories indexed so far (as on
// a snapshot-loaded index); fingerprint-ranked searches are unaffected.
//
// Deprecated: retention is now opt-in at construction — an index built
// without WithPointRetention never pins point memory, making the
// all-or-nothing release unnecessary. DiscardPoints remains for
// retaining indexes that want to drop their points mid-lifetime.
func (ix *Index) DiscardPoints() { ix.eng.DiscardPoints() }

// Len returns the number of indexed trajectories.
func (ix *Index) Len() int { return ix.eng.Len() }

// Stats summarizes the index composition.
func (ix *Index) Stats() index.Stats { return ix.eng.Stats() }

// WriteTo snapshots the index's fingerprint sets (raw points are not part
// of the snapshot). It implements io.WriterTo. Load snapshots with
// ReadIndex (or ReadFrom on an index built with the same configuration).
func (ix *Index) WriteTo(w io.Writer) (int64, error) { return ix.eng.WriteTo(w) }

// ReadFrom loads a snapshot written by WriteTo into the receiver,
// replacing its contents. The receiver must have been constructed with
// the same configuration (and index flavor) that built the snapshot —
// the snapshot stores fingerprints, not the fingerprinting parameters.
// It implements io.ReaderFrom.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) { return ix.eng.ReadFrom(r) }

// ReadIndex loads a geodab index snapshot written by Index.WriteTo. The
// configuration must be the one the snapshot was built with. A loaded
// index serves fingerprint-ranked searches but cannot exactly re-rank
// (WithExactRerank), since raw points are not part of the snapshot.
func ReadIndex(cfg Config, r io.Reader) (*Index, error) {
	ix, err := NewIndex(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := ix.ReadFrom(r); err != nil {
		return nil, err
	}
	return ix, nil
}

// Fingerprinter is a reusable handle on the geodab pipeline:
// normalization, k-grams, geodab construction and winnowing. Construct
// one with NewFingerprinter and reuse it — it is immutable and safe for
// concurrent use, and reuse avoids rebuilding the pipeline per call.
type Fingerprinter struct {
	core *core.Fingerprinter
}

// NewFingerprinter validates cfg and returns a reusable Fingerprinter.
func NewFingerprinter(cfg Config) (*Fingerprinter, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	return &Fingerprinter{core: f}, nil
}

// Config returns the configuration the fingerprinter was built with.
func (f *Fingerprinter) Config() Config { return f.core.Config() }

// Fingerprint runs the geodab pipeline on a point sequence.
func (f *Fingerprinter) Fingerprint(points []Point) *Fingerprint {
	return f.core.Fingerprint(points)
}

// Prepare eagerly builds a reusable *Query from a point sequence: the
// geodab term set is extracted now, under this Fingerprinter's
// configuration, so the first search against an engine sharing that
// configuration already skips extraction — unlike NewQuery, which defers
// it to first use. Preparation uses the set-only fast path (no positional
// metadata is computed), making this the cheapest way to stage a query
// batch off the search path.
func (f *Fingerprinter) Prepare(points []Point) *Query {
	q := NewQuery(points)
	// The key is derived through keyOf on the same extractor type the
	// engines wrap, so an eagerly prepared query always matches the
	// engine-side cache key.
	key, _ := keyOf(index.GeodabExtractor{Fingerprinter: f.core})
	q.bind(key, f.core.FingerprintSet(points))
	return q
}

// Motif discovers the most similar pair of sub-trajectories of the given
// ground length (meters) between a and b using geodab fingerprints
// (approximate, near-linear cost) — the paper's second problem (§II-B2).
func (f *Fingerprinter) Motif(a, b []Point, lengthMeters float64) (MotifMatch, error) {
	return motif.FindGeodab(f.core, a, b, lengthMeters)
}

// FingerprintTrajectory runs the geodab pipeline on a point sequence.
//
// Deprecated: construct a Fingerprinter once with NewFingerprinter and
// call its Fingerprint method; this wrapper rebuilds the pipeline on
// every call.
func FingerprintTrajectory(cfg Config, points []Point) (*Fingerprint, error) {
	f, err := NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	return f.Fingerprint(points), nil
}

// Distances between trajectories (paper §VI-B). DTW and DFD are the
// polynomial-cost measures geodabs replace; JaccardDistance is the
// fingerprint-set distance used for ranking. LCSS and EDR are the classic
// edit-style measures, provided for completeness.
var (
	// DTW is the dynamic time-warping distance in meters.
	DTW = distance.DTW
	// DFD is the discrete Fréchet distance in meters.
	DFD = distance.DFD
	// LCSSDistance is the normalized longest-common-subsequence distance
	// with a matching radius in meters.
	LCSSDistance = distance.LCSSDistance
	// EDR is the edit distance on real sequences with a matching radius
	// in meters.
	EDR = distance.EDR
	// Haversine is the great-circle ground distance in meters.
	Haversine = geo.Haversine
	// Simplify reduces a polyline with Douglas-Peucker at a tolerance in
	// meters.
	Simplify = geo.Simplify
)

// JaccardDistance returns dJ = 1 − |F∩G| / |F∪G| between two fingerprint
// sets.
func JaccardDistance(a, b *Fingerprint) float64 {
	return bitmap.JaccardDistance(a.Set, b.Set)
}

// FindMotif discovers the most similar pair of sub-trajectories of the
// given ground length (meters) between a and b using geodab fingerprints
// (approximate, near-linear cost).
//
// Deprecated: construct a Fingerprinter once with NewFingerprinter and
// call its Motif method; this wrapper rebuilds the pipeline on every
// call.
func FindMotif(cfg Config, a, b []Point, lengthMeters float64) (MotifMatch, error) {
	f, err := NewFingerprinter(cfg)
	if err != nil {
		return MotifMatch{}, err
	}
	return f.Motif(a, b, lengthMeters)
}

// FindMotifExact discovers the minimum discrete-Fréchet pair of length-l
// (points) sub-trajectories, the BTM-style exact baseline with O(n²·l²)
// worst-case cost.
func FindMotifExact(a, b []Point, l int) (MotifMatch, error) {
	return motif.FindBTM(a, b, l)
}

// GenerateCity builds a synthetic city road network comparable to the
// paper's London extract. See roadnet.CityConfig for parameters.
var GenerateCity = roadnet.GenerateCity

// CityConfig parameterizes GenerateCity.
type CityConfig = roadnet.CityConfig

// GenerateDataset builds the paper's synthetic dense trajectory dataset on
// a road network: routes × trajectories per direction, 1 Hz samples,
// Gaussian noise, held-out queries with ground truth.
var GenerateDataset = gen.Generate

// DatasetConfig parameterizes GenerateDataset.
type DatasetConfig = gen.Config

// DatasetOutput is what GenerateDataset returns: the dataset, the held-out
// queries and the ground truth relevance sets.
type DatasetOutput = gen.Output

// DefaultDatasetConfig is a laptop-scale dataset: 500 routes × 20
// trajectories.
func DefaultDatasetConfig() DatasetConfig { return gen.DefaultConfig() }

// Resample re-samples a trajectory's path at a constant spacing in meters,
// normalizing away differing recorder rates before fingerprinting.
var Resample = trajectory.Resample

// WriteGeoJSON and ReadGeoJSON convert datasets to/from a GeoJSON
// FeatureCollection of LineStrings (RFC 7946), for GIS interop.
var (
	WriteGeoJSON = trajectory.WriteGeoJSON
	ReadGeoJSON  = trajectory.ReadGeoJSON
)

// MapMatch normalizes a trajectory onto a road network with an HMM decoded
// by Viterbi (Newson & Krumm), the paper's §V-B normalization. It returns
// the matched node positions.
func MapMatch(g *RoadNetwork, points []Point) ([]Point, error) {
	return normalize.NewMapMatcher(g).Normalize(points)
}

// GridNormalize snaps a trajectory to geohash cell centers at the given
// depth, the paper's §V-A normalization (0 uses the default 36 bits).
func GridNormalize(depth uint8, points []Point) ([]Point, error) {
	return normalize.Grid{Depth: depth}.Normalize(points)
}
