package geodabs_test

import (
	"math"
	"sync"
	"testing"

	"geodabs"
)

// testWorld caches a small city + dataset for the public API tests.
var testWorld = sync.OnceValues(func() (g *geodabs.RoadNetwork, out *genOutput) {
	city, err := geodabs.GenerateCity(geodabs.CityConfig{RadiusMeters: 3000, Seed: 33})
	if err != nil {
		panic(err)
	}
	cfg := geodabs.DefaultDatasetConfig()
	cfg.Routes = 8
	cfg.TrajectoriesPerDirection = 4
	cfg.MinRouteMeters = 2000
	o, err := geodabs.GenerateDataset(city, cfg)
	if err != nil {
		panic(err)
	}
	return city, &genOutput{o.Dataset, o.Queries, o.Relevant}
})

type genOutput struct {
	Dataset  *geodabs.Dataset
	Queries  []*geodabs.Trajectory
	Relevant map[geodabs.ID][]geodabs.ID
}

func TestPublicIndexRoundTrip(t *testing.T) {
	_, w := testWorld()
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	if idx.Len() != w.Dataset.Len() {
		t.Fatalf("Len = %d, want %d", idx.Len(), w.Dataset.Len())
	}
	q := w.Queries[0]
	results := idx.Query(q, 0.99, 10)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	// The top hit shares the query's route and direction.
	top := w.Dataset.ByID(results[0].ID)
	if top.Route != q.Route || top.Dir != q.Dir {
		t.Errorf("top result from route %d/%v, query route %d/%v", top.Route, top.Dir, q.Route, q.Dir)
	}
	stats := idx.Stats()
	if stats.Trajectories != idx.Len() || stats.Terms == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPublicGeohashBaseline(t *testing.T) {
	_, w := testWorld()
	base, err := geodabs.NewGeohashIndex(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	if got := base.Query(w.Queries[0], 0.99, 5); len(got) == 0 {
		t.Error("baseline returned nothing")
	}
}

func TestPublicConfigValidation(t *testing.T) {
	if _, err := geodabs.NewIndex(geodabs.Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
	if _, err := geodabs.NewGeohashIndex(geodabs.Config{}); err == nil {
		t.Error("zero config should be rejected")
	}
	if _, err := geodabs.FingerprintTrajectory(geodabs.Config{}, nil); err == nil {
		t.Error("zero config should be rejected")
	}
}

func TestPublicFingerprintAndJaccard(t *testing.T) {
	_, w := testWorld()
	cfg := geodabs.DefaultConfig()
	a, err := geodabs.FingerprintTrajectory(cfg, w.Dataset.Trajectories[0].Points)
	if err != nil {
		t.Fatal(err)
	}
	b, err := geodabs.FingerprintTrajectory(cfg, w.Dataset.Trajectories[1].Points)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Geodabs) == 0 {
		t.Fatal("no fingerprints")
	}
	d := geodabs.JaccardDistance(a, b)
	if d < 0 || d > 1 {
		t.Errorf("Jaccard distance = %v", d)
	}
	if self := geodabs.JaccardDistance(a, a); self != 0 {
		t.Errorf("self distance = %v", self)
	}
}

func TestPublicDistances(t *testing.T) {
	_, w := testWorld()
	p := w.Dataset.Trajectories[0].Points
	q := w.Dataset.Trajectories[1].Points
	if d := geodabs.DTW(p, q); d <= 0 || math.IsInf(d, 1) {
		t.Errorf("DTW = %v", d)
	}
	if d := geodabs.DFD(p, q); d <= 0 || math.IsInf(d, 1) {
		t.Errorf("DFD = %v", d)
	}
	if d := geodabs.Haversine(p[0], p[1]); d <= 0 {
		t.Errorf("Haversine = %v", d)
	}
}

func TestPublicMotifs(t *testing.T) {
	_, w := testWorld()
	// Two trajectories of the same route share (almost) everything.
	a := w.Dataset.Trajectories[0]
	b := w.Dataset.Trajectories[1]
	m, err := geodabs.FindMotif(geodabs.DefaultConfig(), a.Points, b.Points, 800)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance > 0.9 {
		t.Errorf("same-route motif distance = %.3f", m.Distance)
	}
	exact, err := geodabs.FindMotifExact(a.Points[:80], b.Points[:80], 20)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Distance > 100 {
		t.Errorf("exact motif distance = %.1f m", exact.Distance)
	}
}

func TestPublicNormalization(t *testing.T) {
	city, w := testWorld()
	pts := w.Dataset.Trajectories[0].Points
	grid, err := geodabs.GridNormalize(36, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) == 0 || len(grid) >= len(pts) {
		t.Errorf("grid normalization: %d → %d points", len(pts), len(grid))
	}
	matched, err := geodabs.MapMatch(city, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(matched) == 0 {
		t.Error("map matching returned nothing")
	}
}

func TestPublicCluster(t *testing.T) {
	_, w := testWorld()
	var addrs []string
	for i := 0; i < 2; i++ {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		addrs = append(addrs, n.Addr())
	}
	cfg := geodabs.DefaultConfig()
	cl, err := geodabs.NewCluster(cfg, geodabs.ShardStrategy{PrefixBits: 16, Shards: 1000, Nodes: 2}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, tr := range w.Dataset.Trajectories {
		if err := cl.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Cluster results match the local index exactly.
	local, err := geodabs.NewIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	q := w.Queries[0]
	want := local.Query(q, 0.99, 0)
	got, err := cl.Query(q, 0.99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cluster %d results, local %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
