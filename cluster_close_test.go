package geodabs_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"geodabs"
)

// TestClusterCloseHardening covers the close lifecycle the server drain
// path exercises: Close is idempotent, concurrent in-flight searches
// race it without panic or hang, and every post-close operation returns
// the ErrClosed sentinel instead of wedging.
func TestClusterCloseHardening(t *testing.T) {
	_, w := testWorld()
	var addrs []string
	for i := 0; i < 2; i++ {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		addrs = append(addrs, n.Addr())
	}
	cfg := geodabs.DefaultConfig()
	cl, err := geodabs.NewCluster(cfg, geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 1000, Nodes: 2}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range w.Dataset.Trajectories {
		if err := cl.Add(tr); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer searches from several goroutines while Close lands in the
	// middle. Racing calls may finish, fail with ErrClosed, or fail with
	// the transport error of a connection cut mid-RPC — anything but a
	// panic or a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := geodabs.NewQuery(w.Queries[g%len(w.Queries)].Points)
			for i := 0; i < 50; i++ {
				if _, err := cl.SearchQuery(ctx, q, geodabs.WithLimit(5)); err != nil {
					return // closed underneath us, expected
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	if err := cl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	// Idempotent: a second (and concurrent) Close is a nil no-op.
	var closeWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		closeWG.Add(1)
		go func() {
			defer closeWG.Done()
			if err := cl.Close(); err != nil {
				t.Errorf("repeat Close: %v", err)
			}
		}()
	}
	closeWG.Wait()

	// Every post-close operation fails fast with the public sentinel.
	q := geodabs.NewQuery(w.Queries[0].Points)
	if _, err := cl.SearchQuery(ctx, q); !errors.Is(err, geodabs.ErrClosed) {
		t.Errorf("post-close SearchQuery: got %v, want ErrClosed", err)
	}
	if _, err := cl.Search(ctx, w.Queries[0]); !errors.Is(err, geodabs.ErrClosed) {
		t.Errorf("post-close Search: got %v, want ErrClosed", err)
	}
	if err := cl.Add(w.Dataset.Trajectories[0]); !errors.Is(err, geodabs.ErrClosed) {
		t.Errorf("post-close Add: got %v, want ErrClosed", err)
	}
	if err := cl.Upsert(ctx, w.Dataset.Trajectories[0]); !errors.Is(err, geodabs.ErrClosed) {
		t.Errorf("post-close Upsert: got %v, want ErrClosed", err)
	}
	if err := cl.Delete(ctx, w.Dataset.Trajectories[0].ID); !errors.Is(err, geodabs.ErrClosed) {
		t.Errorf("post-close Delete: got %v, want ErrClosed", err)
	}
	if _, err := cl.DeleteAll(ctx, []geodabs.ID{1, 2}, 2); !errors.Is(err, geodabs.ErrClosed) {
		t.Errorf("post-close DeleteAll: got %v, want ErrClosed", err)
	}
	if _, err := cl.StatsContext(ctx); !errors.Is(err, geodabs.ErrClosed) {
		t.Errorf("post-close Stats: got %v, want ErrClosed", err)
	}
}

// TestShardNodeCloseIdempotent: node shutdown is safe to repeat.
func TestShardNodeCloseIdempotent(t *testing.T) {
	n, err := geodabs.StartShardNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
