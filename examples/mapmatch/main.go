// Mapmatch: normalize a noisy GPS trace onto the road network with the
// HMM/Viterbi map matcher — the paper's heavyweight normalization (§V-B) —
// and compare it with the lightweight geohash-grid normalization (§V-A).
//
// Run with:
//
//	go run ./examples/mapmatch
package main

import (
	"fmt"
	"log"
	"math"

	"geodabs"
)

func main() {
	log.SetFlags(0)

	city, err := geodabs.GenerateCity(geodabs.CityConfig{RadiusMeters: 3000, Seed: 19})
	if err != nil {
		log.Fatalf("generate city: %v", err)
	}
	dcfg := geodabs.DefaultDatasetConfig()
	dcfg.Routes = 1
	dcfg.TrajectoriesPerDirection = 1
	dcfg.QueriesPerRoute = 0
	data, err := geodabs.GenerateDataset(city, dcfg)
	if err != nil {
		log.Fatalf("generate trajectory: %v", err)
	}
	raw := data.Dataset.Trajectories[0]
	fmt.Printf("raw trace: %d points, %.0f m, 20 m GPS noise\n",
		raw.Len(), raw.GroundLength())

	// Lightweight: snap to the 36-bit geohash grid.
	grid, err := geodabs.GridNormalize(36, raw.Points)
	if err != nil {
		log.Fatalf("grid normalize: %v", err)
	}
	fmt.Printf("grid-normalized: %d cells (%.1f%% of the raw points)\n",
		len(grid), 100*float64(len(grid))/float64(raw.Len()))

	// Heavyweight: HMM map matching onto the road network.
	matched, err := geodabs.MapMatch(city, raw.Points)
	if err != nil {
		log.Fatalf("map match: %v", err)
	}
	fmt.Printf("map-matched: %d road nodes\n", len(matched))

	// How well did matching reconstruct the true path? Every matched node
	// should be near the noise-free trajectory.
	clean := cleanReference(city, raw)
	var worst, sum float64
	for _, p := range matched {
		best := math.Inf(1)
		for _, c := range clean {
			if d := geodabs.Haversine(p, c); d < best {
				best = d
			}
		}
		sum += best
		if best > worst {
			worst = best
		}
	}
	fmt.Printf("matched-node error vs true path: mean %.1f m, max %.1f m\n",
		sum/float64(len(matched)), worst)
	fmt.Println("\n(the matcher recovers the road path from 20 m-noise GPS)")
}

// cleanReference regenerates the same trajectory without noise.
func cleanReference(city *geodabs.RoadNetwork, raw *geodabs.Trajectory) []geodabs.Point {
	dcfg := geodabs.DefaultDatasetConfig()
	dcfg.Routes = 1
	dcfg.TrajectoriesPerDirection = 1
	dcfg.QueriesPerRoute = 0
	dcfg.NoiseMeters = 0
	data, err := geodabs.GenerateDataset(city, dcfg)
	if err != nil {
		log.Fatalf("generate clean reference: %v", err)
	}
	return data.Dataset.Trajectories[0].Points
}
