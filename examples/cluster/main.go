// Cluster: run the distributed geodab index — shard nodes on TCP, a
// coordinator that routes postings along the space-filling curve and
// scatter-gathers ranked queries (paper §III-A4 and §VI-E).
//
// The dataset spans six metropolitan areas on three continents: sharding
// on the geohash prefix spreads the cities over the cluster (balance)
// while each query still fans out to a single node (locality), the
// trade-off of the paper's Figure 16. The finale pushes an exact DTW
// rerank down to the shard nodes that retain the raw points.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"geodabs"
)

// metros are the six synthetic cities of the demo dataset.
var metros = []struct {
	name   string
	center geodabs.Point
}{
	{"London", geodabs.Point{Lat: 51.5074, Lon: -0.1278}},
	{"Paris", geodabs.Point{Lat: 48.8566, Lon: 2.3522}},
	{"New York", geodabs.Point{Lat: 40.7128, Lon: -74.0060}},
	{"Tokyo", geodabs.Point{Lat: 35.6762, Lon: 139.6503}},
	{"Sydney", geodabs.Point{Lat: -33.8688, Lon: 151.2093}},
	{"São Paulo", geodabs.Point{Lat: -23.5505, Lon: -46.6333}},
}

func main() {
	log.SetFlags(0)

	// Start 4 shard nodes on the loopback interface. In production these
	// would be separate machines; the protocol is plain TCP + gob either
	// way.
	const numNodes = 4
	var addrs []string
	for i := 0; i < numNodes; i++ {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			log.Fatalf("start node %d: %v", i, err)
		}
		defer n.Close()
		addrs = append(addrs, n.Addr())
		fmt.Printf("node %d listening on %s\n", i, n.Addr())
	}

	// The paper's strategy: 16-bit geohash prefixes → 10'000 shards →
	// modulo onto the nodes. Locality keeps a query on one node; the
	// modulo spreads the world's cities across the cluster.
	cfg := geodabs.DefaultConfig()
	strategy := geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 10000, Nodes: numNodes}
	// Point retention spills each trajectory's raw points to one owner
	// node at ingest, enabling the exact rerank demo at the end.
	coord, err := geodabs.NewCluster(cfg, strategy, addrs, geodabs.WithPointRetention())
	if err != nil {
		log.Fatalf("new cluster: %v", err)
	}
	defer coord.Close()

	// Index trajectories from every metro through the one coordinator.
	var queries []*geodabs.Trajectory
	queryMetro := make(map[geodabs.ID]string)
	var nextID geodabs.ID
	total := 0
	for i, m := range metros {
		city, err := geodabs.GenerateCity(geodabs.CityConfig{
			Center:       m.center,
			RadiusMeters: 2500,
			Seed:         int64(100 + i),
		})
		if err != nil {
			log.Fatalf("generate %s: %v", m.name, err)
		}
		dcfg := geodabs.DefaultDatasetConfig()
		dcfg.Routes = 6
		dcfg.TrajectoriesPerDirection = 3
		dcfg.MinRouteMeters = 2000
		dcfg.Seed = int64(i)
		data, err := geodabs.GenerateDataset(city, dcfg)
		if err != nil {
			log.Fatalf("generate %s dataset: %v", m.name, err)
		}
		for _, tr := range data.Dataset.Trajectories {
			tr.ID += nextID // globally unique IDs across metros
			if err := coord.Add(tr); err != nil {
				log.Fatalf("add: %v", err)
			}
			total++
		}
		q := data.Queries[0]
		q.ID += nextID
		queries = append(queries, q)
		queryMetro[q.ID] = m.name
		nextID += geodabs.ID(data.Dataset.Len() + len(data.Queries))
	}
	fmt.Printf("\nindexed %d trajectories from %d metros\n", total, len(metros))

	// Balance: the modulo step spreads the metros over the nodes.
	stats, err := coord.Stats()
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	for _, s := range stats {
		fmt.Printf("node %d: %5d terms, %6d postings\n", s.Node, s.Terms, s.Postings)
	}

	// Locality: every query fans out to very few shards (its metro's
	// neighborhood on the space-filling curve), hence few nodes. Each
	// query is prepared once: AnalyzeQuery reports the fan-out from the
	// cached shard partition, and the search that follows reuses both the
	// extraction and the partition instead of re-deriving them. The
	// scatter-gather runs under a deadline — a wedged node cannot stall
	// the query past its budget.
	fmt.Println()
	for _, q := range queries {
		pq := geodabs.NewQuery(q.Points)
		fanout := coord.AnalyzeQuery(pq)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := coord.SearchQuery(ctx, pq, geodabs.WithMaxDistance(0.95), geodabs.WithKNN(1))
		cancel()
		if err != nil {
			log.Fatalf("search: %v", err)
		}
		top := "no match"
		if len(res.Hits) > 0 {
			top = fmt.Sprintf("top match %d at dJ=%.3f", res.Hits[0].ID, res.Hits[0].Distance)
		}
		fmt.Printf("%-9s query → %d shard(s), %d node(s), %d candidate(s) in %v; %s\n",
			queryMetro[q.ID], fanout.Shards, fanout.Nodes,
			res.Stats.Candidates, res.Stats.Elapsed.Round(time.Microsecond), top)
	}

	// Exact refinement, pushed down: the fingerprint shortlist is scored
	// with DTW on the shard nodes that retain each candidate's raw points
	// — only (ID, score) pairs cross the wire back, and the distances are
	// meters instead of Jaccard estimates.
	fmt.Println()
	q := queries[0]
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	res, err := coord.Search(ctx, q,
		geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW))
	cancel()
	if err != nil {
		log.Fatalf("rerank search: %v", err)
	}
	fmt.Printf("%s query, exact rerank on the nodes:\n", queryMetro[q.ID])
	for i, h := range res.Hits {
		fmt.Printf("  %d. trajectory %d at DTW %.0f m\n", i+1, h.ID, h.Distance)
	}
}
