// Quickstart: generate a small synthetic city and trajectory dataset,
// build a geodab index, and run a ranked similarity query.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"geodabs"
)

func main() {
	log.SetFlags(0)

	// A synthetic city road network (stand-in for an OSM extract).
	city, err := geodabs.GenerateCity(geodabs.CityConfig{RadiusMeters: 4000, Seed: 1})
	if err != nil {
		log.Fatalf("generate city: %v", err)
	}
	fmt.Printf("city: %d junctions, %d road segments\n", city.NumNodes(), city.NumEdges())

	// A dense trajectory dataset: 30 routes × 10 trajectories per
	// direction, sampled at 1 Hz with 20 m GPS noise, plus one held-out
	// query per route.
	dcfg := geodabs.DefaultDatasetConfig()
	dcfg.Routes = 30
	dcfg.TrajectoriesPerDirection = 5
	data, err := geodabs.GenerateDataset(city, dcfg)
	if err != nil {
		log.Fatalf("generate dataset: %v", err)
	}
	fmt.Printf("dataset: %d trajectories, %d points total\n",
		data.Dataset.Len(), data.Dataset.TotalPoints())

	// Build the index: trajectories are normalized onto a 36-bit geohash
	// grid, fingerprinted by winnowing, and inserted into an inverted
	// index backed by roaring bitmaps.
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		log.Fatalf("new index: %v", err)
	}
	if err := idx.AddAll(data.Dataset, 8); err != nil {
		log.Fatalf("index dataset: %v", err)
	}
	stats := idx.Stats()
	fmt.Printf("index: %d trajectories, %d terms, %d postings, %.1f KiB of bitmaps\n",
		stats.Trajectories, stats.Terms, stats.Postings, float64(stats.BitmapBytes)/1024)

	// Search with a held-out trajectory through the Searcher API. Results
	// are ranked by Jaccard distance between fingerprint sets; the ground
	// truth is every trajectory of the same route and direction.
	q := data.Queries[0]
	fmt.Printf("\nquery: route %d (%s), %d points\n", q.Route, q.Dir, q.Len())
	relevant := make(map[geodabs.ID]bool)
	for _, id := range data.Relevant[q.ID] {
		relevant[id] = true
	}
	res, err := idx.Search(context.Background(), q,
		geodabs.WithMaxDistance(0.95),
		geodabs.WithLimit(10))
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	for rank, r := range res.Hits {
		tr := data.Dataset.ByID(r.ID)
		marker := " "
		if relevant[r.ID] {
			marker = "*"
		}
		fmt.Printf("%2d. %s trajectory %4d  dJ=%.3f  shared=%2d  route %d (%s)\n",
			rank+1, marker, r.ID, r.Distance, r.Shared, tr.Route, tr.Dir)
	}
	fmt.Printf("\n(* = ground-truth relevant: same route and direction)\n")
	fmt.Printf("search touched %d candidates in %v\n",
		res.Stats.Candidates, res.Stats.Elapsed)

	// A query that runs more than once is worth preparing: NewQuery caches
	// the extracted fingerprint set inside the value, so only the first
	// SearchQuery pays the extraction pipeline — here the second search
	// reuses it to fetch the 3 nearest neighbors.
	pq := geodabs.NewQuery(q.Points)
	if _, err := idx.SearchQuery(context.Background(), pq, geodabs.WithLimit(10)); err != nil {
		log.Fatalf("prepared search: %v", err)
	}
	knn, err := idx.SearchQuery(context.Background(), pq, geodabs.WithKNN(3))
	if err != nil {
		log.Fatalf("prepared search: %v", err)
	}
	fmt.Printf("\nprepared query, 3 nearest (extraction reused): ")
	for i, r := range knn.Hits {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%d (dJ=%.3f)", r.ID, r.Distance)
	}
	fmt.Println()
}
