// Motifs: discover the common segment of two trajectories that mostly
// differ — the paper's second problem (§II-B2).
//
// Two commuters drive different routes that share a stretch of the same
// arterial road. The geodab method finds the shared stretch by scanning
// windows of winnowed fingerprints with the Jaccard distance, at a small
// fraction of the cost of the exact discrete-Fréchet search (BTM).
//
// Run with:
//
//	go run ./examples/motifs
package main

import (
	"fmt"
	"log"
	"time"

	"geodabs"
)

func main() {
	log.SetFlags(0)

	city, err := geodabs.GenerateCity(geodabs.CityConfig{RadiusMeters: 4000, Seed: 11})
	if err != nil {
		log.Fatalf("generate city: %v", err)
	}
	// Generate many route pairs and pick two different routes with some
	// overlap by brute force over the dataset (different routes through a
	// city center regularly share arterials).
	dcfg := geodabs.DefaultDatasetConfig()
	dcfg.Routes = 20
	dcfg.TrajectoriesPerDirection = 1
	dcfg.QueriesPerRoute = 0
	data, err := geodabs.GenerateDataset(city, dcfg)
	if err != nil {
		log.Fatalf("generate trajectories: %v", err)
	}

	// One Fingerprinter serves every fingerprinting call in the process:
	// it is immutable, safe for concurrent use, and constructing it once
	// avoids rebuilding the pipeline per trajectory.
	fp, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		log.Fatalf("fingerprinter: %v", err)
	}
	a, b := pickOverlappingPair(fp, data)
	fmt.Printf("trajectory A: route %d, %d points\n", a.Route, a.Len())
	fmt.Printf("trajectory B: route %d, %d points\n", b.Route, b.Len())

	// Geodab motif discovery: windows of fingerprints, Jaccard distance.
	const motifMeters = 1000
	start := time.Now()
	m, err := fp.Motif(a.Points, b.Points, motifMeters)
	geodabTime := time.Since(start)
	if err != nil {
		log.Fatalf("geodab motif: %v", err)
	}
	fmt.Printf("\ngeodab motif (~%d m):\n", motifMeters)
	fmt.Printf("  A[%d:%d] ↔ B[%d:%d], Jaccard distance %.3f, found in %v\n",
		m.AStart, m.AEnd, m.BStart, m.BEnd, m.Distance, geodabTime.Round(time.Microsecond))

	// Exact BTM baseline on truncated trajectories (the full n²·l² search
	// is exactly the cost the paper's Fig 11 warns about).
	l := 60 // ≈ motif length in points at ~15 m per 1 Hz sample
	ta, tb := truncate(a.Points, 300), truncate(b.Points, 300)
	start = time.Now()
	exact, err := geodabs.FindMotifExact(ta, tb, l)
	btmTime := time.Since(start)
	if err != nil {
		log.Fatalf("exact motif: %v", err)
	}
	fmt.Printf("\nexact BTM motif (%d points, trajectories truncated to 300 points):\n", l)
	fmt.Printf("  A[%d:%d] ↔ B[%d:%d], Fréchet distance %.0f m, found in %v\n",
		exact.AStart, exact.AEnd, exact.BStart, exact.BEnd, exact.Distance, btmTime.Round(time.Microsecond))

	if btmTime > 0 && geodabTime > 0 {
		fmt.Printf("\nspeedup on this pair (and BTM saw only truncated inputs): %.0f×\n",
			float64(btmTime)/float64(geodabTime))
	}
}

// pickOverlappingPair returns the two trajectories from different routes
// with the highest fingerprint overlap (different commuters whose drives
// share some stretch of road in the same direction).
func pickOverlappingPair(fp *geodabs.Fingerprinter, data *geodabs.DatasetOutput) (a, b *geodabs.Trajectory) {
	trajectories := data.Dataset.Trajectories
	prints := make([]*geodabs.Fingerprint, len(trajectories))
	for i, tr := range trajectories {
		prints[i] = fp.Fingerprint(tr.Points)
	}
	best := 1.0
	for i := range trajectories {
		for j := i + 1; j < len(trajectories); j++ {
			if trajectories[i].Route == trajectories[j].Route {
				continue
			}
			if d := geodabs.JaccardDistance(prints[i], prints[j]); d < best {
				best = d
				a, b = trajectories[i], trajectories[j]
			}
		}
	}
	if a == nil {
		log.Fatal("no overlapping pair found; try another seed")
	}
	return a, b
}

func truncate(pts []geodabs.Point, n int) []geodabs.Point {
	if len(pts) < n {
		return pts
	}
	return pts[:n]
}
