// Carsharing: match commuters with overlapping daily drives — one of the
// motivating scenarios of the paper's introduction.
//
// A fleet of commuters records their morning drives. For a new member we
// look for existing members whose commutes are similar enough to share a
// car, in the right direction of travel: a rider going north-east is not
// helped by a driver going south-west on the same road, which is exactly
// the case plain geohash indexing cannot distinguish.
//
// Run with:
//
//	go run ./examples/carsharing
package main

import (
	"context"
	"fmt"
	"log"

	"geodabs"
)

func main() {
	log.SetFlags(0)

	city, err := geodabs.GenerateCity(geodabs.CityConfig{RadiusMeters: 5000, Seed: 7})
	if err != nil {
		log.Fatalf("generate city: %v", err)
	}

	// The fleet: 40 commute routes, 3 recorded drives per direction each
	// (commuters repeat their route daily with GPS noise and traffic
	// variation).
	dcfg := geodabs.DefaultDatasetConfig()
	dcfg.Routes = 40
	dcfg.TrajectoriesPerDirection = 3
	dcfg.QueriesPerRoute = 1
	fleet, err := geodabs.GenerateDataset(city, dcfg)
	if err != nil {
		log.Fatalf("generate fleet: %v", err)
	}

	// Point retention keeps the raw drives available for the exact DTW
	// re-ranking below; rerank-free workloads would omit it. The same two
	// options work on a *Cluster, where each drive's points live on one
	// owner shard node and the rerank is scored there — see
	// examples/cluster.
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithPointRetention())
	if err != nil {
		log.Fatalf("new index: %v", err)
	}
	if err := idx.AddAll(fleet.Dataset, 8); err != nil {
		log.Fatalf("index fleet: %v", err)
	}
	fmt.Printf("fleet: %d recorded drives from %d commute routes\n",
		fleet.Dataset.Len(), dcfg.Routes)

	// A new member's drive is the query. Δmax = 0.9 keeps only drives
	// with meaningful fingerprint overlap; the 5 nearest are our pool.
	const maxDistance = 0.9
	ctx := context.Background()
	newMember := fleet.Queries[2]
	fmt.Printf("\nnew member: %d-point drive on route %d (%s)\n",
		newMember.Len(), newMember.Route, newMember.Dir)

	// The member's drive is searched three times below (fingerprint
	// ranking, exact re-ranking, direction sanity check). Preparing it
	// once as a *Query runs fingerprint extraction a single time; every
	// search reuses the cached term set.
	member := geodabs.NewQuery(newMember.Points)

	res, err := idx.SearchQuery(ctx, member,
		geodabs.WithMaxDistance(maxDistance),
		geodabs.WithKNN(5))
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	if len(res.Hits) == 0 {
		fmt.Println("no share candidates found")
		return
	}
	fmt.Println("\nbest share candidates (fingerprint ranking):")
	for i, m := range res.Hits {
		drive := fleet.Dataset.ByID(m.ID)
		overlap := 100 * (1 - m.Distance)
		fmt.Printf("%d. drive %d — route %d (%s), fingerprint overlap %.0f%%\n",
			i+1, m.ID, drive.Route, drive.Dir, overlap)
	}

	// For the final pairing decision, refine the shortlist with the exact
	// DTW distance (the paper's §VI-C step): geodabs prune the fleet
	// cheaply, the polynomial-cost measure settles the order in meters.
	exact, err := idx.SearchQuery(ctx, member,
		geodabs.WithMaxDistance(maxDistance),
		geodabs.WithKNN(5),
		geodabs.WithExactRerank(geodabs.DTW))
	if err != nil {
		log.Fatalf("rerank: %v", err)
	}
	fmt.Println("\nafter exact DTW re-ranking:")
	for i, m := range exact.Hits {
		drive := fleet.Dataset.ByID(m.ID)
		fmt.Printf("%d. drive %d — route %d (%s), DTW %.0f m\n",
			i+1, m.ID, drive.Route, drive.Dir, m.Distance)
	}

	// Sanity: the same road in the opposite direction must NOT surface.
	all, err := idx.SearchQuery(ctx, member, geodabs.WithMaxDistance(maxDistance))
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	wrongWay := 0
	for _, m := range all.Hits {
		if d := fleet.Dataset.ByID(m.ID); d.Route == newMember.Route && d.Dir != newMember.Dir {
			wrongWay++
		}
	}
	fmt.Printf("\nopposite-direction drives of the same route in the result set: %d\n", wrongWay)
	fmt.Println("(geodabs hash the order of travel, so the wrong way ranks out)")
}
