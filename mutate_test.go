package geodabs_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"geodabs"
)

// TestMutatorParity drives the same mutation script through both engines
// and checks the rankings stay identical — the mutation-side mirror of
// the Searcher parity gate.
func TestMutatorParity(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()

	victims := []geodabs.ID{
		w.Dataset.Trajectories[0].ID,
		w.Dataset.Trajectories[3].ID,
	}
	for _, m := range []geodabs.Mutator{idx, cl} {
		// Replace one trajectory's geometry in place, delete two others.
		replacement := &geodabs.Trajectory{
			ID:     w.Dataset.Trajectories[1].ID,
			Points: w.Dataset.Trajectories[6].Points,
		}
		if err := m.Upsert(ctx, replacement); err != nil {
			t.Fatalf("%T.Upsert: %v", m, err)
		}
		deleted, err := m.DeleteAll(ctx, append(victims, 424242), 2)
		if err != nil {
			t.Fatalf("%T.DeleteAll: %v", m, err)
		}
		if deleted != len(victims) {
			t.Fatalf("%T.DeleteAll deleted %d, want %d", m, deleted, len(victims))
		}
	}
	for _, q := range w.Queries {
		want, err := idx.Search(ctx, q, geodabs.WithMaxDistance(0.99))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Search(ctx, q, geodabs.WithMaxDistance(0.99))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Hits, want.Hits) {
			t.Fatalf("query %d: mutated cluster ranking diverges from mutated index", q.ID)
		}
		for _, h := range want.Hits {
			for _, v := range victims {
				if h.ID == v {
					t.Fatalf("query %d still ranks deleted trajectory %d", q.ID, v)
				}
			}
		}
	}
}

func TestDeleteNotFound(t *testing.T) {
	idx := builtTestIndex(t)
	cl := builtTestCluster(t, 2)
	ctx := context.Background()
	for _, m := range []geodabs.Mutator{idx, cl} {
		if err := m.Delete(ctx, 424242); !errors.Is(err, geodabs.ErrNotFound) {
			t.Errorf("%T.Delete(unknown) = %v, want ErrNotFound", m, err)
		}
	}
}

// TestDeleteSnapshotRoundTrip is the public delete → WriteTo → ReadFrom
// acceptance path, including the persisted mutation epoch.
func TestDeleteSnapshotRoundTrip(t *testing.T) {
	_, w := testWorld()
	idx := builtTestIndex(t)
	ctx := context.Background()
	victim := w.Dataset.Trajectories[0]
	if err := idx.Delete(ctx, victim.ID); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := geodabs.ReadIndex(geodabs.DefaultConfig(), strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("loaded %d trajectories, want %d", loaded.Len(), idx.Len())
	}
	if loaded.Epoch() != idx.Epoch() {
		t.Errorf("loaded epoch %d, want %d", loaded.Epoch(), idx.Epoch())
	}
	res, err := loaded.Search(ctx, victim, geodabs.WithMaxDistance(0.01))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.ID == victim.ID {
			t.Error("deleted trajectory resurrected by the snapshot round-trip")
		}
	}
}

// TestRetentionOptIn pins the flipped default: without WithPointRetention
// the rerank path fails with a pointed error, with it the paper's §VI-C
// refinement works.
func TestRetentionOptIn(t *testing.T) {
	_, w := testWorld()
	ctx := context.Background()
	bare, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.AddAll(w.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	_, err = bare.Search(ctx, w.Queries[0], geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW))
	if err == nil || !strings.Contains(err.Error(), "WithPointRetention") {
		t.Errorf("rerank without retention: %v, want a WithPointRetention hint", err)
	}
	// builtTestIndex constructs with WithPointRetention; rerank works there.
	retaining := builtTestIndex(t)
	if _, err := retaining.Search(ctx, w.Queries[0], geodabs.WithKNN(3), geodabs.WithExactRerank(geodabs.DTW)); err != nil {
		t.Errorf("rerank with retention: %v", err)
	}
}

func TestConnsPerNodeValidation(t *testing.T) {
	if _, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithConnsPerNode(4)); err == nil {
		t.Error("WithConnsPerNode on a local index should be rejected")
	}
	if _, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithConnsPerNode(0)); err == nil {
		t.Error("WithConnsPerNode(0) should be rejected")
	}
}

// TestClusterPooledBatch runs the cluster batch path with a sized
// connection pool: results must match the single-connection ranking.
func TestClusterPooledBatch(t *testing.T) {
	_, w := testWorld()
	var addrs []string
	for i := 0; i < 2; i++ {
		n, err := geodabs.StartShardNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		addrs = append(addrs, n.Addr())
	}
	cfg := geodabs.DefaultConfig()
	pooled, err := geodabs.NewCluster(cfg,
		geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 1000, Nodes: 2}, addrs,
		geodabs.WithConnsPerNode(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pooled.Close() })
	for _, tr := range w.Dataset.Trajectories {
		if err := pooled.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	opts := []geodabs.SearchOption{geodabs.WithMaxDistance(0.99), geodabs.WithLimit(5)}
	batch, err := pooled.SearchBatch(ctx, w.Queries, 8, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries {
		single, err := pooled.Search(ctx, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Hits, single.Hits) {
			t.Errorf("query %d: pooled batch diverges from single search", q.ID)
		}
	}
}
