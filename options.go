package geodabs

import (
	"errors"
	"fmt"
)

// Option configures an Index or Cluster at construction.
//
//	idx, err := geodabs.NewIndex(cfg, geodabs.WithPointRetention())
//	cl, err := geodabs.NewCluster(cfg, strategy, addrs,
//		geodabs.WithPointRetention(), geodabs.WithConnsPerNode(4))
type Option func(*engineOptions) error

// engineOptions is the resolved construction option set shared by the
// local and distributed engines.
type engineOptions struct {
	retainPoints bool
	connsPerNode int
	readReplicas [][]string
	readPref     ReadPreference
	readPrefSet  bool
	recoverDir   bool
	shards       int
	shardsSet    bool
}

func newEngineOptions(opts []Option) (engineOptions, error) {
	var o engineOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

// WithPointRetention makes Add/AddAll/Upsert keep each trajectory's raw
// point sequence so searches can refine candidates with WithExactRerank.
// On a local Index the points stay in process (a slice header sharing
// the caller's backing array, not a copy). On a Cluster each
// trajectory's points spill to one deterministic owner among the shard
// nodes holding its terms: the owner stores them beside its postings
// (WAL-logged when durable, carried by snapshots, full syncs and the
// replication stream), the coordinator remembers only who owns what,
// and WithExactRerank pushes the scoring down to the owners — raw
// points cross the wire once at ingest and never at query time.
// Retention is off by default: workloads that never re-rank no longer
// pay the pinned point memory, and WithExactRerank fails with a clear
// error unless the engine was constructed with this option.
func WithPointRetention() Option {
	return func(o *engineOptions) error {
		o.retainPoints = true
		return nil
	}
}

// WithConnsPerNode sets how many connections a Cluster pools per shard
// node (default 1). A larger pool lets that many RPCs be in flight to
// the same node, raising SearchBatch throughput. It applies only to
// NewCluster; NewIndex and NewGeohashIndex reject it.
func WithConnsPerNode(n int) Option {
	return func(o *engineOptions) error {
		if n < 1 {
			return fmt.Errorf("geodabs: WithConnsPerNode(%d) must be at least 1", n)
		}
		o.connsPerNode = n
		return nil
	}
}

// WithReadReplicas registers read replicas with a Cluster: replicas[i]
// lists the addresses of node i's replicas (shard nodes started with
// WithReplicaOf pointing at node i). The outer slice must have one entry
// per cluster node; inner slices may be empty. Mutations always go to
// primaries — replicas serve reads only, routed per WithReadPreference.
func WithReadReplicas(replicas [][]string) Option {
	return func(o *engineOptions) error {
		if replicas == nil {
			return errors.New("geodabs: WithReadReplicas(nil) — pass one (possibly empty) entry per node")
		}
		o.readReplicas = replicas
		return nil
	}
}

// WithReadPreference sets a Cluster's read routing policy: ReadPrimary
// (the default) or ReadReplicas. It applies only to NewCluster.
func WithReadPreference(p ReadPreference) Option {
	return func(o *engineOptions) error {
		if p != ReadPrimary && p != ReadReplicas {
			return fmt.Errorf("geodabs: unknown ReadPreference %d", p)
		}
		o.readPref = p
		o.readPrefSet = true
		return nil
	}
}

// WithShards splits a local Index into n in-process shards (rounded up
// to the next power of two), each with its own lock and posting lists:
// mutations on different shards stop contending, and a single search
// fans out across the shards in parallel, merging to rankings
// byte-identical to the unsharded index. n = 0 (the default) sizes the
// shard count automatically from GOMAXPROCS — one core, one shard; more
// cores, a power-of-two shard count matching them. n = 1 forces the
// unsharded engine.
//
// Snapshots interoperate across shard counts: a sharded index writes
// format v3 (per-shard sections) and an unsharded one v2, and both load
// either, rebalancing documents into the receiver's layout. It applies
// only to NewIndex and NewGeohashIndex; NewCluster rejects it (cluster
// sharding is configured by the node address list).
func WithShards(n int) Option {
	return func(o *engineOptions) error {
		if n < 0 {
			return fmt.Errorf("geodabs: WithShards(%d) must not be negative (0 means auto)", n)
		}
		o.shards = n
		o.shardsSet = true
		return nil
	}
}

// WithDirectoryRecovery makes NewCluster rebuild its ranking directory
// from the shard nodes' current state before serving — the restart path
// for a coordinator fronting durable (WithWALDir) nodes. Retained
// points are recovered too: they live on each trajectory's owner node,
// whose full-sync record carries them, so the rebuilt directory
// re-learns the ownership map and exact re-ranking keeps working across
// the coordinator restart.
func WithDirectoryRecovery() Option {
	return func(o *engineOptions) error {
		o.recoverDir = true
		return nil
	}
}

// localOnly rejects cluster-only options on local index constructors.
func (o engineOptions) localOnly() error {
	if o.connsPerNode != 0 {
		return errors.New("geodabs: WithConnsPerNode applies to clusters, not local indexes")
	}
	if o.readReplicas != nil {
		return errors.New("geodabs: WithReadReplicas applies to clusters, not local indexes")
	}
	if o.readPrefSet {
		return errors.New("geodabs: WithReadPreference applies to clusters, not local indexes")
	}
	if o.recoverDir {
		return errors.New("geodabs: WithDirectoryRecovery applies to clusters, not local indexes")
	}
	return nil
}
