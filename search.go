package geodabs

import (
	"context"
	"errors"
	"fmt"
	"geodabs/internal/cluster"
	"geodabs/internal/index"
	"math"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Searcher is the retrieval surface shared by the local *Index and the
// distributed *Cluster: one fingerprint-based query model, identical
// results (§IV of the paper). Search honors ctx cancellation and
// deadlines; behavior is shaped by functional options:
//
//	res, err := s.Search(ctx, q,
//		geodabs.WithMaxDistance(0.9),
//		geodabs.WithLimit(10))
//
// With no options a search returns every trajectory sharing at least one
// fingerprint with the query, most similar first.
//
// SearchQuery is Search over a prepared *Query, whose extraction (and,
// on a Cluster, shard partition) is computed once and cached inside the
// value — repeated and batched searches skip the per-call preparation
// cost. Search(ctx, t, ...) is exactly SearchQuery(ctx, NewQuery(t.Points),
// ...): the two return byte-identical results.
type Searcher interface {
	Search(ctx context.Context, q *Trajectory, opts ...SearchOption) (*SearchResult, error)
	SearchQuery(ctx context.Context, q *Query, opts ...SearchOption) (*SearchResult, error)
}

// preparedSearcher is the internal resolved-options search entry both
// engines implement: options are parsed exactly once per public call —
// a batch resolves them up front and fans the resolved set out to its
// workers instead of re-parsing inside every per-query search.
type preparedSearcher interface {
	searchPrepared(ctx context.Context, q *Query, o searchOptions) (*SearchResult, error)
}

// Compile-time proof that both retrieval engines present the one surface.
var (
	_ Searcher         = (*Index)(nil)
	_ Searcher         = (*Cluster)(nil)
	_ preparedSearcher = (*Index)(nil)
	_ preparedSearcher = (*Cluster)(nil)
)

// RerankMetric is an exact trajectory distance used by WithExactRerank to
// refine a fingerprint-ranked candidate set (the paper's §VI-C refinement
// step). DTW and DFD satisfy it directly.
type RerankMetric func(a, b []Point) float64

// SearchOption configures one Search call.
type SearchOption func(*searchOptions) error

// searchOptions is the resolved option set. The zero value is completed
// by newSearchOptions; fields are only reachable through options so the
// defaulting rules stay in one place.
type searchOptions struct {
	maxDistance float64
	limit       int
	knn         int
	haveKNN     bool
	haveLimit   bool
	rerank      RerankMetric
}

func newSearchOptions(opts []SearchOption) (searchOptions, error) {
	o := searchOptions{maxDistance: 1}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return o, err
		}
	}
	if o.haveKNN && o.haveLimit {
		return o, errors.New("geodabs: WithKNN and WithLimit are mutually exclusive")
	}
	return o, nil
}

// resultLimit is the cap applied to the final ranking: k for kNN
// searches, the explicit limit otherwise (0 = unlimited).
func (o searchOptions) resultLimit() int {
	if o.haveKNN {
		return o.knn
	}
	return o.limit
}

// rerankShortlistFactor bounds the exact-rerank shortlist: the metric
// scores the top limit×factor fingerprint-ranked hits, keeping the
// polynomial-cost pass proportional to the requested result count.
const rerankShortlistFactor = 8

// fetchLimit is how many fingerprint-ranked hits to pull from the engine
// before post-processing: the final cap when the ranking is final, an
// enlarged shortlist when an exact rerank will re-order it, and the whole
// range when no cap was requested.
func (o searchOptions) fetchLimit() int {
	limit := o.resultLimit()
	if o.rerank == nil || limit <= 0 {
		return limit
	}
	return limit * rerankShortlistFactor
}

// WithMaxDistance keeps only trajectories within Jaccard distance d of
// the query (range semantics, the paper's Δmax). The default is 1: every
// candidate sharing at least one fingerprint qualifies.
func WithMaxDistance(d float64) SearchOption {
	return func(o *searchOptions) error {
		if math.IsNaN(d) || d < 0 || d > 1 {
			return fmt.Errorf("geodabs: WithMaxDistance(%v) out of range [0, 1]", d)
		}
		o.maxDistance = d
		return nil
	}
}

// WithKNN returns up to the k most similar trajectories — fewer when
// fewer than k indexed trajectories share a fingerprint with the query,
// since anything sharing none has Jaccard distance 1 and is never a
// candidate. Combine with WithMaxDistance for a ranged kNN. Mutually
// exclusive with WithLimit, which expresses a plain truncation; today
// both cap the same full ranking, but WithKNN is the seam where an
// early-terminating kNN strategy plugs in without an API change.
func WithKNN(k int) SearchOption {
	return func(o *searchOptions) error {
		if k < 1 {
			return fmt.Errorf("geodabs: WithKNN(%d) must be at least 1", k)
		}
		o.knn = k
		o.haveKNN = true
		return nil
	}
}

// WithLimit truncates the ranking to the first n hits (0 = no limit).
// Mutually exclusive with WithKNN.
func WithLimit(n int) SearchOption {
	return func(o *searchOptions) error {
		if n < 0 {
			return fmt.Errorf("geodabs: WithLimit(%d) must not be negative", n)
		}
		o.limit = n
		o.haveLimit = true
		return nil
	}
}

// WithExactRerank re-ranks a fingerprint-ranked shortlist by the exact
// metric (ascending), the paper's §VI-C refinement: geodabs prune
// cheaply, the polynomial-cost measure decides the final order. With a
// result cap (WithKNN or WithLimit) the shortlist is the top cap×8
// fingerprint hits; without one, the whole WithMaxDistance range is
// scored — bound one or the other, or the rerank degenerates to the
// brute-force scan it exists to avoid. Each hit's Distance is replaced
// by the metric's value (meters for DTW/DFD). Re-ranking needs the raw
// points of every hit, so it requires an engine constructed with
// WithPointRetention and fails on indexes loaded from a snapshot, after
// DiscardPoints, and on trajectories inserted as bare fingerprints.
//
// On a *Cluster the refinement runs on the shard nodes: each
// trajectory's raw points live on its owner node, the shortlist is
// pushed down, and only (ID, score) pairs return — so the metric must
// be one of the built-ins (DTW or DFD), which the nodes can run by
// name. A custom metric function cannot cross the wire and is rejected.
func WithExactRerank(metric RerankMetric) SearchOption {
	return func(o *searchOptions) error {
		if metric == nil {
			return errors.New("geodabs: WithExactRerank(nil) is not a metric")
		}
		o.rerank = metric
		return nil
	}
}

// SearchResult carries one search's ranked hits and execution statistics.
type SearchResult struct {
	// Hits are ordered most similar first, ties broken by ID. Distance is
	// the Jaccard distance, unless WithExactRerank replaced it with the
	// exact metric's value.
	Hits []Result
	// Stats describes what the search touched.
	Stats SearchStats
}

// SearchStats summarizes one search execution.
type SearchStats struct {
	// Candidates is the number of trajectories sharing at least one
	// fingerprint with the query, before distance filtering. On a
	// distributed search it counts the distinct candidates whose partial
	// counts reached the coordinator — candidates the shard nodes pruned
	// (see NodePruned) share fingerprints too but are not included.
	Candidates int
	// Pruned is how many of those candidates threshold pruning skipped
	// before scoring: trajectories whose fingerprint cardinality or
	// shared-term count proves they cannot satisfy WithMaxDistance (or
	// beat the current kth-best candidate under WithKNN/WithLimit).
	Pruned int
	// NodePruned is how many candidate partials the shard nodes skipped
	// before serializing their responses: the query's cardinality window
	// is evaluated node-side against replicated document cardinalities,
	// so a non-qualifying candidate never crosses the wire (it is not
	// counted in Candidates or Pruned). A candidate spanning several
	// nodes counts once per node, matching its wire cost. Always zero for
	// a local *Index search.
	NodePruned int
	// WirePartials is the number of per-node (ID, count) partial entries
	// that did cross the wire, summed over the answering shard nodes.
	// WirePartials + NodePruned is what the same search would have
	// shipped without node-side pruning. Always zero for a local *Index
	// search.
	WirePartials int
	// ShardsTouched and NodesTouched report the distributed fan-out; both
	// are zero for a local *Index search.
	ShardsTouched int
	NodesTouched  int
	// Elapsed is the wall-clock duration of the search.
	Elapsed time.Duration
}

// Search implements Searcher on the local index. It is a thin wrapper
// over SearchQuery: the trajectory's points become a one-shot prepared
// query, so results are byte-identical to the prepared path.
func (ix *Index) Search(ctx context.Context, q *Trajectory, opts ...SearchOption) (*SearchResult, error) {
	return ix.SearchQuery(ctx, NewQuery(q.Points), opts...)
}

// SearchQuery implements the prepared side of Searcher on the local
// index: the query's cached term set feeds the counting-merge core
// directly, skipping fingerprint extraction on every call after the
// first.
func (ix *Index) SearchQuery(ctx context.Context, q *Query, opts ...SearchOption) (*SearchResult, error) {
	o, err := newSearchOptions(opts)
	if err != nil {
		return nil, err
	}
	return ix.searchPrepared(ctx, q, o)
}

// searchPrepared runs one resolved search against the local index.
func (ix *Index) searchPrepared(ctx context.Context, q *Query, o searchOptions) (*SearchResult, error) {
	if err := checkQuery(q, o); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	set, card := q.termSet(ix.eng.Extractor())
	hits, istats, err := ix.eng.AppendSearchSet(ctx, nil, set, card, o.maxDistance, o.fetchLimit())
	if err != nil {
		return nil, err
	}
	if hits, err = rerankHits(ctx, o, hits, q.Points(), ix.eng.PointsOf); err != nil {
		return nil, err
	}
	return &SearchResult{
		Hits: hits,
		Stats: SearchStats{
			Candidates: istats.Candidates,
			Pruned:     istats.Pruned,
			Elapsed:    time.Since(start),
		},
	}, nil
}

// SearchBatch runs many searches with the same options on the given
// number of parallel workers, for throughput workloads. Results align
// with qs by position. The first error cancels the remaining work.
func (ix *Index) SearchBatch(ctx context.Context, qs []*Trajectory, workers int, opts ...SearchOption) ([]*SearchResult, error) {
	o, err := newSearchOptions(opts)
	if err != nil {
		return nil, err
	}
	return searchBatch(ctx, ix, wrapQueries(qs), workers, o)
}

// SearchQueryBatch is SearchBatch over prepared queries: each *Query's
// cached extraction is reused across the batch — and across batches, so
// a recurring query set pays preparation once for its lifetime. The same
// *Query may appear at several positions; it is searched independently
// at each.
func (ix *Index) SearchQueryBatch(ctx context.Context, qs []*Query, workers int, opts ...SearchOption) ([]*SearchResult, error) {
	o, err := newSearchOptions(opts)
	if err != nil {
		return nil, err
	}
	return searchBatch(ctx, ix, qs, workers, o)
}

// Search implements Searcher on the distributed cluster. A cancelled ctx
// aborts the scatter-gather promptly with the context's error. Like the
// local engine, it wraps the trajectory in a one-shot prepared query.
func (c *Cluster) Search(ctx context.Context, q *Trajectory, opts ...SearchOption) (*SearchResult, error) {
	return c.SearchQuery(ctx, NewQuery(q.Points), opts...)
}

// SearchQuery implements the prepared side of Searcher on the cluster:
// beyond the cached extraction, the query caches its per-shard term
// partition (the wire-ready per-node term slices) on first use against a
// shard strategy, so repeated and batched scatter-gathers skip both
// extraction and re-sharding.
func (c *Cluster) SearchQuery(ctx context.Context, q *Query, opts ...SearchOption) (*SearchResult, error) {
	o, err := newSearchOptions(opts)
	if err != nil {
		return nil, err
	}
	return c.searchPrepared(ctx, q, o)
}

// searchPrepared runs one resolved scatter-gather against the cluster.
func (c *Cluster) searchPrepared(ctx context.Context, q *Query, o searchOptions) (*SearchResult, error) {
	if err := checkQuery(q, o); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	set, _ := q.termSet(c.coord.Extractor())
	plan := q.clusterPlan(c.coord, set)
	hits, info, err := c.coord.SearchPlan(ctx, plan, o.maxDistance, o.fetchLimit())
	if err != nil {
		return nil, translateClusterErr(err)
	}
	if hits, err = c.rerankRemote(ctx, o, hits, q.Points()); err != nil {
		return nil, err
	}
	return &SearchResult{
		Hits: hits,
		Stats: SearchStats{
			Candidates:    info.Candidates,
			Pruned:        info.Pruned,
			NodePruned:    info.NodePruned,
			WirePartials:  info.WirePartials,
			ShardsTouched: info.Shards,
			NodesTouched:  info.Nodes,
			Elapsed:       time.Since(start),
		},
	}, nil
}

// SearchBatch runs many scatter-gather searches with the same options on
// the given number of parallel workers. Results align with qs by
// position. The first error cancels the remaining work. Effective
// parallelism is bounded by the per-node connection pool (one in-flight
// RPC per pooled connection); size it with WithConnsPerNode at
// construction to match the worker count.
func (c *Cluster) SearchBatch(ctx context.Context, qs []*Trajectory, workers int, opts ...SearchOption) ([]*SearchResult, error) {
	o, err := newSearchOptions(opts)
	if err != nil {
		return nil, err
	}
	return searchBatch(ctx, c, wrapQueries(qs), workers, o)
}

// SearchQueryBatch is SearchBatch over prepared queries; see
// Index.SearchQueryBatch. On a cluster, each query's shard partition is
// also cached, so a batch that repeats a *Query re-shards nothing.
func (c *Cluster) SearchQueryBatch(ctx context.Context, qs []*Query, workers int, opts ...SearchOption) ([]*SearchResult, error) {
	o, err := newSearchOptions(opts)
	if err != nil {
		return nil, err
	}
	return searchBatch(ctx, c, qs, workers, o)
}

// checkQuery rejects option/query combinations that cannot execute: a
// nil query, and exact re-ranking of a fingerprint-only query, whose raw
// points were never available to score with the metric.
func checkQuery(q *Query, o searchOptions) error {
	if q == nil {
		return errors.New("geodabs: nil *Query")
	}
	if o.rerank != nil && q.FingerprintOnly() {
		return errors.New("geodabs: WithExactRerank needs the query's raw points, which a fingerprint-only Query (QueryFromFingerprint) does not carry — build the query with NewQuery or Fingerprinter.Prepare instead")
	}
	return nil
}

// wrapQueries lifts a trajectory batch into one-shot prepared queries.
func wrapQueries(ts []*Trajectory) []*Query {
	qs := make([]*Query, len(ts))
	for i, t := range ts {
		qs[i] = NewQuery(t.Points)
	}
	return qs
}

// rerankHits applies the exact refinement pass on the local engine:
// score every hit with the metric, re-sort ascending (ties by ID),
// truncate to the result limit. The shortlist is scored on bounded
// parallel workers — the DP metrics are CPU-bound, so parallelism is
// capped at GOMAXPROCS. A no-op when no rerank was requested.
func rerankHits(ctx context.Context, o searchOptions, hits []Result, query []Point, pointsOf func(ID) []Point) ([]Result, error) {
	if o.rerank == nil {
		return hits, nil
	}
	// Resolve every hit's points before scoring any, so a failure names
	// the complete set of unavailable trajectories instead of whichever
	// one a worker tripped over first.
	pts := make([][]Point, len(hits))
	var missing []ID
	for i := range hits {
		if pts[i] = pointsOf(hits[i].ID); pts[i] == nil {
			missing = append(missing, hits[i].ID)
		}
	}
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		return nil, fmt.Errorf("geodabs: cannot rerank: raw points of %d of %d shortlist trajectories unavailable (IDs %v): index built without WithPointRetention, DiscardPoints was called, snapshot-loaded index, or fingerprint-only insertion", len(missing), len(hits), missing)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(hits) {
		workers = len(hits)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		stopped atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(hits) || stopped.Load() {
					return
				}
				if ctx.Err() != nil {
					stopped.Store(true)
					return
				}
				hits[i].Distance = o.rerank(query, pts[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	index.SortResults(hits)
	if limit := o.resultLimit(); limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits, nil
}

// rerankRemote is the distributed refinement pass: instead of pulling
// every candidate's raw points to the coordinator, the shortlist is
// pushed down to the shard nodes that retain them. Each node scores its
// slice with the identical metric implementation (so scores are
// bit-identical to a local rerank), prunes candidates a cheap lower
// bound proves cannot enter the top-limit, and ships back (ID, score)
// pairs — raw points never cross the wire at query time. The
// coordinator merges the scores into the final ranking.
//
// Only the built-in metrics (DTW, DFD) can be named over the wire; a
// custom RerankMetric function cannot be shipped to the nodes, and the
// coordinator no longer retains points to run it locally.
func (c *Cluster) rerankRemote(ctx context.Context, o searchOptions, hits []Result, query []Point) ([]Result, error) {
	if o.rerank == nil {
		return hits, nil
	}
	metric, ok := builtinMetric(o.rerank)
	if !ok {
		return nil, errors.New("geodabs: WithExactRerank on a cluster requires a built-in metric (geodabs.DTW or geodabs.DFD): candidates are scored remotely on the shard nodes that retain their raw points, and a custom RerankMetric function cannot cross the wire")
	}
	reranked, err := c.coord.Rerank(ctx, hits, query, metric, o.resultLimit())
	if err != nil {
		return nil, translateClusterErr(err)
	}
	return reranked, nil
}

// builtinMetric maps a RerankMetric to its wire tag when it is one of
// the package's built-in metrics. Comparison is by function pointer:
// DTW and DFD are package-level bindings of the internal
// implementations, so any alias of them resolves to the same code
// pointer.
func builtinMetric(m RerankMetric) (cluster.ExactMetric, bool) {
	switch reflect.ValueOf(m).Pointer() {
	case reflect.ValueOf(DTW).Pointer():
		return cluster.MetricDTW, true
	case reflect.ValueOf(DFD).Pointer():
		return cluster.MetricDFD, true
	}
	return 0, false
}

// searchBatch fans qs out over a worker pool against either engine's
// resolved-options entry. The caller has already parsed the options —
// exactly once per batch — so a bad option fails before any query runs
// and no worker re-resolves the option slice per search.
func searchBatch(ctx context.Context, s preparedSearcher, qs []*Query, workers int, o searchOptions) ([]*SearchResult, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]*SearchResult, len(qs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r, err := s.searchPrepared(ctx, qs[i], o)
				if err != nil {
					fail(err)
					return
				}
				out[i] = r
			}
		}()
	}
dispatch:
	for i := range qs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
