#!/usr/bin/env bash
# End-to-end geodabsd smoke: build the binaries, generate a small
# dataset, serve a snapshot, run a remote query, a remote mutation
# (delete + re-upsert, verified by re-querying), scrape /metrics, then
# SIGTERM and assert a clean drain (exit 0 within the drain timeout).
#
# Usage: scripts/server_smoke.sh
#   RACE=1 scripts/server_smoke.sh   # build everything with -race
#
# Exits non-zero with a FAIL line on the first broken step.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  if [ -f "$TMP/geodabsd.log" ]; then
    echo "--- geodabsd log ---" >&2
    cat "$TMP/geodabsd.log" >&2
  fi
  exit 1
}

BUILD_FLAGS=()
[ "${RACE:-0}" = "1" ] && BUILD_FLAGS+=(-race)

echo "== build"
go build "${BUILD_FLAGS[@]}" -o "$TMP/geodabs" ./cmd/geodabs
go build "${BUILD_FLAGS[@]}" -o "$TMP/geodabsd" ./cmd/geodabsd

echo "== dataset + snapshot"
"$TMP/geodabs" gen -out "$TMP/data" -routes 20 -per-direction 3 -seed 42
"$TMP/geodabs" stats -data "$TMP/data/dataset.bin" -snapshot "$TMP/index.snap" \
  | tee "$TMP/stats.out"
grep -q '^snapshot:' "$TMP/stats.out" || fail "stats wrote no snapshot"

echo "== start geodabsd"
"$TMP/geodabsd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
  -snapshot "$TMP/index.snap" -drain-timeout 10s \
  >"$TMP/geodabsd.log" 2>&1 &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^geodabsd listening on //p' "$TMP/geodabsd.log" | head -1)
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "geodabsd exited before listening"
  sleep 0.2
done
[ -n "$ADDR" ] || fail "geodabsd never reported a listen address"
echo "   serving on $ADDR"

query() {
  "$TMP/geodabs" remote-query -addr "$ADDR" -queries "$TMP/data/queries.bin" \
    -q 0 -limit 5 "$@"
}

echo "== remote query (fingerprint)"
query | tee "$TMP/q1.out"
grep -q 'dJ=' "$TMP/q1.out" || fail "fingerprint query returned no hits"

echo "== remote query (raw)"
query -raw | tee "$TMP/q2.out"
grep -q 'dJ=' "$TMP/q2.out" || fail "raw query returned no hits"

# Mutation round-trip: delete the query's current best hit, check it
# vanishes from the ranking, then restore the dataset and check it is
# served again. ID-agnostic: the victim comes from the server's own
# ranking, not from assumptions about the generator.
TOP_ID=$(awk '/^ 1\. trajectory/ {print $3; exit}' "$TMP/q1.out")
[ -n "$TOP_ID" ] || fail "could not parse top hit ID from query output"

echo "== remote delete trajectory $TOP_ID"
"$TMP/geodabs" remote-delete -addr "$ADDR" "$TOP_ID" | tee "$TMP/del.out"
grep -q '^deleted 1 of 1' "$TMP/del.out" || fail "delete did not apply"
query | tee "$TMP/q3.out"
grep -Eq "trajectory +$TOP_ID " "$TMP/q3.out" && fail "deleted trajectory still ranked"

echo "== remote upsert (restore + pool-reuse churn)"
# Several passes, each ~120 sequential upserts on pooled connections
# with a context cancelled right after every call: this cross-process
# cancel-after-return churn is what caught the client's stale
# deadline-watcher race poisoning recycled connections.
for _ in 1 2 3 4 5; do
  "$TMP/geodabs" remote-upsert -addr "$ADDR" -data "$TMP/data/dataset.bin" \
    | tee "$TMP/up.out"
  grep -q '^upserted' "$TMP/up.out" || fail "upsert did not apply"
done
query | tee "$TMP/q4.out"
grep -Eq "trajectory +$TOP_ID " "$TMP/q4.out" || fail "restored trajectory not ranked again"

echo "== metrics"
METRICS_URL=$(sed -n 's/^metrics on //p' "$TMP/geodabsd.log" | head -1)
[ -n "$METRICS_URL" ] || fail "geodabsd never reported a metrics address"
curl -sSf "$METRICS_URL" >"$TMP/metrics.out"
grep -q 'geodabsd_requests_total{op="search_fp",status="ok"}' "$TMP/metrics.out" \
  || fail "metrics missing search_fp ok counter"
grep -q 'geodabsd_requests_total{op="delete",status="ok"}' "$TMP/metrics.out" \
  || fail "metrics missing delete ok counter"

echo "== drain (SIGTERM)"
kill -TERM "$SERVER_PID"
DEADLINE=$(( $(date +%s) + 15 ))
while kill -0 "$SERVER_PID" 2>/dev/null; do
  [ "$(date +%s)" -ge "$DEADLINE" ] && fail "geodabsd did not exit within 15s of SIGTERM"
  sleep 0.2
done
set +e
wait "$SERVER_PID"
CODE=$?
set -e
SERVER_PID=""
[ "$CODE" -eq 0 ] || fail "geodabsd exited $CODE after SIGTERM (want 0)"
grep -q 'drained cleanly' "$TMP/geodabsd.log" || fail "drain log line missing"

echo "PASS: server smoke"
