#!/usr/bin/env bash
# Durability + replication smoke for geodabsd.
#
# Phase 1 — crash recovery: serve the embedded durable backend
# (-wal-dir), ingest a dataset, capture query results, SIGKILL the
# server mid-churn (no flush, no drain), restart it on the same WAL
# directory, and assert the recovered server ranks the same results.
#
# Phase 2 — read replica: start a durable primary shard node and a
# log-shipped read replica (geodabs serve -replica-of), front the
# primary with two geodabsd instances — one routing reads to the
# replica, one to the primary — wait for replica lag 0 on /metrics, and
# assert both route byte-identical rankings.
#
# Phase 3 — retained-point durability: front two durable shard nodes
# with a point-retaining geodabsd (-retain-points), ingest, capture an
# exact-rerank ranking (remote-query -rerank dtw, scored on the nodes),
# SIGKILL one node mid-churn, restart it from its WAL on the same
# address, and assert the pushed-down rerank recovers the reference
# ranking — the retained raw points must come back through WAL replay.
#
# Usage: scripts/replica_smoke.sh
#   RACE=1 scripts/replica_smoke.sh   # build everything with -race
#
# Exits non-zero with a FAIL line on the first broken step.
set -euo pipefail

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for log in "$TMP"/*.log; do
    [ -f "$log" ] || continue
    echo "--- $(basename "$log") ---" >&2
    cat "$log" >&2
  done
  exit 1
}

# wait_line FILE SED_PATTERN PID — polls FILE until the sed pattern
# extracts a non-empty line, echoing it; fails if PID exits first.
wait_line() {
  local file=$1 pat=$2 pid=$3 out=""
  for _ in $(seq 1 150); do
    out=$(sed -n "$pat" "$file" 2>/dev/null | head -1)
    [ -n "$out" ] && { echo "$out"; return 0; }
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.2
  done
  return 1
}

BUILD_FLAGS=()
[ "${RACE:-0}" = "1" ] && BUILD_FLAGS+=(-race)

echo "== build"
go build "${BUILD_FLAGS[@]}" -o "$TMP/geodabs" ./cmd/geodabs
go build "${BUILD_FLAGS[@]}" -o "$TMP/geodabsd" ./cmd/geodabsd

echo "== dataset"
"$TMP/geodabs" gen -out "$TMP/data" -routes 20 -per-direction 3 -seed 42
TRAJS=$("$TMP/geodabs" stats -data "$TMP/data/dataset.bin" | sed -n 's/^trajectories: *//p')
[ -n "$TRAJS" ] || fail "could not count dataset trajectories"

# hits FILE strips everything but the ranked hit lines — the
# deterministic part of remote-query output (timings vary run to run).
hits() { grep -E '^[ 0-9]+\. trajectory' "$1" || true; }

query_into() { # ADDR OUT — three held-out queries, ranked hits only
  local addr=$1 out=$2 q
  : >"$out"
  for q in 0 1 2; do
    "$TMP/geodabs" remote-query -addr "$addr" -queries "$TMP/data/queries.bin" \
      -q "$q" -limit 5 >"$out.raw" || fail "remote-query -q $q against $addr"
    hits "$out.raw" >>"$out"
  done
}

echo "== phase 1: start durable geodabsd (-wal-dir)"
start_durable() { # LOG — starts geodabsd on the WAL dir, sets SERVER_PID/ADDR
  local log=$1
  "$TMP/geodabsd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
    -wal-dir "$TMP/wal" -drain-timeout 10s >"$log" 2>&1 &
  SERVER_PID=$!
  PIDS+=("$SERVER_PID")
  ADDR=$(wait_line "$log" 's/^geodabsd listening on //p' "$SERVER_PID") \
    || fail "geodabsd (-wal-dir) never reported a listen address"
  METRICS_URL=$(wait_line "$log" 's/^metrics on //p' "$SERVER_PID") \
    || fail "geodabsd (-wal-dir) never reported a metrics address"
}
mkdir -p "$TMP/wal"
start_durable "$TMP/durable1.log"
echo "   serving on $ADDR"

echo "== ingest + capture reference ranking"
"$TMP/geodabs" remote-upsert -addr "$ADDR" -data "$TMP/data/dataset.bin" >/dev/null \
  || fail "initial upsert"
query_into "$ADDR" "$TMP/pre.hits"
[ -s "$TMP/pre.hits" ] || fail "reference queries returned no hits"

curl -sSf "$METRICS_URL" >"$TMP/m1.out"
grep -q 'geodabsd_node_wal_bytes' "$TMP/m1.out" || fail "metrics missing WAL gauges"
grep -q 'geodabsd_node_epoch' "$TMP/m1.out" || fail "metrics missing epoch gauge"

echo "== SIGKILL mid-churn"
# Churn: keep re-upserting the same dataset (same geometry, fresh
# epochs) while the server is killed — recovery must land on a state
# that ranks identically once any single torn upsert is healed.
(
  while :; do
    "$TMP/geodabs" remote-upsert -addr "$ADDR" -data "$TMP/data/dataset.bin" || break
  done
) >/dev/null 2>&1 &
CHURN_PID=$!
PIDS+=("$CHURN_PID")
sleep 1
kill -9 "$SERVER_PID" || fail "could not SIGKILL geodabsd"
wait "$SERVER_PID" 2>/dev/null || true
kill "$CHURN_PID" 2>/dev/null || true
wait "$CHURN_PID" 2>/dev/null || true

echo "== restart from WAL"
start_durable "$TMP/durable2.log"
echo "   recovered on $ADDR"
NODE_ADDR=$(sed -n 's/^serving embedded durable shard node \([^,]*\),.*/\1/p' "$TMP/durable2.log" | head -1)
[ -n "$NODE_ADDR" ] || fail "restarted geodabsd never reported its node address"

# The WAL must have carried the data through the kill: all trajectories
# recovered except at most the single upsert torn mid-flight.
DOCS=$("$TMP/geodabs" stats -nodes "$NODE_ADDR" | sed -n 's/.*postings=[0-9]* docs=\([0-9]*\).*/\1/p' | head -1)
[ -n "$DOCS" ] || fail "could not read recovered doc count"
[ "$DOCS" -ge $((TRAJS - 1)) ] \
  || fail "recovered only $DOCS of $TRAJS trajectories from the WAL"
echo "   $DOCS/$TRAJS trajectories recovered"

# Heal the (at most one) torn upsert, then the ranking must match the
# pre-kill reference byte for byte.
"$TMP/geodabs" remote-upsert -addr "$ADDR" -data "$TMP/data/dataset.bin" >/dev/null \
  || fail "heal upsert after restart"
query_into "$ADDR" "$TMP/post.hits"
diff -u "$TMP/pre.hits" "$TMP/post.hits" \
  || fail "post-restart ranking differs from pre-kill reference"
kill -TERM "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
echo "   rankings match"

echo "== phase 2: primary + read replica pair"
"$TMP/geodabs" serve -addr 127.0.0.1:0 -wal-dir "$TMP/primary-wal" \
  >"$TMP/primary.log" 2>&1 &
PRIMARY_PID=$!
PIDS+=("$PRIMARY_PID")
PRIMARY=$(wait_line "$TMP/primary.log" 's/^durable shard node listening on \([^,]*\),.*/\1/p' "$PRIMARY_PID") \
  || fail "primary shard node never reported its address"

"$TMP/geodabs" serve -addr 127.0.0.1:0 -replica-of "$PRIMARY" \
  >"$TMP/replica.log" 2>&1 &
REPLICA_PID=$!
PIDS+=("$REPLICA_PID")
REPLICA=$(wait_line "$TMP/replica.log" 's/^read replica of .* listening on //p' "$REPLICA_PID") \
  || fail "replica shard node never reported its address"
REPLICA=${REPLICA% (ctrl-c to stop)}
echo "   primary $PRIMARY, replica $REPLICA"

# Two fronts over the same primary: one reads from the replica set, the
# control reads from the primary.
"$TMP/geodabsd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
  -nodes "$PRIMARY" -replicas "$REPLICA" -read-from replicas \
  >"$TMP/front-replica.log" 2>&1 &
FRONT_R_PID=$!
PIDS+=("$FRONT_R_PID")
FRONT_R=$(wait_line "$TMP/front-replica.log" 's/^geodabsd listening on //p' "$FRONT_R_PID") \
  || fail "replica-routed geodabsd never reported a listen address"
FRONT_R_METRICS=$(wait_line "$TMP/front-replica.log" 's/^metrics on //p' "$FRONT_R_PID") \
  || fail "replica-routed geodabsd never reported a metrics address"

echo "== ingest through the replica-routed front"
"$TMP/geodabs" remote-upsert -addr "$FRONT_R" -data "$TMP/data/dataset.bin" >/dev/null \
  || fail "upsert through replica-routed front"

# The control front starts after the ingest, so it must rebuild its
# coordinator directory from the primary's durable state to rank
# anything at all — the -recover-directory restart path.
"$TMP/geodabsd" -addr 127.0.0.1:0 -nodes "$PRIMARY" -recover-directory \
  >"$TMP/front-primary.log" 2>&1 &
FRONT_P_PID=$!
PIDS+=("$FRONT_P_PID")
FRONT_P=$(wait_line "$TMP/front-primary.log" 's/^geodabsd listening on //p' "$FRONT_P_PID") \
  || fail "primary-routed geodabsd never reported a listen address"

echo "== wait for replica lag 0"
LAG_OK=""
for _ in $(seq 1 150); do
  if curl -sSf "$FRONT_R_METRICS" 2>/dev/null \
      | grep -E "^geodabsd_replica_epoch_lag\{" | grep -q ' 0$'; then
    LAG_OK=1
    break
  fi
  sleep 0.2
done
[ -n "$LAG_OK" ] || fail "replica never reached epoch lag 0"

echo "== compare replica-routed vs primary-routed rankings"
query_into "$FRONT_R" "$TMP/replica.hits"
query_into "$FRONT_P" "$TMP/primary.hits"
[ -s "$TMP/replica.hits" ] || fail "replica-routed queries returned no hits"
diff -u "$TMP/primary.hits" "$TMP/replica.hits" \
  || fail "replica-routed ranking differs from primary-routed"
echo "   rankings match"

echo "== phase 3: retained points survive a node SIGKILL"
start_retained_node() { # ADDR WALDIR LOG — starts a durable shard node, sets RNODE_PID
  "$TMP/geodabs" serve -addr "$1" -wal-dir "$2" >"$3" 2>&1 &
  RNODE_PID=$!
  PIDS+=("$RNODE_PID")
}
mkdir -p "$TMP/rn0-wal" "$TMP/rn1-wal"
start_retained_node 127.0.0.1:0 "$TMP/rn0-wal" "$TMP/rnode0.log"
RN0_PID=$RNODE_PID
RN0=$(wait_line "$TMP/rnode0.log" 's/^durable shard node listening on \([^,]*\),.*/\1/p' "$RN0_PID") \
  || fail "retained node 0 never reported its address"
start_retained_node 127.0.0.1:0 "$TMP/rn1-wal" "$TMP/rnode1.log"
RN1_PID=$RNODE_PID
RN1=$(wait_line "$TMP/rnode1.log" 's/^durable shard node listening on \([^,]*\),.*/\1/p' "$RN1_PID") \
  || fail "retained node 1 never reported its address"

"$TMP/geodabsd" -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 \
  -nodes "$RN0,$RN1" -retain-points >"$TMP/front-retain.log" 2>&1 &
FRONT_RR_PID=$!
PIDS+=("$FRONT_RR_PID")
FRONT_RR=$(wait_line "$TMP/front-retain.log" 's/^geodabsd listening on //p' "$FRONT_RR_PID") \
  || fail "retaining geodabsd never reported a listen address"
FRONT_RR_METRICS=$(wait_line "$TMP/front-retain.log" 's/^metrics on //p' "$FRONT_RR_PID") \
  || fail "retaining geodabsd never reported a metrics address"
echo "   nodes $RN0 + $RN1, front $FRONT_RR"

"$TMP/geodabs" remote-upsert -addr "$FRONT_RR" -data "$TMP/data/dataset.bin" >/dev/null \
  || fail "ingest through retaining front"

rerank_into() { # OUT — pinned query, exact DTW rerank, ranked hits only
  "$TMP/geodabs" remote-query -addr "$FRONT_RR" -queries "$TMP/data/queries.bin" \
    -q 0 -knn 5 -rerank dtw >"$1.raw" || return 1
  hits "$1.raw" >"$1"
  [ -s "$1" ]
}
rerank_into "$TMP/rerank-pre.hits" || fail "pre-kill rerank query"
grep -q 'dtw m=' "$TMP/rerank-pre.hits" || fail "rerank output not scored in meters"
curl -sSf "$FRONT_RR_METRICS" >"$TMP/m3.out"
grep -E '^geodabsd_node_retained_points\{' "$TMP/m3.out" | grep -qv ' 0$' \
  || fail "metrics report no retained points after ingest"

# Churn mutations while node 1 dies: recovery must replay the retained
# points from the WAL, not just the postings.
(
  while :; do
    "$TMP/geodabs" remote-upsert -addr "$FRONT_RR" -data "$TMP/data/dataset.bin" || break
  done
) >/dev/null 2>&1 &
CHURN3_PID=$!
PIDS+=("$CHURN3_PID")
sleep 1
kill -9 "$RN1_PID" || fail "could not SIGKILL retained node 1"
wait "$RN1_PID" 2>/dev/null || true
kill "$CHURN3_PID" 2>/dev/null || true
wait "$CHURN3_PID" 2>/dev/null || true

echo "== restart node 1 from its WAL"
start_retained_node "$RN1" "$TMP/rn1-wal" "$TMP/rnode1b.log"
RN1B_PID=$RNODE_PID
wait_line "$TMP/rnode1b.log" 's/^durable shard node listening on \([^,]*\),.*/\1/p' "$RN1B_PID" >/dev/null \
  || fail "restarted retained node never came up"

# Heal the (at most one) torn upsert, then the node-side rerank must
# reproduce the pre-kill ranking — retries cover the front's dead
# pooled connections to the restarted node.
RERANK_OK=""
for _ in $(seq 1 50); do
  if "$TMP/geodabs" remote-upsert -addr "$FRONT_RR" -data "$TMP/data/dataset.bin" >/dev/null 2>&1 \
      && rerank_into "$TMP/rerank-post.hits" 2>/dev/null; then
    RERANK_OK=1
    break
  fi
  sleep 0.2
done
[ -n "$RERANK_OK" ] || fail "rerank never succeeded after node restart"
diff -u "$TMP/rerank-pre.hits" "$TMP/rerank-post.hits" \
  || fail "post-restart rerank ranking differs from pre-kill reference"
echo "   rerank rankings match"

echo "PASS: replica smoke"
