// Package motif solves the paper's second problem (§II-B2): given two
// trajectories and a motif length, find the pair of equal-length
// sub-trajectories at minimum distance.
//
// Two methods are implemented, matching the comparison of §VI-C (Fig 11):
//
//   - FindGeodab translates the motif length into a number of fingerprints
//     and scans windows of the ordered geodab sequences with the Jaccard
//     distance — an approximation that is orders of magnitude cheaper.
//   - FindBTM is the exact baseline in the spirit of bounding-based
//     trajectory motif discovery (Tang et al., EDBT'17): discrete Fréchet
//     distance over every sub-trajectory pair, pruned with a constant-time
//     endpoint lower bound.
package motif

import (
	"errors"
	"fmt"
	"math"

	"geodabs/internal/core"
	"geodabs/internal/distance"
	"geodabs/internal/geo"
)

// Match is a discovered motif pair. Start/End are point indexes into the
// raw trajectories (End exclusive): the motif of trajectory A is
// A[AStart:AEnd], likewise for B.
type Match struct {
	AStart, AEnd int
	BStart, BEnd int
	// Distance is the Jaccard distance of the fingerprint windows for
	// FindGeodab, or the discrete Fréchet distance in meters for FindBTM.
	Distance float64
}

// ErrTooShort is returned when a trajectory cannot hold a motif of the
// requested length.
var ErrTooShort = errors.New("motif: trajectory shorter than the requested motif length")

// FindBTM returns the exact pair of length-l sub-trajectories (in points)
// minimizing the discrete Fréchet distance, scanning all (|a|−l+1)×(|b|−l+1)
// pairs. Each DFD costs O(l²); a pair is skipped when the endpoint lower
// bound max(d(a_i, b_j), d(a_{i+l}, b_{j+l})) ≥ current best, since any
// Fréchet coupling matches both endpoint pairs.
func FindBTM(a, b []geo.Point, l int) (Match, error) {
	if l < 2 {
		return Match{}, fmt.Errorf("motif: length %d too short", l)
	}
	if len(a) < l || len(b) < l {
		return Match{}, ErrTooShort
	}
	best := Match{Distance: math.Inf(1)}
	for i := 0; i+l <= len(a); i++ {
		for j := 0; j+l <= len(b); j++ {
			bound := math.Max(
				geo.Haversine(a[i], b[j]),
				geo.Haversine(a[i+l-1], b[j+l-1]),
			)
			if bound >= best.Distance {
				continue
			}
			d := distance.DFD(a[i:i+l], b[j:j+l])
			if d < best.Distance {
				best = Match{AStart: i, AEnd: i + l, BStart: j, BEnd: j + l, Distance: d}
			}
		}
	}
	return best, nil
}

// FindBTMBrute is FindBTM without the endpoint pruning, used to verify the
// bound's admissibility and to measure the pruning speedup.
func FindBTMBrute(a, b []geo.Point, l int) (Match, error) {
	if l < 2 {
		return Match{}, fmt.Errorf("motif: length %d too short", l)
	}
	if len(a) < l || len(b) < l {
		return Match{}, ErrTooShort
	}
	best := Match{Distance: math.Inf(1)}
	for i := 0; i+l <= len(a); i++ {
		for j := 0; j+l <= len(b); j++ {
			d := distance.DFD(a[i:i+l], b[j:j+l])
			if d < best.Distance {
				best = Match{AStart: i, AEnd: i + l, BStart: j, BEnd: j + l, Distance: d}
			}
		}
	}
	return best, nil
}

// FindGeodab approximates motif discovery with fingerprints (§VI-C): the
// motif length in meters translates to f = l·aᵢ fingerprints per
// trajectory, where aᵢ is trajectory i's fingerprint density per meter;
// the best window pair under Jaccard distance is mapped back to raw point
// ranges through the winnowing positions. The fingerprinter must be
// configured as for indexing.
func FindGeodab(f *core.Fingerprinter, a, b []geo.Point, lengthMeters float64) (Match, error) {
	if lengthMeters <= 0 {
		return Match{}, fmt.Errorf("motif: length %.1f m too short", lengthMeters)
	}
	fa := f.Fingerprint(a)
	fb := f.Fingerprint(b)
	wa, err := windows(fa, a, lengthMeters, f.Config().K)
	if err != nil {
		return Match{}, err
	}
	wb, err := windows(fb, b, lengthMeters, f.Config().K)
	if err != nil {
		return Match{}, err
	}
	best := Match{Distance: math.Inf(1)}
	for _, wi := range wa {
		for _, wj := range wb {
			d := distance.JaccardSorted(wi.set, wj.set)
			if d < best.Distance {
				best = Match{
					AStart: wi.start, AEnd: wi.end,
					BStart: wj.start, BEnd: wj.end,
					Distance: d,
				}
			}
		}
	}
	return best, nil
}

// window is a contiguous run of winnowed fingerprints with its term set
// and the raw point range it covers.
type window struct {
	set        []uint32
	start, end int
}

// windows slices a fingerprint sequence into all windows of
// f = lengthMeters × density fingerprints.
func windows(fp *core.Fingerprint, raw []geo.Point, lengthMeters float64, k int) ([]window, error) {
	n := len(fp.Geodabs)
	if n == 0 {
		return nil, ErrTooShort
	}
	ground := groundLength(raw)
	if ground <= 0 {
		return nil, ErrTooShort
	}
	f := int(math.Round(lengthMeters * float64(n) / ground))
	if f < 1 {
		f = 1
	}
	if f > n {
		return nil, ErrTooShort
	}
	out := make([]window, 0, n-f+1)
	for i := 0; i+f <= n; i++ {
		w := window{set: sortedSet(fp.Geodabs[i : i+f])}
		// Map the window back to raw points: from the first cell of the
		// first k-gram to the last cell of the last k-gram.
		firstCell := fp.Positions[i]
		lastCell := fp.Positions[i+f-1] + k - 1
		if lastCell >= len(fp.Cells) {
			lastCell = len(fp.Cells) - 1
		}
		w.start = fp.Cells[firstCell].First
		w.end = fp.Cells[lastCell].Last + 1
		out = append(out, w)
	}
	return out, nil
}

// sortedSet returns the distinct values of s in ascending order.
func sortedSet(s []uint32) []uint32 {
	out := append([]uint32(nil), s...)
	// Insertion sort: winnowed windows are short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

func groundLength(points []geo.Point) float64 {
	var sum float64
	for i := 1; i < len(points); i++ {
		sum += geo.Haversine(points[i-1], points[i])
	}
	return sum
}
