package motif

import (
	"math"
	"math/rand"
	"testing"

	"geodabs/internal/core"
	"geodabs/internal/geo"
	"geodabs/internal/roadnet"
)

// pathWithSharedSegment builds two trajectories that approach from
// different directions, share a common diagonal segment, and diverge
// again. The shared segment is returned as a point range of each.
func pathWithSharedSegment(noise float64, seedA, seedB int64) (a, b []geo.Point, aShared, bShared [2]int) {
	build := func(seed int64, leadIn float64) ([]geo.Point, [2]int) {
		rng := rand.New(rand.NewSource(seed))
		var pts []geo.Point
		// Lead-in: head east at a latitude offset.
		for i := 0; i < 120; i++ {
			pts = append(pts, noisy(geo.Offset(roadnet.LondonCenter, leadIn, float64(i)*12-1600), noise, rng))
		}
		start := len(pts)
		// Shared segment: diagonal from the center.
		for i := 0; i < 200; i++ {
			pts = append(pts, noisy(geo.Offset(roadnet.LondonCenter, float64(i)*9, float64(i)*9), noise, rng))
		}
		end := len(pts)
		// Lead-out: diverge.
		last := geo.Offset(roadnet.LondonCenter, 9*199, 9*199)
		for i := 0; i < 120; i++ {
			pts = append(pts, noisy(geo.Offset(last, leadIn+float64(i)*10, float64(i)*3), noise, rng))
		}
		return pts, [2]int{start, end}
	}
	a, aShared = build(seedA, 700)
	b, bShared = build(seedB, -900)
	return a, b, aShared, bShared
}

func noisy(p geo.Point, noise float64, rng *rand.Rand) geo.Point {
	if noise == 0 {
		return p
	}
	return geo.Offset(p, rng.NormFloat64()*noise, rng.NormFloat64()*noise)
}

func TestFindBTMRecoversSharedSegment(t *testing.T) {
	a, b, aShared, _ := pathWithSharedSegment(0, 1, 2)
	// Use shorter trajectories to keep the exact method fast.
	a, b = a[:300], b[:300]
	l := 60
	m, err := FindBTM(a, b, l)
	if err != nil {
		t.Fatal(err)
	}
	// The best pair must lie inside the shared segment, where the paths
	// coincide: distance near zero.
	if m.Distance > 50 {
		t.Fatalf("BTM distance = %.1f m, want ≈0 within the shared segment", m.Distance)
	}
	if m.AStart < aShared[0]-l || m.AEnd > aShared[1]+l {
		t.Errorf("BTM motif [%d, %d) not inside shared segment %v", m.AStart, m.AEnd, aShared)
	}
}

func TestFindBTMMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 10; round++ {
		a := randomWalk(rng, 40)
		b := randomWalk(rng, 35)
		l := 5 + rng.Intn(10)
		pruned, err := FindBTM(a, b, l)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := FindBTMBrute(a, b, l)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pruned.Distance-brute.Distance) > 1e-9 {
			t.Fatalf("pruning changed the optimum: %.3f vs %.3f", pruned.Distance, brute.Distance)
		}
	}
}

func randomWalk(rng *rand.Rand, n int) []geo.Point {
	p := roadnet.LondonCenter
	out := make([]geo.Point, n)
	for i := range out {
		p = geo.Offset(p, rng.Float64()*60-30, rng.Float64()*60-30)
		out[i] = p
	}
	return out
}

func TestFindBTMErrors(t *testing.T) {
	a := randomWalk(rand.New(rand.NewSource(1)), 10)
	if _, err := FindBTM(a, a, 1); err == nil {
		t.Error("l=1 should fail")
	}
	if _, err := FindBTM(a, a, 11); err != ErrTooShort {
		t.Errorf("too-long motif: want ErrTooShort, got %v", err)
	}
}

func TestFindGeodabRecoversSharedSegment(t *testing.T) {
	a, b, aShared, bShared := pathWithSharedSegment(8, 3, 4)
	f := core.MustFingerprinter(core.DefaultConfig())
	m, err := FindGeodab(f, a, b, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance > 0.8 {
		t.Fatalf("geodab motif distance = %.3f, want well below 1 on a shared segment", m.Distance)
	}
	// The discovered windows overlap the shared ranges substantially.
	if ov := overlap(m.AStart, m.AEnd, aShared[0], aShared[1]); ov < 0.5 {
		t.Errorf("A motif [%d,%d) overlaps shared %v by only %.0f%%", m.AStart, m.AEnd, aShared, ov*100)
	}
	if ov := overlap(m.BStart, m.BEnd, bShared[0], bShared[1]); ov < 0.5 {
		t.Errorf("B motif [%d,%d) overlaps shared %v by only %.0f%%", m.BStart, m.BEnd, bShared, ov*100)
	}
	// Motif lengths approximate the requested ground length. Fingerprint
	// density is probabilistic (threshold effects, §VI-C), so allow a
	// factor of 2.
	for _, span := range [][2]int{{m.AStart, m.AEnd}, {m.BStart, m.BEnd}} {
		meters := groundLength(aOrB(a, b, span))
		if meters < 400 || meters > 2800 {
			t.Errorf("motif covers %.0f m, want ≈1200", meters)
		}
	}
}

// aOrB slices whichever trajectory the span belongs to; spans are only
// used with their own trajectory, so pick by bounds.
func aOrB(a, b []geo.Point, span [2]int) []geo.Point {
	if span[1] <= len(a) {
		return a[span[0]:span[1]]
	}
	return b[span[0]:span[1]]
}

func overlap(s1, e1, s2, e2 int) float64 {
	inter := min(e1, e2) - max(s1, s2)
	if inter <= 0 {
		return 0
	}
	return float64(inter) / float64(min(e1-s1, e2-s2))
}

func TestFindGeodabDisjointTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := core.MustFingerprinter(core.DefaultConfig())
	// Two straight trajectories far apart: no common fingerprints, so the
	// best window distance is 1.
	var a, b []geo.Point
	for i := 0; i < 400; i++ {
		a = append(a, noisy(geo.Offset(roadnet.LondonCenter, float64(i)*8, float64(i)*8), 5, rng))
		b = append(b, noisy(geo.Offset(roadnet.LondonCenter, 20000+float64(i)*8, float64(i)*8), 5, rng))
	}
	m, err := FindGeodab(f, a, b, 800)
	if err != nil {
		t.Fatal(err)
	}
	if m.Distance < 1 {
		t.Errorf("disjoint trajectories should have distance 1, got %.3f", m.Distance)
	}
}

func TestFindGeodabErrors(t *testing.T) {
	f := core.MustFingerprinter(core.DefaultConfig())
	a, b, _, _ := pathWithSharedSegment(5, 6, 7)
	if _, err := FindGeodab(f, a, b, 0); err == nil {
		t.Error("zero length should fail")
	}
	if _, err := FindGeodab(f, a, b, 1e7); err != ErrTooShort {
		t.Errorf("huge motif: want ErrTooShort, got %v", err)
	}
	if _, err := FindGeodab(f, nil, b, 500); err != ErrTooShort {
		t.Errorf("empty trajectory: want ErrTooShort, got %v", err)
	}
	short := a[:40] // too short to fingerprint at all
	if _, err := FindGeodab(f, short, b, 500); err != ErrTooShort {
		t.Errorf("unfingerprinted trajectory: want ErrTooShort, got %v", err)
	}
}

func TestSortedSet(t *testing.T) {
	got := sortedSet([]uint32{5, 1, 5, 3, 1})
	want := []uint32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("sortedSet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedSet = %v, want %v", got, want)
		}
	}
	if out := sortedSet(nil); len(out) != 0 {
		t.Errorf("sortedSet(nil) = %v", out)
	}
}

func BenchmarkFindBTM(b *testing.B) {
	a, bb, _, _ := pathWithSharedSegment(0, 1, 2)
	a, bb = a[:200], bb[:200]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindBTM(a, bb, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindGeodab(b *testing.B) {
	a, bb, _, _ := pathWithSharedSegment(8, 1, 2)
	f := core.MustFingerprinter(core.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindGeodab(f, a, bb, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
