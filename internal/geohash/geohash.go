// Package geohash implements bit-level geohashes (Niemeyer, 2008): a point
// is mapped to a sequence of bits that repeatedly bisect the
// longitude/latitude space, longitude first. The ordered list of cells at a
// given depth forms a Z-order space-filling curve, which the sharding layer
// exploits to place nearby cells on the same shard (paper §III-C, Fig 2).
//
// Unlike the common base32 representation, depths here are expressed in
// bits, so the paper's 32/34/36/38/40-bit normalization grids (Fig 8) and
// 16-bit shard prefixes are all first-class values.
package geohash

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"

	"geodabs/internal/geo"
)

// MaxDepth is the maximum supported precision in bits. 60 bits (30 bits per
// axis) resolves to under 4 cm at the equator, well below GPS accuracy.
const MaxDepth = 60

// Hash is a geohash of a given precision. Bits holds the hash right-aligned:
// the most significant of the Depth bits is the first (longitude) bisection.
// The zero value is the whole-earth cell (depth 0).
type Hash struct {
	Bits  uint64
	Depth uint8
}

// Encode returns the depth-bit geohash of the cell containing p.
// It panics if depth exceeds MaxDepth; latitudes and longitudes outside the
// valid domain are clamped.
func Encode(p geo.Point, depth uint8) Hash {
	if depth > MaxDepth {
		panic(fmt.Sprintf("geohash: depth %d exceeds MaxDepth %d", depth, MaxDepth))
	}
	full := interleave(lonBits(p.Lon), latBits(p.Lat))
	return Hash{Bits: full >> (64 - depth), Depth: depth}
}

// lonBits maps a longitude to a 32-bit fixed-point fraction of [-180, 180).
func lonBits(lon float64) uint32 {
	return fixed((lon + 180) / 360)
}

// latBits maps a latitude to a 32-bit fixed-point fraction of [-90, 90).
func latBits(lat float64) uint32 {
	return fixed((lat + 90) / 180)
}

func fixed(u float64) uint32 {
	v := u * (1 << 32)
	if v <= 0 {
		return 0
	}
	if v >= (1<<32)-1 {
		return math.MaxUint32
	}
	return uint32(v)
}

// interleave spreads x into the even-from-MSB positions (bit 63, 61, ...)
// and y into the odd positions (bit 62, 60, ...), so the top d bits of the
// result form the depth-d geohash.
func interleave(x, y uint32) uint64 {
	return spread(x)<<1 | spread(y)
}

// spread inserts a zero bit above each bit of v: bit i of v moves to
// bit 2i of the result.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Encoder encodes a stream of points at one fixed depth, exploiting the
// spatial coherence of trajectories: the cell of a point is a pure
// function of the top (depth+1)/2 bits of its fixed-point longitude and
// depth/2 bits of its latitude, so when those match the previous point's
// — the common case, points being meters apart and cells tens of meters
// wide — the previous hash is returned without re-running the bit
// interleave. Results are bit-identical to Encode. The zero value is not
// valid; construct with NewEncoder. An Encoder is not safe for concurrent
// use.
type Encoder struct {
	depth              uint8
	lonShift, latShift uint8
	x, y               uint32
	last               Hash
	primed             bool
}

// NewEncoder returns an encoder producing depth-bit hashes. It panics if
// depth exceeds MaxDepth.
func NewEncoder(depth uint8) Encoder {
	if depth > MaxDepth {
		panic(fmt.Sprintf("geohash: depth %d exceeds MaxDepth %d", depth, MaxDepth))
	}
	nLon, nLat := (depth+1)/2, depth/2
	return Encoder{depth: depth, lonShift: 32 - nLon, latShift: 32 - nLat}
}

// Encode returns the depth-bit geohash of the cell containing p,
// equal to Encode(p, depth).
func (e *Encoder) Encode(p geo.Point) Hash {
	x, y := lonBits(p.Lon), latBits(p.Lat)
	// Shifts of 32 (depth 0, or latitude at depth 1) must discard all
	// bits; uint32>>32 would be a no-op on some targets, so mask via
	// 64-bit shift semantics.
	xTop := uint64(x) >> e.lonShift
	yTop := uint64(y) >> e.latShift
	if e.primed && xTop == uint64(e.x) && yTop == uint64(e.y) {
		return e.last
	}
	e.x, e.y = uint32(xTop), uint32(yTop)
	e.last = Hash{Bits: interleave(x, y) >> (64 - e.depth), Depth: e.depth}
	e.primed = true
	return e.last
}

// compact is the inverse of spread: it extracts every other bit, bit 2i of
// v becoming bit i of the result.
func compact(v uint64) uint32 {
	x := v & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// axisBits returns how many of the hash's bits refer to the longitude and
// latitude axes respectively.
func (h Hash) axisBits() (lon, lat uint8) {
	return (h.Depth + 1) / 2, h.Depth / 2
}

// Bounds returns the cell covered by the hash.
func (h Hash) Bounds() geo.Box {
	full := h.Bits << (64 - h.Depth)
	x, y := compact(full>>1), compact(full)
	nLon, nLat := h.axisBits()
	// Keep only the meaningful top bits of each axis.
	x >>= 32 - nLon
	y >>= 32 - nLat
	if nLon == 32 {
		nLon = 31 // avoid shift overflow below; depth ≤ 60 keeps us ≤ 30
	}
	lonW := 360 / float64(uint64(1)<<nLon)
	latW := 180 / float64(uint64(1)<<nLat)
	minLon := float64(x)*lonW - 180
	minLat := float64(y)*latW - 90
	b := geo.NewBox(
		geo.Point{Lat: minLat, Lon: minLon},
		geo.Point{Lat: minLat + latW, Lon: minLon + lonW},
	)
	return b
}

// Center returns the center point of the cell.
func (h Hash) Center() geo.Point {
	return h.Bounds().Center()
}

// Contains reports whether p falls inside the hash's cell.
func (h Hash) Contains(p geo.Point) bool {
	return Encode(p, h.Depth) == h
}

// Prefix returns the hash truncated to the given depth. It panics if depth
// exceeds the hash's own depth.
func (h Hash) Prefix(depth uint8) Hash {
	if depth > h.Depth {
		panic(fmt.Sprintf("geohash: prefix depth %d exceeds hash depth %d", depth, h.Depth))
	}
	return Hash{Bits: h.Bits >> (h.Depth - depth), Depth: depth}
}

// IsPrefixOf reports whether h is a (non-strict) prefix of o on the
// bisection tree, i.e. whether h's cell contains o's cell.
func (h Hash) IsPrefixOf(o Hash) bool {
	return h.Depth <= o.Depth && o.Prefix(h.Depth) == h
}

// leftAligned returns the hash bits shifted to start at bit 63.
func (h Hash) leftAligned() uint64 {
	if h.Depth == 0 {
		return 0
	}
	return h.Bits << (64 - h.Depth)
}

// CommonPrefix returns the deepest hash that is a prefix of both a and b:
// the smallest bisection cell containing both cells.
func CommonPrefix(a, b Hash) Hash {
	depth := min(a.Depth, b.Depth)
	if lz := uint8(bits.LeadingZeros64(a.leftAligned() ^ b.leftAligned())); lz < depth {
		depth = lz
	}
	if depth == 0 {
		return Hash{}
	}
	return a.Prefix(depth)
}

// Cover returns the deepest geohash (up to maxDepth bits) whose cell
// contains every given point: the "highest precision geohash that overlaps
// with the whole set" of the paper (§III-C). Covering an empty set returns
// the whole-earth cell.
func Cover(points []geo.Point, maxDepth uint8) Hash {
	if len(points) == 0 {
		return Hash{}
	}
	h := Encode(points[0], maxDepth)
	for _, p := range points[1:] {
		if h.Depth == 0 {
			break
		}
		h = CommonPrefix(h, Encode(p, maxDepth))
	}
	return h
}

// CoverHashes returns the deepest common prefix of the given hashes,
// the cell-id analogue of Cover. Covering an empty set returns the
// whole-earth cell.
func CoverHashes(hashes []Hash) Hash {
	if len(hashes) == 0 {
		return Hash{}
	}
	h := hashes[0]
	for _, o := range hashes[1:] {
		if h.Depth == 0 {
			break
		}
		h = CommonPrefix(h, o)
	}
	return h
}

// String returns the hash as a binary string, e.g. "110101", matching the
// paper's Figure 2 notation. The whole-earth cell renders as "ε".
func (h Hash) String() string {
	if h.Depth == 0 {
		return "ε"
	}
	var sb strings.Builder
	sb.Grow(int(h.Depth))
	for i := int(h.Depth) - 1; i >= 0; i-- {
		if h.Bits>>uint(i)&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// CellSize returns the approximate width (east-west) and height
// (north-south) in meters of cells at the given depth and latitude. At
// 36 bits near London this is roughly 95 m × 76 m, the numbers the paper
// uses to translate the winnowing bounds k and t into ground distances.
func CellSize(depth uint8, lat float64) (width, height float64) {
	nLon := uint((depth + 1) / 2)
	nLat := uint(depth / 2)
	lonDeg := 360 / float64(uint64(1)<<nLon)
	latDeg := 180 / float64(uint64(1)<<nLat)
	const metersPerDegree = 2 * math.Pi * geo.EarthRadius / 360
	width = lonDeg * metersPerDegree * math.Cos(lat*math.Pi/180)
	height = latDeg * metersPerDegree
	return width, height
}

// base32Alphabet is the standard geohash alphabet.
const base32Alphabet = "0123456789bcdefghjkmnpqrstuvwxyz"

var errBase32Depth = errors.New("geohash: base32 requires a depth that is a multiple of 5")

// Base32 renders the hash in the standard geohash text form. It returns an
// error if the depth is not a multiple of 5 bits.
func (h Hash) Base32() (string, error) {
	if h.Depth%5 != 0 {
		return "", errBase32Depth
	}
	n := int(h.Depth / 5)
	buf := make([]byte, n)
	for i := 0; i < n; i++ {
		shift := uint(h.Depth) - uint(i+1)*5
		buf[i] = base32Alphabet[h.Bits>>shift&0x1f]
	}
	return string(buf), nil
}

// FromBase32 parses a standard geohash string into a Hash of depth
// 5×len(s).
func FromBase32(s string) (Hash, error) {
	if len(s)*5 > MaxDepth {
		return Hash{}, fmt.Errorf("geohash: %q is too long (max %d characters)", s, MaxDepth/5)
	}
	var h Hash
	for _, c := range []byte(s) {
		v := strings.IndexByte(base32Alphabet, lower(c))
		if v < 0 {
			return Hash{}, fmt.Errorf("geohash: invalid base32 character %q", c)
		}
		h.Bits = h.Bits<<5 | uint64(v)
		h.Depth += 5
	}
	return h, nil
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// Neighbor returns the adjacent cell of the same depth in the given
// direction (north, south, east or west), wrapping across the antimeridian.
// Asking for the northern neighbor of a polar cell returns the cell itself.
func (h Hash) Neighbor(dir Direction) Hash {
	c := h.Center()
	b := h.Bounds()
	switch dir {
	case North:
		lat := b.MaxLat + (b.MaxLat-b.MinLat)/2
		if lat > 90 {
			return h
		}
		c.Lat = lat
	case South:
		lat := b.MinLat - (b.MaxLat-b.MinLat)/2
		if lat < -90 {
			return h
		}
		c.Lat = lat
	case East:
		c.Lon = geo.NormalizeLon(b.MaxLon + (b.MaxLon-b.MinLon)/2)
	case West:
		c.Lon = geo.NormalizeLon(b.MinLon - (b.MaxLon-b.MinLon)/2)
	default:
		panic(fmt.Sprintf("geohash: invalid direction %d", dir))
	}
	return Encode(c, h.Depth)
}

// Direction identifies one of the four cell neighbors.
type Direction uint8

// The four cardinal neighbor directions.
const (
	North Direction = iota + 1
	South
	East
	West
)

// CurvePosition returns the position of the cell on the Z-order
// space-filling curve at its depth, in [0, 2^depth). Cells that are close
// on the curve are close in space (the converse does not hold), which is
// the property the sharding strategy relies on (paper Fig 2b-c).
func (h Hash) CurvePosition() uint64 {
	return h.Bits
}
