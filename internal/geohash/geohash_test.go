package geohash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"geodabs/internal/geo"
)

var london = geo.Point{Lat: 51.5074, Lon: -0.1278}

func TestEncodeKnownValues(t *testing.T) {
	// Reference values from the standard geohash algorithm: the base32
	// geohash of central London is "gcpvj0du…"; of Sydney "r3gx2…".
	tests := []struct {
		name  string
		p     geo.Point
		depth uint8
		want  string
	}{
		{"london-25", london, 25, "gcpvj"},
		{"sydney-25", geo.Point{Lat: -33.8688, Lon: 151.2093}, 25, "r3gx2"},
		{"null-island-10", geo.Point{Lat: 0, Lon: 0}, 10, "s0"},
		{"rio-15", geo.Point{Lat: -22.9068, Lon: -43.1729}, 15, "75c"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Encode(tt.p, tt.depth).Base32()
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Encode(%v, %d) = %q, want %q", tt.p, tt.depth, got, tt.want)
			}
		})
	}
}

func TestEncodeFirstBits(t *testing.T) {
	// First bit: 1 iff lon >= 0. Second bit: 1 iff lat >= 0 (Fig 2a).
	tests := []struct {
		p    geo.Point
		want string
	}{
		{geo.Point{Lat: 45, Lon: 90}, "11"},
		{geo.Point{Lat: 45, Lon: -90}, "01"},
		{geo.Point{Lat: -45, Lon: 90}, "10"},
		{geo.Point{Lat: -45, Lon: -90}, "00"},
	}
	for _, tt := range tests {
		if got := Encode(tt.p, 2).String(); got != tt.want {
			t.Errorf("Encode(%v, 2) = %s, want %s", tt.p, got, tt.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 1000}
	f := func(latSeed, lonSeed uint32, depthSeed uint8) bool {
		p := geo.Point{
			Lat: float64(latSeed)/math.MaxUint32*180 - 90,
			Lon: float64(lonSeed)/math.MaxUint32*360 - 180,
		}
		depth := depthSeed%MaxDepth + 1
		h := Encode(p, depth)
		b := h.Bounds()
		if !b.Contains(p) {
			// The fixed-point clamp can push points on the extreme edge
			// into the last cell; allow a hair of tolerance.
			eps := 1e-7
			grown := geo.NewBox(
				geo.Point{Lat: b.MinLat - eps, Lon: b.MinLon - eps},
				geo.Point{Lat: b.MaxLat + eps, Lon: b.MaxLon + eps},
			)
			if !grown.Contains(p) {
				t.Logf("point %v outside bounds %+v of %s (depth %d)", p, b, h, depth)
				return false
			}
		}
		// Re-encoding the center must give the same hash.
		return Encode(h.Center(), depth) == h
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPrefixAndCommonPrefix(t *testing.T) {
	h := Encode(london, 40)
	for d := uint8(0); d <= 40; d++ {
		pre := h.Prefix(d)
		if pre.Depth != d {
			t.Fatalf("Prefix(%d).Depth = %d", d, pre.Depth)
		}
		if !pre.IsPrefixOf(h) {
			t.Fatalf("Prefix(%d) not a prefix of the full hash", d)
		}
		if !pre.Contains(london) {
			t.Fatalf("Prefix(%d) cell does not contain the encoded point", d)
		}
	}
	if got := CommonPrefix(h, h); got != h {
		t.Errorf("CommonPrefix(h, h) = %v, want %v", got, h)
	}
	// Two nearby points share a long prefix; distant points share few bits.
	near := Encode(geo.Point{Lat: 51.5075, Lon: -0.1279}, 40)
	far := Encode(geo.Point{Lat: -33.9, Lon: 151.2}, 40)
	if cp := CommonPrefix(h, near); cp.Depth < 20 {
		t.Errorf("nearby points share only %d bits", cp.Depth)
	}
	if cp := CommonPrefix(h, far); cp.Depth > 2 {
		t.Errorf("antipodal-ish points share %d bits", cp.Depth)
	}
}

func TestCommonPrefixMismatchedDepths(t *testing.T) {
	a := Encode(london, 40)
	b := Encode(london, 25)
	if got := CommonPrefix(a, b); got != b {
		t.Errorf("CommonPrefix across depths = %v, want %v", got, b)
	}
}

func TestCover(t *testing.T) {
	if got := Cover(nil, 40); got.Depth != 0 {
		t.Errorf("Cover(nil) = %v, want whole earth", got)
	}
	pts := []geo.Point{
		london,
		{Lat: 51.5080, Lon: -0.1270},
		{Lat: 51.5068, Lon: -0.1290},
	}
	h := Cover(pts, 40)
	if h.Depth == 0 {
		t.Fatal("Cover of nearby points should share bits")
	}
	bounds := h.Bounds()
	for _, p := range pts {
		if !bounds.Contains(p) {
			t.Errorf("cover cell %s does not contain %v", h, p)
		}
	}
	// The next-deeper prefix of the first point must exclude some point.
	if h.Depth < 40 {
		deeper := Encode(pts[0], h.Depth+1)
		all := true
		for _, p := range pts {
			if !deeper.Contains(p) {
				all = false
			}
		}
		if all {
			t.Errorf("cover %s is not maximal: depth %d still contains all", h, h.Depth+1)
		}
	}
}

func TestCoverHashes(t *testing.T) {
	hs := []Hash{Encode(london, 36), Encode(geo.Point{Lat: 51.51, Lon: -0.12}, 36)}
	want := CommonPrefix(hs[0], hs[1])
	if got := CoverHashes(hs); got != want {
		t.Errorf("CoverHashes = %v, want %v", got, want)
	}
	if got := CoverHashes(nil); got.Depth != 0 {
		t.Errorf("CoverHashes(nil) = %v, want whole earth", got)
	}
}

func TestBase32RoundTrip(t *testing.T) {
	h := Encode(london, 40)
	s, err := h.Base32()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromBase32(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("FromBase32(%q) = %v, want %v", s, back, h)
	}
	if _, err := Encode(london, 36).Base32(); err == nil {
		t.Error("Base32 of depth 36 should fail (not a multiple of 5)")
	}
	if _, err := FromBase32("a"); err == nil {
		t.Error(`FromBase32("a") should fail: 'a' is not in the alphabet`)
	}
	if _, err := FromBase32("0123456789012"); err == nil {
		t.Error("FromBase32 of 13 chars (65 bits) should fail")
	}
	if up, err := FromBase32("GCPVJ"); err != nil || up != Encode(london, 25) {
		t.Errorf("FromBase32 should accept upper case, got %v, %v", up, err)
	}
}

func TestString(t *testing.T) {
	if got := (Hash{}).String(); got != "ε" {
		t.Errorf("whole-earth String = %q", got)
	}
	h := Hash{Bits: 0b110101, Depth: 6}
	if got := h.String(); got != "110101" {
		t.Errorf("String = %q, want 110101", got)
	}
}

func TestCellSize(t *testing.T) {
	// Paper §VI-A2: "In London, a geohash of 36 bits has a width of 95
	// meters and a height of 76 meters."
	w, h := CellSize(36, london.Lat)
	if math.Abs(w-95) > 3 {
		t.Errorf("36-bit cell width in London = %.1fm, want ≈95m", w)
	}
	if math.Abs(h-76) > 3 {
		t.Errorf("36-bit cell height in London = %.1fm, want ≈76m", h)
	}
	// Paper §VI-E: depth-16 cells are ≈156 km wide at the equator.
	w, _ = CellSize(16, 0)
	if math.Abs(w-156_000) > 5000 {
		t.Errorf("16-bit cell width at equator = %.0fm, want ≈156km", w)
	}
}

func TestNeighbor(t *testing.T) {
	h := Encode(london, 30)
	for _, dir := range []Direction{North, South, East, West} {
		n := h.Neighbor(dir)
		if n == h {
			t.Errorf("neighbor %d equals the cell itself", dir)
		}
		if n.Depth != h.Depth {
			t.Errorf("neighbor depth = %d, want %d", n.Depth, h.Depth)
		}
		// Neighbors must be adjacent: bounds intersect after a hair of
		// growth, and centers are within ~2 cell diagonals.
		hw, hh := CellSize(30, london.Lat)
		if d := geo.Haversine(h.Center(), n.Center()); d > 2*math.Hypot(hw, hh) {
			t.Errorf("neighbor %d center %.0fm away", dir, d)
		}
	}
	// Polar edge: the northern neighbor at the pole is the cell itself.
	pole := Encode(geo.Point{Lat: 89.99, Lon: 0}, 10)
	if n := pole.Neighbor(North); n != pole {
		t.Errorf("north of polar cell = %v, want the cell itself", n)
	}
}

func TestNeighborRoundTrip(t *testing.T) {
	h := Encode(london, 26)
	if got := h.Neighbor(East).Neighbor(West); got != h {
		t.Errorf("E then W = %v, want %v", got, h)
	}
	if got := h.Neighbor(North).Neighbor(South); got != h {
		t.Errorf("N then S = %v, want %v", got, h)
	}
}

func TestCurvePositionLocality(t *testing.T) {
	// Points in the same depth-16 cell share the curve position prefix.
	a := Encode(london, 36)
	b := Encode(geo.Point{Lat: 51.52, Lon: -0.13}, 36)
	if a.Prefix(16).CurvePosition() != b.Prefix(16).CurvePosition() {
		t.Error("nearby points should share the depth-16 curve position")
	}
}

func TestSpreadCompactInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v := rng.Uint32()
		if got := compact(spread(v)); got != v {
			t.Fatalf("compact(spread(%#x)) = %#x", v, got)
		}
	}
}

func TestEncodePanicsOnDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Encode with depth 61 should panic")
		}
	}()
	Encode(london, MaxDepth+1)
}

func BenchmarkEncode36(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(london, 36)
	}
}

func BenchmarkCover6Points(b *testing.B) {
	pts := make([]geo.Point, 6)
	for i := range pts {
		pts[i] = geo.Offset(london, float64(i)*80, float64(i)*30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Cover(pts, 36)
	}
}

// TestEncoderMatchesEncode pins the streaming encoder's fast path to the
// one-shot Encode across depths, including cell-boundary hops and repeats.
func TestEncoderMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, depth := range []uint8{0, 1, 2, 5, 16, 36, 40, 60} {
		enc := NewEncoder(depth)
		lat, lon := 51.5, -0.12
		for i := 0; i < 2000; i++ {
			// Mostly tiny steps (same-cell hits), occasional jumps.
			step := 0.000001
			if rng.Intn(20) == 0 {
				step = 0.3
			}
			lat += (rng.Float64() - 0.5) * step
			lon += (rng.Float64() - 0.5) * step
			p := geo.Point{Lat: lat, Lon: lon}
			if got, want := enc.Encode(p), Encode(p, depth); got != want {
				t.Fatalf("depth %d point %v: Encoder %v, Encode %v", depth, p, got, want)
			}
		}
		// Domain edges (clamping paths).
		for _, p := range []geo.Point{{Lat: 90, Lon: 180}, {Lat: -90, Lon: -180}, {Lat: 0, Lon: 0}} {
			if got, want := enc.Encode(p), Encode(p, depth); got != want {
				t.Fatalf("depth %d edge %v: Encoder %v, Encode %v", depth, p, got, want)
			}
		}
	}
}
