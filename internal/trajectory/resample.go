package trajectory

import (
	"math"

	"geodabs/internal/geo"
)

// Resample returns the trajectory's path re-sampled at a constant spacing
// in meters along the polyline. GPS devices record at different rates
// (paper Fig 4a); resampling to a common spatial rate is the first step
// of normalizing them onto one grid, and makes fingerprints largely
// invariant to the original sampling rate.
func Resample(points []geo.Point, spacingMeters float64) []geo.Point {
	if len(points) == 0 || spacingMeters <= 0 {
		return points
	}
	out := []geo.Point{points[0]}
	carry := 0.0 // distance already walked toward the next sample
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		leg := geo.Haversine(a, b)
		if leg == 0 {
			continue
		}
		// Emit samples every spacing meters along this leg.
		for walked := spacingMeters - carry; walked <= leg; walked += spacingMeters {
			out = append(out, geo.Interpolate(a, b, walked/leg))
		}
		carry = math.Mod(carry+leg, spacingMeters)
	}
	// Keep the endpoint so the trajectory's extent is preserved.
	last := points[len(points)-1]
	if out[len(out)-1] != last {
		out = append(out, last)
	}
	return out
}
