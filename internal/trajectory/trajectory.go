// Package trajectory defines the trajectory model of the paper (§II-A):
// a trajectory is a finite sequence of latitude/longitude points sampled
// from a moving object's continuous position function, together with
// identifiers used by the index, the generator and the ground truth.
package trajectory

import (
	"fmt"

	"geodabs/internal/geo"
)

// ID identifies a trajectory within a dataset. IDs are dense small
// integers so that posting lists compress well in roaring bitmaps.
type ID uint32

// Direction tells which way a generated trajectory travels along its
// source route. Real-world datasets leave it DirectionUnknown.
type Direction uint8

// Directions of travel along a route.
const (
	DirectionUnknown Direction = iota
	Forward
	Reverse
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Reverse:
		return "reverse"
	default:
		return "unknown"
	}
}

// Trajectory is a sequence of points S = ⟨s1, …, sn⟩ sampled at a constant
// rate (the generator uses 1 Hz). Route and Dir carry generator provenance:
// two trajectories are "relevant" to each other, in the ground-truth sense,
// when they share both.
type Trajectory struct {
	ID     ID
	Route  uint32
	Dir    Direction
	Points []geo.Point
}

// Len returns the number of points, the length(S) of the paper.
func (t *Trajectory) Len() int { return len(t.Points) }

// GroundLength returns the cumulative haversine length in meters.
func (t *Trajectory) GroundLength() float64 {
	var sum float64
	for i := 1; i < len(t.Points); i++ {
		sum += geo.Haversine(t.Points[i-1], t.Points[i])
	}
	return sum
}

// Bounds returns the bounding box of all points.
func (t *Trajectory) Bounds() geo.Box {
	return geo.NewBox(t.Points...)
}

// Sub returns the motif S̄ = ⟨s_i, …, s_{j-1}⟩ as a trajectory sharing the
// receiver's identifiers. The points slice is shared, not copied.
func (t *Trajectory) Sub(i, j int) *Trajectory {
	return &Trajectory{ID: t.ID, Route: t.Route, Dir: t.Dir, Points: t.Points[i:j]}
}

// Clone returns a deep copy.
func (t *Trajectory) Clone() *Trajectory {
	out := *t
	out.Points = append([]geo.Point(nil), t.Points...)
	return &out
}

// Reversed returns a copy with the points in opposite order and the
// direction flag flipped.
func (t *Trajectory) Reversed() *Trajectory {
	out := t.Clone()
	for i, j := 0, len(out.Points)-1; i < j; i, j = i+1, j-1 {
		out.Points[i], out.Points[j] = out.Points[j], out.Points[i]
	}
	switch t.Dir {
	case Forward:
		out.Dir = Reverse
	case Reverse:
		out.Dir = Forward
	}
	return out
}

// String implements fmt.Stringer.
func (t *Trajectory) String() string {
	return fmt.Sprintf("trajectory %d (route %d, %s, %d points)", t.ID, t.Route, t.Dir, len(t.Points))
}

// Dataset is an ordered collection of trajectories, D = {S1, …, Sn}.
type Dataset struct {
	Trajectories []*Trajectory
}

// Len returns the number of trajectories.
func (d *Dataset) Len() int { return len(d.Trajectories) }

// Add appends a trajectory.
func (d *Dataset) Add(t *Trajectory) { d.Trajectories = append(d.Trajectories, t) }

// ByID returns the trajectory with the given ID, or nil. IDs assigned by
// the generator are positional, making this O(1); otherwise it scans.
func (d *Dataset) ByID(id ID) *Trajectory {
	if i := int(id); i < len(d.Trajectories) && d.Trajectories[i] != nil && d.Trajectories[i].ID == id {
		return d.Trajectories[i]
	}
	for _, t := range d.Trajectories {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// TotalPoints returns the number of points across all trajectories.
func (d *Dataset) TotalPoints() int {
	n := 0
	for _, t := range d.Trajectories {
		n += len(t.Points)
	}
	return n
}
