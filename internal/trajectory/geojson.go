package trajectory

import (
	"encoding/json"
	"fmt"
	"io"

	"geodabs/internal/geo"
)

// GeoJSON interop: trajectories serialize as a FeatureCollection of
// LineString features with id/route/direction properties, the format GIS
// tools (QGIS, kepler.gl, geojson.io) consume directly.

type geoJSONFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string          `json:"type"`
	Properties geoJSONProps    `json:"properties"`
	Geometry   geoJSONGeometry `json:"geometry"`
}

type geoJSONProps struct {
	ID        uint32 `json:"id"`
	Route     uint32 `json:"route"`
	Direction string `json:"direction"`
}

type geoJSONGeometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"` // [lon, lat] per the spec
}

// WriteGeoJSON serializes the dataset as a GeoJSON FeatureCollection.
func WriteGeoJSON(w io.Writer, d *Dataset) error {
	fc := geoJSONFeatureCollection{
		Type:     "FeatureCollection",
		Features: make([]geoJSONFeature, 0, len(d.Trajectories)),
	}
	for _, t := range d.Trajectories {
		coords := make([][2]float64, len(t.Points))
		for i, p := range t.Points {
			coords[i] = [2]float64{p.Lon, p.Lat}
		}
		fc.Features = append(fc.Features, geoJSONFeature{
			Type: "Feature",
			Properties: geoJSONProps{
				ID:        uint32(t.ID),
				Route:     t.Route,
				Direction: t.Dir.String(),
			},
			Geometry: geoJSONGeometry{Type: "LineString", Coordinates: coords},
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("trajectory: geojson encode: %w", err)
	}
	return nil
}

// ReadGeoJSON parses a FeatureCollection of LineStrings written by
// WriteGeoJSON (or by any GIS tool emitting the same properties; missing
// properties default to zero values).
func ReadGeoJSON(r io.Reader) (*Dataset, error) {
	var fc geoJSONFeatureCollection
	if err := json.NewDecoder(r).Decode(&fc); err != nil {
		return nil, fmt.Errorf("trajectory: geojson decode: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("trajectory: geojson type %q, want FeatureCollection", fc.Type)
	}
	d := &Dataset{Trajectories: make([]*Trajectory, 0, len(fc.Features))}
	for i, f := range fc.Features {
		if f.Geometry.Type != "LineString" {
			return nil, fmt.Errorf("trajectory: feature %d has geometry %q, want LineString", i, f.Geometry.Type)
		}
		t := &Trajectory{
			ID:     ID(f.Properties.ID),
			Route:  f.Properties.Route,
			Dir:    parseDirection(f.Properties.Direction),
			Points: make([]geo.Point, len(f.Geometry.Coordinates)),
		}
		for j, c := range f.Geometry.Coordinates {
			t.Points[j] = geo.Point{Lat: c[1], Lon: c[0]}
		}
		d.Add(t)
	}
	return d, nil
}

func parseDirection(s string) Direction {
	switch s {
	case "forward":
		return Forward
	case "reverse":
		return Reverse
	default:
		return DirectionUnknown
	}
}
