package trajectory

import (
	"math"
	"testing"

	"geodabs/internal/geo"
)

func TestResampleSpacing(t *testing.T) {
	// A 1 km line sampled every 5 m, resampled to 50 m spacing.
	base := geo.Point{Lat: 51.5, Lon: -0.12}
	var pts []geo.Point
	for i := 0; i <= 200; i++ {
		pts = append(pts, geo.Offset(base, 0, float64(i)*5))
	}
	out := Resample(pts, 50)
	if len(out) < 19 || len(out) > 23 {
		t.Fatalf("resampled to %d points, want ≈21", len(out))
	}
	for i := 1; i < len(out)-1; i++ {
		d := geo.Haversine(out[i-1], out[i])
		if math.Abs(d-50) > 2 {
			t.Fatalf("spacing %d–%d = %.1f m, want 50", i-1, i, d)
		}
	}
	// Endpoints preserved.
	if out[0] != pts[0] {
		t.Error("start point lost")
	}
	if out[len(out)-1] != pts[len(pts)-1] {
		t.Error("end point lost")
	}
}

func TestResampleUpAndDown(t *testing.T) {
	base := geo.Point{Lat: 51.5, Lon: -0.12}
	var sparse []geo.Point
	for i := 0; i <= 10; i++ {
		sparse = append(sparse, geo.Offset(base, 0, float64(i)*100))
	}
	// Up-sampling a sparse trace adds points.
	dense := Resample(sparse, 10)
	if len(dense) <= len(sparse) {
		t.Errorf("up-sampling: %d → %d points", len(sparse), len(dense))
	}
	// The resampled path stays on the original polyline.
	for _, p := range dense {
		best := math.Inf(1)
		for i := 1; i < len(sparse); i++ {
			if d := geo.PointToSegment(p, sparse[i-1], sparse[i]); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Fatalf("resampled point %.1f m off the path", best)
		}
	}
}

func TestResampleEdgeCases(t *testing.T) {
	if got := Resample(nil, 10); len(got) != 0 {
		t.Errorf("Resample(nil) = %v", got)
	}
	p := []geo.Point{{Lat: 1, Lon: 1}}
	if got := Resample(p, 10); len(got) != 1 {
		t.Errorf("single point resampled to %d", len(got))
	}
	// Non-positive spacing returns input unchanged.
	if got := Resample(p, 0); len(got) != 1 {
		t.Errorf("zero spacing returned %d points", len(got))
	}
	// Duplicate points (zero-length legs) do not crash or divide by zero.
	dup := []geo.Point{{Lat: 1, Lon: 1}, {Lat: 1, Lon: 1}, {Lat: 1.001, Lon: 1}}
	if got := Resample(dup, 20); len(got) < 2 {
		t.Errorf("duplicate-point input resampled to %d", len(got))
	}
}
