package trajectory

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"geodabs/internal/geo"
)

// Binary dataset format (little endian):
//
//	magic   uint32  "GDTJ" (0x4a544447)
//	version uint8   1
//	count   uint32
//	per trajectory:
//	  id     uint32
//	  route  uint32
//	  dir    uint8
//	  points uint32
//	  points × (lat int32 E7, lon int32 E7)
//
// E7 fixed point (degrees × 10^7) resolves to ≈1.1 cm, far below GPS
// accuracy, and halves the footprint of float64 pairs.
const (
	datasetMagic   = 0x4a544447
	datasetVersion = 1
)

// maxPointsPerTrajectory guards ReadDataset against corrupt headers.
// A week of 1 Hz sampling is well below this.
const maxPointsPerTrajectory = 1 << 24

// toE7 converts degrees to E7 fixed point with round-to-nearest.
func toE7(deg float64) int32 {
	return int32(math.Round(deg * 1e7))
}

// fromE7 converts E7 fixed point back to degrees.
func fromE7(v int32) float64 {
	return float64(v) / 1e7
}

// WriteDataset serializes the dataset to w.
func WriteDataset(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []any{uint32(datasetMagic), uint8(datasetVersion), uint32(len(d.Trajectories))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("trajectory: write header: %w", err)
		}
	}
	buf := make([]byte, 8)
	for _, t := range d.Trajectories {
		binary.LittleEndian.PutUint32(buf[0:4], uint32(t.ID))
		binary.LittleEndian.PutUint32(buf[4:8], t.Route)
		if _, err := bw.Write(buf[:8]); err != nil {
			return fmt.Errorf("trajectory: write %d: %w", t.ID, err)
		}
		if err := bw.WriteByte(byte(t.Dir)); err != nil {
			return fmt.Errorf("trajectory: write %d: %w", t.ID, err)
		}
		binary.LittleEndian.PutUint32(buf[0:4], uint32(len(t.Points)))
		if _, err := bw.Write(buf[:4]); err != nil {
			return fmt.Errorf("trajectory: write %d: %w", t.ID, err)
		}
		for _, p := range t.Points {
			binary.LittleEndian.PutUint32(buf[0:4], uint32(toE7(p.Lat)))
			binary.LittleEndian.PutUint32(buf[4:8], uint32(toE7(p.Lon)))
			if _, err := bw.Write(buf[:8]); err != nil {
				return fmt.Errorf("trajectory: write %d: %w", t.ID, err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trajectory: flush: %w", err)
	}
	return nil
}

// ReadDataset deserializes a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trajectory: read magic: %w", err)
	}
	if m != datasetMagic {
		return nil, fmt.Errorf("trajectory: bad magic %#x", m)
	}
	var version uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("trajectory: read version: %w", err)
	}
	if version != datasetVersion {
		return nil, fmt.Errorf("trajectory: unsupported version %d", version)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trajectory: read count: %w", err)
	}
	d := &Dataset{Trajectories: make([]*Trajectory, 0, count)}
	buf := make([]byte, 8)
	for i := uint32(0); i < count; i++ {
		t := &Trajectory{}
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("trajectory: read %d: %w", i, err)
		}
		t.ID = ID(binary.LittleEndian.Uint32(buf[0:4]))
		t.Route = binary.LittleEndian.Uint32(buf[4:8])
		dir, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trajectory: read %d: %w", i, err)
		}
		if dir > uint8(Reverse) {
			return nil, fmt.Errorf("trajectory: %d has invalid direction %d", i, dir)
		}
		t.Dir = Direction(dir)
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("trajectory: read %d: %w", i, err)
		}
		n := binary.LittleEndian.Uint32(buf[0:4])
		if n > maxPointsPerTrajectory {
			return nil, fmt.Errorf("trajectory: %d claims %d points", i, n)
		}
		t.Points = make([]geo.Point, n)
		for j := range t.Points {
			if _, err := io.ReadFull(br, buf[:8]); err != nil {
				return nil, fmt.Errorf("trajectory: read %d point %d: %w", i, j, err)
			}
			t.Points[j] = geo.Point{
				Lat: fromE7(int32(binary.LittleEndian.Uint32(buf[0:4]))),
				Lon: fromE7(int32(binary.LittleEndian.Uint32(buf[4:8]))),
			}
		}
		d.Add(t)
	}
	return d, nil
}
