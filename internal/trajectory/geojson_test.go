package trajectory

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGeoJSONRoundTrip(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 5; i++ {
		tr := makeTrajectory(ID(i), 10+i)
		if i%2 == 1 {
			tr.Dir = Reverse
		}
		d.Add(tr)
	}
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGeoJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip: %d trajectories, want %d", got.Len(), d.Len())
	}
	for i, want := range d.Trajectories {
		g := got.Trajectories[i]
		if g.ID != want.ID || g.Route != want.Route || g.Dir != want.Dir {
			t.Fatalf("trajectory %d metadata: %v vs %v", i, g, want)
		}
		if g.Len() != want.Len() {
			t.Fatalf("trajectory %d has %d points, want %d", i, g.Len(), want.Len())
		}
		for j := range want.Points {
			if d := g.Points[j].Lat - want.Points[j].Lat; d > 1e-12 || d < -1e-12 {
				t.Fatalf("trajectory %d point %d drifted", i, j)
			}
		}
	}
}

func TestGeoJSONIsValidSpec(t *testing.T) {
	d := &Dataset{}
	d.Add(makeTrajectory(7, 3))
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Coordinates must be [lon, lat] per RFC 7946.
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed["type"] != "FeatureCollection" {
		t.Errorf("type = %v", parsed["type"])
	}
	if !strings.Contains(buf.String(), `"coordinates"`) {
		t.Error("missing coordinates")
	}
	feature := parsed["features"].([]any)[0].(map[string]any)
	coords := feature["geometry"].(map[string]any)["coordinates"].([]any)
	first := coords[0].([]any)
	lon, lat := first[0].(float64), first[1].(float64)
	want := d.Trajectories[0].Points[0]
	if lon != want.Lon || lat != want.Lat {
		t.Errorf("coordinate order wrong: got (%v, %v), want (lon %v, lat %v)", lon, lat, want.Lon, want.Lat)
	}
}

func TestReadGeoJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"wrong-type", `{"type":"Feature","features":[]}`},
		{"wrong-geometry", `{"type":"FeatureCollection","features":[{"type":"Feature","properties":{},"geometry":{"type":"Point","coordinates":[[1,2]]}}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadGeoJSON(strings.NewReader(tt.in)); err == nil {
				t.Error("ReadGeoJSON should fail")
			}
		})
	}
}

func TestReadGeoJSONForeignProperties(t *testing.T) {
	// A hand-written feature without our properties still loads.
	in := `{"type":"FeatureCollection","features":[
	  {"type":"Feature","properties":{"name":"x"},
	   "geometry":{"type":"LineString","coordinates":[[-0.1,51.5],[-0.11,51.51]]}}]}`
	d, err := ReadGeoJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Trajectories[0].Len() != 2 {
		t.Fatalf("loaded %d trajectories", d.Len())
	}
	if d.Trajectories[0].Dir != DirectionUnknown {
		t.Error("missing direction should be unknown")
	}
}
