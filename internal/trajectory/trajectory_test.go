package trajectory

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"geodabs/internal/geo"
)

func makeTrajectory(id ID, n int) *Trajectory {
	t := &Trajectory{ID: id, Route: uint32(id) / 20, Dir: Forward}
	base := geo.Point{Lat: 51.5, Lon: -0.12}
	for i := 0; i < n; i++ {
		t.Points = append(t.Points, geo.Offset(base, float64(i)*15, float64(i)*5))
	}
	return t
}

func TestGroundLength(t *testing.T) {
	tr := &Trajectory{Points: []geo.Point{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 1}, {Lat: 0, Lon: 2}}}
	want := 2 * geo.Haversine(geo.Point{Lat: 0, Lon: 0}, geo.Point{Lat: 0, Lon: 1})
	if got := tr.GroundLength(); math.Abs(got-want) > 1 {
		t.Errorf("GroundLength = %.1f, want %.1f", got, want)
	}
	if got := (&Trajectory{}).GroundLength(); got != 0 {
		t.Errorf("empty GroundLength = %v", got)
	}
	if got := (&Trajectory{Points: []geo.Point{{Lat: 1, Lon: 1}}}).GroundLength(); got != 0 {
		t.Errorf("single-point GroundLength = %v", got)
	}
}

func TestSubSharesPoints(t *testing.T) {
	tr := makeTrajectory(1, 10)
	sub := tr.Sub(2, 5)
	if sub.Len() != 3 {
		t.Fatalf("Sub length = %d", sub.Len())
	}
	if sub.Points[0] != tr.Points[2] {
		t.Error("Sub should start at index 2")
	}
	if sub.ID != tr.ID || sub.Route != tr.Route || sub.Dir != tr.Dir {
		t.Error("Sub should inherit identifiers")
	}
}

func TestReversed(t *testing.T) {
	tr := makeTrajectory(1, 5)
	rev := tr.Reversed()
	if rev.Dir != Reverse {
		t.Errorf("reversed Dir = %v", rev.Dir)
	}
	for i := range tr.Points {
		if rev.Points[i] != tr.Points[len(tr.Points)-1-i] {
			t.Fatalf("point %d not reversed", i)
		}
	}
	if back := rev.Reversed(); back.Dir != Forward || back.Points[0] != tr.Points[0] {
		t.Error("double reversal should restore the original")
	}
	// Reversal must not mutate the original.
	if tr.Dir != Forward {
		t.Error("Reversed mutated the receiver")
	}
	unk := &Trajectory{Points: tr.Points}
	if got := unk.Reversed().Dir; got != DirectionUnknown {
		t.Errorf("unknown direction should stay unknown, got %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := makeTrajectory(1, 3)
	c := tr.Clone()
	c.Points[0] = geo.Point{Lat: 0, Lon: 0}
	if tr.Points[0] == c.Points[0] {
		t.Error("clone shares point storage")
	}
}

func TestDatasetByID(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 10; i++ {
		d.Add(makeTrajectory(ID(i), 3))
	}
	if got := d.ByID(7); got == nil || got.ID != 7 {
		t.Errorf("ByID(7) = %v", got)
	}
	if got := d.ByID(99); got != nil {
		t.Errorf("ByID(99) = %v, want nil", got)
	}
	// Non-positional IDs still resolve via scan.
	scrambled := &Dataset{}
	scrambled.Add(makeTrajectory(5, 3))
	scrambled.Add(makeTrajectory(2, 3))
	if got := scrambled.ByID(2); got == nil || got.ID != 2 {
		t.Errorf("scan ByID(2) = %v", got)
	}
}

func TestDatasetTotals(t *testing.T) {
	d := &Dataset{}
	d.Add(makeTrajectory(0, 5))
	d.Add(makeTrajectory(1, 7))
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.TotalPoints() != 12 {
		t.Errorf("TotalPoints = %d", d.TotalPoints())
	}
}

func TestDirectionString(t *testing.T) {
	tests := []struct {
		d    Direction
		want string
	}{
		{Forward, "forward"},
		{Reverse, "reverse"},
		{DirectionUnknown, "unknown"},
		{Direction(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestE7RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		deg := rng.Float64()*360 - 180
		got := fromE7(toE7(deg))
		if math.Abs(got-deg) > 5e-8 {
			t.Fatalf("E7 round trip of %v = %v", deg, got)
		}
	}
}

func TestDatasetIORoundTrip(t *testing.T) {
	d := &Dataset{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		tr := makeTrajectory(ID(i), rng.Intn(50))
		if i%3 == 0 {
			tr.Dir = Reverse
		}
		d.Add(tr)
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatalf("WriteDataset: %v", err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatalf("ReadDataset: %v", err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("read %d trajectories, want %d", got.Len(), d.Len())
	}
	for i, want := range d.Trajectories {
		g := got.Trajectories[i]
		if g.ID != want.ID || g.Route != want.Route || g.Dir != want.Dir || g.Len() != want.Len() {
			t.Fatalf("trajectory %d metadata mismatch: %v vs %v", i, g, want)
		}
		for j := range want.Points {
			if math.Abs(g.Points[j].Lat-want.Points[j].Lat) > 5e-8 ||
				math.Abs(g.Points[j].Lon-want.Points[j].Lon) > 5e-8 {
				t.Fatalf("trajectory %d point %d drifted", i, j)
			}
		}
	}
}

func TestReadDatasetRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-magic", []byte{9, 9, 9, 9, 1, 0, 0, 0, 0}},
		{"truncated", func() []byte {
			var buf bytes.Buffer
			d := &Dataset{}
			d.Add(makeTrajectory(0, 5))
			if err := WriteDataset(&buf, d); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-3]
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadDataset(bytes.NewReader(tt.data)); err == nil {
				t.Error("ReadDataset should fail")
			}
		})
	}
}

func TestReadDatasetRejectsHugePointCount(t *testing.T) {
	var buf bytes.Buffer
	d := &Dataset{}
	d.Add(makeTrajectory(0, 1))
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Point count lives after magic(4) + version(1) + count(4) + id(4) +
	// route(4) + dir(1) = byte offset 18.
	data[18], data[19], data[20], data[21] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadDataset(bytes.NewReader(data)); err == nil {
		t.Error("ReadDataset should reject absurd point counts")
	}
}
