package shard

import (
	"math"
	"math/rand"
	"testing"

	"geodabs/internal/core"
	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/roadnet"
)

func defaultStrategy() Strategy {
	return Strategy{PrefixBits: 16, Shards: 10000, Nodes: 10}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		s       Strategy
		wantErr bool
	}{
		{"ok", defaultStrategy(), false},
		{"no-prefix", Strategy{PrefixBits: 0, Shards: 10, Nodes: 2}, true},
		{"prefix-32", Strategy{PrefixBits: 32, Shards: 10, Nodes: 2}, true},
		{"no-shards", Strategy{PrefixBits: 16, Shards: 0, Nodes: 2}, true},
		{"no-nodes", Strategy{PrefixBits: 16, Shards: 10, Nodes: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if gotErr := tt.s.Validate() != nil; gotErr != tt.wantErr {
				t.Errorf("Validate = %v, wantErr = %v", tt.s.Validate(), tt.wantErr)
			}
		})
	}
}

func TestShardOfRange(t *testing.T) {
	s := defaultStrategy()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		g := rng.Uint32()
		sh := s.ShardOf(g)
		if sh < 0 || sh >= s.Shards {
			t.Fatalf("ShardOf(%d) = %d out of [0, %d)", g, sh, s.Shards)
		}
		n := s.NodeOf(sh)
		if n < 0 || n >= s.Nodes {
			t.Fatalf("NodeOf(%d) = %d out of [0, %d)", sh, n, s.Nodes)
		}
		if s.NodeOfGeodab(g) != n {
			t.Fatal("NodeOfGeodab disagrees with ShardOf∘NodeOf")
		}
	}
}

func TestShardOfMonotoneOnCurve(t *testing.T) {
	// Geodabs with increasing geohash prefixes map to non-decreasing
	// shards: the locality-preserving property.
	s := Strategy{PrefixBits: 16, Shards: 100, Nodes: 10}
	prevShard := -1
	for prefix := 0; prefix < 1<<16; prefix += 7 {
		g := uint32(prefix) << 16
		sh := s.ShardOf(g)
		if sh < prevShard {
			t.Fatalf("shard decreased along the curve at prefix %d", prefix)
		}
		prevShard = sh
	}
	if prevShard != s.Shards-1 {
		t.Errorf("last prefix maps to shard %d, want %d", prevShard, s.Shards-1)
	}
}

func TestShardOfSuffixInvariance(t *testing.T) {
	// The hash suffix must not influence shard placement.
	s := defaultStrategy()
	base := uint32(0xABCD) << 16
	want := s.ShardOf(base)
	for _, suffix := range []uint32{0, 1, 0xFFFF, 0x1234} {
		if got := s.ShardOf(base | suffix); got != want {
			t.Fatalf("suffix %#x changed the shard: %d vs %d", suffix, got, want)
		}
	}
}

func TestShardsOfLocality(t *testing.T) {
	// The fingerprints of one trajectory are spatially clustered, so a
	// query touches very few of the 10'000 shards.
	f := core.MustFingerprinter(core.DefaultConfig())
	var pts []geo.Point
	for i := 0; i < 800; i++ {
		pts = append(pts, geo.Offset(roadnet.LondonCenter, float64(i)*10, float64(i)*10))
	}
	fp := f.Fingerprint(pts)
	s := defaultStrategy()
	shards := s.ShardsOf(fp.Geodabs)
	if len(shards) == 0 {
		t.Fatal("no shards touched")
	}
	if len(shards) > 4 {
		t.Errorf("an 11 km trajectory touches %d shards, want ≤ 4", len(shards))
	}
	for i := 1; i < len(shards); i++ {
		if shards[i] <= shards[i-1] {
			t.Fatal("ShardsOf not sorted/deduplicated")
		}
	}
	if got := s.ShardsOf(nil); len(got) != 0 {
		t.Errorf("ShardsOf(nil) = %v", got)
	}
}

func TestBalanceOfUniform(t *testing.T) {
	s := Strategy{PrefixBits: 16, Shards: 100, Nodes: 10}
	perShard := make([]int, s.Shards)
	for i := range perShard {
		perShard[i] = 50
	}
	b := s.BalanceOf(perShard)
	if b.Max != b.Min || b.CV != 0 || b.Imbalance != 1 {
		t.Errorf("uniform load should be perfectly balanced: %+v", b)
	}
	if b.Mean != 500 {
		t.Errorf("Mean = %v, want 500", b.Mean)
	}
	if len(b.PerNode) != 10 {
		t.Errorf("PerNode has %d entries", len(b.PerNode))
	}
}

func TestBalanceEmpty(t *testing.T) {
	b := summarize(nil)
	if b.Max != 0 || b.CV != 0 {
		t.Errorf("empty balance = %+v", b)
	}
}

// TestMoreShardsBalanceBetter reproduces the mechanism of Fig 16: with a
// skewed world distribution, 100 shards leave nodes unbalanced while
// 10'000 shards spread the load.
func TestMoreShardsBalanceBetter(t *testing.T) {
	sampler := roadnet.NewWorldSampler(0, 42)
	points := sampler.SampleN(200000)
	load := func(shards int) Balance {
		s := Strategy{PrefixBits: 16, Shards: shards, Nodes: 10}
		perShard := make([]int, shards)
		for _, p := range points {
			h := geohash.Encode(p, 16)
			g := uint32(h.Bits) << 16
			perShard[s.ShardOf(g)]++
		}
		return s.BalanceOf(perShard)
	}
	coarse := load(100)
	fine := load(10000)
	if fine.CV >= coarse.CV {
		t.Errorf("10'000 shards (CV %.3f) should balance better than 100 (CV %.3f)", fine.CV, coarse.CV)
	}
	if fine.Imbalance > 1.5 {
		t.Errorf("fine sharding imbalance = %.2f, want ≤ 1.5", fine.Imbalance)
	}
	if coarse.Imbalance < fine.Imbalance {
		t.Error("coarse sharding should be more imbalanced")
	}
}

func TestBalanceOfKnownSkew(t *testing.T) {
	// All load on one shard: one node carries everything.
	s := Strategy{PrefixBits: 16, Shards: 100, Nodes: 10}
	perShard := make([]int, 100)
	perShard[37] = 1000
	b := s.BalanceOf(perShard)
	if b.Max != 1000 || b.Min != 0 {
		t.Errorf("skewed balance = %+v", b)
	}
	if math.Abs(b.Imbalance-10) > 1e-9 {
		t.Errorf("Imbalance = %v, want 10", b.Imbalance)
	}
	if b.PerNode[s.NodeOf(37)] != 1000 {
		t.Error("load landed on the wrong node")
	}
}
