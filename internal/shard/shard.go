// Package shard implements the paper's two-step index distribution
// strategy (§III-A4, Fig 2c, §VI-E):
//
//  1. Geodabs map to shards through their geohash prefix in a
//     locality-preserving way — contiguous ranges of the Z-order
//     space-filling curve form a shard, so a query, whose fingerprints are
//     spatially clustered, touches few shards.
//  2. Shards map to nodes with a modulo, which deliberately breaks
//     locality so that the load of dense areas spreads over the cluster.
package shard

import (
	"fmt"
	"math"

	"geodabs/internal/core"
)

// Strategy maps geodabs to shards and shards to nodes.
type Strategy struct {
	// PrefixBits is the geohash prefix width of the geodabs (default 16).
	PrefixBits uint8
	// Shards is the total number of shards (paper sweeps 100 vs 10'000).
	Shards int
	// Nodes is the number of cluster nodes (paper: 10).
	Nodes int
}

// Validate reports whether the strategy is usable.
func (s Strategy) Validate() error {
	switch {
	case s.PrefixBits < 1 || s.PrefixBits >= core.GeodabBits:
		return fmt.Errorf("shard: PrefixBits = %d out of range", s.PrefixBits)
	case s.Shards < 1:
		return fmt.Errorf("shard: Shards = %d", s.Shards)
	case s.Nodes < 1:
		return fmt.Errorf("shard: Nodes = %d", s.Nodes)
	default:
		return nil
	}
}

// ShardOf returns the shard of a geodab: its position on the space-filling
// curve scaled to the shard count, the paper's
// shard = ⌊geohash / 2^P × s⌋.
func (s Strategy) ShardOf(geodab uint32) int {
	prefix := uint64(geodab) >> (core.GeodabBits - s.PrefixBits)
	return int(prefix * uint64(s.Shards) >> s.PrefixBits)
}

// NodeOf returns the node of a shard, the paper's node = shard mod n.
func (s Strategy) NodeOf(shard int) int { return shard % s.Nodes }

// NodeOfGeodab composes ShardOf and NodeOf.
func (s Strategy) NodeOfGeodab(geodab uint32) int { return s.NodeOf(s.ShardOf(geodab)) }

// ShardsOf returns the distinct shards touched by a fingerprint set, in
// ascending order. The length of the result is the query fan-out the
// locality-preserving step minimizes.
func (s Strategy) ShardsOf(geodabs []uint32) []int {
	seen := make(map[int]struct{}, 8)
	for _, g := range geodabs {
		seen[s.ShardOf(g)] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for sh := range seen {
		out = append(out, sh)
	}
	sortInts(out)
	return out
}

// sortInts is insertion sort: shard fan-outs are tiny.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Balance summarizes how a load distributes over nodes (paper Fig 16).
type Balance struct {
	// PerNode is the load (e.g. postings or trajectories) on each node.
	PerNode []int
	// Max and Min are the extreme node loads; Mean their average.
	Max, Min int
	Mean     float64
	// CV is the coefficient of variation (stddev/mean), 0 for a perfectly
	// balanced cluster.
	CV float64
	// Imbalance is Max/Mean, 1 for a perfectly balanced cluster.
	Imbalance float64
}

// BalanceOf folds per-shard loads onto nodes with the strategy's modulo
// step and summarizes the result.
func (s Strategy) BalanceOf(perShard []int) Balance {
	perNode := make([]int, s.Nodes)
	for shard, load := range perShard {
		perNode[s.NodeOf(shard)] += load
	}
	return summarize(perNode)
}

func summarize(perNode []int) Balance {
	b := Balance{PerNode: perNode}
	if len(perNode) == 0 {
		return b
	}
	b.Min = perNode[0]
	total := 0
	for _, v := range perNode {
		total += v
		if v > b.Max {
			b.Max = v
		}
		if v < b.Min {
			b.Min = v
		}
	}
	b.Mean = float64(total) / float64(len(perNode))
	if b.Mean > 0 {
		var ss float64
		for _, v := range perNode {
			d := float64(v) - b.Mean
			ss += d * d
		}
		b.CV = math.Sqrt(ss/float64(len(perNode))) / b.Mean
		b.Imbalance = float64(b.Max) / b.Mean
	}
	return b
}
