// Package geo provides geographic primitives shared by every other package:
// latitude/longitude points, great-circle (haversine) distances, bearings,
// destination points and bounding boxes.
//
// Conventions: latitudes are in degrees in [-90, 90], longitudes in degrees
// in [-180, 180). Distances are in meters, bearings in degrees clockwise
// from north.
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean earth radius in meters (IUGG mean radius R1).
const EarthRadius = 6371008.8

// Point is a position on the earth expressed as a latitude/longitude pair,
// in degrees. The zero value is the point (0, 0) on the equator.
type Point struct {
	Lat float64
	Lon float64
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies in the valid latitude/longitude
// domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon < 180
}

// Radians returns the latitude and longitude converted to radians.
func (p Point) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// Haversine returns the great-circle ground distance between a and b in
// meters, using the haversine formula from the paper (Eq. 2).
func Haversine(a, b Point) float64 {
	latA, lonA := a.Radians()
	latB, lonB := b.Radians()
	sinLat := math.Sin((latA - latB) / 2)
	sinLon := math.Sin((lonA - lonB) / 2)
	h := sinLat*sinLat + math.Cos(latA)*math.Cos(latB)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial bearing in degrees, clockwise from north,
// of the great circle from a to b. The result is normalized to [0, 360).
func Bearing(a, b Point) float64 {
	latA, lonA := a.Radians()
	latB, lonB := b.Radians()
	dLon := lonB - lonA
	y := math.Sin(dLon) * math.Cos(latB)
	x := math.Cos(latA)*math.Sin(latB) - math.Sin(latA)*math.Cos(latB)*math.Cos(dLon)
	deg := math.Atan2(y, x) * 180 / math.Pi
	return math.Mod(deg+360, 360)
}

// Destination returns the point reached by traveling distance meters from p
// along the given initial bearing (degrees clockwise from north) on a great
// circle.
func Destination(p Point, bearingDeg, distance float64) Point {
	lat, lon := p.Radians()
	brg := bearingDeg * math.Pi / 180
	d := distance / EarthRadius
	sinLat := math.Sin(lat)*math.Cos(d) + math.Cos(lat)*math.Sin(d)*math.Cos(brg)
	lat2 := math.Asin(sinLat)
	y := math.Sin(brg) * math.Sin(d) * math.Cos(lat)
	x := math.Cos(d) - math.Sin(lat)*sinLat
	lon2 := lon + math.Atan2(y, x)
	return Point{
		Lat: lat2 * 180 / math.Pi,
		Lon: NormalizeLon(lon2 * 180 / math.Pi),
	}
}

// Offset returns the point displaced from p by dNorth meters northward and
// dEast meters eastward, using a local equirectangular approximation. It is
// accurate for displacements up to a few kilometers, which is all the
// trajectory generator needs.
func Offset(p Point, dNorth, dEast float64) Point {
	dLat := dNorth / EarthRadius * 180 / math.Pi
	cos := math.Cos(p.Lat * math.Pi / 180)
	if math.Abs(cos) < 1e-12 {
		cos = 1e-12
	}
	dLon := dEast / (EarthRadius * cos) * 180 / math.Pi
	return Point{Lat: clampLat(p.Lat + dLat), Lon: NormalizeLon(p.Lon + dLon)}
}

// Interpolate returns the point at fraction f of the way from a to b, with
// f in [0, 1], using linear interpolation in latitude/longitude space. For
// the sub-kilometer edges of a road network this is indistinguishable from
// great-circle interpolation.
func Interpolate(a, b Point, f float64) Point {
	if f <= 0 {
		return a
	}
	if f >= 1 {
		return b
	}
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*f,
		Lon: a.Lon + (b.Lon-a.Lon)*f,
	}
}

// NormalizeLon wraps a longitude in degrees into [-180, 180).
func NormalizeLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}

func clampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

// Box is an axis-aligned bounding box in latitude/longitude space.
// The zero value is an empty box: Extend must be called before use, or use
// NewBox.
type Box struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
	nonEmpty       bool
}

// NewBox returns a box containing exactly the given points.
func NewBox(points ...Point) Box {
	var b Box
	for _, p := range points {
		b.Extend(p)
	}
	return b
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return !b.nonEmpty }

// Extend grows the box to include p.
func (b *Box) Extend(p Point) {
	if !b.nonEmpty {
		b.MinLat, b.MaxLat = p.Lat, p.Lat
		b.MinLon, b.MaxLon = p.Lon, p.Lon
		b.nonEmpty = true
		return
	}
	b.MinLat = math.Min(b.MinLat, p.Lat)
	b.MaxLat = math.Max(b.MaxLat, p.Lat)
	b.MinLon = math.Min(b.MinLon, p.Lon)
	b.MaxLon = math.Max(b.MaxLon, p.Lon)
}

// Contains reports whether p lies inside the box (inclusive).
func (b Box) Contains(p Point) bool {
	return b.nonEmpty &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center. The center of an empty box is the zero
// point.
func (b Box) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Intersects reports whether the two boxes overlap (inclusive).
func (b Box) Intersects(o Box) bool {
	return b.nonEmpty && o.nonEmpty &&
		b.MinLat <= o.MaxLat && o.MinLat <= b.MaxLat &&
		b.MinLon <= o.MaxLon && o.MinLon <= b.MaxLon
}

// MinDistance returns a lower bound, in meters, on the ground distance
// between any point of b and any point of o. It returns 0 when the boxes
// intersect. It is used to prune motif candidates (BTM baseline), so it
// must never exceed the true minimum distance.
//
// The bound follows from the haversine identity
//
//	hav(σ) = hav(Δφ) + cos(φ1)·cos(φ2)·hav(Δλ)
//
// with Δφ replaced by the latitude gap between the boxes, Δλ by the
// longitude gap, and cos(φ1)·cos(φ2) by cos²(φm), where φm is the largest
// absolute latitude reachable in either box (cos is minimized there).
func (b Box) MinDistance(o Box) float64 {
	if b.Empty() || o.Empty() {
		return math.Inf(1)
	}
	latGap := gap(b.MinLat, b.MaxLat, o.MinLat, o.MaxLat)
	lonGap := gap(b.MinLon, b.MaxLon, o.MinLon, o.MaxLon)
	// The boxes may also be adjacent across the antimeridian.
	if wrap := 360 - (math.Max(b.MaxLon, o.MaxLon) - math.Min(b.MinLon, o.MinLon)); wrap > 0 && wrap < lonGap {
		lonGap = wrap
	}
	if latGap == 0 && lonGap == 0 {
		return 0
	}
	maxAbsLat := math.Max(
		math.Max(math.Abs(b.MinLat), math.Abs(b.MaxLat)),
		math.Max(math.Abs(o.MinLat), math.Abs(o.MaxLat)),
	)
	sinLat := math.Sin(latGap / 2 * math.Pi / 180)
	sinLon := math.Sin(lonGap/2*math.Pi/180) * math.Cos(maxAbsLat*math.Pi/180)
	h := sinLat*sinLat + sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// gap returns the separation between the intervals [aLo, aHi] and
// [bLo, bHi], or 0 when they overlap.
func gap(aLo, aHi, bLo, bHi float64) float64 {
	if g := bLo - aHi; g > 0 {
		return g
	}
	if g := aLo - bHi; g > 0 {
		return g
	}
	return 0
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
