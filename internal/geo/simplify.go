package geo

import "math"

// Simplify reduces a polyline with the Douglas-Peucker algorithm: points
// whose perpendicular distance to the simplified line stays within
// tolerance meters are dropped. The first and last points are always
// kept. It is a useful pre-normalization step for very high-rate traces
// and a common building block of trajectory systems.
func Simplify(points []Point, tolerance float64) []Point {
	if len(points) <= 2 || tolerance <= 0 {
		return points
	}
	keep := make([]bool, len(points))
	keep[0], keep[len(points)-1] = true, true
	simplifyRange(points, 0, len(points)-1, tolerance, keep)
	out := make([]Point, 0, len(points))
	for i, k := range keep {
		if k {
			out = append(out, points[i])
		}
	}
	return out
}

// simplifyRange marks the points to keep between the anchors lo and hi.
// The recursion depth is bounded by the split structure (worst case
// O(n), typical O(log n)).
func simplifyRange(points []Point, lo, hi int, tolerance float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxDist, maxIdx := 0.0, -1
	for i := lo + 1; i < hi; i++ {
		if d := PointToSegment(points[i], points[lo], points[hi]); d > maxDist {
			maxDist, maxIdx = d, i
		}
	}
	if maxDist <= tolerance {
		return
	}
	keep[maxIdx] = true
	simplifyRange(points, lo, maxIdx, tolerance, keep)
	simplifyRange(points, maxIdx, hi, tolerance, keep)
}

// PointToSegment returns the distance in meters from p to the segment
// [a, b], using a local equirectangular projection centered on a — exact
// enough for the sub-kilometer segments of GPS traces.
func PointToSegment(p, a, b Point) float64 {
	const mPerDeg = 2 * math.Pi * EarthRadius / 360
	cos := math.Cos(a.Lat * math.Pi / 180)
	ax, ay := 0.0, 0.0
	bx := (b.Lon - a.Lon) * mPerDeg * cos
	by := (b.Lat - a.Lat) * mPerDeg
	px := (p.Lon - a.Lon) * mPerDeg * cos
	py := (p.Lat - a.Lat) * mPerDeg
	dx, dy := bx-ax, by-ay
	segLen2 := dx*dx + dy*dy
	if segLen2 == 0 {
		return math.Hypot(px, py)
	}
	t := (px*dx + py*dy) / segLen2
	t = clamp(t, 0, 1)
	return math.Hypot(px-t*dx, py-t*dy)
}
