package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestPointToSegment(t *testing.T) {
	a := Point{Lat: 51.5, Lon: -0.12}
	b := Offset(a, 0, 1000) // 1 km east
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"on-segment", Offset(a, 0, 500), 0},
		{"above-middle", Offset(a, 100, 500), 100},
		{"beyond-start", Offset(a, 0, -200), 200},
		{"beyond-end", Offset(a, 0, 1300), 300},
		{"at-endpoint", b, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PointToSegment(tt.p, a, b); math.Abs(got-tt.want) > 2 {
				t.Errorf("PointToSegment = %.1f, want %.1f", got, tt.want)
			}
		})
	}
	// Degenerate segment (a == b) falls back to point distance.
	if got := PointToSegment(Offset(a, 300, 400), a, a); math.Abs(got-500) > 2 {
		t.Errorf("degenerate segment distance = %.1f, want 500", got)
	}
}

func TestSimplifyStraightLine(t *testing.T) {
	// A straight line with tiny wiggle collapses to its endpoints.
	base := Point{Lat: 51.5, Lon: -0.12}
	pts := make([]Point, 50)
	for i := range pts {
		wiggle := float64(i%2) * 2 // 2 m zigzag
		pts[i] = Offset(base, wiggle, float64(i)*20)
	}
	got := Simplify(pts, 10)
	if len(got) != 2 {
		t.Fatalf("straight line simplified to %d points, want 2", len(got))
	}
	if got[0] != pts[0] || got[1] != pts[len(pts)-1] {
		t.Error("endpoints must be preserved")
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	base := Point{Lat: 51.5, Lon: -0.12}
	var pts []Point
	for i := 0; i < 20; i++ { // east leg
		pts = append(pts, Offset(base, 0, float64(i)*50))
	}
	corner := Offset(base, 0, 19*50)
	for i := 1; i < 20; i++ { // north leg
		pts = append(pts, Offset(corner, float64(i)*50, 0))
	}
	got := Simplify(pts, 10)
	if len(got) != 3 {
		t.Fatalf("L-shape simplified to %d points, want 3", len(got))
	}
	if d := Haversine(got[1], corner); d > 5 {
		t.Errorf("kept point is %.1f m from the corner", d)
	}
}

// TestSimplifyErrorBound checks the defining property: every dropped
// point is within tolerance of the simplified polyline.
func TestSimplifyErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for round := 0; round < 20; round++ {
		p := Point{Lat: 51.5, Lon: -0.12}
		pts := make([]Point, 100)
		for i := range pts {
			p = Offset(p, rng.Float64()*60-30, rng.Float64()*60+10)
			pts[i] = p
		}
		const tol = 25.0
		simp := Simplify(pts, tol)
		if len(simp) < 2 || len(simp) > len(pts) {
			t.Fatalf("simplified to %d points", len(simp))
		}
		for _, orig := range pts {
			best := math.Inf(1)
			for i := 1; i < len(simp); i++ {
				if d := PointToSegment(orig, simp[i-1], simp[i]); d < best {
					best = d
				}
			}
			if best > tol+1 {
				t.Fatalf("dropped point is %.1f m from the simplified line (tol %.0f)", best, tol)
			}
		}
	}
}

func TestSimplifyEdgeCases(t *testing.T) {
	p := Point{Lat: 1, Lon: 1}
	if got := Simplify(nil, 10); len(got) != 0 {
		t.Errorf("Simplify(nil) = %v", got)
	}
	two := []Point{p, Offset(p, 100, 0)}
	if got := Simplify(two, 10); len(got) != 2 {
		t.Errorf("two points should be untouched, got %d", len(got))
	}
	// Non-positive tolerance keeps everything.
	five := []Point{p, Offset(p, 10, 0), Offset(p, 20, 0), Offset(p, 30, 0), Offset(p, 40, 0)}
	if got := Simplify(five, 0); len(got) != 5 {
		t.Errorf("zero tolerance should keep all points, got %d", len(got))
	}
}
