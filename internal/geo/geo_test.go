package geo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// london and paris are reference points with a well-known separation.
var (
	london = Point{Lat: 51.5074, Lon: -0.1278}
	paris  = Point{Lat: 48.8566, Lon: 2.3522}
)

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Point
		want    float64 // meters
		tolFrac float64
	}{
		{"london-paris", london, paris, 343_550, 0.005},
		{"same-point", london, london, 0, 0},
		{"equator-degree", Point{0, 0}, Point{0, 1}, 111_195, 0.001},
		{"meridian-degree", Point{0, 0}, Point{1, 0}, 111_195, 0.001},
		{"antipodal", Point{0, 0}, Point{0, -180}, math.Pi * EarthRadius, 0.001},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.a, tt.b)
			if tol := tt.want * tt.tolFrac; math.Abs(got-tt.want) > tol+1e-9 {
				t.Errorf("Haversine(%v, %v) = %.1f, want %.1f ± %.1f", tt.a, tt.b, got, tt.want, tol)
			}
		})
	}
}

func TestHaversineSymmetric(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: randomPointPair}
	if err := quick.Check(func(a, b Point) bool {
		return math.Abs(Haversine(a, b)-Haversine(b, a)) < 1e-6
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := randPoint(rng), randPoint(rng), randPoint(rng)
		if Haversine(a, c) > Haversine(a, b)+Haversine(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		p := randPoint(rng)
		// Stay away from the poles where bearings degenerate.
		p.Lat = clamp(p.Lat, -80, 80)
		brg := rng.Float64() * 360
		dist := rng.Float64() * 50_000
		q := Destination(p, brg, dist)
		got := Haversine(p, q)
		if math.Abs(got-dist) > 1 { // 1 m tolerance over ≤50 km
			t.Fatalf("Destination(%v, %.1f°, %.1fm): round-trip distance %.3fm", p, brg, dist, got)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"north", Point{0, 0}, Point{1, 0}, 0},
		{"east", Point{0, 0}, Point{0, 1}, 90},
		{"south", Point{1, 0}, Point{0, 0}, 180},
		{"west", Point{0, 1}, Point{0, 0}, 270},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Bearing(tt.a, tt.b); math.Abs(got-tt.want) > 0.01 {
				t.Errorf("Bearing = %.3f, want %.3f", got, tt.want)
			}
		})
	}
}

func TestOffsetMatchesHaversine(t *testing.T) {
	p := london
	q := Offset(p, 300, 400) // 3-4-5 triangle: 500 m displacement
	if d := Haversine(p, q); math.Abs(d-500) > 1 {
		t.Errorf("Offset displacement = %.2fm, want 500 ± 1", d)
	}
}

func TestOffsetDirections(t *testing.T) {
	q := Offset(london, 1000, 0)
	if q.Lat <= london.Lat || math.Abs(q.Lon-london.Lon) > 1e-9 {
		t.Errorf("north offset moved to %v", q)
	}
	q = Offset(london, 0, -1000)
	if q.Lon >= london.Lon || math.Abs(q.Lat-london.Lat) > 1e-9 {
		t.Errorf("west offset moved to %v", q)
	}
}

func TestInterpolate(t *testing.T) {
	a, b := Point{10, 20}, Point{20, 40}
	tests := []struct {
		f    float64
		want Point
	}{
		{-0.5, a},
		{0, a},
		{0.5, Point{15, 30}},
		{1, b},
		{1.5, b},
	}
	for _, tt := range tests {
		if got := Interpolate(a, b, tt.f); got != tt.want {
			t.Errorf("Interpolate(f=%.1f) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestNormalizeLon(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0},
		{180, -180},
		{-180, -180},
		{181, -179},
		{-181, 179},
		{540, -180},
		{359, -1},
	}
	for _, tt := range tests {
		if got := NormalizeLon(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("NormalizeLon(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestPointValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 0}, true},
		{Point{-90, -180}, true},
		{Point{0, 180}, false}, // 180 is wrapped to -180 by convention
		{Point{91, 0}, false},
		{Point{0, 200}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("%v.Valid() = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestBoxExtendContains(t *testing.T) {
	var b Box
	if !b.Empty() {
		t.Fatal("zero box should be empty")
	}
	if b.Contains(Point{0, 0}) {
		t.Fatal("empty box should contain nothing")
	}
	b.Extend(Point{1, 1})
	b.Extend(Point{-1, 3})
	if b.Empty() {
		t.Fatal("extended box should not be empty")
	}
	for _, p := range []Point{{0, 2}, {1, 1}, {-1, 3}, {0.5, 1.5}} {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	for _, p := range []Point{{2, 2}, {0, 0}, {0, 4}} {
		if b.Contains(p) {
			t.Errorf("box should not contain %v", p)
		}
	}
	if c := b.Center(); c != (Point{0, 2}) {
		t.Errorf("Center = %v, want (0, 2)", c)
	}
}

func TestBoxIntersects(t *testing.T) {
	a := NewBox(Point{0, 0}, Point{2, 2})
	tests := []struct {
		name string
		b    Box
		want bool
	}{
		{"overlap", NewBox(Point{1, 1}, Point{3, 3}), true},
		{"touch-corner", NewBox(Point{2, 2}, Point{3, 3}), true},
		{"disjoint-lat", NewBox(Point{3, 0}, Point{4, 2}), false},
		{"disjoint-lon", NewBox(Point{0, 3}, Point{2, 4}), false},
		{"contained", NewBox(Point{0.5, 0.5}, Point{1, 1}), true},
		{"empty", Box{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(a); got != tt.want {
				t.Errorf("reverse Intersects = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBoxMinDistance(t *testing.T) {
	a := NewBox(Point{0, 0}, Point{1, 1})
	if d := a.MinDistance(NewBox(Point{0.5, 0.5})); d != 0 {
		t.Errorf("intersecting boxes should have distance 0, got %v", d)
	}
	// Box one degree of longitude east of a, on the equator. The true
	// minimum is one degree along the parallel at latitude 1° (the bound
	// may be smaller, never larger).
	b := NewBox(Point{0, 2}, Point{1, 3})
	want := Haversine(Point{1, 1}, Point{1, 2})
	d := a.MinDistance(b)
	if d > want+1e-6 {
		t.Errorf("MinDistance = %.1f exceeds true minimum %.1f", d, want)
	}
	if d < want*0.99 {
		t.Errorf("MinDistance = %.1f is needlessly loose (true minimum %.1f)", d, want)
	}
	if d := (Box{}).MinDistance(a); !math.IsInf(d, 1) {
		t.Errorf("empty box MinDistance = %v, want +Inf", d)
	}
}

// TestBoxMinDistanceIsLowerBound checks the pruning property used by the
// motif baseline: the box distance never exceeds the true distance between
// points contained in the boxes.
func TestBoxMinDistanceIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		p1, p2 := randNearPoint(rng), randNearPoint(rng)
		q1, q2 := randNearPoint(rng), randNearPoint(rng)
		a, b := NewBox(p1, p2), NewBox(q1, q2)
		bound := a.MinDistance(b)
		for _, p := range []Point{p1, p2} {
			for _, q := range []Point{q1, q2} {
				if d := Haversine(p, q); d < bound-1e-6 {
					t.Fatalf("bound %.3f exceeds true distance %.3f", bound, d)
				}
			}
		}
	}
}

func randPoint(rng *rand.Rand) Point {
	return Point{Lat: rng.Float64()*180 - 90, Lon: rng.Float64()*360 - 180}
}

// randNearPoint samples points in a mid-latitude band where equirectangular
// box bounds behave well (the generator and datasets live there too).
func randNearPoint(rng *rand.Rand) Point {
	return Point{Lat: rng.Float64()*20 + 40, Lon: rng.Float64()*20 - 10}
}

func randomPointPair(values []reflect.Value, rng *rand.Rand) {
	values[0] = reflect.ValueOf(randPoint(rng))
	values[1] = reflect.ValueOf(randPoint(rng))
}
