package gen

import (
	"math"
	"testing"

	"geodabs/internal/geo"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// testCity caches a small city shared by the tests in this package.
var testCity = func() *roadnet.Graph {
	g, err := roadnet.GenerateCity(roadnet.CityConfig{RadiusMeters: 3000, Seed: 99})
	if err != nil {
		panic(err)
	}
	return g
}()

// smallConfig returns a fast configuration for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Routes = 10
	cfg.MinRouteMeters = 1500
	return cfg
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   bool
	}{
		{"default", func(c *Config) {}, false},
		{"no-routes", func(c *Config) { c.Routes = 0 }, true},
		{"no-trajectories", func(c *Config) { c.TrajectoriesPerDirection = 0 }, true},
		{"negative-queries", func(c *Config) { c.QueriesPerRoute = -1 }, true},
		{"zero-hz", func(c *Config) { c.SampleHz = 0 }, true},
		{"negative-noise", func(c *Config) { c.NoiseMeters = -1 }, true},
		{"jitter-1", func(c *Config) { c.SpeedJitter = 1 }, true},
		{"short-routes", func(c *Config) { c.MinRouteMeters = 10 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if gotErr := cfg.Validate() != nil; gotErr != tt.want {
				t.Errorf("Validate error = %v, want error %v", cfg.Validate(), tt.want)
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	out, err := Generate(testCity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantData := cfg.Routes * 2 * cfg.TrajectoriesPerDirection
	if out.Dataset.Len() != wantData {
		t.Fatalf("dataset has %d trajectories, want %d", out.Dataset.Len(), wantData)
	}
	if len(out.Queries) != cfg.Routes*cfg.QueriesPerRoute {
		t.Fatalf("got %d queries, want %d", len(out.Queries), cfg.Routes*cfg.QueriesPerRoute)
	}
	// IDs are positional and dense.
	for i, tr := range out.Dataset.Trajectories {
		if tr.ID != trajectory.ID(i) {
			t.Fatalf("trajectory %d has ID %d", i, tr.ID)
		}
	}
	// Query IDs continue after dataset IDs and have ground truth.
	for i, q := range out.Queries {
		if q.ID != trajectory.ID(wantData+i) {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		rel := out.Relevant[q.ID]
		if len(rel) != cfg.TrajectoriesPerDirection {
			t.Fatalf("query %d has %d relevant results, want %d", i, len(rel), cfg.TrajectoriesPerDirection)
		}
		// Relevant trajectories share route and direction with the query.
		for _, id := range rel {
			dt := out.Dataset.ByID(id)
			if dt == nil {
				t.Fatalf("relevant ID %d not in dataset", id)
			}
			if dt.Route != q.Route || dt.Dir != q.Dir {
				t.Fatalf("relevant %d has route %d/%v, query has %d/%v", id, dt.Route, dt.Dir, q.Route, q.Dir)
			}
		}
	}
}

func TestGenerateSamplingRate(t *testing.T) {
	cfg := smallConfig()
	cfg.NoiseMeters = 0
	cfg.SpeedJitter = 0
	out, err := Generate(testCity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At 1 Hz and ≥30 km/h, consecutive samples are at most ~17 m apart
	// (60 km/h) and at least a few meters.
	tr := out.Dataset.Trajectories[0]
	if tr.Len() < 50 {
		t.Fatalf("trajectory too short: %d points for a %.0f m route", tr.Len(), cfg.MinRouteMeters)
	}
	for i := 1; i < tr.Len(); i++ {
		d := geo.Haversine(tr.Points[i-1], tr.Points[i])
		if d > 18 {
			t.Fatalf("samples %d–%d are %.1f m apart (faster than 60 km/h at 1 Hz)", i-1, i, d)
		}
	}
	// The trajectory's ground length approximates the route length.
	if tr.GroundLength() < cfg.MinRouteMeters*0.9 {
		t.Errorf("trajectory covers %.0f m, route minimum is %.0f m", tr.GroundLength(), cfg.MinRouteMeters)
	}
}

func TestGenerateNoiseMagnitude(t *testing.T) {
	cfg := smallConfig()
	cfg.Routes = 3
	noisy, err := Generate(testCity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoiseMeters = 0
	clean, err := Generate(testCity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: pairwise comparison of the same trajectory with and
	// without noise. RMS displacement ≈ NoiseMeters.
	nt, ct := noisy.Dataset.Trajectories[0], clean.Dataset.Trajectories[0]
	if nt.Len() != ct.Len() {
		// Noise does not change timing, so lengths must match.
		t.Fatalf("noisy and clean lengths differ: %d vs %d", nt.Len(), ct.Len())
	}
	var sq float64
	for i := range nt.Points {
		d := geo.Haversine(nt.Points[i], ct.Points[i])
		sq += d * d
	}
	rms := math.Sqrt(sq / float64(nt.Len()))
	if rms < 12 || rms > 28 {
		t.Errorf("RMS noise = %.1f m, want ≈20", rms)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Routes = 3
	a, err := Generate(testCity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testCity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dataset.Len() != b.Dataset.Len() {
		t.Fatal("same seed, different dataset size")
	}
	for i := range a.Dataset.Trajectories {
		ta, tb := a.Dataset.Trajectories[i], b.Dataset.Trajectories[i]
		if ta.Len() != tb.Len() {
			t.Fatalf("trajectory %d lengths differ", i)
		}
		for j := range ta.Points {
			if ta.Points[j] != tb.Points[j] {
				t.Fatalf("trajectory %d point %d differs", i, j)
			}
		}
	}
}

func TestSameRouteTrajectoriesAreSimilar(t *testing.T) {
	cfg := smallConfig()
	cfg.Routes = 3
	out, err := Generate(testCity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two trajectories of the same route+direction stay within tens of
	// meters of each other's path; opposite directions reverse endpoints.
	a, b := out.Dataset.Trajectories[0], out.Dataset.Trajectories[1]
	if a.Route != b.Route || a.Dir != b.Dir {
		t.Fatal("first two trajectories should share route and direction")
	}
	if d := geo.Haversine(a.Points[0], b.Points[0]); d > 100 {
		t.Errorf("same-direction starts %.0f m apart", d)
	}
	rev := out.Dataset.Trajectories[cfg.TrajectoriesPerDirection] // first reverse
	if rev.Dir != trajectory.Reverse || rev.Route != a.Route {
		t.Fatal("expected first reverse trajectory of route 0")
	}
	if d := geo.Haversine(a.Points[0], rev.Points[len(rev.Points)-1]); d > 100 {
		t.Errorf("reverse end should be near forward start, %.0f m apart", d)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Routes = 0
	if _, err := Generate(testCity, cfg); err == nil {
		t.Error("Generate should reject invalid config")
	}
}

func TestGenerateImpossibleRoutes(t *testing.T) {
	cfg := smallConfig()
	cfg.MinRouteMeters = 1e8
	if _, err := Generate(testCity, cfg); err == nil {
		t.Error("Generate should fail when no route is long enough")
	}
}
