// Package gen implements the synthetic dense-trajectory dataset generator
// of the paper's evaluation (§VI-A1): unique routes constrained to a road
// network, each spawning several similar trajectories per direction of
// travel, sampled at 1 Hz with Gaussian GPS noise, plus held-out query
// trajectories with their ground truth.
//
// The paper's full dataset is 5'000 routes × (10 + 10) trajectories around
// central London. The configuration scales down for tests and up for the
// full reproduction.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"geodabs/internal/geo"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// Config parameterizes the generator. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// Routes is the number of unique routes (paper: 5'000).
	Routes int
	// TrajectoriesPerDirection per route (paper: 10 each way).
	TrajectoriesPerDirection int
	// QueriesPerRoute is the number of extra held-out trajectories
	// generated per route to serve as queries (they are not part of the
	// dataset). Queries alternate direction per route.
	QueriesPerRoute int
	// MinRouteMeters is the minimum route length (default 3'000 m, which
	// at urban speeds yields the multi-hundred-point trajectories the
	// paper's cost experiments use).
	MinRouteMeters float64
	// SampleHz is the sampling rate (paper: one point every second).
	SampleHz float64
	// NoiseMeters is the RMS radial GPS error added to every sample
	// (paper: "20 meters of random Gaussian noise"). Each axis receives
	// Gaussian noise with σ = NoiseMeters/√2.
	NoiseMeters float64
	// SpeedJitter is the relative speed variation between trajectories of
	// the same route (default 0.1 → each trajectory drives at 90–110% of
	// free-flow speed).
	SpeedJitter float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration: 500 routes × 20
// trajectories = 10'000 trajectories, the densest setting of the paper's
// Fig 14. Scale Routes up to 5'000 to regenerate the full dataset.
func DefaultConfig() Config {
	return Config{
		Routes:                   500,
		TrajectoriesPerDirection: 10,
		QueriesPerRoute:          1,
		MinRouteMeters:           3000,
		SampleHz:                 1,
		NoiseMeters:              20,
		SpeedJitter:              0.1,
		Seed:                     1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Routes < 1:
		return fmt.Errorf("gen: Routes = %d", c.Routes)
	case c.TrajectoriesPerDirection < 1:
		return fmt.Errorf("gen: TrajectoriesPerDirection = %d", c.TrajectoriesPerDirection)
	case c.QueriesPerRoute < 0:
		return fmt.Errorf("gen: QueriesPerRoute = %d", c.QueriesPerRoute)
	case c.SampleHz <= 0:
		return fmt.Errorf("gen: SampleHz = %f", c.SampleHz)
	case c.NoiseMeters < 0:
		return fmt.Errorf("gen: NoiseMeters = %f", c.NoiseMeters)
	case c.SpeedJitter < 0 || c.SpeedJitter >= 1:
		return fmt.Errorf("gen: SpeedJitter = %f out of [0, 1)", c.SpeedJitter)
	case c.MinRouteMeters < 100:
		return fmt.Errorf("gen: MinRouteMeters = %f", c.MinRouteMeters)
	default:
		return nil
	}
}

// Output is a generated dataset with its query workload and ground truth.
type Output struct {
	// Dataset contains Routes × 2 × TrajectoriesPerDirection trajectories
	// with positional IDs.
	Dataset *trajectory.Dataset
	// Queries are held-out trajectories (not in Dataset). Query IDs
	// continue after the dataset IDs.
	Queries []*trajectory.Trajectory
	// Relevant maps each query ID to the dataset trajectories sharing its
	// route and direction — the ground truth for precision/recall.
	Relevant map[trajectory.ID][]trajectory.ID
}

// Generate builds the dataset on the given road network. The graph must be
// frozen (the generator routes on it).
func Generate(g *roadnet.Graph, cfg Config) (*Output, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := &Output{
		Dataset:  &trajectory.Dataset{},
		Relevant: make(map[trajectory.ID][]trajectory.ID),
	}
	var nextID trajectory.ID

	// routeDir is one direction of travel along one route, with the
	// dataset trajectories generated for it.
	type routeDir struct {
		legs     []roadnet.Leg
		dir      trajectory.Direction
		route    uint32
		relevant []trajectory.ID
	}
	var plans []*routeDir

	for r := 0; r < cfg.Routes; r++ {
		route, err := roadnet.RandomRoute(g, cfg.MinRouteMeters, rng)
		if err != nil {
			return nil, fmt.Errorf("gen: route %d: %w", r, err)
		}
		legs := route.Legs(g)
		dirs := [2]*routeDir{
			{legs: legs, dir: trajectory.Forward, route: uint32(r)},
			{legs: roadnet.ReverseLegs(legs), dir: trajectory.Reverse, route: uint32(r)},
		}
		for _, rd := range dirs {
			for i := 0; i < cfg.TrajectoriesPerDirection; i++ {
				t := sampleTrajectory(rd.legs, rd.dir, rd.route, cfg, rng)
				t.ID = nextID
				nextID++
				out.Dataset.Add(t)
				rd.relevant = append(rd.relevant, t.ID)
			}
		}
		for q := 0; q < cfg.QueriesPerRoute; q++ {
			plans = append(plans, dirs[(r+q)%2])
		}
	}
	for _, rd := range plans {
		t := sampleTrajectory(rd.legs, rd.dir, rd.route, cfg, rng)
		t.ID = nextID
		nextID++
		out.Queries = append(out.Queries, t)
		out.Relevant[t.ID] = append([]trajectory.ID(nil), rd.relevant...)
	}
	return out, nil
}

// sampleTrajectory simulates one GPS trace along the legs of a route: the
// moving object traverses each leg at the leg's free-flow speed scaled by
// a per-trajectory jitter factor, emitting a noisy sample every
// 1/SampleHz seconds.
func sampleTrajectory(legs []roadnet.Leg, dir trajectory.Direction, route uint32, cfg Config, rng *rand.Rand) *trajectory.Trajectory {
	speedFactor := 1 + (rng.Float64()*2-1)*cfg.SpeedJitter
	sigma := cfg.NoiseMeters / math.Sqrt2
	sample := func(p geo.Point) geo.Point {
		if sigma == 0 {
			return p
		}
		return geo.Offset(p, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	t := &trajectory.Trajectory{Route: route, Dir: dir}
	if len(legs) == 0 {
		return t
	}
	interval := 1 / cfg.SampleHz
	emitAt := 0.0 // next sample instant
	clock := 0.0  // time at the start of the current leg
	t.Points = append(t.Points, sample(legs[0].From))
	emitAt += interval
	for _, leg := range legs {
		legDur := leg.Length / (leg.Speed * speedFactor)
		for emitAt <= clock+legDur {
			f := (emitAt - clock) / legDur
			t.Points = append(t.Points, sample(geo.Interpolate(leg.From, leg.To, f)))
			emitAt += interval
		}
		clock += legDur
	}
	return t
}
