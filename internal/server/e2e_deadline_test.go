package server_test

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geodabs"
	"geodabs/client"
	"geodabs/internal/server"
)

// stallProxy sits between the coordinator and a shard node. Requests
// always pass through; with stall set, node replies are withheld, so
// the only way the coordinator-side RPC can end is by observing its
// context — which it signals by closing the connection (the deadline
// poke unblocks its pending read, the poisoned connection is
// discarded). The proxy reports that close on aborted.
type stallProxy struct {
	ln       net.Listener
	nodeAddr string
	stall    atomic.Bool
	aborted  chan struct{} // closed when a stalled RPC's conn is torn down
	once     sync.Once

	mu    sync.Mutex
	conns []net.Conn
}

func newStallProxy(t *testing.T, nodeAddr string) *stallProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &stallProxy{ln: ln, nodeAddr: nodeAddr, aborted: make(chan struct{})}
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *stallProxy) addr() string { return p.ln.Addr().String() }

func (p *stallProxy) close() {
	p.ln.Close()
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *stallProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
}

func (p *stallProxy) acceptLoop() {
	for {
		coordSide, err := p.ln.Accept()
		if err != nil {
			return
		}
		nodeSide, err := net.Dial("tcp", p.nodeAddr)
		if err != nil {
			coordSide.Close()
			return
		}
		p.track(coordSide)
		p.track(nodeSide)
		// Coordinator → node: requests always flow. EOF here while a
		// reply is stalled means the coordinator tore the connection
		// down — its RPC observed cancellation.
		go func() {
			io.Copy(nodeSide, coordSide)
			if p.stall.Load() {
				p.once.Do(func() { close(p.aborted) })
			}
			nodeSide.Close()
			coordSide.Close()
		}()
		// Node → coordinator: replies are withheld while stalled.
		go func() {
			buf := make([]byte, 32<<10)
			for {
				n, err := nodeSide.Read(buf)
				if n > 0 {
					for p.stall.Load() {
						time.Sleep(5 * time.Millisecond)
					}
					if _, werr := coordSide.Write(buf[:n]); werr != nil {
						break
					}
				}
				if err != nil {
					break
				}
			}
			coordSide.Close()
		}()
	}
}

// TestEndToEndDeadlinePropagation asserts the whole deadline chain:
// client deadline → wire header → server context → coordinator
// scatter → node RPC. The node's replies are stalled, so only genuine
// cancellation of the node RPC — not a front-end timeout — can produce
// the observed connection teardown.
func TestEndToEndDeadlinePropagation(t *testing.T) {
	node, err := geodabs.StartShardNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	proxy := newStallProxy(t, node.Addr())

	cfg := geodabs.DefaultConfig()
	cluster, err := geodabs.NewCluster(cfg,
		geodabs.ShardStrategy{PrefixBits: cfg.PrefixBits, Shards: 256, Nodes: 1},
		[]string{proxy.addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	w := testWorld()
	for _, tr := range w.dataset.Trajectories[:6] {
		if err := cluster.Add(tr); err != nil {
			t.Fatal(err)
		}
	}

	srv := startServer(t, cluster, server.Config{})
	cl, err := client.Dial(srv.Addr(), client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// From here on, node replies are withheld: the query reaches the
	// node, but its answer never comes back.
	proxy.stall.Store(true)

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Search(ctx, w.queries[0].Points)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline surfaced after %v", elapsed)
	}

	// The node-side RPC observed the cancellation: the coordinator tore
	// down its node connection instead of waiting out the stall.
	select {
	case <-proxy.aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("node RPC never observed the cancellation — only the front-end timed out")
	}
}
