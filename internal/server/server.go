// Package server implements geodabsd's serving layer: a TCP front-end
// exposing a geodabs engine (a local *Index snapshot or a distributed
// *Cluster) to external clients over the compact length-prefixed binary
// protocol of geodabs/internal/wire (specified in docs/protocol.md).
//
// The layer is production-shaped:
//
//   - Per-connection read and write loops with bounded request
//     pipelining: a connection may have at most Config.MaxPipeline
//     requests outstanding; beyond that the server stops reading the
//     socket, pushing backpressure into the client's TCP window instead
//     of buffering unboundedly.
//   - Admission control: at most Config.MaxInFlight requests execute at
//     once, with a bounded wait queue of Config.MaxQueue behind them.
//     A request arriving with the queue full is refused immediately with
//     an explicit OVERLOADED reply — the request is never executed and
//     no goroutine outlives the reply, so sustained overload sheds load
//     at wire speed instead of growing goroutines without bound.
//   - Per-request deadlines: the client's remaining budget rides the
//     request header and becomes the context deadline of the engine
//     call, so a deadline reaches all the way into a cluster
//     scatter-gather (whose node RPCs abort promptly on cancellation).
//     Config.MaxDeadline caps what a client may ask for and
//     Config.DefaultDeadline bounds requests that ask for nothing.
//   - Prometheus-style metrics: request counters by op and status,
//     shed/drain counters, in-flight and queue gauges, per-op latency
//     histograms — see Metrics.Handler.
//   - Graceful drain: Shutdown stops accepting connections, refuses new
//     requests with SHUTTING_DOWN, lets in-flight requests finish up to
//     the caller's deadline, then closes every connection.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"sync"
	"time"

	"geodabs"
	"geodabs/internal/bitmap"
	"geodabs/internal/wire"
)

// Engine is the indexing engine the server fronts: the union of the
// public Searcher and Mutator surfaces, satisfied by both *geodabs.Index
// and *geodabs.Cluster.
type Engine interface {
	geodabs.Searcher
	geodabs.Mutator
}

// Config shapes the serving layer. The zero value is usable: every limit
// falls back to the default documented on its field.
type Config struct {
	// MaxInFlight bounds concurrently executing requests across all
	// connections (default 128).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot (default
	// MaxInFlight). A request arriving when the queue is full is shed
	// with StatusOverloaded.
	MaxQueue int
	// MaxPipeline bounds a single connection's outstanding requests
	// (default 32). When reached, the server stops reading that
	// connection until a response is enqueued.
	MaxPipeline int
	// MaxConns bounds open client connections (default 1024). A
	// connection beyond the limit receives one OVERLOADED reply and is
	// closed.
	MaxConns int
	// DefaultDeadline applies to requests that carry no deadline
	// (default 0: no server-imposed deadline).
	DefaultDeadline time.Duration
	// MaxDeadline caps the deadline a client may request (default 0: no
	// cap).
	MaxDeadline time.Duration
	// ErrorLog receives connection-level errors; nil discards them.
	ErrorLog *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 128
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxInFlight
	}
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = 32
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	return c
}

// Server is a running geodabsd front-end. Create one with Listen or
// Serve; stop it with Shutdown (graceful) or Close (immediate).
type Server struct {
	engine  Engine
	cfg     Config
	ln      net.Listener
	metrics *Metrics

	inFlight chan struct{} // capacity MaxInFlight: executing requests
	queue    chan struct{} // capacity MaxQueue: requests awaiting a slot

	draining  chan struct{} // closed when Shutdown begins
	connWG    sync.WaitGroup
	closeOnce sync.Once

	// drainMu pairs reqWG.Add with Shutdown's drain transition: a
	// WaitGroup forbids an Add concurrent with a Wait that starts at
	// zero, so admission registers requests under the lock and Shutdown
	// flips drainStarted under it before waiting.
	drainMu      sync.Mutex
	drainStarted bool
	reqWG        sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Listen starts a server on addr (e.g. "127.0.0.1:7071").
func Listen(addr string, engine Engine, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen: %w", err)
	}
	return Serve(ln, engine, cfg), nil
}

// Serve starts a server on an existing listener, taking ownership of it.
func Serve(ln net.Listener, engine Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		engine:   engine,
		cfg:      cfg,
		ln:       ln,
		metrics:  &Metrics{},
		inFlight: make(chan struct{}, cfg.MaxInFlight),
		queue:    make(chan struct{}, cfg.MaxQueue),
		draining: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	s.connWG.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics returns the server's metrics registry, for mounting
// Metrics.Handler and for tests and benchmarks to read counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.ErrorLog != nil {
		s.cfg.ErrorLog.Printf(format, args...)
	}
}

// acceptBackoffMax bounds the exponential backoff between retries of a
// persistently failing Accept (same discipline as the shard node's
// accept loop).
const acceptBackoffMax = time.Second

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.draining:
				return
			default:
			}
			if backoff < time.Millisecond {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-time.After(backoff):
			case <-s.draining:
				return
			}
			continue
		}
		backoff = 0
		if !s.register(conn) {
			// Over the connection limit (or draining): one explicit
			// refusal, then close — never a silent hang.
			s.metrics.connsRejected.Add(1)
			s.refuseConn(conn)
			continue
		}
		s.metrics.connsOpened.Add(1)
		s.metrics.connsActive.Add(1)
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// register tracks a connection for shutdown teardown, refusing it when
// the server is at its connection limit or closing.
func (s *Server) register(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) unregister(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// refuseConn writes a single OVERLOADED (or SHUTTING_DOWN) frame and
// closes the connection.
func (s *Server) refuseConn(conn net.Conn) {
	status := wire.StatusOverloaded
	select {
	case <-s.draining:
		status = wire.StatusShuttingDown
	default:
	}
	payload := wire.AppendResponse(nil, &wire.Response{Status: status})
	frame, err := wire.AppendFrame(nil, payload)
	if err == nil {
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		conn.Write(frame)
	}
	conn.Close()
}

// serveConn runs one connection's read loop and writer goroutine until
// EOF, a protocol violation, or server close.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer s.metrics.connsActive.Add(-1)
	defer s.unregister(conn)
	defer conn.Close()

	// out carries encoded response frames to the single writer
	// goroutine, which serializes them onto the socket. Capacity covers
	// the pipeline bound plus refusal replies, so an executing request's
	// send only blocks when the client itself stops reading — TCP
	// backpressure, bounded by the pipeline limit.
	out := make(chan []byte, s.cfg.MaxPipeline+8)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		dead := false
		for frame := range out {
			if dead {
				continue // drain remaining frames after a write error
			}
			if _, err := conn.Write(frame); err != nil {
				dead = true
			}
		}
	}()
	// connReqs tracks this connection's executing requests, so the
	// response channel is closed only after the last response is in it.
	var connReqs sync.WaitGroup

	pipeline := make(chan struct{}, s.cfg.MaxPipeline)
	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !isClosedConn(err) {
				s.metrics.badFrame.Add(1)
				s.logf("server: %s: read: %v", conn.RemoteAddr(), err)
			}
			break
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// The frame parsed but the payload didn't: answer, then drop
			// the connection — a client this confused cannot be trusted
			// to stay in sync.
			s.metrics.badFrame.Add(1)
			s.enqueue(out, &wire.Response{Status: wire.StatusBadRequest, Message: err.Error()})
			break
		}
		// Bounded pipelining: block the read loop until the connection
		// has a free slot. Released by handle/refusals when the response
		// is enqueued.
		pipeline <- struct{}{}
		if !s.admit(req, out, pipeline, &connReqs) {
			continue
		}
	}
	connReqs.Wait()
	close(out)
	writerWG.Wait()
}

// admit runs admission control for one decoded request: execute, queue
// within bounds, or refuse with an explicit status. It always eventually
// releases the pipeline slot (directly on refusal, via the execute
// goroutine otherwise). The return value is informational.
func (s *Server) admit(req *wire.Request, out chan<- []byte, pipeline <-chan struct{}, connReqs *sync.WaitGroup) bool {
	refuse := func(status wire.Status) {
		s.metrics.observe(req.Op, status, 0)
		s.enqueue(out, &wire.Response{ID: req.ID, Status: status})
		<-pipeline
	}
	select {
	case <-s.draining:
		s.metrics.draining.Add(1)
		refuse(wire.StatusShuttingDown)
		return false
	default:
	}
	select {
	case s.inFlight <- struct{}{}: // fast path: a slot is free
	default:
		// Contended: wait in the bounded queue, shed when it is full.
		select {
		case s.queue <- struct{}{}:
			s.metrics.queued.Add(1)
			admitted := s.waitQueued(req)
			s.metrics.queued.Add(-1)
			<-s.queue
			if admitted != wire.StatusOK {
				if admitted == wire.StatusShuttingDown {
					s.metrics.draining.Add(1)
				}
				refuse(admitted)
				return false
			}
		default:
			s.metrics.shed.Add(1)
			refuse(wire.StatusOverloaded)
			return false
		}
	}
	// Admitted: execute on its own goroutine so the read loop keeps
	// decoding (pipelining). Goroutine growth is bounded by
	// MaxInFlight — the slot was acquired above. Registration can still
	// lose the race with a drain that began after the check above; the
	// slot is handed back and the request refused like any other
	// drain-time arrival.
	if !s.beginRequest() {
		<-s.inFlight
		s.metrics.draining.Add(1)
		refuse(wire.StatusShuttingDown)
		return false
	}
	connReqs.Add(1)
	s.metrics.inFlight.Add(1)
	go func() {
		defer func() {
			s.metrics.inFlight.Add(-1)
			<-s.inFlight
			connReqs.Done()
			s.reqWG.Done()
			<-pipeline
		}()
		s.execute(req, out)
	}()
	return true
}

// beginRequest registers one request with the drain waiter, failing when
// the drain already began. See drainMu.
func (s *Server) beginRequest() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.drainStarted {
		return false
	}
	s.reqWG.Add(1)
	return true
}

// waitQueued blocks a queued request until an execution slot frees,
// its deadline expires, or the server starts draining.
func (s *Server) waitQueued(req *wire.Request) wire.Status {
	var timeout <-chan time.Time
	if d := s.deadlineOf(req); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case s.inFlight <- struct{}{}:
		return wire.StatusOK
	case <-timeout:
		return wire.StatusDeadlineExceeded
	case <-s.draining:
		return wire.StatusShuttingDown
	}
}

// deadlineOf resolves a request's effective deadline from its header and
// the server's default and cap; 0 means none.
func (s *Server) deadlineOf(req *wire.Request) time.Duration {
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d == 0 {
		d = s.cfg.DefaultDeadline
	}
	if s.cfg.MaxDeadline > 0 && (d == 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	return d
}

// enqueue encodes and frames a response onto the connection's writer
// channel.
func (s *Server) enqueue(out chan<- []byte, resp *wire.Response) {
	payload := wire.AppendResponse(nil, resp)
	frame, err := wire.AppendFrame(nil, payload)
	if err != nil {
		// A response can only exceed MaxFrame on a pathological hit
		// count; truncate to an error reply rather than desync.
		frame, _ = wire.AppendFrame(nil, wire.AppendResponse(nil, &wire.Response{
			ID: resp.ID, Status: wire.StatusError, Message: "response exceeds frame limit",
		}))
	}
	out <- frame
}

// execute runs one admitted request against the engine and enqueues its
// response.
func (s *Server) execute(req *wire.Request, out chan<- []byte) {
	start := time.Now()
	ctx := context.Background()
	if d := s.deadlineOf(req); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	resp := s.handle(ctx, req)
	resp.ID = req.ID
	s.metrics.observe(req.Op, resp.Status, time.Since(start))
	s.enqueue(out, resp)
}

// handle dispatches one request to the engine, mapping errors onto wire
// statuses.
func (s *Server) handle(ctx context.Context, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpPing:
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpSearchFP:
		set := bitmap.FromSlice(req.Terms)
		return s.search(ctx, req, geodabs.QueryFromFingerprint(&geodabs.Fingerprint{Set: set}))
	case wire.OpSearch:
		return s.search(ctx, req, geodabs.NewQuery(toGeoPoints(req.Points)))
	case wire.OpSearchRerank:
		metric := rerankMetricOf(req.Metric)
		if metric == nil {
			return &wire.Response{Status: wire.StatusBadRequest, Message: fmt.Sprintf("unknown rerank metric %d", req.Metric)}
		}
		return s.search(ctx, req, geodabs.NewQuery(toGeoPoints(req.Points)), geodabs.WithExactRerank(metric))
	case wire.OpUpsert:
		t := &geodabs.Trajectory{ID: geodabs.ID(req.TrajID), Points: toGeoPoints(req.Points)}
		if err := s.engine.Upsert(ctx, t); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpDelete:
		if err := s.engine.Delete(ctx, geodabs.ID(req.TrajID)); err != nil {
			return errResponse(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	default:
		return &wire.Response{Status: wire.StatusBadRequest, Message: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// search validates the request's parameters, runs the engine search, and
// encodes the ranked hits. extra carries op-specific options (the exact
// rerank of OpSearchRerank) on top of the common wire parameters.
func (s *Server) search(ctx context.Context, req *wire.Request, q *geodabs.Query, extra ...geodabs.SearchOption) *wire.Response {
	opts, resp := searchOptions(req)
	if resp != nil {
		return resp
	}
	opts = append(opts, extra...)
	res, err := s.engine.SearchQuery(ctx, q, opts...)
	if err != nil {
		return errResponse(err)
	}
	hits := make([]wire.Hit, len(res.Hits))
	for i, h := range res.Hits {
		hits[i] = wire.Hit{ID: uint32(h.ID), Distance: h.Distance, Shared: uint32(h.Shared)}
	}
	st := res.Stats
	return &wire.Response{
		Status: wire.StatusOK,
		Hits:   hits,
		Stats: wire.Stats{
			Candidates:   uint64(st.Candidates),
			Pruned:       uint64(st.Pruned),
			NodePruned:   uint64(st.NodePruned),
			WirePartials: uint64(st.WirePartials),
			Shards:       uint64(st.ShardsTouched),
			Nodes:        uint64(st.NodesTouched),
			ElapsedUS:    uint64(st.Elapsed.Microseconds()),
		},
	}
}

// searchOptions maps the wire search parameters onto the public
// functional options, rejecting invalid combinations before the engine
// runs (their errors are the client's fault, not the server's).
func searchOptions(req *wire.Request) ([]geodabs.SearchOption, *wire.Response) {
	bad := func(format string, args ...any) *wire.Response {
		return &wire.Response{Status: wire.StatusBadRequest, Message: fmt.Sprintf(format, args...)}
	}
	if math.IsNaN(req.MaxDistance) || req.MaxDistance < 0 || req.MaxDistance > 1 {
		return nil, bad("max distance %v out of range [0, 1]", req.MaxDistance)
	}
	if req.KNN > 0 && req.Limit > 0 {
		return nil, bad("knn and limit are mutually exclusive")
	}
	opts := []geodabs.SearchOption{geodabs.WithMaxDistance(req.MaxDistance)}
	switch {
	case req.KNN > 0:
		opts = append(opts, geodabs.WithKNN(req.KNN))
	case req.Limit > 0:
		opts = append(opts, geodabs.WithLimit(req.Limit))
	}
	return opts, nil
}

// rerankMetricOf maps a wire metric tag onto the public built-in exact
// metric, nil for an unknown tag. Only built-ins are addressable over
// the wire; on a cluster engine the search pushes the scoring down to
// the shard nodes owning the retained points.
func rerankMetricOf(m uint8) geodabs.RerankMetric {
	switch m {
	case wire.MetricDTW:
		return geodabs.DTW
	case wire.MetricDFD:
		return geodabs.DFD
	default:
		return nil
	}
}

// errResponse maps an engine error onto a wire status.
func errResponse(err error) *wire.Response {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return &wire.Response{Status: wire.StatusDeadlineExceeded}
	case errors.Is(err, geodabs.ErrNotFound):
		return &wire.Response{Status: wire.StatusNotFound, Message: err.Error()}
	case errors.Is(err, geodabs.ErrClosed):
		return &wire.Response{Status: wire.StatusShuttingDown}
	default:
		return &wire.Response{Status: wire.StatusError, Message: err.Error()}
	}
}

// toGeoPoints converts wire points to the engine's point type.
func toGeoPoints(pts []wire.Point) []geodabs.Point {
	out := make([]geodabs.Point, len(pts))
	for i, p := range pts {
		out[i] = geodabs.Point{Lat: p.Lat, Lon: p.Lon}
	}
	return out
}

// Shutdown drains the server gracefully: it stops accepting connections,
// refuses new requests with SHUTTING_DOWN, waits for in-flight requests
// to finish (bounded by ctx), then closes every connection. It returns
// nil when the drain completed, ctx.Err() when the deadline expired with
// requests still running (they are then cut off by the connection
// close). Shutdown and Close are idempotent and safe to call
// concurrently; later calls return nil without waiting.
func (s *Server) Shutdown(ctx context.Context) error {
	first := false
	s.closeOnce.Do(func() { first = true })
	if !first {
		return nil
	}
	close(s.draining)
	s.ln.Close()
	s.drainMu.Lock()
	s.drainStarted = true
	s.drainMu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if err == nil {
		// Every request finished, but its response may still sit in a
		// writer channel. Close only the read sides: readers unwind with
		// EOF, connection handlers flush their writers and close their
		// own sockets. A client that stops reading cannot stall the
		// drain past ctx.
		s.closeReads()
		connsDone := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(connsDone)
		}()
		select {
		case <-connsDone:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	s.closeConns()
	if err == nil {
		s.connWG.Wait()
	}
	return err
}

// closeReads shuts down the read side of every tracked connection,
// unwinding its read loop while pending responses still flush.
func (s *Server) closeReads() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			c.SetReadDeadline(time.Now())
		}
	}
}

// Close shuts the server down immediately: in-flight requests are cut
// off by their connections closing. Idempotent.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: skip the drain wait
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		err = nil
	}
	return err
}

// closeConns marks the server closed and tears down every tracked
// connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// isClosedConn reports the read error of a connection torn down by
// Close/Shutdown, which is expected unwinding, not a protocol problem.
func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrUnexpectedEOF)
}
