package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"geodabs/internal/wire"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen to
// resolve both the microsecond-scale local-index searches and the
// second-scale pathologies admission control exists to bound.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic counters,
// safe for concurrent observation. Prometheus semantics: buckets are
// cumulative at exposition time, counts observed per bucket internally.
type histogram struct {
	counts [len(latencyBuckets) + 1]atomic.Uint64 // +1 for +Inf
	sumNS  atomic.Int64
	total  atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], s)
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.total.Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation within the owning bucket, the same estimate a Prometheus
// histogram_quantile produces. Used by the bench harness and tests; the
// exposition endpoint ships the raw buckets instead.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(seen+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			hi := lo * 2
			if i < len(latencyBuckets) {
				hi = latencyBuckets[i]
			}
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(seen))/float64(c)
		}
		seen += c
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// opMetrics is one op's request-side counters.
type opMetrics struct {
	// byStatus counts completed requests by wire status code.
	byStatus [8]atomic.Uint64
	latency  histogram
}

// Metrics is the server's Prometheus-style instrumentation: request
// counters by op and status, shed and connection counters, in-flight and
// queue gauges, and per-op latency histograms. All fields are atomics —
// the hot path never takes a lock to count.
type Metrics struct {
	ops [7]opMetrics // indexed by wire.Op (0 unused)

	connsOpened   atomic.Uint64
	connsRejected atomic.Uint64
	connsActive   atomic.Int64

	inFlight atomic.Int64
	queued   atomic.Int64
	// collector, when set, appends engine-specific exposition lines on
	// every scrape (see SetCollector).
	collector atomic.Pointer[func(w *strings.Builder)]
	// shed counts requests refused with StatusOverloaded; draining those
	// refused with StatusShuttingDown. Both are also visible in the
	// per-op status counters; these totals make the load-shedding story
	// one scrape glance.
	shed     atomic.Uint64
	draining atomic.Uint64
	badFrame atomic.Uint64
}

func (m *Metrics) op(op wire.Op) *opMetrics {
	if int(op) < 1 || int(op) >= len(m.ops) {
		return &m.ops[0]
	}
	return &m.ops[op]
}

// observe records one completed request.
func (m *Metrics) observe(op wire.Op, status wire.Status, d time.Duration) {
	om := m.op(op)
	if int(status) < len(om.byStatus) {
		om.byStatus[status].Add(1)
	}
	om.latency.observe(d)
}

// Shed returns how many requests admission control refused with
// StatusOverloaded.
func (m *Metrics) Shed() uint64 { return m.shed.Load() }

// InFlight returns the number of requests currently executing.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// Quantile estimates the q-quantile of an op's request latency in
// seconds, 0 when the op has not been observed.
func (m *Metrics) Quantile(op wire.Op, q float64) float64 {
	return m.op(op).latency.quantile(q)
}

// Requests returns how many requests of the op completed with the
// status.
func (m *Metrics) Requests(op wire.Op, status wire.Status) uint64 {
	om := m.op(op)
	if int(status) >= len(om.byStatus) {
		return 0
	}
	return om.byStatus[status].Load()
}

// WriteTo renders the Prometheus text exposition format (version 0.0.4).
func (m *Metrics) writeTo(w *strings.Builder) {
	fmt.Fprintf(w, "# HELP geodabsd_connections_opened_total Accepted client connections.\n# TYPE geodabsd_connections_opened_total counter\ngeodabsd_connections_opened_total %d\n", m.connsOpened.Load())
	fmt.Fprintf(w, "# HELP geodabsd_connections_rejected_total Connections refused at the accept gate (connection limit).\n# TYPE geodabsd_connections_rejected_total counter\ngeodabsd_connections_rejected_total %d\n", m.connsRejected.Load())
	fmt.Fprintf(w, "# HELP geodabsd_connections_active Currently open client connections.\n# TYPE geodabsd_connections_active gauge\ngeodabsd_connections_active %d\n", m.connsActive.Load())
	fmt.Fprintf(w, "# HELP geodabsd_in_flight_requests Requests currently executing.\n# TYPE geodabsd_in_flight_requests gauge\ngeodabsd_in_flight_requests %d\n", m.inFlight.Load())
	fmt.Fprintf(w, "# HELP geodabsd_queued_requests Requests admitted to the bounded wait queue, not yet executing.\n# TYPE geodabsd_queued_requests gauge\ngeodabsd_queued_requests %d\n", m.queued.Load())
	fmt.Fprintf(w, "# HELP geodabsd_shed_total Requests refused with OVERLOADED by admission control.\n# TYPE geodabsd_shed_total counter\ngeodabsd_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(w, "# HELP geodabsd_draining_refused_total Requests refused with SHUTTING_DOWN during drain.\n# TYPE geodabsd_draining_refused_total counter\ngeodabsd_draining_refused_total %d\n", m.draining.Load())
	fmt.Fprintf(w, "# HELP geodabsd_bad_frames_total Connections dropped on undecodable frames.\n# TYPE geodabsd_bad_frames_total counter\ngeodabsd_bad_frames_total %d\n", m.badFrame.Load())

	w.WriteString("# HELP geodabsd_requests_total Completed requests by op and status.\n# TYPE geodabsd_requests_total counter\n")
	for op := wire.Op(1); int(op) < len(m.ops); op++ {
		om := &m.ops[op]
		for st := range om.byStatus {
			if n := om.byStatus[st].Load(); n > 0 {
				fmt.Fprintf(w, "geodabsd_requests_total{op=%q,status=%q} %d\n", op.String(), wire.Status(st).String(), n)
			}
		}
	}

	w.WriteString("# HELP geodabsd_request_seconds Request latency by op.\n# TYPE geodabsd_request_seconds histogram\n")
	for op := wire.Op(1); int(op) < len(m.ops); op++ {
		h := &m.ops[op].latency
		if h.total.Load() == 0 {
			continue
		}
		var cum uint64
		for i, ub := range latencyBuckets[:] {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "geodabsd_request_seconds_bucket{op=%q,le=%q} %d\n", op.String(), strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "geodabsd_request_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op.String(), cum)
		fmt.Fprintf(w, "geodabsd_request_seconds_sum{op=%q} %g\n", op.String(), time.Duration(h.sumNS.Load()).Seconds())
		fmt.Fprintf(w, "geodabsd_request_seconds_count{op=%q} %d\n", op.String(), cum)
	}

	if fn := m.collector.Load(); fn != nil {
		(*fn)(w)
	}
}

// SetCollector registers fn to append extra Prometheus exposition lines
// at the end of every scrape — the hook cmd/geodabsd uses to export the
// backing cluster's durability gauges (WAL size, fsync latency, replica
// epoch lag) without the server package knowing the engine's shape. fn
// runs on the scrape goroutine and must be safe for concurrent use; nil
// removes the collector.
func (m *Metrics) SetCollector(fn func(w *strings.Builder)) {
	if fn == nil {
		m.collector.Store(nil)
		return
	}
	m.collector.Store(&fn)
}

// Handler returns the /metrics HTTP handler exposing the registry in the
// Prometheus text format. Mount it on any mux; cmd/geodabsd serves it on
// its -metrics-addr.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var sb strings.Builder
		m.writeTo(&sb)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(sb.String()))
	})
}
