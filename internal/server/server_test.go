package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geodabs"
	"geodabs/client"
	"geodabs/internal/server"
	"geodabs/internal/wire"
)

// testWorld caches a small generated city + dataset for the server
// tests.
var testWorld = sync.OnceValue(func() *worldData {
	city, err := geodabs.GenerateCity(geodabs.CityConfig{RadiusMeters: 3000, Seed: 7})
	if err != nil {
		panic(err)
	}
	cfg := geodabs.DefaultDatasetConfig()
	cfg.Routes = 6
	cfg.TrajectoriesPerDirection = 3
	cfg.MinRouteMeters = 2000
	out, err := geodabs.GenerateDataset(city, cfg)
	if err != nil {
		panic(err)
	}
	return &worldData{dataset: out.Dataset, queries: out.Queries}
})

type worldData struct {
	dataset *geodabs.Dataset
	queries []*geodabs.Trajectory
}

// stubEngine is a controllable Engine: every call holds for delay (or
// until ctx cancels), then succeeds with a canned result.
type stubEngine struct {
	delay    time.Duration
	searches atomic.Int64
	upserts  atomic.Int64
	deletes  atomic.Int64
}

func (e *stubEngine) wait(ctx context.Context) error {
	if e.delay == 0 {
		return ctx.Err()
	}
	t := time.NewTimer(e.delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *stubEngine) result() *geodabs.SearchResult {
	return &geodabs.SearchResult{
		Hits:  []geodabs.Result{{ID: 1, Distance: 0.125, Shared: 7}},
		Stats: geodabs.SearchStats{Candidates: 3, ShardsTouched: 2, NodesTouched: 1},
	}
}

func (e *stubEngine) Search(ctx context.Context, q *geodabs.Trajectory, opts ...geodabs.SearchOption) (*geodabs.SearchResult, error) {
	e.searches.Add(1)
	if err := e.wait(ctx); err != nil {
		return nil, err
	}
	return e.result(), nil
}

func (e *stubEngine) SearchQuery(ctx context.Context, q *geodabs.Query, opts ...geodabs.SearchOption) (*geodabs.SearchResult, error) {
	e.searches.Add(1)
	if err := e.wait(ctx); err != nil {
		return nil, err
	}
	return e.result(), nil
}

func (e *stubEngine) Upsert(ctx context.Context, t *geodabs.Trajectory) error {
	e.upserts.Add(1)
	return e.wait(ctx)
}

func (e *stubEngine) Delete(ctx context.Context, id geodabs.ID) error {
	e.deletes.Add(1)
	if err := e.wait(ctx); err != nil {
		return err
	}
	if id == 404 {
		return geodabs.ErrNotFound
	}
	return nil
}

func (e *stubEngine) DeleteAll(ctx context.Context, ids []geodabs.ID, workers int) (int, error) {
	return 0, errors.New("not wired over the protocol")
}

func startServer(t *testing.T, engine server.Engine, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.Listen("127.0.0.1:0", engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestServeRealIndex drives the full loop against a real local index:
// remote upserts, thin-client fingerprint search, raw search, delete,
// and the not-found reply.
func TestServeRealIndex(t *testing.T) {
	w := testWorld()
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, idx, server.Config{})
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for _, tr := range w.dataset.Trajectories {
		if err := cl.Upsert(ctx, tr); err != nil {
			t.Fatalf("upsert %d: %v", tr.ID, err)
		}
	}
	if idx.Len() != w.dataset.Len() {
		t.Fatalf("index has %d trajectories after remote upserts, want %d", idx.Len(), w.dataset.Len())
	}

	// Thin-client path: winnow locally, ship the fingerprint.
	q := w.queries[0]
	f, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.SearchFingerprint(ctx, f.Fingerprint(q.Points), client.WithMaxDistance(0.99), client.WithLimit(10))
	if err != nil {
		t.Fatalf("fingerprint search: %v", err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("fingerprint search returned no hits")
	}
	top := w.dataset.ByID(res.Hits[0].ID)
	if top == nil || top.Route != q.Route || top.Dir != q.Dir {
		t.Errorf("top hit %v does not match query route %d/%v", res.Hits[0], q.Route, q.Dir)
	}

	// Raw path must agree with the thin-client path on the same query.
	raw, err := cl.Search(ctx, q.Points, client.WithMaxDistance(0.99), client.WithLimit(10))
	if err != nil {
		t.Fatalf("raw search: %v", err)
	}
	if len(raw.Hits) != len(res.Hits) || raw.Hits[0] != res.Hits[0] {
		t.Errorf("raw search disagrees with fingerprint search: %v vs %v", raw.Hits, res.Hits)
	}

	victim := res.Hits[0].ID
	if err := cl.Delete(ctx, victim); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := cl.Delete(ctx, victim); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("second delete: got %v, want ErrNotFound", err)
	}
	if !errors.Is(client.ErrNotFound, geodabs.ErrNotFound) {
		t.Error("client.ErrNotFound should alias geodabs.ErrNotFound")
	}
}

// floodConn pipelines count search requests on one raw connection and
// tallies the reply statuses.
func floodConn(t *testing.T, addr string, count int, firstID uint64) (map[wire.Status]int, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(60 * time.Second))
	var buf []byte
	for i := 0; i < count; i++ {
		payload := wire.AppendRequest(nil, &wire.Request{
			ID: firstID + uint64(i), Op: wire.OpSearchFP, MaxDistance: 1, Terms: []uint32{1, 2, 3},
		})
		if buf, err = wire.AppendFrame(buf, payload); err != nil {
			return nil, err
		}
	}
	if _, err := conn.Write(buf); err != nil {
		return nil, err
	}
	statuses := make(map[wire.Status]int)
	for i := 0; i < count; i++ {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return statuses, fmt.Errorf("response %d: %w", i, err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			return statuses, err
		}
		statuses[resp.Status]++
	}
	return statuses, nil
}

// TestOverloadSheds floods the server far past its admission limit and
// asserts the contract of the acceptance criteria: excess load is shed
// with explicit OVERLOADED replies, every request is answered, admitted
// requests keep a bounded p99, and goroutines do not grow with offered
// load.
func TestOverloadSheds(t *testing.T) {
	engine := &stubEngine{delay: 30 * time.Millisecond}
	srv := startServer(t, engine, server.Config{
		MaxInFlight: 4,
		MaxQueue:    4,
		MaxPipeline: 64,
	})

	const conns = 8
	const perConn = 50
	baseline := runtime.NumGoroutine()

	var peak atomic.Int64
	done := make(chan struct{})
	go func() {
		// Sample goroutine growth while the flood is in progress.
		for {
			select {
			case <-done:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	results := make([]map[wire.Status]int, conns)
	errs := make([]error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = floodConn(t, srv.Addr(), perConn, uint64(c*perConn))
		}(c)
	}
	wg.Wait()
	close(done)

	total := make(map[wire.Status]int)
	answered := 0
	for c := 0; c < conns; c++ {
		if errs[c] != nil {
			t.Fatalf("conn %d: %v", c, errs[c])
		}
		for st, n := range results[c] {
			total[st] += n
			answered += n
		}
	}
	if answered != conns*perConn {
		t.Fatalf("answered %d of %d requests", answered, conns*perConn)
	}
	if total[wire.StatusOK] == 0 {
		t.Error("no requests admitted under overload")
	}
	if total[wire.StatusOverloaded] == 0 {
		t.Error("no requests shed with OVERLOADED under sustained overload")
	}
	if got := total[wire.StatusOK] + total[wire.StatusOverloaded]; got != answered {
		t.Errorf("unexpected statuses: %v", total)
	}
	if srv.Metrics().Shed() == 0 {
		t.Error("shed counter did not move")
	}

	// Admitted p99 stays bounded: an admitted request waits at most the
	// queue in front of it (MaxQueue/MaxInFlight rounds of the 30ms op),
	// nowhere near the seconds an unbounded queue would reach.
	if p99 := srv.Metrics().Quantile(wire.OpSearchFP, 0.99); p99 > 1.0 {
		t.Errorf("p99 of requests = %.3fs, want bounded under overload", p99)
	}

	// Goroutines are bounded by connections and the admission limit, not
	// by the 400 offered requests: each connection owns a few goroutines
	// and at most MaxInFlight+MaxQueue requests hold one at a time.
	bound := int64(baseline + conns*4 + (4 + 4) + 24)
	if p := peak.Load(); p > bound {
		t.Errorf("goroutines peaked at %d (baseline %d, bound %d) — unbounded growth under overload", p, baseline, bound)
	}
}

// TestDeadlineRefusesLateAndCancels maps client deadlines end to end at
// the stub level: a request whose budget expires mid-execution gets
// DEADLINE_EXCEEDED, promptly.
func TestDeadlineRefusesLateAndCancels(t *testing.T) {
	engine := &stubEngine{delay: 10 * time.Second}
	srv := startServer(t, engine, server.Config{})
	cl, err := client.Dial(srv.Addr(), client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.Search(ctx, testWorld().queries[0].Points)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline took %v to surface", elapsed)
	}
	// The engine call observed the cancellation (the stub returns the
	// ctx error, which the server maps onto the deadline status).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Requests(wire.OpSearch, wire.StatusDeadlineExceeded) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the deadline-exceeded completion")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMaxDeadlineCapsClientBudget: a client asking for more than the
// server allows is clamped to the cap.
func TestMaxDeadlineCapsClientBudget(t *testing.T) {
	engine := &stubEngine{delay: 10 * time.Second}
	srv := startServer(t, engine, server.Config{MaxDeadline: 100 * time.Millisecond})
	cl, err := client.Dial(srv.Addr(), client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if _, err = cl.Search(ctx, testWorld().queries[0].Points); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded from the server cap", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("capped request took %v", elapsed)
	}
}

// TestGracefulDrain: in-flight requests finish, new requests on an open
// connection are refused with SHUTTING_DOWN, and Shutdown returns nil
// within the budget.
func TestGracefulDrain(t *testing.T) {
	engine := &stubEngine{delay: 300 * time.Millisecond}
	srv := startServer(t, engine, server.Config{})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))

	send := func(id uint64) {
		payload := wire.AppendRequest(nil, &wire.Request{ID: id, Op: wire.OpSearchFP, MaxDistance: 1, Terms: []uint32{1}})
		frame, err := wire.AppendFrame(nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() *wire.Response {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	send(1) // in flight when the drain starts
	time.Sleep(50 * time.Millisecond)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let the drain flag flip
	send(2)                           // arrives mid-drain

	got := map[uint64]wire.Status{}
	for i := 0; i < 2; i++ {
		r := recv()
		got[r.ID] = r.Status
	}
	if got[1] != wire.StatusOK {
		t.Errorf("in-flight request finished with %v, want OK", got[1])
	}
	if got[2] != wire.StatusShuttingDown {
		t.Errorf("mid-drain request got %v, want SHUTTING_DOWN", got[2])
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("drain did not complete in time: %v", err)
	}
	// The listener is gone: new connections are refused.
	if c, err := net.DialTimeout("tcp", srv.Addr(), time.Second); err == nil {
		c.Close()
		t.Error("dial succeeded after drain")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Shutdown: %v", err)
	}
}

// TestClientRetriesOverloaded: an idempotent read shed with OVERLOADED
// is retried and succeeds once capacity frees up.
func TestClientRetriesOverloaded(t *testing.T) {
	engine := &stubEngine{delay: 150 * time.Millisecond}
	srv := startServer(t, engine, server.Config{MaxInFlight: 1, MaxQueue: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Saturate the single slot and the single queue seat with slow
	// searches (ping never reaches the engine, so it cannot hold a slot
	// long enough).
	hold, err := client.Dial(srv.Addr(), client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hold.Search(ctx, testWorld().queries[0].Points)
		}()
	}
	time.Sleep(30 * time.Millisecond)

	cl, err := client.Dial(srv.Addr(), client.WithMaxRetries(8))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("retried read failed: %v", err)
	}
	wg.Wait()
	if srv.Metrics().Shed() == 0 {
		t.Error("expected at least one shed during saturation")
	}
}

// TestBadFrameDropsConnection: an undecodable payload gets a BAD_REQUEST
// reply, then the connection is closed.
func TestBadFrameDropsConnection(t *testing.T) {
	srv := startServer(t, &stubEngine{}, server.Config{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	frame, err := wire.AppendFrame(nil, []byte{0xDE, 0xAD, 0xBE, 0xEF})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("got %v, want BAD_REQUEST", resp.Status)
	}
	if _, err := wire.ReadFrame(conn); err == nil {
		t.Error("connection stayed open after a bad frame")
	}
}

// TestMetricsExposition scrapes the /metrics handler and checks the key
// series are present and well-formed.
func TestMetricsExposition(t *testing.T) {
	engine := &stubEngine{}
	srv := startServer(t, engine, server.Config{})
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Search(ctx, testWorld().queries[0].Points); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"geodabsd_connections_opened_total 1",
		`geodabsd_requests_total{op="ping",status="ok"} 1`,
		`geodabsd_requests_total{op="search",status="ok"} 1`,
		`geodabsd_request_seconds_bucket{op="search",le="+Inf"} 1`,
		"geodabsd_shed_total 0",
		"geodabsd_in_flight_requests 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
}

// TestClientCancelAfterReturnDoesNotPoisonPool pins down a pool-recycling
// race: callers routinely cancel a request's context the moment the call
// returns, and the client's cancellation watcher used to be able to poke
// SetDeadline(now) into the connection *after* it was checked back in —
// timing out whichever request next held it. The bad interleaving needs
// a watcher goroutine whose select first runs after both the round
// trip's end and the caller's cancel — rare in-process (the in-process
// server keeps the scheduler parking watchers early), but reproduced
// within a few hundred requests against a separate-process server,
// which scripts/server_smoke.sh's upsert churn covers. This test is the
// in-process guard: with the watcher quiesced synchronously a late poke
// is impossible, so heavy cancel-after-return churn over a tiny pool
// must stay error-free.
func TestClientCancelAfterReturnDoesNotPoisonPool(t *testing.T) {
	srv := startServer(t, &stubEngine{}, server.Config{})
	cl, err := client.Dial(srv.Addr(), client.WithPoolSize(2), client.WithMaxRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				err := cl.Ping(ctx)
				cancel() // immediately, like a per-iteration defer-less loop
				if err != nil {
					errc <- fmt.Errorf("iteration %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestServeExactRerank drives the remote refinement op end to end: a
// retaining index behind the server, a client search naming a built-in
// metric, and hits byte-identical to a local rerank. The fingerprint
// path must keep rejecting rerank — there are no raw query points to
// score.
func TestServeExactRerank(t *testing.T) {
	w := testWorld()
	idx, err := geodabs.NewIndex(geodabs.DefaultConfig(), geodabs.WithPointRetention())
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range w.dataset.Trajectories {
		if err := idx.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	srv := startServer(t, idx, server.Config{})
	cl, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	q := w.queries[0]
	want, err := idx.Search(ctx, q, geodabs.WithKNN(5), geodabs.WithExactRerank(geodabs.DTW))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Search(ctx, q.Points, client.WithKNN(5), client.WithExactRerank(client.DTW))
	if err != nil {
		t.Fatalf("remote rerank search: %v", err)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("remote rerank returned %d hits, local %d", len(got.Hits), len(want.Hits))
	}
	for i := range want.Hits {
		if got.Hits[i] != want.Hits[i] {
			t.Fatalf("hit %d: remote %+v, local %+v", i, got.Hits[i], want.Hits[i])
		}
	}

	f, err := geodabs.NewFingerprinter(geodabs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SearchFingerprint(ctx, f.Fingerprint(q.Points), client.WithExactRerank(client.DTW)); err == nil {
		t.Fatal("fingerprint search accepted WithExactRerank")
	}
}
