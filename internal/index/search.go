package index

import (
	"context"
	"math"
	"slices"
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/trajectory"
)

// This file is the ranked-retrieval core: a term-at-a-time counting merge
// with threshold pruning and a pooled, allocation-free steady state.
//
// The classic document-at-a-time formulation — materialize the union of
// the query terms' posting lists, then intersect the query set against
// every candidate's fingerprint set — costs O(Σ|postings|) container
// merges to build the union plus O(|candidates| × (|F|+|G|)) container
// walks to score. The counting merge drops both terms: each posting list
// is streamed once into a chunked per-query counter (bitmap.Counter), so
// after one O(Σ|postings|) pass the counter holds |F ∩ G| for every
// candidate G, and the union follows from cached cardinalities as
// |F| + |G| − |F ∩ G| in O(1). Total: O(Σ|postings| + |candidates|).
//
// Threshold pruning (in the spirit of exact trajectory indexes such as
// N-tree, arXiv:2408.07650) skips candidates before the floating-point
// scoring step. For a similarity bar s = 1 − maxDistance, a candidate G
// can only satisfy dJ(F, G) ≤ maxDistance when
//
//	s·|F| ≤ |G| ≤ |F|/s            (cardinality window)
//	|F ∩ G|·(1+s) ≥ s·(|F|+|G|)    (shared-count bar)
//
// and under a k-bounded search the bar rises as better candidates fill
// the top-k heap (s becomes 1 − kth-best distance). Both bounds are
// applied with one count of slack so floating-point rounding can never
// prune a candidate the exact check would keep; the exact legacy
// comparison decides every emitted result, keeping rankings byte-identical
// to the sort-everything contract (distance ascending, ID tiebreak).

// SearchStats reports what one ranked search touched.
type SearchStats struct {
	// Candidates is the number of trajectories sharing at least one
	// fingerprint with the query, before distance filtering.
	Candidates int
	// Pruned is how many of those candidates the threshold bounds skipped
	// before the scoring step.
	Pruned int
}

// resultLess is the ranking contract: distance ascending, ID tiebreak.
func resultLess(a, b Result) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID < b.ID
}

// SortResults orders by ascending distance, breaking ties by ID — the
// ranking contract shared by the local index, the cluster coordinator,
// and the exact-rerank refinement.
//
//geodabs:noalloc
func SortResults(results []Result) {
	slices.SortFunc(results, func(a, b Result) int {
		switch {
		case resultLess(a, b):
			return -1
		case resultLess(b, a):
			return 1
		default:
			return 0
		}
	})
}

// Ranker folds (id, cardinality, shared-count) candidate triples into the
// ranked-retrieval contract. It owns the threshold pruning bounds and,
// under a result cap, a bounded top-k max-heap whose rising distance bar
// tightens the bounds as better candidates accumulate; without a cap it
// accumulates a flat result list for one final sort. Both the local index
// and the cluster coordinator rank through it, so the two engines cannot
// drift. A Ranker is reusable via Init and performs no allocations once
// its scratch has grown to the workload's steady state; it is not safe
// for concurrent use.
type Ranker struct {
	qc          int
	maxDistance float64
	limit       int

	// sim is the static similarity bar 1 − maxDistance; effSim is the
	// effective bar, raised above sim by the top-k heap as it fills.
	sim, effSim float64
	// minCard/maxCard is the cardinality window derived from effSim with
	// one count of slack; maxCard 0 means unbounded.
	minCard, maxCard int
	pruned           int

	heap    []Result // max-heap by (distance, ID) when limit > 0
	results []Result // flat accumulation when limit ≤ 0
}

// Init readies the ranker for one search: a query of cardinality qc,
// a distance cutoff, and a result cap (≤ 0 for uncapped).
func (r *Ranker) Init(qc int, maxDistance float64, limit int) {
	r.qc, r.maxDistance, r.limit = qc, maxDistance, limit
	r.pruned = 0
	r.heap = r.heap[:0]
	r.results = r.results[:0]
	r.sim = 1 - maxDistance
	if r.sim < 0 {
		r.sim = 0
	}
	r.effSim = r.sim
	r.retarget()
}

// retarget recomputes the cardinality window from effSim, keeping one
// count of slack so rounding cannot prune what the exact check would keep.
func (r *Ranker) retarget() {
	r.minCard, r.maxCard = cardinalityWindow(r.effSim, r.qc)
}

// cardinalityWindow computes the threshold-pruning window for a
// similarity bar: a candidate of cardinality card can only qualify when
// minCard ≤ card ≤ maxCard (maxCard 0 means unbounded). One count of
// slack on each bound keeps the window conservative against
// floating-point rounding.
func cardinalityWindow(sim float64, qc int) (minCard, maxCard int) {
	if sim <= 0 {
		return 0, 0
	}
	minCard = int(math.Ceil(sim*float64(qc))) - 1
	if maxC := math.Floor(float64(qc)/sim) + 1; maxC < math.MaxInt32 {
		maxCard = int(maxC)
	}
	return minCard, maxCard
}

// CardinalityWindow returns the cardinality bounds a candidate must fall
// in to possibly satisfy dJ(F, G) ≤ maxDistance against a query of
// cardinality qc: minCard ≤ |G| ≤ maxCard, with maxCard 0 meaning
// unbounded. It is exactly the window the Ranker starts from, exported
// so the cluster's shard nodes can apply the same bounds before
// shipping partial counts — the window depends only on |F|, |G| and the
// distance bound, never on cross-node intersection counts, so it is
// safe to evaluate against a node's replicated cardinalities. A
// candidate outside the window is one the coordinator's Ranker would
// prune anyway, which keeps node-side pruning invisible in the ranked
// results.
func CardinalityWindow(qc int, maxDistance float64) (minCard, maxCard int) {
	return cardinalityWindow(1-maxDistance, qc)
}

// InWindow reports whether a candidate of the given cardinality falls
// inside a window produced by CardinalityWindow. Every pruning site —
// the Ranker and the shard nodes — must test through it, so the
// maxCard-0-means-unbounded convention cannot drift between them.
func InWindow(card, minCard, maxCard int) bool {
	return card >= minCard && (maxCard == 0 || card <= maxCard)
}

// raiseBar lifts the effective similarity bar to the top-k heap's current
// worst member. Callers invoke it whenever a full heap's root changes.
func (r *Ranker) raiseBar() {
	if simBar := 1 - r.heap[0].Distance; simBar > r.effSim {
		r.effSim = simBar
		r.retarget()
	}
}

// Consider scores one candidate: a trajectory of the given fingerprint
// cardinality sharing `shared` fingerprints with the query. Candidates
// outside the threshold bounds are skipped before scoring and counted as
// pruned.
//
//geodabs:noalloc
func (r *Ranker) Consider(id trajectory.ID, card, shared int) {
	if !InWindow(card, r.minCard, r.maxCard) {
		r.pruned++
		return
	}
	if s := r.effSim; s > 0 && float64(shared+1)*(1+s) < s*float64(r.qc+card) {
		r.pruned++
		return
	}
	union := r.qc + card - shared
	d := 1.0
	if union > 0 {
		d = 1 - float64(shared)/float64(union)
	}
	if d > r.maxDistance {
		return
	}
	res := Result{ID: id, Distance: d, Shared: shared}
	if r.limit <= 0 {
		r.results = append(r.results, res)
		return
	}
	if len(r.heap) < r.limit {
		r.heap = append(r.heap, res)
		r.siftUp(len(r.heap) - 1)
		if len(r.heap) == r.limit {
			r.raiseBar()
		}
		return
	}
	// The heap is full: the candidate must beat the worst member under the
	// exact ranking contract, which a bar-equal distance can still do on
	// the ID tiebreak.
	if resultLess(res, r.heap[0]) {
		r.heap[0] = res
		r.siftDown(0)
		r.raiseBar()
	}
}

// Pruned returns how many candidates the threshold bounds skipped.
func (r *Ranker) Pruned() int { return r.pruned }

// Finish appends the ranked results to dst and returns it. The output is
// byte-identical to sorting every in-range candidate by (distance, ID)
// and truncating to the cap.
//
//geodabs:noalloc
func (r *Ranker) Finish(dst []Result) []Result {
	src := r.results
	if r.limit > 0 {
		src = r.heap
	}
	dst = append(dst, src...)
	SortResults(dst[len(dst)-len(src):])
	return dst
}

// siftUp restores the max-heap property from leaf i upward.
func (r *Ranker) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !resultLess(r.heap[parent], r.heap[i]) {
			return
		}
		r.heap[parent], r.heap[i] = r.heap[i], r.heap[parent]
		i = parent
	}
}

// siftDown restores the max-heap property from node i downward.
func (r *Ranker) siftDown(i int) {
	n := len(r.heap)
	for {
		largest := i
		if l := 2*i + 1; l < n && resultLess(r.heap[largest], r.heap[l]) {
			largest = l
		}
		if rt := 2*i + 2; rt < n && resultLess(r.heap[largest], r.heap[rt]) {
			largest = rt
		}
		if largest == i {
			return
		}
		r.heap[i], r.heap[largest] = r.heap[largest], r.heap[i]
		i = largest
	}
}

// searchScratch is the pooled per-query state: the counting-merge counter,
// the buffered term batch, and the ranker. Pooling it makes a
// steady-state search allocation-free.
type searchScratch struct {
	counter *bitmap.Counter
	terms   []uint32
	ranker  Ranker
}

var searchScratchPool = sync.Pool{New: func() any {
	return &searchScratch{counter: bitmap.NewCounter(), terms: make([]uint32, 512)}
}}

func getSearchScratch() *searchScratch { return searchScratchPool.Get().(*searchScratch) }

// release resets the counter and returns the scratch to the pool.
func (sc *searchScratch) release() {
	sc.counter.Reset()
	searchScratchPool.Put(sc)
}

// Search is the context-aware ranked retrieval entry point. Alongside the
// ranked results it reports search statistics: the size of the candidate
// set (trajectories sharing at least one term with the query) and how
// many candidates threshold pruning skipped.
func (ix *Inverted) Search(ctx context.Context, q *trajectory.Trajectory, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}
	return ix.SearchFingerprints(ctx, ix.ex.Extract(q.Points), maxDistance, limit)
}

// SearchFingerprints ranks against a pre-computed fingerprint set,
// honoring context cancellation between the counting and ranking stages
// and periodically inside both loops.
func (ix *Inverted) SearchFingerprints(ctx context.Context, set *bitmap.Bitmap, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	return ix.AppendSearchFingerprints(ctx, nil, set, maxDistance, limit)
}

// AppendSearchFingerprints is SearchFingerprints appending into dst,
// which callers on the hot path recycle across queries: with a warm
// scratch pool and a dst of sufficient capacity a search performs zero
// heap allocations.
//
//geodabs:noalloc
func (ix *Inverted) AppendSearchFingerprints(ctx context.Context, dst []Result, set *bitmap.Bitmap, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	return ix.AppendSearchSet(ctx, dst, set, set.Cardinality(), maxDistance, limit)
}

// AppendSearchSet is AppendSearchFingerprints for callers that already
// hold the set's cardinality (a prepared query caches it alongside the
// set), skipping the per-call recount. qc must equal set.Cardinality().
//
//geodabs:noalloc
func (ix *Inverted) AppendSearchSet(ctx context.Context, dst []Result, set *bitmap.Bitmap, qc int, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if qc == 0 {
		return dst, SearchStats{}, nil
	}
	if qc > math.MaxUint16 {
		// The counter's 16-bit counts could wrap; such queries are beyond
		// any real fingerprint set, but stay correct on the legacy path.
		return ix.searchUnionLocked(ctx, dst, set, qc, maxDistance, limit)
	}
	sc := getSearchScratch()
	defer sc.release()

	// Stage 1 — counting merge: stream each term's posting list into the
	// counter; |F ∩ G| accumulates per candidate as the lists go by.
	it := set.Iterator()
	for {
		n := it.NextMany(sc.terms)
		if n == 0 {
			break
		}
		for _, term := range sc.terms[:n] {
			if p, ok := ix.postings[term]; ok {
				sc.counter.Add(p)
			}
		}
		if ctx.Err() != nil {
			return nil, SearchStats{}, ctx.Err()
		}
	}
	cands := sc.counter.Candidates()
	stats := SearchStats{Candidates: len(cands)}

	// Stage 2 — threshold-pruned scoring over the candidates only.
	sc.ranker.Init(qc, maxDistance, limit)
	for i, v := range cands {
		if i%1024 == 1023 && ctx.Err() != nil {
			return nil, stats, ctx.Err()
		}
		id := trajectory.ID(v)
		sc.ranker.Consider(id, ix.cards[id], sc.counter.Count(v))
	}
	dst = sc.ranker.Finish(dst)
	stats.Pruned = sc.ranker.Pruned()
	return dst, stats, nil
}

// shardPartial is one surviving candidate from a shard-local counting
// merge: enough for the coordinating Ranker to score it without touching
// the shard again. It is the in-process analogue of the wire partials the
// cluster's shard nodes ship, minus gob and the network.
type shardPartial struct {
	id           trajectory.ID
	card, shared int
}

// appendSearchPartials runs the shard-local half of a fanned-out search:
// the counting merge (or the wide-query union fallback) over this shard's
// postings, followed by the *static* threshold bounds — the cardinality
// window [minCard, maxCard] and the shared-count bar at similarity
// 1 − maxDistance, both with one count of slack. Survivors are appended
// to dst as (id, card, shared) triples for the coordinating Ranker.
//
// Only static bounds are applied here: the Ranker's rising top-k bar
// tightens monotonically from the static bar, so every candidate pruned
// shard-side is one the Ranker would prune anyway, and rankings stay
// byte-identical to the single-shard engine. candidates and pruned feed
// the aggregated SearchStats.
func (ix *Inverted) appendSearchPartials(ctx context.Context, dst []shardPartial, set *bitmap.Bitmap, qc int, maxDistance float64) (partials []shardPartial, candidates, pruned int, err error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if qc == 0 {
		return dst, 0, 0, nil
	}
	sim := 1 - maxDistance
	if sim < 0 {
		sim = 0
	}
	minCard, maxCard := cardinalityWindow(sim, qc)
	consider := func(id trajectory.ID, card, shared int) {
		if !InWindow(card, minCard, maxCard) {
			pruned++
			return
		}
		if sim > 0 && float64(shared+1)*(1+sim) < sim*float64(qc+card) {
			pruned++
			return
		}
		dst = append(dst, shardPartial{id: id, card: card, shared: shared})
	}

	if qc > math.MaxUint16 {
		// Wide-query fallback, mirroring searchUnionLocked: the counter's
		// 16-bit counts could wrap, so materialize the union and intersect
		// per candidate.
		union := bitmap.New()
		set.Iterate(func(term uint32) bool {
			if p, ok := ix.postings[term]; ok {
				union.OrInPlace(p)
			}
			return true
		})
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
		candidates = union.Cardinality()
		ranked := 0
		cancelled := false
		union.Iterate(func(idBits uint32) bool {
			if ranked++; ranked%1024 == 0 && ctx.Err() != nil {
				cancelled = true
				return false
			}
			id := trajectory.ID(idBits)
			consider(id, ix.cards[id], bitmap.AndCardinality(set, ix.docs[id]))
			return true
		})
		if cancelled {
			return nil, candidates, pruned, ctx.Err()
		}
		return dst, candidates, pruned, nil
	}

	sc := getSearchScratch()
	defer sc.release()
	it := set.Iterator()
	for {
		n := it.NextMany(sc.terms)
		if n == 0 {
			break
		}
		for _, term := range sc.terms[:n] {
			if p, ok := ix.postings[term]; ok {
				sc.counter.Add(p)
			}
		}
		if ctx.Err() != nil {
			return nil, 0, 0, ctx.Err()
		}
	}
	cands := sc.counter.Candidates()
	candidates = len(cands)
	for i, v := range cands {
		if i%1024 == 1023 && ctx.Err() != nil {
			return nil, candidates, pruned, ctx.Err()
		}
		id := trajectory.ID(v)
		consider(id, ix.cards[id], sc.counter.Count(v))
	}
	return dst, candidates, pruned, nil
}

// searchUnionLocked is the pre-counting document-at-a-time path, kept as
// the fallback for queries whose term count exceeds the counter's 16-bit
// range: materialize the candidate union, intersect per candidate. It
// ranks through the same Ranker as the counting path, so threshold
// pruning, the top-k heap, the Pruned stat and the byte-identical
// (distance, ID) contract are uniform across narrow and wide queries.
// The caller must hold the read lock.
func (ix *Inverted) searchUnionLocked(ctx context.Context, dst []Result, set *bitmap.Bitmap, qc int, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	candidates := bitmap.New()
	set.Iterate(func(term uint32) bool {
		if p, ok := ix.postings[term]; ok {
			candidates.OrInPlace(p)
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}
	stats := SearchStats{Candidates: candidates.Cardinality()}
	var ranker Ranker
	ranker.Init(qc, maxDistance, limit)
	ranked := 0
	cancelled := false
	candidates.Iterate(func(idBits uint32) bool {
		if ranked++; ranked%1024 == 0 && ctx.Err() != nil {
			cancelled = true
			return false
		}
		id := trajectory.ID(idBits)
		// The intersection is computed before the ranker's cardinality
		// check, so the wide path cannot skip the AndCardinality cost for
		// pruned candidates — but pruning still skips the scoring step and
		// keeps the Pruned stat meaningful.
		shared := bitmap.AndCardinality(set, ix.docs[id])
		ranker.Consider(id, ix.cards[id], shared)
		return true
	})
	if cancelled {
		return nil, stats, ctx.Err()
	}
	dst = ranker.Finish(dst)
	stats.Pruned = ranker.Pruned()
	return dst, stats, nil
}
