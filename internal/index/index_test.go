package index

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/gen"
	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// testWorkload caches a small generated dataset shared across tests.
var testWorkload = func() *gen.Output {
	g, err := roadnet.GenerateCity(roadnet.CityConfig{RadiusMeters: 4000, Seed: 4})
	if err != nil {
		panic(err)
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = 12
	cfg.TrajectoriesPerDirection = 5
	cfg.MinRouteMeters = 2000
	out, err := gen.Generate(g, cfg)
	if err != nil {
		panic(err)
	}
	return out
}()

func newGeodabIndex(t testing.TB) *Inverted {
	t.Helper()
	return NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())})
}

func TestAddAndQuery(t *testing.T) {
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != testWorkload.Dataset.Len() {
		t.Fatalf("Len = %d, want %d", ix.Len(), testWorkload.Dataset.Len())
	}
	q := testWorkload.Queries[0]
	results := ix.Query(q, 0.99, 0)
	if len(results) == 0 {
		t.Fatal("query returned nothing")
	}
	// Results are sorted by distance.
	for i := 1; i < len(results); i++ {
		if results[i].Distance < results[i-1].Distance {
			t.Fatal("results not sorted")
		}
	}
	// The top results should be the relevant ones (same route+direction).
	relevant := map[trajectory.ID]bool{}
	for _, id := range testWorkload.Relevant[q.ID] {
		relevant[id] = true
	}
	topRelevant := 0
	for _, r := range results[:min(len(results), len(relevant))] {
		if relevant[r.ID] {
			topRelevant++
		}
	}
	// Routes in a small city can genuinely overlap, so the top results
	// are not all "relevant" in the strict same-route sense; the full
	// evaluation (Fig 12) measures this properly on a city-scale dataset.
	if frac := float64(topRelevant) / float64(len(relevant)); frac < 0.6 {
		t.Errorf("only %.0f%% of top results are relevant", frac*100)
	}
}

func TestQueryMaxDistanceAndLimit(t *testing.T) {
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	q := testWorkload.Queries[0]
	all := ix.Query(q, 1, 0)
	strict := ix.Query(q, 0.5, 0)
	if len(strict) > len(all) {
		t.Fatal("tighter Δmax returned more results")
	}
	for _, r := range strict {
		if r.Distance > 0.5 {
			t.Fatalf("result at distance %.3f exceeds Δmax", r.Distance)
		}
	}
	if limited := ix.Query(q, 1, 3); len(limited) != 3 {
		t.Errorf("limit 3 returned %d results", len(limited))
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	ix := newGeodabIndex(t)
	tr := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(tr); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(tr); err == nil {
		t.Error("duplicate ID should be rejected")
	}
}

func TestAddAllParallelMatchesSequential(t *testing.T) {
	seq := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := seq.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	par := newGeodabIndex(t)
	if err := par.AddAll(context.Background(), testWorkload.Dataset, 8); err != nil {
		t.Fatal(err)
	}
	if par.Len() != seq.Len() {
		t.Fatalf("parallel build has %d docs, sequential %d", par.Len(), seq.Len())
	}
	for _, q := range testWorkload.Queries[:4] {
		a := seq.Query(q, 1, 10)
		b := par.Query(q, 1, 10)
		if len(a) != len(b) {
			t.Fatalf("result count mismatch: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result %d mismatch: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	if err := par.AddAll(context.Background(), testWorkload.Dataset, 4); err == nil {
		t.Error("re-adding the dataset should fail on duplicates")
	}
}

func TestQueryEmptyIndex(t *testing.T) {
	ix := newGeodabIndex(t)
	if got := ix.Query(testWorkload.Queries[0], 1, 0); len(got) != 0 {
		t.Errorf("empty index returned %d results", len(got))
	}
}

func TestQueryUnmatchableTrajectory(t *testing.T) {
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories[:10] {
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	// A trajectory on the other side of the planet shares no terms.
	far := &trajectory.Trajectory{ID: 9999}
	for i := 0; i < 300; i++ {
		far.Points = append(far.Points, geohash.Hash{Bits: 0b101010, Depth: 6}.Center())
	}
	if got := ix.Query(far, 1, 0); len(got) != 0 {
		t.Errorf("far trajectory matched %d results", len(got))
	}
}

func TestFingerprintsAccessor(t *testing.T) {
	ix := newGeodabIndex(t)
	tr := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(tr); err != nil {
		t.Fatal(err)
	}
	if ix.Fingerprints(tr.ID) == nil {
		t.Error("Fingerprints returned nil for indexed trajectory")
	}
	if ix.Fingerprints(4242) != nil {
		t.Error("Fingerprints for unknown ID should be nil")
	}
}

func TestCellExtractorDirectionBlind(t *testing.T) {
	// The geohash baseline cannot distinguish direction: a trajectory and
	// its reverse share (almost) all cells (paper Fig 12's 0.5 plateau).
	ex, err := NewCellExtractor(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := testWorkload.Dataset.Trajectories[0]
	fwd := ex.Extract(tr.Points)
	rev := ex.Extract(tr.Reversed().Points)
	if j := bitmap.Jaccard(fwd, rev); j < 0.5 {
		t.Errorf("cell sets of a trajectory and its reverse should overlap heavily, J = %.3f", j)
	}
	// Geodabs do distinguish: same comparison should be near zero.
	gx := GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}
	if j := bitmap.Jaccard(gx.Extract(tr.Points), gx.Extract(tr.Reversed().Points)); j > 0.2 {
		t.Errorf("geodab sets of opposite directions should differ, J = %.3f", j)
	}
}

func TestCellIndexReturnsBothDirections(t *testing.T) {
	ex, err := NewCellExtractor(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix := NewInverted(ex)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	q := testWorkload.Queries[0]
	results := ix.Query(q, 0.95, 0)
	// The cell index should return trajectories from both directions of
	// the query's route.
	dirs := map[trajectory.Direction]int{}
	for _, r := range results {
		tr := testWorkload.Dataset.ByID(r.ID)
		if tr.Route == q.Route {
			dirs[tr.Dir]++
		}
	}
	if dirs[trajectory.Forward] == 0 || dirs[trajectory.Reverse] == 0 {
		t.Errorf("cell index should match both directions, got %v", dirs)
	}
}

func TestStats(t *testing.T) {
	ix := newGeodabIndex(t)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.Trajectories != testWorkload.Dataset.Len() {
		t.Errorf("Stats.Trajectories = %d", s.Trajectories)
	}
	if s.Terms == 0 || s.Postings < s.Terms || s.BitmapBytes == 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ix := newGeodabIndex(t)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := testWorkload.Queries[i%len(testWorkload.Queries)]
			if got := ix.Query(q, 1, 5); len(got) == 0 {
				t.Errorf("concurrent query %d returned nothing", i)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkQuery(b *testing.B) {
	ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())})
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 8); err != nil {
		b.Fatal(err)
	}
	q := testWorkload.Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Query(q, 1, 10)
	}
}

// countingExtractor counts Extract calls, to observe how much work AddAll
// dispatches before failing.
type countingExtractor struct {
	Extractor
	n atomic.Int64
}

func (c *countingExtractor) Extract(points []geo.Point) *bitmap.Bitmap {
	c.n.Add(1)
	return c.Extractor.Extract(points)
}

// TestAddAllFailsFast plants a duplicate ID near the front of a dataset:
// AddAll must stop dispatching fingerprint jobs shortly after the insert
// fails instead of draining the whole dataset through the workers.
func TestAddAllFailsFast(t *testing.T) {
	ex := &countingExtractor{Extractor: GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}}
	ix := NewInverted(ex)
	src := testWorkload.Dataset.Trajectories
	poisoned := &trajectory.Dataset{Trajectories: make([]*trajectory.Trajectory, 0, len(src)+1)}
	poisoned.Trajectories = append(poisoned.Trajectories, src[0], src[0]) // duplicate ID
	poisoned.Trajectories = append(poisoned.Trajectories, src[1:]...)
	err := ix.AddAll(context.Background(), poisoned, 2)
	if err == nil {
		t.Fatal("duplicate ID should fail AddAll")
	}
	extracted := int(ex.n.Load())
	if total := len(poisoned.Trajectories); extracted > total/2 {
		t.Errorf("AddAll extracted %d of %d trajectories after the failure, want fail-fast", extracted, total)
	}
}

func TestAddAllCancelledContext(t *testing.T) {
	ix := newGeodabIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ix.AddAll(ctx, testWorkload.Dataset, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddAll on cancelled context = %v, want context.Canceled", err)
	}
	if ix.Len() != 0 {
		t.Errorf("cancelled AddAll indexed %d trajectories", ix.Len())
	}
}

func TestSearchCancelledContext(t *testing.T) {
	ix := newGeodabIndex(t)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ix.Search(ctx, testWorkload.Queries[0], 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search on cancelled context = %v, want context.Canceled", err)
	}
}

func TestPointsOf(t *testing.T) {
	ix := newGeodabIndex(t)
	tr := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(tr); err != nil {
		t.Fatal(err)
	}
	if got := ix.PointsOf(tr.ID); len(got) != len(tr.Points) {
		t.Errorf("PointsOf returned %d points, want %d", len(got), len(tr.Points))
	}
	if ix.PointsOf(4242) != nil {
		t.Error("PointsOf for unknown ID should be nil")
	}
	// Fingerprint-only insertion has no points.
	other := testWorkload.Dataset.Trajectories[1]
	if err := ix.AddFingerprints(other.ID, ix.Fingerprints(tr.ID)); err != nil {
		t.Fatal(err)
	}
	if ix.PointsOf(other.ID) != nil {
		t.Error("PointsOf after AddFingerprints should be nil")
	}
}

// TestAddAllRollsBackOnFailure pins the all-or-nothing contract: a
// failed AddAll removes the trajectories it inserted, so retrying the
// same (fixed) dataset starts clean instead of tripping on duplicates.
func TestAddAllRollsBackOnFailure(t *testing.T) {
	ix := newGeodabIndex(t)
	src := testWorkload.Dataset.Trajectories
	poisoned := &trajectory.Dataset{Trajectories: make([]*trajectory.Trajectory, 0, len(src)+1)}
	poisoned.Trajectories = append(poisoned.Trajectories, src...)
	poisoned.Trajectories = append(poisoned.Trajectories, src[0]) // duplicate ID at the tail
	if err := ix.AddAll(context.Background(), poisoned, 4); err == nil {
		t.Fatal("duplicate ID should fail AddAll")
	}
	if n := ix.Len(); n != 0 {
		t.Fatalf("failed AddAll left %d trajectories indexed, want 0", n)
	}
	if got := ix.Query(testWorkload.Queries[0], 1, 0); len(got) != 0 {
		t.Fatalf("rolled-back index still answers queries: %d hits", len(got))
	}
	// The retry with the clean dataset succeeds and matches a fresh build.
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if ix.Len() != testWorkload.Dataset.Len() {
		t.Fatalf("retry indexed %d of %d", ix.Len(), testWorkload.Dataset.Len())
	}
}
