package index

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/gen"
	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/roadnet"
	"geodabs/internal/trajectory"
)

// testWorkload caches a small generated dataset shared across tests.
var testWorkload = func() *gen.Output {
	g, err := roadnet.GenerateCity(roadnet.CityConfig{RadiusMeters: 4000, Seed: 4})
	if err != nil {
		panic(err)
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = 12
	cfg.TrajectoriesPerDirection = 5
	cfg.MinRouteMeters = 2000
	out, err := gen.Generate(g, cfg)
	if err != nil {
		panic(err)
	}
	return out
}()

func newGeodabIndex(t testing.TB) *Inverted {
	t.Helper()
	return NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())})
}

func TestAddAndQuery(t *testing.T) {
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != testWorkload.Dataset.Len() {
		t.Fatalf("Len = %d, want %d", ix.Len(), testWorkload.Dataset.Len())
	}
	q := testWorkload.Queries[0]
	results := ix.Query(q, 0.99, 0)
	if len(results) == 0 {
		t.Fatal("query returned nothing")
	}
	// Results are sorted by distance.
	for i := 1; i < len(results); i++ {
		if results[i].Distance < results[i-1].Distance {
			t.Fatal("results not sorted")
		}
	}
	// The top results should be the relevant ones (same route+direction).
	relevant := map[trajectory.ID]bool{}
	for _, id := range testWorkload.Relevant[q.ID] {
		relevant[id] = true
	}
	topRelevant := 0
	for _, r := range results[:min(len(results), len(relevant))] {
		if relevant[r.ID] {
			topRelevant++
		}
	}
	// Routes in a small city can genuinely overlap, so the top results
	// are not all "relevant" in the strict same-route sense; the full
	// evaluation (Fig 12) measures this properly on a city-scale dataset.
	if frac := float64(topRelevant) / float64(len(relevant)); frac < 0.6 {
		t.Errorf("only %.0f%% of top results are relevant", frac*100)
	}
}

func TestQueryMaxDistanceAndLimit(t *testing.T) {
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	q := testWorkload.Queries[0]
	all := ix.Query(q, 1, 0)
	strict := ix.Query(q, 0.5, 0)
	if len(strict) > len(all) {
		t.Fatal("tighter Δmax returned more results")
	}
	for _, r := range strict {
		if r.Distance > 0.5 {
			t.Fatalf("result at distance %.3f exceeds Δmax", r.Distance)
		}
	}
	if limited := ix.Query(q, 1, 3); len(limited) != 3 {
		t.Errorf("limit 3 returned %d results", len(limited))
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	ix := newGeodabIndex(t)
	tr := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(tr); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(tr); err == nil {
		t.Error("duplicate ID should be rejected")
	}
}

func TestAddAllParallelMatchesSequential(t *testing.T) {
	seq := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := seq.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	par := newGeodabIndex(t)
	if err := par.AddAll(context.Background(), testWorkload.Dataset, 8); err != nil {
		t.Fatal(err)
	}
	if par.Len() != seq.Len() {
		t.Fatalf("parallel build has %d docs, sequential %d", par.Len(), seq.Len())
	}
	for _, q := range testWorkload.Queries[:4] {
		a := seq.Query(q, 1, 10)
		b := par.Query(q, 1, 10)
		if len(a) != len(b) {
			t.Fatalf("result count mismatch: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("result %d mismatch: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
	if err := par.AddAll(context.Background(), testWorkload.Dataset, 4); err == nil {
		t.Error("re-adding the dataset should fail on duplicates")
	}
}

func TestQueryEmptyIndex(t *testing.T) {
	ix := newGeodabIndex(t)
	if got := ix.Query(testWorkload.Queries[0], 1, 0); len(got) != 0 {
		t.Errorf("empty index returned %d results", len(got))
	}
}

func TestQueryUnmatchableTrajectory(t *testing.T) {
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories[:10] {
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	// A trajectory on the other side of the planet shares no terms.
	far := &trajectory.Trajectory{ID: 9999}
	for i := 0; i < 300; i++ {
		far.Points = append(far.Points, geohash.Hash{Bits: 0b101010, Depth: 6}.Center())
	}
	if got := ix.Query(far, 1, 0); len(got) != 0 {
		t.Errorf("far trajectory matched %d results", len(got))
	}
}

func TestFingerprintsAccessor(t *testing.T) {
	ix := newGeodabIndex(t)
	tr := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(tr); err != nil {
		t.Fatal(err)
	}
	if ix.Fingerprints(tr.ID) == nil {
		t.Error("Fingerprints returned nil for indexed trajectory")
	}
	if ix.Fingerprints(4242) != nil {
		t.Error("Fingerprints for unknown ID should be nil")
	}
}

func TestCellExtractorDirectionBlind(t *testing.T) {
	// The geohash baseline cannot distinguish direction: a trajectory and
	// its reverse share (almost) all cells (paper Fig 12's 0.5 plateau).
	ex, err := NewCellExtractor(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := testWorkload.Dataset.Trajectories[0]
	fwd := ex.Extract(tr.Points)
	rev := ex.Extract(tr.Reversed().Points)
	if j := bitmap.Jaccard(fwd, rev); j < 0.5 {
		t.Errorf("cell sets of a trajectory and its reverse should overlap heavily, J = %.3f", j)
	}
	// Geodabs do distinguish: same comparison should be near zero.
	gx := GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}
	if j := bitmap.Jaccard(gx.Extract(tr.Points), gx.Extract(tr.Reversed().Points)); j > 0.2 {
		t.Errorf("geodab sets of opposite directions should differ, J = %.3f", j)
	}
}

func TestCellIndexReturnsBothDirections(t *testing.T) {
	ex, err := NewCellExtractor(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix := NewInverted(ex)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	q := testWorkload.Queries[0]
	results := ix.Query(q, 0.95, 0)
	// The cell index should return trajectories from both directions of
	// the query's route.
	dirs := map[trajectory.Direction]int{}
	for _, r := range results {
		tr := testWorkload.Dataset.ByID(r.ID)
		if tr.Route == q.Route {
			dirs[tr.Dir]++
		}
	}
	if dirs[trajectory.Forward] == 0 || dirs[trajectory.Reverse] == 0 {
		t.Errorf("cell index should match both directions, got %v", dirs)
	}
}

func TestStats(t *testing.T) {
	ix := newGeodabIndex(t)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.Trajectories != testWorkload.Dataset.Len() {
		t.Errorf("Stats.Trajectories = %d", s.Trajectories)
	}
	if s.Terms == 0 || s.Postings < s.Terms || s.BitmapBytes == 0 {
		t.Errorf("degenerate stats: %+v", s)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ix := newGeodabIndex(t)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := testWorkload.Queries[i%len(testWorkload.Queries)]
			if got := ix.Query(q, 1, 5); len(got) == 0 {
				t.Errorf("concurrent query %d returned nothing", i)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkQuery(b *testing.B) {
	ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())})
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 8); err != nil {
		b.Fatal(err)
	}
	q := testWorkload.Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Query(q, 1, 10)
	}
}

// countingExtractor counts Extract calls, to observe how much work AddAll
// dispatches before failing.
type countingExtractor struct {
	Extractor
	n atomic.Int64
}

func (c *countingExtractor) Extract(points []geo.Point) *bitmap.Bitmap {
	c.n.Add(1)
	return c.Extractor.Extract(points)
}

// TestAddAllFailsFast plants a duplicate ID near the front of a dataset:
// AddAll must stop dispatching fingerprint jobs shortly after the insert
// fails instead of draining the whole dataset through the workers.
func TestAddAllFailsFast(t *testing.T) {
	ex := &countingExtractor{Extractor: GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}}
	ix := NewInverted(ex)
	src := testWorkload.Dataset.Trajectories
	poisoned := &trajectory.Dataset{Trajectories: make([]*trajectory.Trajectory, 0, len(src)+1)}
	poisoned.Trajectories = append(poisoned.Trajectories, src[0], src[0]) // duplicate ID
	poisoned.Trajectories = append(poisoned.Trajectories, src[1:]...)
	err := ix.AddAll(context.Background(), poisoned, 2)
	if err == nil {
		t.Fatal("duplicate ID should fail AddAll")
	}
	extracted := int(ex.n.Load())
	if total := len(poisoned.Trajectories); extracted > total/2 {
		t.Errorf("AddAll extracted %d of %d trajectories after the failure, want fail-fast", extracted, total)
	}
}

func TestAddAllCancelledContext(t *testing.T) {
	ix := newGeodabIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ix.AddAll(ctx, testWorkload.Dataset, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("AddAll on cancelled context = %v, want context.Canceled", err)
	}
	if ix.Len() != 0 {
		t.Errorf("cancelled AddAll indexed %d trajectories", ix.Len())
	}
}

func TestSearchCancelledContext(t *testing.T) {
	ix := newGeodabIndex(t)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ix.Search(ctx, testWorkload.Queries[0], 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search on cancelled context = %v, want context.Canceled", err)
	}
}

func TestPointsOf(t *testing.T) {
	ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}, RetainPoints())
	tr := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(tr); err != nil {
		t.Fatal(err)
	}
	if got := ix.PointsOf(tr.ID); len(got) != len(tr.Points) {
		t.Errorf("PointsOf returned %d points, want %d", len(got), len(tr.Points))
	}
	if ix.PointsOf(4242) != nil {
		t.Error("PointsOf for unknown ID should be nil")
	}
	// Fingerprint-only insertion has no points.
	other := testWorkload.Dataset.Trajectories[1]
	if err := ix.AddFingerprints(other.ID, ix.Fingerprints(tr.ID)); err != nil {
		t.Fatal(err)
	}
	if ix.PointsOf(other.ID) != nil {
		t.Error("PointsOf after AddFingerprints should be nil")
	}
	// Retention is opt-in: a default index keeps no points.
	bare := newGeodabIndex(t)
	if err := bare.Add(tr); err != nil {
		t.Fatal(err)
	}
	if bare.PointsOf(tr.ID) != nil {
		t.Error("PointsOf on a non-retaining index should be nil")
	}
}

// TestAddAllRollsBackOnFailure pins the all-or-nothing contract: a
// failed AddAll removes the trajectories it inserted, so retrying the
// same (fixed) dataset starts clean instead of tripping on duplicates.
func TestAddAllRollsBackOnFailure(t *testing.T) {
	ix := newGeodabIndex(t)
	src := testWorkload.Dataset.Trajectories
	poisoned := &trajectory.Dataset{Trajectories: make([]*trajectory.Trajectory, 0, len(src)+1)}
	poisoned.Trajectories = append(poisoned.Trajectories, src...)
	poisoned.Trajectories = append(poisoned.Trajectories, src[0]) // duplicate ID at the tail
	if err := ix.AddAll(context.Background(), poisoned, 4); err == nil {
		t.Fatal("duplicate ID should fail AddAll")
	}
	if n := ix.Len(); n != 0 {
		t.Fatalf("failed AddAll left %d trajectories indexed, want 0", n)
	}
	if got := ix.Query(testWorkload.Queries[0], 1, 0); len(got) != 0 {
		t.Fatalf("rolled-back index still answers queries: %d hits", len(got))
	}
	// The retry with the clean dataset succeeds and matches a fresh build.
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if ix.Len() != testWorkload.Dataset.Len() {
		t.Fatalf("retry indexed %d of %d", ix.Len(), testWorkload.Dataset.Len())
	}
}

// TestDeleteReclaimsPostings pins the posting-reclaiming contract of the
// promoted Delete: the trajectory's document, points and postings all
// go, and posting lists left empty are compacted out of the term map.
func TestDeleteReclaimsPostings(t *testing.T) {
	ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}, RetainPoints())
	a, b := testWorkload.Dataset.Trajectories[0], testWorkload.Dataset.Trajectories[1]
	if err := ix.Add(a); err != nil {
		t.Fatal(err)
	}
	withA := ix.Stats()
	if err := ix.Add(b); err != nil {
		t.Fatal(err)
	}
	if !ix.Delete(b.ID) {
		t.Fatal("Delete of an indexed trajectory returned false")
	}
	got := ix.Stats()
	if got != withA {
		t.Errorf("stats after add+delete = %+v, want the pre-add %+v", got, withA)
	}
	if ix.Fingerprints(b.ID) != nil || ix.PointsOf(b.ID) != nil {
		t.Error("deleted trajectory still has fingerprints or points")
	}
	if ix.Delete(b.ID) {
		t.Error("second Delete of the same ID returned true")
	}
	// The deleted trajectory is gone from rankings, the survivor is not.
	hitIDs := map[trajectory.ID]bool{}
	for _, r := range ix.Query(b, 1, 0) {
		hitIDs[r.ID] = true
	}
	if hitIDs[b.ID] {
		t.Error("deleted trajectory still ranked")
	}
	// Deleting everything leaves a truly empty index.
	if !ix.Delete(a.ID) {
		t.Fatal("Delete of the survivor returned false")
	}
	if s := ix.Stats(); s.Trajectories != 0 || s.Terms != 0 || s.Postings != 0 {
		t.Errorf("stats after deleting all: %+v, want zeros", s)
	}
	// The ID is free for re-use.
	if err := ix.Add(b); err != nil {
		t.Errorf("re-add after delete: %v", err)
	}
}

// TestUpsertReplaces verifies in-place replacement: same ID, new
// geometry, old postings reclaimed.
func TestUpsertReplaces(t *testing.T) {
	ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}, RetainPoints())
	old := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(old); err != nil {
		t.Fatal(err)
	}
	// Re-shape the trajectory under the same ID.
	replacement := &trajectory.Trajectory{ID: old.ID, Points: testWorkload.Dataset.Trajectories[5].Points}
	ix.Upsert(replacement)
	if ix.Len() != 1 {
		t.Fatalf("Len after upsert = %d, want 1", ix.Len())
	}
	// A fresh index over only the replacement must look identical.
	want := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())}, RetainPoints())
	if err := want.Add(replacement); err != nil {
		t.Fatal(err)
	}
	if g, w := ix.Stats(), want.Stats(); g != w {
		t.Errorf("upserted index stats %+v, fresh build %+v", g, w)
	}
	if got := ix.PointsOf(old.ID); len(got) != len(replacement.Points) {
		t.Errorf("PointsOf after upsert returned %d points, want %d", len(got), len(replacement.Points))
	}
	// Upsert of an unknown ID is a plain insert.
	novel := testWorkload.Dataset.Trajectories[7]
	ix.Upsert(novel)
	if ix.Len() != 2 {
		t.Errorf("Len after insert-upsert = %d, want 2", ix.Len())
	}
}

func TestDeleteAllBatch(t *testing.T) {
	ix := newGeodabIndex(t)
	if err := ix.AddAll(context.Background(), testWorkload.Dataset, 4); err != nil {
		t.Fatal(err)
	}
	ids := []trajectory.ID{
		testWorkload.Dataset.Trajectories[0].ID,
		testWorkload.Dataset.Trajectories[1].ID,
		99999, // unknown: skipped, not an error
	}
	deleted, err := ix.DeleteAll(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 2 {
		t.Errorf("DeleteAll deleted %d, want 2", deleted)
	}
	if ix.Len() != testWorkload.Dataset.Len()-2 {
		t.Errorf("Len = %d after deleting 2 of %d", ix.Len(), testWorkload.Dataset.Len())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.DeleteAll(ctx, ids); !errors.Is(err, context.Canceled) {
		t.Errorf("DeleteAll on cancelled context = %v, want context.Canceled", err)
	}
}

// TestEpochAdvances pins the mutation-epoch contract: every insert,
// delete and upsert bumps it; misses (unknown delete) do not.
func TestEpochAdvances(t *testing.T) {
	ix := newGeodabIndex(t)
	if ix.Epoch() != 0 {
		t.Fatalf("fresh index epoch = %d", ix.Epoch())
	}
	tr := testWorkload.Dataset.Trajectories[0]
	if err := ix.Add(tr); err != nil {
		t.Fatal(err)
	}
	if ix.Epoch() != 1 {
		t.Errorf("epoch after add = %d, want 1", ix.Epoch())
	}
	ix.Delete(99999) // miss
	if ix.Epoch() != 1 {
		t.Errorf("epoch after missed delete = %d, want 1", ix.Epoch())
	}
	ix.Upsert(tr) // delete + insert
	if ix.Epoch() != 3 {
		t.Errorf("epoch after upsert = %d, want 3", ix.Epoch())
	}
	ix.Delete(tr.ID)
	if ix.Epoch() != 4 {
		t.Errorf("epoch after delete = %d, want 4", ix.Epoch())
	}
}

// TestConcurrentMutateAndSearch interleaves adds, upserts, deletes and
// searches; run under -race it is the local half of the snapshot
// acceptance criterion. Every writer works a clone of the query
// trajectory, so any hit over the churned ID range must be an exact
// match (distance 0) — a partially-visible trajectory would surface as
// an intermediate distance.
func TestConcurrentMutateAndSearch(t *testing.T) {
	ix := newGeodabIndex(t)
	q := testWorkload.Queries[0]
	// A stable background population keeps searches non-trivial.
	for _, tr := range testWorkload.Dataset.Trajectories[:10] {
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	const churnBase = trajectory.ID(50000)
	const writers, rounds = 4, 50
	stop := make(chan struct{})
	var searchErr atomic.Value
	var searchWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		searchWG.Add(1)
		go func() {
			defer searchWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				results, _, err := ix.Search(context.Background(), q, 1, 0)
				if err != nil {
					searchErr.Store(err)
					return
				}
				for _, r := range results {
					if r.ID >= churnBase && r.Distance != 0 {
						searchErr.Store(fmt.Errorf("partially visible trajectory %d at distance %v", r.ID, r.Distance))
						return
					}
				}
			}
		}()
	}
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			id := churnBase + trajectory.ID(w)
			clone := &trajectory.Trajectory{ID: id, Points: q.Points}
			for r := 0; r < rounds; r++ {
				ix.Upsert(clone)
				ix.Delete(id)
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	searchWG.Wait()
	if err := searchErr.Load(); err != nil {
		t.Fatal(err)
	}
}
