package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/trajectory"
)

// Index snapshot format (little endian):
//
//	magic   uint32  "GDIX" (0x58494447)
//	version uint8   2 (Inverted) or 3 (Sharded)
//	version ≤ 2 body:
//	  docs    uint32
//	  epoch   uint64  (version 2 only)
//	  per document:
//	    id    uint32
//	    fingerprint set (bitmap serialization)
//	version 3 body:
//	  shards  uint32
//	  per shard:
//	    docs  uint32
//	    epoch uint64
//	    per document: id uint32 + fingerprint set
//
// Posting lists are not stored: they are the exact inverse of the document
// sets and are rebuilt on load, which halves the snapshot size and cannot
// desynchronize. Deletions are applied eagerly (no tombstones survive in
// memory), so a mutated index round-trips as exactly its live documents;
// the mutation epoch is persisted so snapshot lineages of a mutated index
// stay ordered. Version 1 snapshots (pre-mutation-API) load with epoch 0.
//
// Both engines read every version and rebalance as needed: Inverted
// flattens a v3 snapshot into its single structure (epoch = sum of shard
// epochs); Sharded re-places every document by its ID hash, so a v2
// snapshot — or a v3 snapshot written with a different shard count —
// loads into the receiver's own layout, with the total epoch carried on
// shard 0. Placement is a pure function of (ID, shard count), so a
// duplicated ID always collides in its target shard and is rejected
// exactly as on the flat path.
const (
	indexMagic      = 0x58494447
	indexVersion    = 2
	indexVersionV1  = 1
	indexVersionV3  = 3
	indexHeaderSize = 9
)

// WriteTo snapshots the index. It implements io.WriterTo. The extractor is
// not part of the snapshot: the loader must construct the index with the
// same configuration.
func (ix *Inverted) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	writeErr := func(err error) (int64, error) {
		return n, fmt.Errorf("index: write: %w", err)
	}
	hdr := make([]byte, indexHeaderSize+8)
	binary.LittleEndian.PutUint32(hdr[0:4], indexMagic)
	hdr[4] = indexVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(ix.docs)))
	binary.LittleEndian.PutUint64(hdr[9:17], ix.epoch)
	if _, err := bw.Write(hdr); err != nil {
		return writeErr(err)
	}
	n += int64(len(hdr))
	var idBuf [4]byte
	for id, set := range ix.docs {
		binary.LittleEndian.PutUint32(idBuf[:], uint32(id))
		if _, err := bw.Write(idBuf[:]); err != nil {
			return writeErr(err)
		}
		n += 4
		m, err := set.WriteTo(bw)
		n += m
		if err != nil {
			return writeErr(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return writeErr(err)
	}
	return n, nil
}

// ReadFrom loads a snapshot of any version into the receiver, replacing
// its contents and rebuilding the posting lists; a v3 (sharded) snapshot
// is flattened, its total epoch preserved. It implements io.ReaderFrom.
func (ix *Inverted) ReadFrom(r io.Reader) (int64, error) {
	var docs map[trajectory.ID]*bitmap.Bitmap
	var cards map[trajectory.ID]int
	postings := make(map[uint32]*bitmap.Bitmap)
	epoch, n, err := readSnapshotDocs(r, func(count uint32) {
		// v3 snapshots hint once per shard section; size on the first hint
		// and let the maps grow through the rest.
		if docs == nil {
			docs = make(map[trajectory.ID]*bitmap.Bitmap, count)
			cards = make(map[trajectory.ID]int, count)
		}
	}, func(id trajectory.ID, set *bitmap.Bitmap) error {
		if _, dup := docs[id]; dup {
			return fmt.Errorf("index: duplicate trajectory %d in snapshot", id)
		}
		docs[id] = set
		cards[id] = set.Cardinality()
		set.Iterate(func(term uint32) bool {
			p, ok := postings[term]
			if !ok {
				p = bitmap.New()
				postings[term] = p
			}
			p.Add(uint32(id))
			return true
		})
		return nil
	})
	if err != nil {
		return n, err
	}
	if docs == nil { // empty snapshot: no sizeHint call reached us
		docs = make(map[trajectory.ID]*bitmap.Bitmap)
		cards = make(map[trajectory.ID]int)
	}
	ix.mu.Lock()
	ix.docs = docs
	ix.cards = cards
	ix.postings = postings
	ix.epoch = epoch
	// Raw points are not part of the snapshot: a loaded index serves
	// fingerprint-ranked searches but cannot exactly re-rank.
	ix.points = make(map[trajectory.ID][]geo.Point)
	ix.mu.Unlock()
	return n, nil
}

// readSnapshotDocs parses a snapshot of any version, invoking sizeHint
// with the total document count (v1/v2) or each shard section's count
// (v3) before its documents stream, and emit once per document. It
// returns the snapshot's total mutation epoch (summed across v3 shard
// sections) and the bytes consumed. An error returned by emit aborts the
// parse and is returned verbatim.
func readSnapshotDocs(r io.Reader, sizeHint func(count uint32), emit func(id trajectory.ID, set *bitmap.Bitmap) error) (epoch uint64, n int64, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	readErr := func(err error) (uint64, int64, error) {
		return 0, n, fmt.Errorf("index: read: %w", err)
	}
	hdr := make([]byte, indexHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return readErr(err)
	}
	n += int64(len(hdr))
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != indexMagic {
		return 0, n, fmt.Errorf("index: bad magic %#x", m)
	}
	version := hdr[4]
	readDocs := func(count uint32) error {
		sizeHint(count)
		var idBuf [4]byte
		for i := uint32(0); i < count; i++ {
			if _, err := io.ReadFull(br, idBuf[:]); err != nil {
				return fmt.Errorf("index: read: %w", err)
			}
			n += 4
			id := trajectory.ID(binary.LittleEndian.Uint32(idBuf[:]))
			set := bitmap.New()
			m, err := set.ReadFrom(br)
			n += m
			if err != nil {
				return fmt.Errorf("index: read: %w", err)
			}
			if err := emit(id, set); err != nil {
				return err
			}
		}
		return nil
	}
	switch version {
	case indexVersionV1, indexVersion:
		count := binary.LittleEndian.Uint32(hdr[5:9])
		if version == indexVersion {
			var epochBuf [8]byte
			if _, err := io.ReadFull(br, epochBuf[:]); err != nil {
				return readErr(err)
			}
			n += 8
			epoch = binary.LittleEndian.Uint64(epochBuf[:])
		}
		if err := readDocs(count); err != nil {
			return 0, n, err
		}
	case indexVersionV3:
		shards := binary.LittleEndian.Uint32(hdr[5:9])
		if shards == 0 {
			return 0, n, fmt.Errorf("index: snapshot declares zero shards")
		}
		var shHdr [12]byte
		for s := uint32(0); s < shards; s++ {
			if _, err := io.ReadFull(br, shHdr[:]); err != nil {
				return readErr(err)
			}
			n += int64(len(shHdr))
			count := binary.LittleEndian.Uint32(shHdr[0:4])
			epoch += binary.LittleEndian.Uint64(shHdr[4:12])
			if err := readDocs(count); err != nil {
				return 0, n, err
			}
		}
	default:
		return 0, n, fmt.Errorf("index: unsupported version %d", version)
	}
	return epoch, n, nil
}

// WriteTo snapshots the sharded index in format v3: one section per
// shard, each carrying its document count, epoch and documents. All
// shard read locks are taken up front so the snapshot is a consistent
// cut — safe against deadlock because mutations never hold more than one
// shard lock. It implements io.WriterTo.
func (s *Sharded) WriteTo(w io.Writer) (int64, error) {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.RUnlock()
		}
	}()
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	writeErr := func(err error) (int64, error) {
		return n, fmt.Errorf("index: write: %w", err)
	}
	hdr := make([]byte, indexHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], indexMagic)
	hdr[4] = indexVersionV3
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(s.shards)))
	if _, err := bw.Write(hdr); err != nil {
		return writeErr(err)
	}
	n += int64(len(hdr))
	var shHdr [12]byte
	var idBuf [4]byte
	for _, sh := range s.shards {
		binary.LittleEndian.PutUint32(shHdr[0:4], uint32(len(sh.docs)))
		binary.LittleEndian.PutUint64(shHdr[4:12], sh.epoch)
		if _, err := bw.Write(shHdr[:]); err != nil {
			return writeErr(err)
		}
		n += int64(len(shHdr))
		for id, set := range sh.docs {
			binary.LittleEndian.PutUint32(idBuf[:], uint32(id))
			if _, err := bw.Write(idBuf[:]); err != nil {
				return writeErr(err)
			}
			n += 4
			m, err := set.WriteTo(bw)
			n += m
			if err != nil {
				return writeErr(err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return writeErr(err)
	}
	return n, nil
}

// ReadFrom loads a snapshot of any version into the sharded index,
// replacing its contents. Every document is re-placed by its ID hash, so
// v1/v2 snapshots and v3 snapshots written with a different shard count
// rebalance into the receiver's layout. The snapshot's total epoch is
// carried on shard 0 (the sum across shards — the engine's Epoch — is
// what is preserved, and it stays monotone). It implements io.ReaderFrom.
func (s *Sharded) ReadFrom(r io.Reader) (int64, error) {
	type shardState struct {
		docs     map[trajectory.ID]*bitmap.Bitmap
		cards    map[trajectory.ID]int
		postings map[uint32]*bitmap.Bitmap
	}
	states := make([]shardState, len(s.shards))
	for i := range states {
		states[i] = shardState{
			docs:     make(map[trajectory.ID]*bitmap.Bitmap),
			cards:    make(map[trajectory.ID]int),
			postings: make(map[uint32]*bitmap.Bitmap),
		}
	}
	epoch, n, err := readSnapshotDocs(r, func(uint32) {}, func(id trajectory.ID, set *bitmap.Bitmap) error {
		st := &states[shardIndex(uint32(id), s.mask)]
		if _, dup := st.docs[id]; dup {
			return fmt.Errorf("index: duplicate trajectory %d in snapshot", id)
		}
		st.docs[id] = set
		st.cards[id] = set.Cardinality()
		set.Iterate(func(term uint32) bool {
			p, ok := st.postings[term]
			if !ok {
				p = bitmap.New()
				st.postings[term] = p
			}
			p.Add(uint32(id))
			return true
		})
		return nil
	})
	if err != nil {
		return n, err
	}
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.docs = states[i].docs
		sh.cards = states[i].cards
		sh.postings = states[i].postings
		sh.epoch = 0
		if i == 0 {
			sh.epoch = epoch
		}
		sh.points = make(map[trajectory.ID][]geo.Point)
		sh.mu.Unlock()
	}
	return n, nil
}
