package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/trajectory"
)

// Index snapshot format (little endian):
//
//	magic   uint32  "GDIX" (0x58494447)
//	version uint8   2
//	docs    uint32
//	epoch   uint64  (version ≥ 2)
//	per document:
//	  id    uint32
//	  fingerprint set (bitmap serialization)
//
// Posting lists are not stored: they are the exact inverse of the document
// sets and are rebuilt on load, which halves the snapshot size and cannot
// desynchronize. Deletions are applied eagerly (no tombstones survive in
// memory), so a mutated index round-trips as exactly its live documents;
// the mutation epoch is persisted so snapshot lineages of a mutated index
// stay ordered. Version 1 snapshots (pre-mutation-API) load with epoch 0.
const (
	indexMagic      = 0x58494447
	indexVersion    = 2
	indexVersionV1  = 1
	indexHeaderSize = 9
)

// WriteTo snapshots the index. It implements io.WriterTo. The extractor is
// not part of the snapshot: the loader must construct the index with the
// same configuration.
func (ix *Inverted) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	writeErr := func(err error) (int64, error) {
		return n, fmt.Errorf("index: write: %w", err)
	}
	hdr := make([]byte, indexHeaderSize+8)
	binary.LittleEndian.PutUint32(hdr[0:4], indexMagic)
	hdr[4] = indexVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(ix.docs)))
	binary.LittleEndian.PutUint64(hdr[9:17], ix.epoch)
	if _, err := bw.Write(hdr); err != nil {
		return writeErr(err)
	}
	n += int64(len(hdr))
	var idBuf [4]byte
	for id, set := range ix.docs {
		binary.LittleEndian.PutUint32(idBuf[:], uint32(id))
		if _, err := bw.Write(idBuf[:]); err != nil {
			return writeErr(err)
		}
		n += 4
		m, err := set.WriteTo(bw)
		n += m
		if err != nil {
			return writeErr(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return writeErr(err)
	}
	return n, nil
}

// ReadFrom loads a snapshot written by WriteTo into the receiver,
// replacing its contents and rebuilding the posting lists. It implements
// io.ReaderFrom.
func (ix *Inverted) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var n int64
	readErr := func(err error) (int64, error) {
		return n, fmt.Errorf("index: read: %w", err)
	}
	hdr := make([]byte, indexHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return readErr(err)
	}
	n += int64(len(hdr))
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != indexMagic {
		return n, fmt.Errorf("index: bad magic %#x", m)
	}
	if hdr[4] != indexVersion && hdr[4] != indexVersionV1 {
		return n, fmt.Errorf("index: unsupported version %d", hdr[4])
	}
	count := binary.LittleEndian.Uint32(hdr[5:9])
	var epoch uint64
	if hdr[4] >= indexVersion {
		var epochBuf [8]byte
		if _, err := io.ReadFull(br, epochBuf[:]); err != nil {
			return readErr(err)
		}
		n += 8
		epoch = binary.LittleEndian.Uint64(epochBuf[:])
	}

	docs := make(map[trajectory.ID]*bitmap.Bitmap, count)
	cards := make(map[trajectory.ID]int, count)
	postings := make(map[uint32]*bitmap.Bitmap)
	var idBuf [4]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, idBuf[:]); err != nil {
			return readErr(err)
		}
		n += 4
		id := trajectory.ID(binary.LittleEndian.Uint32(idBuf[:]))
		if _, dup := docs[id]; dup {
			return n, fmt.Errorf("index: duplicate trajectory %d in snapshot", id)
		}
		set := bitmap.New()
		m, err := set.ReadFrom(br)
		n += m
		if err != nil {
			return readErr(err)
		}
		docs[id] = set
		cards[id] = set.Cardinality()
		set.Iterate(func(term uint32) bool {
			p, ok := postings[term]
			if !ok {
				p = bitmap.New()
				postings[term] = p
			}
			p.Add(uint32(id))
			return true
		})
	}
	ix.mu.Lock()
	ix.docs = docs
	ix.cards = cards
	ix.postings = postings
	ix.epoch = epoch
	// Raw points are not part of the snapshot: a loaded index serves
	// fingerprint-ranked searches but cannot exactly re-rank.
	ix.points = make(map[trajectory.ID][]geo.Point)
	ix.mu.Unlock()
	return n, nil
}
