package index

import (
	"testing"
	"time"

	"geodabs/internal/core"
)

func newPositional(t testing.TB) *Positional {
	t.Helper()
	// Exact subsequence matching needs deterministic normalization: use
	// the same config as the geodab index so sequences are comparable.
	px, err := NewPositional(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return px
}

func TestPositionalFindsItself(t *testing.T) {
	px := newPositional(t)
	for _, tr := range testWorkload.Dataset.Trajectories[:20] {
		px.Add(tr)
	}
	if px.Len() != 20 {
		t.Fatalf("Len = %d", px.Len())
	}
	// A trajectory is a subsequence of itself from position 0.
	target := testWorkload.Dataset.Trajectories[0]
	got := px.FindSubsequence(target.Points)
	found := false
	for _, m := range got {
		if m.ID == target.ID {
			found = true
			if m.Start != 0 {
				t.Errorf("self match starts at %d", m.Start)
			}
		}
	}
	if !found {
		t.Error("trajectory not found as a subsequence of itself")
	}
}

func TestPositionalFindsMotif(t *testing.T) {
	px := newPositional(t)
	target := testWorkload.Dataset.Trajectories[0]
	px.Add(target)
	// The middle third of the raw points normalizes to an interior run of
	// the cell sequence.
	n := len(target.Points)
	sub := target.Points[n/3 : 2*n/3]
	got := px.FindSubsequence(sub)
	if len(got) != 1 || got[0].ID != target.ID {
		t.Fatalf("FindSubsequence = %v", got)
	}
	if got[0].Start == 0 {
		t.Error("interior motif should not match at position 0")
	}
}

func TestPositionalRejectsReverse(t *testing.T) {
	px := newPositional(t)
	target := testWorkload.Dataset.Trajectories[0]
	px.Add(target)
	if got := px.FindSubsequence(target.Reversed().Points); len(got) != 0 {
		t.Errorf("the reverse direction matched positionally: %v", got)
	}
}

// TestPositionalNoisyRecall demonstrates why fingerprinting replaces
// positional phrase search: a noisy re-recording of an indexed route is
// found by the Jaccard-ranked geodab index but almost never matches as an
// exact positional subsequence.
func TestPositionalNoisyRecall(t *testing.T) {
	px := newPositional(t)
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		px.Add(tr)
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	positionalHits, fingerprintHits := 0, 0
	for _, q := range testWorkload.Queries {
		if len(px.FindSubsequence(q.Points)) > 0 {
			positionalHits++
		}
		if len(ix.Query(q, 0.99, 0)) > 0 {
			fingerprintHits++
		}
	}
	if fingerprintHits < len(testWorkload.Queries) {
		t.Errorf("fingerprint index found %d/%d noisy queries", fingerprintHits, len(testWorkload.Queries))
	}
	if positionalHits >= fingerprintHits {
		t.Errorf("positional index matched %d noisy queries, fingerprints %d — expected exact matching to be fragile",
			positionalHits, fingerprintHits)
	}
}

func TestPositionalMissingTerm(t *testing.T) {
	px := newPositional(t)
	px.Add(testWorkload.Dataset.Trajectories[0])
	other := testWorkload.Dataset.Trajectories[40] // a different route
	if got := px.FindSubsequence(other.Points); len(got) != 0 {
		t.Errorf("unrelated trajectory matched: %v", got)
	}
	if got := px.FindSubsequence(nil); got != nil {
		t.Errorf("empty query = %v", got)
	}
}

// TestPositionalVsFingerprintCost records the relative cost of positional
// subsequence search vs a fingerprint query on the same workload. At this
// corpus scale the positional merge can be fast; its real weakness —
// §III-A1's reason for fingerprinting — is exact-match fragility: two
// noisy recordings of the same route rarely share their *entire* cell
// sequence (see TestPositionalNoisyRecall), and cost grows with posting
// density in large corpora.
func TestPositionalVsFingerprintCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	px := newPositional(t)
	ix := newGeodabIndex(t)
	for _, tr := range testWorkload.Dataset.Trajectories {
		px.Add(tr)
		if err := ix.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	q := testWorkload.Dataset.Trajectories[0]
	start := time.Now()
	for i := 0; i < 50; i++ {
		px.FindSubsequence(q.Points)
	}
	positional := time.Since(start)
	start = time.Now()
	for i := 0; i < 50; i++ {
		ix.Query(q, 1, 0)
	}
	fingerprint := time.Since(start)
	t.Logf("positional %v vs fingerprint %v for 50 queries", positional, fingerprint)
	// Both should at least complete; the gap is workload-dependent, so we
	// log rather than assert a ratio.
}

func BenchmarkPositionalVsFingerprint(b *testing.B) {
	px, err := NewPositional(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())})
	for _, tr := range testWorkload.Dataset.Trajectories {
		px.Add(tr)
		if err := ix.Add(tr); err != nil {
			b.Fatal(err)
		}
	}
	q := testWorkload.Dataset.Trajectories[0]
	b.Run("positional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			px.FindSubsequence(q.Points)
		}
	})
	b.Run("fingerprint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Query(q, 1, 0)
		}
	})
}
