package index

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"geodabs/internal/bitmap"
	"geodabs/internal/trajectory"
)

// shardCountsUnderTest covers the degenerate single-shard fast path, the
// smallest real fan-out, a wider one, and whatever this machine's
// GOMAXPROCS resolves to.
func shardCountsUnderTest() []int {
	counts := []int{1, 2, 4}
	if g := ceilPow2(runtime.GOMAXPROCS(0)); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

// buildShardedFrom mirrors an Inverted's reference contents into a
// Sharded index with the given shard count.
func buildShardedFrom(t testing.TB, reference map[trajectory.ID]*bitmap.Bitmap, shards int) *Sharded {
	t.Helper()
	s := NewSharded(stubExtractor{}, shards)
	for id, set := range reference {
		if err := s.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestShardedMatchesInverted is the tentpole differential: the same
// corpus in an Inverted and in Sharded indexes of several shard counts,
// driven with random queries across range semantics, result caps and
// distance cutoffs — rankings must be byte-identical, and the candidate
// count (a partition of the same multiset) must agree too.
func TestShardedMatchesInverted(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	flat, reference := buildRandomIndex(t, rng, 3000)
	var shardeds []*Sharded
	for _, n := range shardCountsUnderTest() {
		shardeds = append(shardeds, buildShardedFrom(t, reference, n))
	}
	ctx := context.Background()
	for q := 0; q < 200; q++ {
		set := randomSet(rng, 60, 500)
		maxDistance := rng.Float64()
		limit := 0
		if rng.Intn(2) == 0 {
			limit = 1 + rng.Intn(20)
		}
		want, wantStats, err := flat.SearchFingerprints(ctx, set, maxDistance, limit)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shardeds {
			got, stats, err := s.SearchFingerprints(ctx, set, maxDistance, limit)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, "sharded vs inverted", got, want)
			if stats.Candidates != wantStats.Candidates {
				t.Fatalf("shards=%d: candidates %d, want %d (shards must partition the candidate multiset)",
					s.NumShards(), stats.Candidates, wantStats.Candidates)
			}
		}
	}
}

// TestShardedMatchesInvertedAfterMutations runs the same differential
// after interleaved deletes and upserts, so shard routing of mutations
// cannot silently diverge from the flat engine.
func TestShardedMatchesInvertedAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	flat, reference := buildRandomIndex(t, rng, 2000)
	sharded := buildShardedFrom(t, reference, 4)

	ids := make([]trajectory.ID, 0, len(reference))
	for id := range reference {
		ids = append(ids, id)
	}
	// Delete a third, upsert (via delete+re-add of a fresh set) another
	// third, on both engines.
	for i, id := range ids {
		switch i % 3 {
		case 0:
			flat.Delete(id)
			sharded.Delete(id)
			delete(reference, id)
		case 1:
			set := randomSet(rng, 60, 500)
			flat.Delete(id)
			sharded.Delete(id)
			if err := flat.AddFingerprints(id, set); err != nil {
				t.Fatal(err)
			}
			if err := sharded.AddFingerprints(id, set); err != nil {
				t.Fatal(err)
			}
			reference[id] = set
		}
	}
	ctx := context.Background()
	for q := 0; q < 100; q++ {
		set := randomSet(rng, 60, 500)
		want, _, err := flat.SearchFingerprints(ctx, set, 0.9, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sharded.SearchFingerprints(ctx, set, 0.9, 10)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, "post-mutation", got, want)
		equalResults(t, "post-mutation vs brute", got, bruteForceSearch(reference, set, 0.9, 10))
	}
}

// TestShardedWideQueryFallback pins the >65535-term union fallback on the
// fanned-out path against both the flat engine and brute force.
func TestShardedWideQueryFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	flat := NewInverted(stubExtractor{})
	sharded := NewSharded(stubExtractor{}, 4)
	reference := make(map[trajectory.ID]*bitmap.Bitmap)
	// Documents drawn from a wide universe so the wide query overlaps them.
	for i := 0; i < 300; i++ {
		id := trajectory.ID(i)
		set := bitmap.New()
		for n := 0; n < 30+rng.Intn(60); n++ {
			set.Add(rng.Uint32() % 90000)
		}
		if set.Cardinality() == 0 {
			set.Add(uint32(i))
		}
		if err := flat.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
		if err := sharded.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
		reference[id] = set
	}
	query := bitmap.New()
	for term := uint32(0); term < 70000; term++ {
		query.Add(term)
	}
	if query.Cardinality() <= 65535 {
		t.Fatal("query not wide enough to exercise the fallback")
	}
	ctx := context.Background()
	for _, limit := range []int{0, 5, 50} {
		want, _, err := flat.SearchFingerprints(ctx, query, 0.999, limit)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sharded.SearchFingerprints(ctx, query, 0.999, limit)
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, "wide sharded vs inverted", got, want)
		equalResults(t, "wide sharded vs brute", got, bruteForceSearch(reference, query, 0.999, limit))
	}
}

// TestShardedConcurrentMutateAndSearch churns Upsert/Delete on many
// goroutines while searches fan out, under -race. Results cannot be
// compared to a reference mid-churn; instead every emitted result must
// satisfy the ranking invariants (sorted by the contract, distance within
// the cutoff, limit respected).
func TestShardedConcurrentMutateAndSearch(t *testing.T) {
	s := NewSharded(stubExtractor{}, 4)
	rng := rand.New(rand.NewSource(34))
	for i := 0; i < 500; i++ {
		set := randomSet(rng, 40, 300)
		set.Add(uint32(i))
		if err := s.AddFingerprints(trajectory.ID(i), set); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := trajectory.ID(rng.Intn(500))
				if rng.Intn(3) == 0 {
					s.Delete(id)
				} else {
					set := randomSet(rng, 40, 300)
					set.Add(uint32(id))
					s.Delete(id)
					_ = s.AddFingerprints(id, set)
				}
			}
		}(int64(100 + w))
	}
	ctx := context.Background()
	searchRng := rand.New(rand.NewSource(35))
	for q := 0; q < 300; q++ {
		set := randomSet(searchRng, 40, 300)
		const maxDistance, limit = 0.95, 10
		results, _, err := s.SearchFingerprints(ctx, set, maxDistance, limit)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) > limit {
			t.Fatalf("got %d results over limit %d", len(results), limit)
		}
		for i, r := range results {
			if r.Distance > maxDistance {
				t.Fatalf("result %d distance %v over cutoff", i, r.Distance)
			}
			if i > 0 && resultLess(r, results[i-1]) {
				t.Fatalf("results out of order at %d: %+v before %+v", i, results[i-1], r)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// FuzzShardedParity fuzzes corpus shape, query shape, shard count,
// distance cutoff and limit, requiring sharded rankings byte-identical
// to the flat engine and to brute force.
func FuzzShardedParity(f *testing.F) {
	f.Add(int64(1), uint8(50), uint8(2), uint8(90), uint8(10))
	f.Add(int64(2), uint8(200), uint8(4), uint8(50), uint8(0))
	f.Add(int64(3), uint8(10), uint8(8), uint8(100), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, docs, shards, distPct, limit uint8) {
		rng := rand.New(rand.NewSource(seed))
		nDocs := int(docs)%256 + 1
		nShards := int(shards)%16 + 1
		maxDistance := float64(distPct%101) / 100
		flat := NewInverted(stubExtractor{})
		sharded := NewSharded(stubExtractor{}, nShards)
		reference := make(map[trajectory.ID]*bitmap.Bitmap)
		for i := 0; i < nDocs; i++ {
			id := trajectory.ID(rng.Uint32() % 10000)
			if _, dup := reference[id]; dup {
				continue
			}
			set := randomSet(rng, 30, 200)
			if set.Cardinality() == 0 {
				set.Add(uint32(id))
			}
			if err := flat.AddFingerprints(id, set); err != nil {
				t.Fatal(err)
			}
			if err := sharded.AddFingerprints(id, set); err != nil {
				t.Fatal(err)
			}
			reference[id] = set
		}
		query := randomSet(rng, 30, 200)
		ctx := context.Background()
		want, _, err := flat.SearchFingerprints(ctx, query, maxDistance, int(limit))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := sharded.SearchFingerprints(ctx, query, maxDistance, int(limit))
		if err != nil {
			t.Fatal(err)
		}
		equalResults(t, "fuzz sharded vs inverted", got, want)
		equalResults(t, "fuzz sharded vs brute", got,
			bruteForceSearch(reference, query, maxDistance, int(limit)))
	})
}

// FuzzShardedSnapshot fuzzes raw snapshot bytes through both loaders; they
// must reject or accept without panicking, and an accepted load must leave
// a consistent engine (Len equals the number of scannable docs).
func FuzzShardedSnapshot(f *testing.F) {
	s := NewSharded(stubExtractor{}, 2)
	set := bitmap.New()
	set.Add(1)
	set.Add(99)
	if err := s.AddFingerprints(5, set); err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if _, err := s.WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	hdr := make([]byte, 9)
	binary.LittleEndian.PutUint32(hdr[0:4], indexMagic)
	hdr[4] = indexVersionV3
	binary.LittleEndian.PutUint32(hdr[5:9], 1000000) // absurd shard count
	f.Add(hdr)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, eng := range []Engine{NewSharded(stubExtractor{}, 4), NewInverted(stubExtractor{})} {
			if _, err := eng.ReadFrom(bytes.NewReader(data)); err != nil {
				continue
			}
			docs := 0
			eng.ScanDocs(func(trajectory.ID, *bitmap.Bitmap, int) bool {
				docs++
				return true
			})
			if docs != eng.Len() {
				t.Fatalf("loaded engine inconsistent: Len %d, scanned %d", eng.Len(), docs)
			}
		}
	})
}
