// Package index implements the paper's inverted trajectory index (§IV-A):
// terms are fingerprints (geodabs, or bare geohash cells for the baseline),
// posting lists are roaring bitmaps of trajectory identifiers, and queries
// are ranked by Jaccard distance between fingerprint sets (§III-A2).
package index

import (
	"fmt"
	"sort"
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/trajectory"
)

// Extractor turns a raw point sequence into a fingerprint set. Extractors
// must be safe for concurrent use.
type Extractor interface {
	// Extract returns the term set of a trajectory.
	Extract(points []geo.Point) *bitmap.Bitmap
}

// GeodabExtractor adapts a core.Fingerprinter to the Extractor interface.
// This is the paper's method.
type GeodabExtractor struct {
	*core.Fingerprinter
}

// Extract implements Extractor.
func (e GeodabExtractor) Extract(points []geo.Point) *bitmap.Bitmap {
	return e.Fingerprint(points).Set
}

// CellExtractor is the baseline the paper compares against (Figs 12–14):
// the term set of a trajectory is the set of geohash cells it traverses,
// with no ordering information. Cells are hashed to 32 bits so both
// methods share the bitmap machinery; collisions are negligible at the
// dataset sizes involved.
type CellExtractor struct {
	*core.Fingerprinter
}

// NewCellExtractor builds a cell extractor with the same normalization as
// cfg (depth, smoothing, debouncing).
func NewCellExtractor(cfg core.Config) (CellExtractor, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return CellExtractor{}, err
	}
	return CellExtractor{f}, nil
}

// Extract implements Extractor.
func (e CellExtractor) Extract(points []geo.Point) *bitmap.Bitmap {
	cells := e.Normalize(points)
	set := bitmap.New()
	for _, c := range cells {
		set.Add(hashCell(c.Hash))
	}
	return set
}

// hashCell maps a geohash cell to a 32-bit term with FNV-1a over its bits
// and depth.
func hashCell(h geohash.Hash) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	v := uint32(offset32)
	for shift := 56; shift >= 0; shift -= 8 {
		v ^= uint32(h.Bits >> uint(shift) & 0xff)
		v *= prime32
	}
	v ^= uint32(h.Depth)
	v *= prime32
	return v
}

// Result is one ranked retrieval hit.
type Result struct {
	ID trajectory.ID
	// Distance is the Jaccard distance dJ between the query's and the
	// trajectory's fingerprint sets (paper Eq. 1).
	Distance float64
	// Shared is the number of common fingerprints |F ∩ G|.
	Shared int
}

// Inverted is an in-memory inverted index over trajectory fingerprints.
// It is safe for concurrent use: Add takes a write lock, Query a read
// lock.
type Inverted struct {
	ex Extractor

	mu       sync.RWMutex
	postings map[uint32]*bitmap.Bitmap
	docs     map[trajectory.ID]*bitmap.Bitmap
}

// NewInverted returns an empty index using the given extractor.
func NewInverted(ex Extractor) *Inverted {
	return &Inverted{
		ex:       ex,
		postings: make(map[uint32]*bitmap.Bitmap),
		docs:     make(map[trajectory.ID]*bitmap.Bitmap),
	}
}

// Add fingerprints the trajectory and inserts it. Re-adding an ID replaces
// nothing: the caller must use distinct IDs (replacement is not a paper
// operation and keeping postings append-only keeps them compact).
func (ix *Inverted) Add(t *trajectory.Trajectory) error {
	set := ix.ex.Extract(t.Points)
	return ix.AddFingerprints(t.ID, set)
}

// AddFingerprints inserts a pre-computed fingerprint set, which lets
// callers reuse fingerprints across indexes and parallelize extraction.
func (ix *Inverted) AddFingerprints(id trajectory.ID, set *bitmap.Bitmap) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.docs[id]; dup {
		return fmt.Errorf("index: trajectory %d already indexed", id)
	}
	ix.docs[id] = set
	set.Iterate(func(term uint32) bool {
		p, ok := ix.postings[term]
		if !ok {
			p = bitmap.New()
			ix.postings[term] = p
		}
		p.Add(uint32(id))
		return true
	})
	return nil
}

// AddAll indexes a dataset, fingerprinting with the given number of
// parallel workers (minimum 1). It fails on the first duplicate ID.
func (ix *Inverted) AddAll(d *trajectory.Dataset, workers int) error {
	if workers < 1 {
		workers = 1
	}
	type extracted struct {
		id  trajectory.ID
		set *bitmap.Bitmap
	}
	jobs := make(chan *trajectory.Trajectory)
	results := make(chan extracted)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for t := range jobs {
				results <- extracted{id: t.ID, set: ix.ex.Extract(t.Points)}
			}
		}()
	}
	go func() {
		for _, t := range d.Trajectories {
			jobs <- t
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	var firstErr error
	for r := range results {
		if firstErr != nil {
			continue // drain
		}
		firstErr = ix.AddFingerprints(r.id, r.set)
	}
	return firstErr
}

// Len returns the number of indexed trajectories.
func (ix *Inverted) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Fingerprints returns the stored fingerprint set of a trajectory, or nil.
func (ix *Inverted) Fingerprints(id trajectory.ID) *bitmap.Bitmap {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs[id]
}

// Query returns the trajectories whose Jaccard distance to q is at most
// maxDistance, ordered by increasing distance (ties by ID for
// determinism), truncated to limit results (limit ≤ 0 means no limit).
// This implements the paper's "finding similar trajectories" problem
// (§II-B1).
func (ix *Inverted) Query(q *trajectory.Trajectory, maxDistance float64, limit int) []Result {
	return ix.QueryFingerprints(ix.ex.Extract(q.Points), maxDistance, limit)
}

// QueryFingerprints ranks against a pre-computed fingerprint set.
func (ix *Inverted) QueryFingerprints(set *bitmap.Bitmap, maxDistance float64, limit int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	// Gather candidates: the union of the posting lists of the query's
	// terms. Everything else has distance 1 and cannot beat maxDistance
	// unless maxDistance ≥ 1, in which case it is still irrelevant noise.
	candidates := bitmap.New()
	set.Iterate(func(term uint32) bool {
		if p, ok := ix.postings[term]; ok {
			candidates = bitmap.Or(candidates, p)
		}
		return true
	})
	results := make([]Result, 0, candidates.Cardinality())
	candidates.Iterate(func(idBits uint32) bool {
		id := trajectory.ID(idBits)
		doc := ix.docs[id]
		shared := bitmap.AndCardinality(set, doc)
		union := set.Cardinality() + doc.Cardinality() - shared
		d := 1.0
		if union > 0 {
			d = 1 - float64(shared)/float64(union)
		}
		if d <= maxDistance {
			results = append(results, Result{ID: id, Distance: d, Shared: shared})
		}
		return true
	})
	sortResults(results)
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results
}

// sortResults orders by ascending distance, breaking ties by ID.
func sortResults(results []Result) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		return results[i].ID < results[j].ID
	})
}

// Stats summarizes the index composition.
type Stats struct {
	Trajectories int
	Terms        int
	// Postings is the total number of (term, trajectory) pairs.
	Postings int
	// BitmapBytes estimates the memory held by posting and document
	// bitmaps.
	BitmapBytes int
}

// Stats computes summary statistics; it is linear in the index size.
func (ix *Inverted) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := Stats{Trajectories: len(ix.docs), Terms: len(ix.postings)}
	for _, p := range ix.postings {
		s.Postings += p.Cardinality()
		s.BitmapBytes += p.SizeInBytes()
	}
	for _, d := range ix.docs {
		s.BitmapBytes += d.SizeInBytes()
	}
	return s
}
