// Package index implements the paper's inverted trajectory index (§IV-A):
// terms are fingerprints (geodabs, or bare geohash cells for the baseline),
// posting lists are roaring bitmaps of trajectory identifiers, and queries
// are ranked by Jaccard distance between fingerprint sets (§III-A2).
//
// Ranked retrieval runs as a term-at-a-time counting merge (search.go):
// each query term's posting list streams once into a pooled chunked
// counter, so the shared count |F ∩ G| falls out of the merge directly —
// no candidate-union bitmap, no per-candidate intersection — and cached
// document cardinalities close the Jaccard formula in O(1) per candidate.
// Total cost is O(Σ|postings| + |candidates|) versus the document-at-a-
// time O(Σ|postings| + |candidates|·(|F|+|G|)). Threshold pruning (a
// cardinality window and a shared-count bar derived from the distance
// cutoff, tightened by the rising top-k heap bar under a result cap)
// skips candidates that provably cannot qualify, while conservative
// slack plus an exact final comparison keep rankings byte-identical to
// the full-sort contract: distance ascending, ID tiebreak. The same
// Ranker drives the cluster coordinator, so local and distributed
// rankings cannot drift.
//
// # Sharding
//
// Two engines implement the Engine surface: Inverted, a single structure
// behind one RWMutex, and Sharded (sharded.go), which partitions the
// documents across a power-of-two number of independent Inverted shards
// by a hash of the trajectory ID. Every trajectory lives wholly in one
// shard — its postings, cached cardinality and retained points included —
// so a mutation takes exactly one shard's write lock (mutations on
// different shards stop contending) and stays atomic with respect to
// searches exactly as on Inverted.
//
// A Sharded search fans out across the shards in parallel: each shard
// runs the same counting merge (or wide-query fallback) it would run
// standalone, pre-filters its candidates with the static threshold
// bounds (the CardinalityWindow and the shared-count bar at the query's
// distance cutoff — the exact bounds the Ranker starts from, so nothing
// a full search would keep is lost), and hands back (id, cardinality,
// shared-count) partials. A coordinator-style merge then ranks all
// partials through one Ranker — the in-process mirror of the cluster's
// scatter-gather, with no serialization and no wire. Rankings are
// byte-identical to Inverted's: the shards see disjoint documents with
// their full term sets, so the merged candidate multiset equals the
// single-structure one, and the strict (distance, ID) total order makes
// the final top-k independent of arrival order. Differential and fuzz
// tests (sharded_diff_test.go) pin this across shard counts and both
// query paths.
package index

import (
	"context"
	"fmt"
	"io"
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/trajectory"
)

// Extractor turns a raw point sequence into a fingerprint set. Extractors
// must be safe for concurrent use.
type Extractor interface {
	// Extract returns the term set of a trajectory.
	Extract(points []geo.Point) *bitmap.Bitmap
}

// GeodabExtractor adapts a core.Fingerprinter to the Extractor interface.
// This is the paper's method.
type GeodabExtractor struct {
	*core.Fingerprinter
}

// Extract implements Extractor via the set-only fingerprint fast path:
// ranked retrieval needs no positional metadata, so the pooled
// FingerprintSet pipeline is used instead of the full Fingerprint.
func (e GeodabExtractor) Extract(points []geo.Point) *bitmap.Bitmap {
	return e.FingerprintSet(points)
}

// CellExtractor is the baseline the paper compares against (Figs 12–14):
// the term set of a trajectory is the set of geohash cells it traverses,
// with no ordering information. Cells are hashed to 32 bits so both
// methods share the bitmap machinery; collisions are negligible at the
// dataset sizes involved.
type CellExtractor struct {
	*core.Fingerprinter
}

// NewCellExtractor builds a cell extractor with the same normalization as
// cfg (depth, smoothing, debouncing).
func NewCellExtractor(cfg core.Config) (CellExtractor, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return CellExtractor{}, err
	}
	return CellExtractor{f}, nil
}

// Extract implements Extractor.
func (e CellExtractor) Extract(points []geo.Point) *bitmap.Bitmap {
	cells := e.Normalize(points)
	set := bitmap.New()
	for _, c := range cells {
		set.Add(hashCell(c.Hash))
	}
	return set
}

// hashCell maps a geohash cell to a 32-bit term with FNV-1a over its bits
// and depth.
func hashCell(h geohash.Hash) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	v := uint32(offset32)
	for shift := 56; shift >= 0; shift -= 8 {
		v ^= uint32(h.Bits >> uint(shift) & 0xff)
		v *= prime32
	}
	v ^= uint32(h.Depth)
	v *= prime32
	return v
}

// Engine is the full local-index surface, implemented by both Inverted
// (one structure, one lock) and Sharded (hash-partitioned shards with
// parallel intra-query fan-out). The two return byte-identical rankings;
// they differ only in concurrency behavior and snapshot format (Inverted
// writes version 2, Sharded version 3 — both read versions 1 through 3).
type Engine interface {
	Add(t *trajectory.Trajectory) error
	AddFingerprints(id trajectory.ID, set *bitmap.Bitmap) error
	AddAll(ctx context.Context, d *trajectory.Dataset, workers int) error
	Delete(id trajectory.ID) bool
	Upsert(t *trajectory.Trajectory)
	DeleteAll(ctx context.Context, ids []trajectory.ID) (int, error)
	Epoch() uint64
	Extractor() Extractor
	Len() int
	Stats() Stats
	Fingerprints(id trajectory.ID) *bitmap.Bitmap
	PointsOf(id trajectory.ID) []geo.Point
	DiscardPoints()
	ScanDocs(f func(id trajectory.ID, set *bitmap.Bitmap, card int) bool)
	Query(q *trajectory.Trajectory, maxDistance float64, limit int) []Result
	QueryFingerprints(set *bitmap.Bitmap, maxDistance float64, limit int) []Result
	Search(ctx context.Context, q *trajectory.Trajectory, maxDistance float64, limit int) ([]Result, SearchStats, error)
	SearchFingerprints(ctx context.Context, set *bitmap.Bitmap, maxDistance float64, limit int) ([]Result, SearchStats, error)
	AppendSearchFingerprints(ctx context.Context, dst []Result, set *bitmap.Bitmap, maxDistance float64, limit int) ([]Result, SearchStats, error)
	AppendSearchSet(ctx context.Context, dst []Result, set *bitmap.Bitmap, qc int, maxDistance float64, limit int) ([]Result, SearchStats, error)
	io.WriterTo
	io.ReaderFrom
}

// Compile-time proof that both engines present the one surface.
var (
	_ Engine = (*Inverted)(nil)
	_ Engine = (*Sharded)(nil)
)

// Result is one ranked retrieval hit.
type Result struct {
	ID trajectory.ID
	// Distance is the Jaccard distance dJ between the query's and the
	// trajectory's fingerprint sets (paper Eq. 1).
	Distance float64
	// Shared is the number of common fingerprints |F ∩ G|.
	Shared int
}

// Inverted is an in-memory inverted index over trajectory fingerprints.
// It is safe for concurrent use: mutations (Add, Delete, Upsert) take a
// write lock, queries a read lock, so every search observes the index
// at a single mutation epoch — a trajectory is either fully visible or
// not at all.
type Inverted struct {
	ex Extractor
	// retain records whether insertions keep the raw point sequences for
	// exact re-ranking (opt-in at construction via RetainPoints).
	retain bool

	mu       sync.RWMutex
	postings map[uint32]*bitmap.Bitmap
	docs     map[trajectory.ID]*bitmap.Bitmap
	// cards caches each document's fingerprint cardinality |G| beside docs,
	// so ranking computes the Jaccard union |F|+|G|−|F∩G| in O(1) instead
	// of walking the document bitmap's containers per candidate.
	cards map[trajectory.ID]int
	// points retains the raw point sequences of trajectories added through
	// Add/AddAll (slice headers only, sharing the caller's backing arrays),
	// so searches can re-rank candidates with an exact distance. Entries
	// are absent when retention is off, for fingerprint-only insertions
	// and for snapshot loads.
	points map[trajectory.ID][]geo.Point
	// epoch counts mutations (inserts, deletes, upserts). It is persisted
	// by WriteTo/ReadFrom so snapshot lineages stay ordered.
	epoch uint64
}

// InvertedOption configures an index at construction.
type InvertedOption func(*Inverted)

// RetainPoints makes insertions keep each trajectory's raw point slice
// (a header sharing the caller's backing array, not a copy) so searches
// can re-rank candidates with an exact distance. Off by default:
// workloads that never re-rank no longer pay the pinned point memory.
func RetainPoints() InvertedOption {
	return func(ix *Inverted) { ix.retain = true }
}

// NewInverted returns an empty index using the given extractor.
func NewInverted(ex Extractor, opts ...InvertedOption) *Inverted {
	ix := &Inverted{
		ex:       ex,
		postings: make(map[uint32]*bitmap.Bitmap),
		docs:     make(map[trajectory.ID]*bitmap.Bitmap),
		cards:    make(map[trajectory.ID]int),
		points:   make(map[trajectory.ID][]geo.Point),
	}
	for _, opt := range opts {
		opt(ix)
	}
	return ix
}

// Add fingerprints the trajectory and inserts it. Re-adding an ID fails;
// use Upsert to replace an indexed trajectory in place.
func (ix *Inverted) Add(t *trajectory.Trajectory) error {
	set := ix.ex.Extract(t.Points)
	return ix.insert(t.ID, set, t.Points)
}

// AddFingerprints inserts a pre-computed fingerprint set, which lets
// callers reuse fingerprints across indexes and parallelize extraction.
// The raw points are not available on this path, so the trajectory cannot
// take part in exact re-ranking.
func (ix *Inverted) AddFingerprints(id trajectory.ID, set *bitmap.Bitmap) error {
	return ix.insert(id, set, nil)
}

func (ix *Inverted) insert(id trajectory.ID, set *bitmap.Bitmap, pts []geo.Point) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.docs[id]; dup {
		return fmt.Errorf("index: trajectory %d already indexed", id)
	}
	ix.insertLocked(id, set, pts)
	return nil
}

// insertLocked applies an insertion under an already-held write lock.
func (ix *Inverted) insertLocked(id trajectory.ID, set *bitmap.Bitmap, pts []geo.Point) {
	ix.docs[id] = set
	ix.cards[id] = set.Cardinality()
	if ix.retain && pts != nil {
		ix.points[id] = pts
	}
	set.Iterate(func(term uint32) bool {
		p, ok := ix.postings[term]
		if !ok {
			p = bitmap.New()
			ix.postings[term] = p
		}
		p.Add(uint32(id))
		return true
	})
	ix.epoch++
}

// AddAll indexes a dataset, fingerprinting with the given number of
// parallel workers (minimum 1). It fails fast: the first insertion error
// (or context cancellation) stops job dispatch, and only the extractions
// already in flight are drained before returning. AddAll is
// all-or-nothing — on failure the trajectories it inserted are removed
// again, so the caller can retry the same dataset after fixing the
// cause.
func (ix *Inverted) AddAll(ctx context.Context, d *trajectory.Dataset, workers int) error {
	return ingestAll(ctx, d, workers, ix.ex.Extract, ix.insert, func(inserted []trajectory.ID) {
		// Roll back this call's insertions so a retry starts clean, under
		// one write-lock acquisition instead of re-locking per ID.
		ix.mu.Lock()
		for _, id := range inserted {
			ix.deleteLocked(id)
		}
		ix.mu.Unlock()
	})
}

// ingestAll is the parallel-extraction ingest pipeline shared by
// Inverted.AddAll and Sharded.AddAll: workers fingerprint trajectories
// concurrently, insert applies each extraction (routing to a shard on the
// sharded engine), and the pipeline fails fast — the first insertion
// error or cancellation stops job dispatch, in-flight extractions are
// drained, and rollback receives the IDs this call had inserted so the
// whole ingest stays all-or-nothing.
func ingestAll(ctx context.Context, d *trajectory.Dataset, workers int,
	extract func([]geo.Point) *bitmap.Bitmap,
	insert func(trajectory.ID, *bitmap.Bitmap, []geo.Point) error,
	rollback func([]trajectory.ID)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type extracted struct {
		id  trajectory.ID
		set *bitmap.Bitmap
		pts []geo.Point
	}
	jobs := make(chan *trajectory.Trajectory)
	results := make(chan extracted)
	go func() {
		defer close(jobs)
		for _, t := range d.Trajectories {
			select {
			case jobs <- t:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for t := range jobs {
				select {
				case results <- extracted{id: t.ID, set: extract(t.Points), pts: t.Points}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	var firstErr error
	var inserted []trajectory.ID
	for r := range results {
		if firstErr == nil {
			firstErr = ctx.Err() // cancellation outranks in-flight results
		}
		if firstErr != nil {
			continue // dispatch is already cancelled; drain in-flight work
		}
		if err := insert(r.id, r.set, r.pts); err != nil {
			firstErr = err
			cancel()
		} else {
			inserted = append(inserted, r.id)
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		rollback(inserted)
	}
	return firstErr
}

// Delete removes a trajectory and reclaims its postings: the document
// and point entries are deleted, the trajectory is withdrawn from every
// posting list, and posting lists left empty are compacted away. It
// reports whether the trajectory was indexed. Deletion is applied
// eagerly under the write lock — no tombstones linger, so Stats and
// snapshots immediately reflect the shrunken index.
func (ix *Inverted) Delete(id trajectory.ID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.deleteLocked(id)
}

// deleteLocked applies a deletion under an already-held write lock.
func (ix *Inverted) deleteLocked(id trajectory.ID) bool {
	set, ok := ix.docs[id]
	if !ok {
		return false
	}
	delete(ix.docs, id)
	delete(ix.cards, id)
	delete(ix.points, id)
	set.Iterate(func(term uint32) bool {
		if p, ok := ix.postings[term]; ok {
			p.Remove(uint32(id))
			if p.IsEmpty() {
				delete(ix.postings, term)
			}
		}
		return true
	})
	ix.epoch++
	return true
}

// Upsert fingerprints the trajectory and inserts it, replacing any
// previously indexed trajectory with the same ID. The swap is atomic
// under the write lock: a concurrent search observes either the old or
// the new version in full, never a mixture.
func (ix *Inverted) Upsert(t *trajectory.Trajectory) {
	ix.upsertSet(t.ID, ix.ex.Extract(t.Points), t.Points)
}

// upsertSet applies an upsert with an already-extracted fingerprint set,
// so the sharded engine can extract once and route to the owning shard.
func (ix *Inverted) upsertSet(id trajectory.ID, set *bitmap.Bitmap, pts []geo.Point) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.deleteLocked(id)
	ix.insertLocked(id, set, pts)
}

// DeleteAll deletes a batch of IDs under a single write-lock acquisition
// (re-locking per ID would pay the lock's contended fast path once per
// deletion and let readers interleave partial batches), honoring ctx
// cancellation every 256 deletions. It returns how many of the IDs were
// actually indexed; unknown IDs are skipped, so the call is idempotent.
func (ix *Inverted) DeleteAll(ctx context.Context, ids []trajectory.ID) (int, error) {
	deleted := 0
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i, id := range ids {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return deleted, err
			}
		}
		if ix.deleteLocked(id) {
			deleted++
		}
	}
	return deleted, ctx.Err()
}

// Epoch returns the index's mutation epoch: a monotone counter bumped by
// every insert, delete and upsert, persisted in snapshots so lineages of
// a mutated index stay ordered.
func (ix *Inverted) Epoch() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.epoch
}

// Extractor returns the index's term extractor (immutable after
// construction), so callers can prepare query term sets once and reuse
// them across searches.
func (ix *Inverted) Extractor() Extractor { return ix.ex }

// Len returns the number of indexed trajectories.
func (ix *Inverted) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Fingerprints returns the stored fingerprint set of a trajectory, or nil.
func (ix *Inverted) Fingerprints(id trajectory.ID) *bitmap.Bitmap {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs[id]
}

// PointsOf returns the raw point sequence of a trajectory added through
// Add/AddAll, or nil when the points are unavailable (fingerprint-only
// insertion, snapshot load, discarded, unknown ID).
func (ix *Inverted) PointsOf(id trajectory.ID) []geo.Point {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.points[id]
}

// DiscardPoints releases every retained raw point sequence, shrinking the
// index to its bitmaps. Exact re-ranking becomes unavailable, as on a
// snapshot-loaded index; on an index constructed with RetainPoints,
// trajectories added afterwards are retained again.
func (ix *Inverted) DiscardPoints() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.points = make(map[trajectory.ID][]geo.Point)
}

// ScanDocs visits every indexed trajectory with its fingerprint set and
// cached cardinality, under the read lock, until f returns false. The
// visit order is unspecified. The set must not be mutated; brute-force
// baselines and diagnostics use this to walk the corpus without copying
// it.
func (ix *Inverted) ScanDocs(f func(id trajectory.ID, set *bitmap.Bitmap, card int) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for id, set := range ix.docs {
		if !f(id, set, ix.cards[id]) {
			return
		}
	}
}

// Query returns the trajectories whose Jaccard distance to q is at most
// maxDistance, ordered by increasing distance (ties by ID for
// determinism), truncated to limit results (limit ≤ 0 means no limit).
// This implements the paper's "finding similar trajectories" problem
// (§II-B1).
func (ix *Inverted) Query(q *trajectory.Trajectory, maxDistance float64, limit int) []Result {
	return ix.QueryFingerprints(ix.ex.Extract(q.Points), maxDistance, limit)
}

// QueryFingerprints ranks against a pre-computed fingerprint set.
func (ix *Inverted) QueryFingerprints(set *bitmap.Bitmap, maxDistance float64, limit int) []Result {
	results, _, _ := ix.SearchFingerprints(context.Background(), set, maxDistance, limit)
	return results
}

// Stats summarizes the index composition.
type Stats struct {
	Trajectories int
	Terms        int
	// Postings is the total number of (term, trajectory) pairs.
	Postings int
	// BitmapBytes estimates the memory held by posting and document
	// bitmaps.
	BitmapBytes int
	// Shards is the number of in-process shards (1 for Inverted). On a
	// Sharded index, Terms counts per-shard term entries, so a term whose
	// documents span shards is counted once per shard.
	Shards int
}

// Stats computes summary statistics; it is linear in the index size.
func (ix *Inverted) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := Stats{Trajectories: len(ix.docs), Terms: len(ix.postings), Shards: 1}
	for _, p := range ix.postings {
		s.Postings += p.Cardinality()
		s.BitmapBytes += p.SizeInBytes()
	}
	for _, d := range ix.docs {
		s.BitmapBytes += d.SizeInBytes()
	}
	return s
}
