package index

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"runtime"
	"testing"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/trajectory"
)

func TestNewShardedRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16}, {100, 128},
	} {
		if got := NewSharded(stubExtractor{}, tc.n).NumShards(); got != tc.want {
			t.Errorf("NewSharded(%d).NumShards() = %d, want %d", tc.n, got, tc.want)
		}
	}
	// n ≤ 0 selects GOMAXPROCS, rounded up.
	auto := NewSharded(stubExtractor{}, 0).NumShards()
	if want := ceilPow2(runtime.GOMAXPROCS(0)); auto != want {
		t.Errorf("NewSharded(0).NumShards() = %d, want %d", auto, want)
	}
}

func TestShardIndexPlacement(t *testing.T) {
	// Sequential IDs — the common ingest pattern — must spread across
	// shards rather than piling into shard 0 (the failure mode of a plain
	// low-bit modulo on hash-free placement).
	const shards = 8
	var counts [shards]int
	const ids = 10000
	for id := uint32(0); id < ids; id++ {
		si := shardIndex(id, shards-1)
		if si >= shards {
			t.Fatalf("shardIndex(%d) = %d out of range", id, si)
		}
		counts[si]++
	}
	for si, c := range counts {
		// A uniform spread puts ids/shards = 1250 in each; allow wide slack.
		if c < ids/shards/2 || c > ids/shards*2 {
			t.Errorf("shard %d holds %d of %d ids — placement is badly skewed: %v", si, c, ids, counts)
		}
	}
	// Placement is deterministic.
	for id := uint32(0); id < 100; id++ {
		if shardIndex(id, shards-1) != shardIndex(id, shards-1) {
			t.Fatal("shardIndex is not deterministic")
		}
	}
}

func TestShardedMutationsRouteToOneShard(t *testing.T) {
	s := NewSharded(stubExtractor{}, 4)
	rng := rand.New(rand.NewSource(11))
	sets := make(map[trajectory.ID]*bitmap.Bitmap)
	for i := 0; i < 500; i++ {
		id := trajectory.ID(i)
		set := randomSet(rng, 40, 300)
		set.Add(uint32(i)) // never empty, always unique term
		if err := s.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
		sets[id] = set
	}
	if s.Len() != len(sets) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(sets))
	}
	// Each trajectory lives wholly in exactly one shard.
	for id := range sets {
		holders := 0
		for _, sh := range s.shards {
			if sh.Fingerprints(id) != nil {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("trajectory %d held by %d shards, want exactly 1", id, holders)
		}
		if s.Fingerprints(id) == nil {
			t.Fatalf("Fingerprints(%d) = nil through the sharded accessor", id)
		}
	}
	// Shard lengths partition the corpus.
	sum := 0
	for _, sh := range s.shards {
		sum += sh.Len()
	}
	if sum != len(sets) {
		t.Fatalf("shard lengths sum to %d, want %d", sum, len(sets))
	}
	// Re-adding an ID fails — duplicates collide in their owning shard.
	if err := s.AddFingerprints(3, bitmap.New()); err == nil {
		t.Fatal("duplicate AddFingerprints succeeded")
	}
	// Delete removes from the owning shard only.
	if !s.Delete(3) {
		t.Fatal("Delete(3) = false")
	}
	if s.Delete(3) {
		t.Fatal("second Delete(3) = true")
	}
	if s.Len() != len(sets)-1 {
		t.Fatalf("Len after delete = %d, want %d", s.Len(), len(sets)-1)
	}
}

func TestShardedEpochAggregates(t *testing.T) {
	s := NewSharded(stubExtractor{}, 4)
	if s.Epoch() != 0 {
		t.Fatalf("fresh Epoch = %d, want 0", s.Epoch())
	}
	last := uint64(0)
	for i := 0; i < 64; i++ {
		set := bitmap.New()
		set.Add(uint32(i))
		if err := s.AddFingerprints(trajectory.ID(i), set); err != nil {
			t.Fatal(err)
		}
		if e := s.Epoch(); e <= last {
			t.Fatalf("Epoch did not advance: %d after %d", e, last)
		} else {
			last = e
		}
	}
	if last != 64 {
		t.Fatalf("Epoch after 64 inserts = %d, want 64", last)
	}
	s.Delete(0)
	if e := s.Epoch(); e != 65 {
		t.Fatalf("Epoch after delete = %d, want 65", e)
	}
}

func TestShardedStatsAggregates(t *testing.T) {
	s := NewSharded(stubExtractor{}, 4)
	rng := rand.New(rand.NewSource(12))
	postings := 0
	for i := 0; i < 200; i++ {
		set := randomSet(rng, 30, 10000) // sparse universe: terms rarely shared
		set.Add(uint32(1000000 + i))
		if err := s.AddFingerprints(trajectory.ID(i), set); err != nil {
			t.Fatal(err)
		}
		postings += set.Cardinality()
	}
	st := s.Stats()
	if st.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", st.Shards)
	}
	if st.Trajectories != 200 {
		t.Fatalf("Stats.Trajectories = %d, want 200", st.Trajectories)
	}
	if st.Postings != postings {
		t.Fatalf("Stats.Postings = %d, want %d", st.Postings, postings)
	}
	if st.BitmapBytes <= 0 {
		t.Fatalf("Stats.BitmapBytes = %d, want > 0", st.BitmapBytes)
	}
	// The unsharded engine reports Shards = 1.
	if got := NewInverted(stubExtractor{}).Stats().Shards; got != 1 {
		t.Fatalf("Inverted Stats.Shards = %d, want 1", got)
	}
}

// onePointExtractor maps each point to one term so retention tests can
// drive Add/Upsert with real points.
type onePointExtractor struct{}

func (onePointExtractor) Extract(pts []geo.Point) *bitmap.Bitmap {
	set := bitmap.New()
	for _, p := range pts {
		set.Add(uint32(p.Lat*1000) ^ uint32(p.Lon*1000)<<8)
	}
	return set
}

func TestShardedPointRetention(t *testing.T) {
	s := NewSharded(onePointExtractor{}, 4, RetainPoints())
	pts := []geo.Point{{Lat: 1, Lon: 2}, {Lat: 3, Lon: 4}}
	if err := s.Add(&trajectory.Trajectory{ID: 7, Points: pts}); err != nil {
		t.Fatal(err)
	}
	if got := s.PointsOf(7); len(got) != 2 {
		t.Fatalf("PointsOf(7) = %v, want the 2 retained points", got)
	}
	pts2 := []geo.Point{{Lat: 5, Lon: 6}}
	s.Upsert(&trajectory.Trajectory{ID: 7, Points: pts2})
	if got := s.PointsOf(7); len(got) != 1 || got[0] != pts2[0] {
		t.Fatalf("PointsOf(7) after upsert = %v, want %v", got, pts2)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after upsert = %d, want 1", s.Len())
	}
	s.DiscardPoints()
	if got := s.PointsOf(7); got != nil {
		t.Fatalf("PointsOf(7) after DiscardPoints = %v, want nil", got)
	}
}

func TestShardedDeleteAll(t *testing.T) {
	s := NewSharded(stubExtractor{}, 4)
	var ids []trajectory.ID
	for i := 0; i < 300; i++ {
		set := bitmap.New()
		set.Add(uint32(i % 50))
		id := trajectory.ID(i)
		if err := s.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Delete half of them plus some unknown IDs; the count reflects only
	// the indexed ones.
	batch := append([]trajectory.ID{9999, 8888}, ids[:150]...)
	n, err := s.DeleteAll(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Fatalf("DeleteAll deleted %d, want 150", n)
	}
	if s.Len() != 150 {
		t.Fatalf("Len after DeleteAll = %d, want 150", s.Len())
	}
	// A cancelled context aborts without deleting everything it was given.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.DeleteAll(ctx, ids[150:]); err == nil {
		t.Fatal("DeleteAll with cancelled ctx returned nil error")
	}
}

func TestShardedAddAllRollsBackOnFailure(t *testing.T) {
	s := NewSharded(stubExtractor{}, 4)
	// Pre-seed an ID that the dataset will collide with.
	set := bitmap.New()
	set.Add(1)
	if err := s.AddFingerprints(42, set); err != nil {
		t.Fatal(err)
	}
	d := &trajectory.Dataset{}
	for i := 0; i < 100; i++ {
		d.Trajectories = append(d.Trajectories, &trajectory.Trajectory{
			ID: trajectory.ID(i), Points: []geo.Point{{Lat: 1, Lon: 1}},
		})
	}
	d.Trajectories = append(d.Trajectories, &trajectory.Trajectory{
		ID: 42, Points: []geo.Point{{Lat: 1, Lon: 1}},
	})
	if err := s.AddAll(context.Background(), d, 4); err == nil {
		t.Fatal("AddAll with duplicate ID succeeded")
	}
	if s.Len() != 1 {
		t.Fatalf("Len after failed AddAll = %d, want 1 (rolled back)", s.Len())
	}
	if s.Fingerprints(42) == nil {
		t.Fatal("pre-existing trajectory lost in rollback")
	}
}

func TestShardedScanDocs(t *testing.T) {
	s := NewSharded(stubExtractor{}, 4)
	want := make(map[trajectory.ID]int)
	for i := 0; i < 100; i++ {
		set := bitmap.New()
		set.Add(uint32(i))
		set.Add(uint32(i + 1000))
		if err := s.AddFingerprints(trajectory.ID(i), set); err != nil {
			t.Fatal(err)
		}
		want[trajectory.ID(i)] = 2
	}
	seen := make(map[trajectory.ID]int)
	s.ScanDocs(func(id trajectory.ID, set *bitmap.Bitmap, card int) bool {
		seen[id] = card
		if set.Cardinality() != card {
			t.Fatalf("ScanDocs card %d != set cardinality %d", card, set.Cardinality())
		}
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("ScanDocs visited %d docs, want %d", len(seen), len(want))
	}
	for id, card := range want {
		if seen[id] != card {
			t.Fatalf("doc %d card %d, want %d", id, seen[id], card)
		}
	}
	// Early stop is honored across shard boundaries.
	visits := 0
	s.ScanDocs(func(trajectory.ID, *bitmap.Bitmap, int) bool {
		visits++
		return visits < 10
	})
	if visits != 10 {
		t.Fatalf("ScanDocs visited %d docs after early stop, want 10", visits)
	}
}

func TestShardedSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := NewSharded(stubExtractor{}, 4)
	reference := make(map[trajectory.ID]*bitmap.Bitmap)
	for i := 0; i < 400; i++ {
		id := trajectory.ID(rng.Uint32() % 100000)
		if _, dup := reference[id]; dup {
			continue
		}
		set := randomSet(rng, 50, 400)
		set.Add(uint32(id))
		if err := src.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
		reference[id] = set
	}
	src.Delete(trajectory.ID(0)) // exercise a non-trivial epoch
	delete(reference, trajectory.ID(0))
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	queries := make([]*bitmap.Bitmap, 20)
	for i := range queries {
		queries[i] = randomSet(rng, 50, 400)
	}
	check := func(t *testing.T, eng Engine) {
		t.Helper()
		if eng.Len() != len(reference) {
			t.Fatalf("loaded Len = %d, want %d", eng.Len(), len(reference))
		}
		if eng.Epoch() != src.Epoch() {
			t.Fatalf("loaded Epoch = %d, want %d", eng.Epoch(), src.Epoch())
		}
		for _, q := range queries {
			got, _, err := eng.SearchFingerprints(context.Background(), q, 0.95, 10)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, "loaded", got, bruteForceSearch(reference, q, 0.95, 10))
		}
	}
	t.Run("v3-to-same-shard-count", func(t *testing.T) {
		dst := NewSharded(stubExtractor{}, 4)
		if _, err := dst.ReadFrom(bytes.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
		check(t, dst)
	})
	t.Run("v3-rebalances-to-other-shard-count", func(t *testing.T) {
		dst := NewSharded(stubExtractor{}, 2)
		if _, err := dst.ReadFrom(bytes.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
		check(t, dst)
		// Rebalance is by placement hash: every doc must be in its owning
		// shard, not wherever the snapshot section put it.
		dst.ScanDocs(func(id trajectory.ID, _ *bitmap.Bitmap, _ int) bool {
			if dst.shardOf(id).Fingerprints(id) == nil {
				t.Fatalf("doc %d not in its placement shard after load", id)
			}
			return true
		})
	})
	t.Run("v3-flattens-into-inverted", func(t *testing.T) {
		dst := NewInverted(stubExtractor{})
		if _, err := dst.ReadFrom(bytes.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
		check(t, dst)
	})
	t.Run("v2-rebalances-into-sharded", func(t *testing.T) {
		flat := NewInverted(stubExtractor{})
		if _, err := flat.ReadFrom(bytes.NewReader(snapshot)); err != nil {
			t.Fatal(err)
		}
		var v2 bytes.Buffer
		if _, err := flat.WriteTo(&v2); err != nil {
			t.Fatal(err)
		}
		dst := NewSharded(stubExtractor{}, 8)
		if _, err := dst.ReadFrom(bytes.NewReader(v2.Bytes())); err != nil {
			t.Fatal(err)
		}
		check(t, dst)
	})
}

func TestShardedSnapshotReplacesContents(t *testing.T) {
	src := NewSharded(stubExtractor{}, 2)
	set := bitmap.New()
	set.Add(7)
	if err := src.AddFingerprints(1, set); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewSharded(stubExtractor{}, 2)
	other := bitmap.New()
	other.Add(9)
	if err := dst.AddFingerprints(2, other); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 1 || dst.Fingerprints(1) == nil || dst.Fingerprints(2) != nil {
		t.Fatalf("load did not replace contents: len=%d", dst.Len())
	}
}

func TestShardedSnapshotRejectsDuplicate(t *testing.T) {
	// Hand-build a v3 snapshot whose two shard sections both carry ID 5:
	// rebalancing routes both copies to the same target shard, where the
	// duplicate must be rejected — on the sharded and the flat loader.
	set := bitmap.New()
	set.Add(1)
	var setBytes bytes.Buffer
	if _, err := set.WriteTo(&setBytes); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	hdr := make([]byte, 9)
	binary.LittleEndian.PutUint32(hdr[0:4], indexMagic)
	hdr[4] = indexVersionV3
	binary.LittleEndian.PutUint32(hdr[5:9], 2)
	snap.Write(hdr)
	for sec := 0; sec < 2; sec++ {
		var shHdr [12]byte
		binary.LittleEndian.PutUint32(shHdr[0:4], 1) // one doc
		binary.LittleEndian.PutUint64(shHdr[4:12], 1)
		snap.Write(shHdr[:])
		var idBuf [4]byte
		binary.LittleEndian.PutUint32(idBuf[:], 5)
		snap.Write(idBuf[:])
		snap.Write(setBytes.Bytes())
	}
	dst := NewSharded(stubExtractor{}, 2)
	if _, err := dst.ReadFrom(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("duplicate ID across shard sections loaded without error")
	}
	dstFlat := NewInverted(stubExtractor{})
	if _, err := dstFlat.ReadFrom(bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("duplicate ID across shard sections flattened without error")
	}
}
