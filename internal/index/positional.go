package index

import (
	"sort"
	"sync"

	"geodabs/internal/core"
	"geodabs/internal/geo"
	"geodabs/internal/trajectory"
)

// Positional is the classic positional inverted index of the paper's
// §III-A1: terms are normalized geohash cells and every posting carries
// the positions at which the cell occurs in the trajectory. Subsequence
// (phrase) queries are answered by intersecting postings with adjacent
// positions — the approach the paper calls out as showing "poor
// performances" for long subsequences, and which fingerprinting replaces.
// It is provided as a baseline; BenchmarkPositionalVsFingerprint measures
// the gap.
type Positional struct {
	f *core.Fingerprinter

	mu       sync.RWMutex
	postings map[uint64]map[trajectory.ID][]int32 // cell → trajectory → positions
	docs     map[trajectory.ID]int                // normalized length
}

// NewPositional returns an empty positional index normalizing at the
// given fingerprinter configuration (only the normalization fields are
// used).
func NewPositional(cfg core.Config) (*Positional, error) {
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, err
	}
	return &Positional{
		f:        f,
		postings: make(map[uint64]map[trajectory.ID][]int32),
		docs:     make(map[trajectory.ID]int),
	}, nil
}

// Add indexes the trajectory's normalized cell sequence with positions.
func (px *Positional) Add(t *trajectory.Trajectory) {
	cells := px.f.Normalize(t.Points)
	px.mu.Lock()
	defer px.mu.Unlock()
	px.docs[t.ID] = len(cells)
	for pos, c := range cells {
		byDoc, ok := px.postings[c.Hash.Bits]
		if !ok {
			byDoc = make(map[trajectory.ID][]int32)
			px.postings[c.Hash.Bits] = byDoc
		}
		byDoc[t.ID] = append(byDoc[t.ID], int32(pos))
	}
}

// Len returns the number of indexed trajectories.
func (px *Positional) Len() int {
	px.mu.RLock()
	defer px.mu.RUnlock()
	return len(px.docs)
}

// FindSubsequence returns the trajectories containing the query's
// normalized cell sequence as a contiguous subsequence, with the start
// position of the first match in each. Results are ordered by ID.
func (px *Positional) FindSubsequence(points []geo.Point) []SubsequenceMatch {
	cells := px.f.Normalize(points)
	if len(cells) == 0 {
		return nil
	}
	px.mu.RLock()
	defer px.mu.RUnlock()
	// Candidate start positions: postings of the first cell. Then every
	// subsequent term must appear shifted by one — the standard phrase-
	// query merge, costing O(sequence × positions) per candidate.
	first, ok := px.postings[cells[0].Hash.Bits]
	if !ok {
		return nil
	}
	var out []SubsequenceMatch
	for id, starts := range first {
		pos := match(px, cells, id, starts)
		if pos >= 0 {
			out = append(out, SubsequenceMatch{ID: id, Start: pos})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// match returns the first start position of the full cell sequence in
// trajectory id, or -1.
func match(px *Positional, cells []core.Cell, id trajectory.ID, starts []int32) int {
	for _, s := range starts {
		found := true
		for k := 1; k < len(cells); k++ {
			byDoc, ok := px.postings[cells[k].Hash.Bits]
			if !ok {
				return -1 // term absent everywhere
			}
			if !containsPos(byDoc[id], s+int32(k)) {
				found = false
				break
			}
		}
		if found {
			return int(s)
		}
	}
	return -1
}

// containsPos reports whether the sorted positions contain p.
func containsPos(positions []int32, p int32) bool {
	i := sort.Search(len(positions), func(i int) bool { return positions[i] >= p })
	return i < len(positions) && positions[i] == p
}

// SubsequenceMatch is one positional-index hit.
type SubsequenceMatch struct {
	ID    trajectory.ID
	Start int // cell position of the first occurrence
}
