package index

import (
	"bytes"
	"context"
	"testing"

	"geodabs/internal/core"
	"geodabs/internal/trajectory"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	orig := newGeodabIndex(t)
	if err := orig.AddAll(context.Background(), testWorkload.Dataset, 8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded := newGeodabIndex(t)
	if _, err := loaded.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("loaded %d docs, want %d", loaded.Len(), orig.Len())
	}
	// Queries must be identical on the loaded index.
	for _, q := range testWorkload.Queries[:5] {
		want := orig.Query(q, 1, 10)
		got := loaded.Query(q, 1, 10)
		if len(got) != len(want) {
			t.Fatalf("result count %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
	// Stats agree too (same docs, same postings).
	if g, w := loaded.Stats(), orig.Stats(); g.Terms != w.Terms || g.Postings != w.Postings {
		t.Errorf("stats diverge: %+v vs %+v", g, w)
	}
}

func TestIndexSnapshotReplacesContents(t *testing.T) {
	a := newGeodabIndex(t)
	if err := a.Add(testWorkload.Dataset.Trajectories[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := newGeodabIndex(t)
	if err := b.Add(testWorkload.Dataset.Trajectories[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("loaded index has %d docs, want 1", b.Len())
	}
	if b.Fingerprints(testWorkload.Dataset.Trajectories[1].ID) != nil {
		t.Error("pre-existing contents should be replaced")
	}
	// The loaded index accepts further additions.
	if err := b.Add(testWorkload.Dataset.Trajectories[2]); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("Len after post-load add = %d", b.Len())
	}
}

func TestIndexSnapshotRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-magic", []byte{1, 2, 3, 4, 1, 0, 0, 0, 0}},
		{"bad-version", []byte{0x47, 0x44, 0x49, 0x58, 9, 0, 0, 0, 0}},
		{"truncated", func() []byte {
			ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())})
			if err := ix.Add(testWorkload.Dataset.Trajectories[0]); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := ix.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-4]
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ix := newGeodabIndex(t)
			if _, err := ix.ReadFrom(bytes.NewReader(tt.data)); err == nil {
				t.Error("ReadFrom should fail")
			}
		})
	}
}

// TestMutatedSnapshotRoundTrip is the delete → snapshot → ReadFrom
// acceptance path: a mutated index round-trips as exactly its live
// documents (deletes leave nothing behind), and the mutation epoch
// survives so snapshot lineages stay ordered.
func TestMutatedSnapshotRoundTrip(t *testing.T) {
	orig := newGeodabIndex(t)
	if err := orig.AddAll(context.Background(), testWorkload.Dataset, 8); err != nil {
		t.Fatal(err)
	}
	victims := []trajectory.ID{
		testWorkload.Dataset.Trajectories[0].ID,
		testWorkload.Dataset.Trajectories[3].ID,
		testWorkload.Dataset.Trajectories[9].ID,
	}
	for _, id := range victims {
		if !orig.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	orig.Upsert(testWorkload.Dataset.Trajectories[5]) // replacement rides along
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded := newGeodabIndex(t)
	if _, err := loaded.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("loaded %d docs, want %d", loaded.Len(), orig.Len())
	}
	if loaded.Epoch() != orig.Epoch() {
		t.Errorf("loaded epoch %d, want %d", loaded.Epoch(), orig.Epoch())
	}
	for _, id := range victims {
		if loaded.Fingerprints(id) != nil {
			t.Errorf("deleted trajectory %d resurrected by the snapshot", id)
		}
	}
	if g, w := loaded.Stats(), orig.Stats(); g.Terms != w.Terms || g.Postings != w.Postings {
		t.Errorf("stats diverge after mutated round-trip: %+v vs %+v", g, w)
	}
	for _, q := range testWorkload.Queries[:5] {
		want := orig.Query(q, 1, 10)
		got := loaded.Query(q, 1, 10)
		if len(got) != len(want) {
			t.Fatalf("result count %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
}

// TestSnapshotReadsV1 pins backward compatibility: a version-1 snapshot
// (pre-mutation-API, no epoch field) still loads, with epoch 0.
func TestSnapshotReadsV1(t *testing.T) {
	orig := newGeodabIndex(t)
	if err := orig.Add(testWorkload.Dataset.Trajectories[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 snapshot as v1: flip the version byte and splice out
	// the 8-byte epoch field that follows the 9-byte header.
	v2 := buf.Bytes()
	v1 := append([]byte{}, v2[:indexHeaderSize]...)
	v1[4] = indexVersionV1
	v1 = append(v1, v2[indexHeaderSize+8:]...)
	loaded := newGeodabIndex(t)
	if _, err := loaded.ReadFrom(bytes.NewReader(v1)); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("v1 snapshot loaded %d docs, want 1", loaded.Len())
	}
	if loaded.Epoch() != 0 {
		t.Errorf("v1 snapshot epoch = %d, want 0", loaded.Epoch())
	}
}
