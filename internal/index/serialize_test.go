package index

import (
	"bytes"
	"context"
	"testing"

	"geodabs/internal/core"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	orig := newGeodabIndex(t)
	if err := orig.AddAll(context.Background(), testWorkload.Dataset, 8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded := newGeodabIndex(t)
	if _, err := loaded.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("loaded %d docs, want %d", loaded.Len(), orig.Len())
	}
	// Queries must be identical on the loaded index.
	for _, q := range testWorkload.Queries[:5] {
		want := orig.Query(q, 1, 10)
		got := loaded.Query(q, 1, 10)
		if len(got) != len(want) {
			t.Fatalf("result count %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
	// Stats agree too (same docs, same postings).
	if g, w := loaded.Stats(), orig.Stats(); g.Terms != w.Terms || g.Postings != w.Postings {
		t.Errorf("stats diverge: %+v vs %+v", g, w)
	}
}

func TestIndexSnapshotReplacesContents(t *testing.T) {
	a := newGeodabIndex(t)
	if err := a.Add(testWorkload.Dataset.Trajectories[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := newGeodabIndex(t)
	if err := b.Add(testWorkload.Dataset.Trajectories[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("loaded index has %d docs, want 1", b.Len())
	}
	if b.Fingerprints(testWorkload.Dataset.Trajectories[1].ID) != nil {
		t.Error("pre-existing contents should be replaced")
	}
	// The loaded index accepts further additions.
	if err := b.Add(testWorkload.Dataset.Trajectories[2]); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("Len after post-load add = %d", b.Len())
	}
}

func TestIndexSnapshotRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad-magic", []byte{1, 2, 3, 4, 1, 0, 0, 0, 0}},
		{"bad-version", []byte{0x47, 0x44, 0x49, 0x58, 9, 0, 0, 0, 0}},
		{"truncated", func() []byte {
			ix := NewInverted(GeodabExtractor{core.MustFingerprinter(core.DefaultConfig())})
			if err := ix.Add(testWorkload.Dataset.Trajectories[0]); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := ix.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-4]
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ix := newGeodabIndex(t)
			if _, err := ix.ReadFrom(bytes.NewReader(tt.data)); err == nil {
				t.Error("ReadFrom should fail")
			}
		})
	}
}
