package index

import (
	"context"
	"runtime"
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/trajectory"
)

// Sharded partitions the corpus across a power-of-two number of
// independent Inverted shards by a hash of the trajectory ID. Every
// trajectory lives wholly in one shard (postings, cached cardinality,
// retained points), so a mutation takes exactly one shard's write lock
// and mutations on different shards proceed without contending. A search
// fans out across the shards in parallel and merges the surviving
// partials through one Ranker, producing rankings byte-identical to
// Inverted's (see the package doc's Sharding section for why).
//
// Concurrency semantics match Inverted per trajectory: a concurrent
// search observes each trajectory either fully or not at all. What is
// weaker is the cross-shard snapshot: a search overlapping mutations on
// several shards may observe them at different epochs — the same
// isolation the network cluster's scatter-gather provides.
type Sharded struct {
	ex     Extractor
	shards []*Inverted
	mask   uint32
}

// NewSharded returns an empty sharded index with n shards, rounded up to
// the next power of two. n ≤ 0 selects GOMAXPROCS (again rounded up), so
// the default fan-out matches the cores available to the process.
// Options apply to every shard.
func NewSharded(ex Extractor, n int, opts ...InvertedOption) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	n = ceilPow2(n)
	s := &Sharded{ex: ex, shards: make([]*Inverted, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i] = NewInverted(ex, opts...)
	}
	return s
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NumShards returns the shard count (a power of two, fixed at
// construction).
func (s *Sharded) NumShards() int { return len(s.shards) }

// shardIndex places a trajectory ID: a strong 32-bit integer hash
// (lowbias32) masked down to the shard count. Sequentially assigned IDs —
// the common ingest pattern — would all land in shard 0 under a plain
// modulo of the low bits once the count divides them; the hash spreads
// them uniformly instead. The placement is a pure function of (ID, shard
// count), so snapshots can be rebalanced deterministically.
func shardIndex(id, mask uint32) uint32 {
	id ^= id >> 16
	id *= 0x7feb352d
	id ^= id >> 15
	id *= 0x846ca68b
	id ^= id >> 16
	return id & mask
}

// shardOf returns the shard owning a trajectory ID.
func (s *Sharded) shardOf(id trajectory.ID) *Inverted {
	return s.shards[shardIndex(uint32(id), s.mask)]
}

// Add fingerprints the trajectory and inserts it into the owning shard.
// Re-adding an ID fails; use Upsert to replace in place.
func (s *Sharded) Add(t *trajectory.Trajectory) error {
	return s.insert(t.ID, s.ex.Extract(t.Points), t.Points)
}

// AddFingerprints inserts a pre-computed fingerprint set (no raw points,
// so no exact re-ranking for this trajectory).
func (s *Sharded) AddFingerprints(id trajectory.ID, set *bitmap.Bitmap) error {
	return s.insert(id, set, nil)
}

func (s *Sharded) insert(id trajectory.ID, set *bitmap.Bitmap, pts []geo.Point) error {
	return s.shardOf(id).insert(id, set, pts)
}

// AddAll indexes a dataset through the shared parallel-extraction
// pipeline; insertions route to the owning shards, and duplicate-ID
// detection still works because a given ID always hashes to the same
// shard. Like Inverted.AddAll it is all-or-nothing: on failure the
// trajectories this call inserted are removed again, one lock
// acquisition per touched shard.
func (s *Sharded) AddAll(ctx context.Context, d *trajectory.Dataset, workers int) error {
	return ingestAll(ctx, d, workers, s.ex.Extract, s.insert, func(inserted []trajectory.ID) {
		perShard := make([][]trajectory.ID, len(s.shards))
		for _, id := range inserted {
			si := shardIndex(uint32(id), s.mask)
			perShard[si] = append(perShard[si], id)
		}
		for si, ids := range perShard {
			if len(ids) == 0 {
				continue
			}
			sh := s.shards[si]
			sh.mu.Lock()
			for _, id := range ids {
				sh.deleteLocked(id)
			}
			sh.mu.Unlock()
		}
	})
}

// Delete removes a trajectory from its owning shard, reporting whether it
// was indexed.
func (s *Sharded) Delete(id trajectory.ID) bool {
	return s.shardOf(id).Delete(id)
}

// Upsert fingerprints the trajectory and replaces any previous version in
// its owning shard; the swap is atomic under that shard's write lock.
func (s *Sharded) Upsert(t *trajectory.Trajectory) {
	s.shardOf(t.ID).upsertSet(t.ID, s.ex.Extract(t.Points), t.Points)
}

// DeleteAll groups the IDs by owning shard and deletes each group under a
// single acquisition of that shard's write lock, honoring ctx between
// shards and (via Inverted.DeleteAll) inside each batch. It returns how
// many of the IDs were actually indexed; unknown IDs are skipped.
func (s *Sharded) DeleteAll(ctx context.Context, ids []trajectory.ID) (int, error) {
	if len(s.shards) == 1 {
		return s.shards[0].DeleteAll(ctx, ids)
	}
	perShard := make([][]trajectory.ID, len(s.shards))
	for _, id := range ids {
		si := shardIndex(uint32(id), s.mask)
		perShard[si] = append(perShard[si], id)
	}
	deleted := 0
	for si, group := range perShard {
		if len(group) == 0 {
			continue
		}
		n, err := s.shards[si].DeleteAll(ctx, group)
		deleted += n
		if err != nil {
			return deleted, err
		}
	}
	return deleted, nil
}

// Epoch returns the sum of the shard epochs. Every mutation bumps exactly
// one shard's epoch, so the sum is a monotone mutation counter exactly as
// on Inverted.
func (s *Sharded) Epoch() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.Epoch()
	}
	return total
}

// Extractor returns the shared term extractor.
func (s *Sharded) Extractor() Extractor { return s.ex }

// Len returns the total number of indexed trajectories.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Stats aggregates the per-shard statistics. Terms counts per-shard term
// entries (a term spanning k shards counts k times), mirroring the memory
// actually held by the per-shard posting maps.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		total.Trajectories += st.Trajectories
		total.Terms += st.Terms
		total.Postings += st.Postings
		total.BitmapBytes += st.BitmapBytes
	}
	total.Shards = len(s.shards)
	return total
}

// Fingerprints returns the stored fingerprint set of a trajectory, or nil.
func (s *Sharded) Fingerprints(id trajectory.ID) *bitmap.Bitmap {
	return s.shardOf(id).Fingerprints(id)
}

// PointsOf returns the retained raw points of a trajectory, or nil.
func (s *Sharded) PointsOf(id trajectory.ID) []geo.Point {
	return s.shardOf(id).PointsOf(id)
}

// DiscardPoints releases every shard's retained point sequences.
func (s *Sharded) DiscardPoints() {
	for _, sh := range s.shards {
		sh.DiscardPoints()
	}
}

// ScanDocs visits every indexed trajectory shard by shard until f returns
// false. Each shard is visited under its own read lock; the order is
// unspecified.
func (s *Sharded) ScanDocs(f func(id trajectory.ID, set *bitmap.Bitmap, card int) bool) {
	stopped := false
	for _, sh := range s.shards {
		if stopped {
			return
		}
		sh.ScanDocs(func(id trajectory.ID, set *bitmap.Bitmap, card int) bool {
			if !f(id, set, card) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// Query mirrors Inverted.Query: at most maxDistance, distance ascending,
// ID tiebreak, truncated to limit (≤ 0 for no limit).
func (s *Sharded) Query(q *trajectory.Trajectory, maxDistance float64, limit int) []Result {
	return s.QueryFingerprints(s.ex.Extract(q.Points), maxDistance, limit)
}

// QueryFingerprints ranks against a pre-computed fingerprint set.
func (s *Sharded) QueryFingerprints(set *bitmap.Bitmap, maxDistance float64, limit int) []Result {
	results, _, _ := s.SearchFingerprints(context.Background(), set, maxDistance, limit)
	return results
}

// Search is the context-aware ranked retrieval entry point.
func (s *Sharded) Search(ctx context.Context, q *trajectory.Trajectory, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}
	return s.SearchFingerprints(ctx, s.ex.Extract(q.Points), maxDistance, limit)
}

// SearchFingerprints ranks against a pre-computed fingerprint set.
func (s *Sharded) SearchFingerprints(ctx context.Context, set *bitmap.Bitmap, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	return s.AppendSearchFingerprints(ctx, nil, set, maxDistance, limit)
}

// AppendSearchFingerprints is SearchFingerprints appending into dst.
func (s *Sharded) AppendSearchFingerprints(ctx context.Context, dst []Result, set *bitmap.Bitmap, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	return s.AppendSearchSet(ctx, dst, set, set.Cardinality(), maxDistance, limit)
}

// fanoutScratch is the pooled per-query state of a sharded search: one
// partial buffer per shard (each written by exactly one goroutine), the
// per-shard stat and error slots, and the coordinating ranker. Pooling it
// makes a steady-state fanned-out search allocation-free once the
// buffers have grown to the workload.
type fanoutScratch struct {
	partials   [][]shardPartial
	candidates []int
	pruned     []int
	errs       []error
	ranker     Ranker
}

var fanoutScratchPool = sync.Pool{New: func() any { return new(fanoutScratch) }}

// getFanoutScratch returns a scratch sized for n shards, reusing the
// per-shard partial buffers' capacity across queries.
func getFanoutScratch(n int) *fanoutScratch {
	fs := fanoutScratchPool.Get().(*fanoutScratch)
	if cap(fs.partials) < n {
		fs.partials = make([][]shardPartial, n)
		fs.candidates = make([]int, n)
		fs.pruned = make([]int, n)
		fs.errs = make([]error, n)
	}
	fs.partials = fs.partials[:n]
	fs.candidates = fs.candidates[:n]
	fs.pruned = fs.pruned[:n]
	fs.errs = fs.errs[:n]
	return fs
}

func (fs *fanoutScratch) release() { fanoutScratchPool.Put(fs) }

// AppendSearchSet is the fanned-out ranked search: every shard runs its
// counting merge (or wide-query fallback) in parallel — one goroutine per
// extra shard, shard 0 on the calling goroutine — pre-filtering with the
// static threshold bounds, and the surviving (id, cardinality, shared)
// partials merge through one Ranker. Stats aggregate across shards:
// Candidates is the total candidate count, Pruned counts both shard-side
// static pruning and the coordinator's rising-bar pruning. qc must equal
// set.Cardinality().
func (s *Sharded) AppendSearchSet(ctx context.Context, dst []Result, set *bitmap.Bitmap, qc int, maxDistance float64, limit int) ([]Result, SearchStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}
	if len(s.shards) == 1 {
		return s.shards[0].AppendSearchSet(ctx, dst, set, qc, maxDistance, limit)
	}
	if qc == 0 {
		return dst, SearchStats{}, nil
	}
	fs := getFanoutScratch(len(s.shards))
	defer fs.release()

	var wg sync.WaitGroup
	for i := 1; i < len(s.shards); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs.partials[i], fs.candidates[i], fs.pruned[i], fs.errs[i] =
				s.shards[i].appendSearchPartials(ctx, fs.partials[i][:0], set, qc, maxDistance)
		}(i)
	}
	fs.partials[0], fs.candidates[0], fs.pruned[0], fs.errs[0] =
		s.shards[0].appendSearchPartials(ctx, fs.partials[0][:0], set, qc, maxDistance)
	wg.Wait()

	var stats SearchStats
	for i := range fs.errs {
		if err := fs.errs[i]; err != nil {
			return nil, stats, err
		}
		stats.Candidates += fs.candidates[i]
		stats.Pruned += fs.pruned[i]
	}

	fs.ranker.Init(qc, maxDistance, limit)
	for _, partials := range fs.partials {
		for _, p := range partials {
			fs.ranker.Consider(p.id, p.card, p.shared)
		}
	}
	dst = fs.ranker.Finish(dst)
	stats.Pruned += fs.ranker.Pruned()
	return dst, stats, nil
}
