package index

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/trajectory"
)

// bruteForceSearch is the reference scorer: score every indexed document
// with an independent full-bitmap Jaccard computation, keep candidates
// sharing at least one term, sort by the ranking contract, truncate.
// The counting-merge core must be byte-identical to it.
func bruteForceSearch(docs map[trajectory.ID]*bitmap.Bitmap, set *bitmap.Bitmap, maxDistance float64, limit int) []Result {
	var results []Result
	for id, doc := range docs {
		shared := bitmap.AndCardinality(set, doc)
		if shared == 0 {
			continue
		}
		if d := bitmap.JaccardDistance(set, doc); d <= maxDistance {
			results = append(results, Result{ID: id, Distance: d, Shared: shared})
		}
	}
	SortResults(results)
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results
}

// randomSet draws a fingerprint set whose terms overlap heavily across
// documents (term universe much smaller than the number of draws).
func randomSet(rng *rand.Rand, maxTerms int, universe uint32) *bitmap.Bitmap {
	set := bitmap.New()
	for n := rng.Intn(maxTerms); n > 0; n-- {
		set.Add(rng.Uint32() % universe)
	}
	return set
}

// buildRandomIndex fills an index with fingerprint-only documents whose
// IDs span multiple counter chunks.
func buildRandomIndex(t testing.TB, rng *rand.Rand, docs int) (*Inverted, map[trajectory.ID]*bitmap.Bitmap) {
	t.Helper()
	ix := NewInverted(stubExtractor{})
	reference := make(map[trajectory.ID]*bitmap.Bitmap, docs)
	for i := 0; i < docs; i++ {
		id := trajectory.ID(rng.Uint32() % 200000)
		if _, dup := reference[id]; dup {
			continue
		}
		set := randomSet(rng, 60, 500)
		if err := ix.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
		reference[id] = set
	}
	return ix, reference
}

// stubExtractor satisfies Extractor for fingerprint-only workloads; the
// differential tests insert pre-built sets and never extract from points.
type stubExtractor struct{}

func (stubExtractor) Extract([]geo.Point) *bitmap.Bitmap { return bitmap.New() }

func equalResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Shared != w.Shared ||
			math.Float64bits(g.Distance) != math.Float64bits(w.Distance) {
			t.Fatalf("%s: result %d = %+v, want %+v (distance bits %x vs %x)",
				label, i, g, w, math.Float64bits(g.Distance), math.Float64bits(w.Distance))
		}
	}
}

// TestSearchMatchesBruteForce drives the counting core over randomized
// workloads — random maxDistance (range semantics), result caps (the kNN
// and WithLimit shapes), and post-mutation states — and requires rankings
// byte-identical to the brute-force scorer.
func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctx := context.Background()
	for trial := 0; trial < 30; trial++ {
		ix, reference := buildRandomIndex(t, rng, 200)
		check := func(label string) {
			t.Helper()
			for q := 0; q < 8; q++ {
				set := randomSet(rng, 80, 500)
				maxDistance := []float64{0, 0.25, 0.5, 0.8, 0.95, 1}[rng.Intn(6)]
				limit := []int{0, 1, 3, 10, 1000}[rng.Intn(5)]
				got, stats, err := ix.SearchFingerprints(ctx, set, maxDistance, limit)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForceSearch(reference, set, maxDistance, limit)
				equalResults(t, label, got, want)
				wantCandidates := 0
				for _, doc := range reference {
					if bitmap.AndCardinality(set, doc) > 0 {
						wantCandidates++
					}
				}
				if stats.Candidates != wantCandidates {
					t.Fatalf("%s: Candidates = %d, want %d", label, stats.Candidates, wantCandidates)
				}
				if stats.Pruned < 0 || stats.Pruned > stats.Candidates {
					t.Fatalf("%s: implausible Pruned = %d of %d", label, stats.Pruned, stats.Candidates)
				}
			}
		}
		check("fresh index")

		// Mutate: delete a third, upsert (replace) a third, then re-verify —
		// this exercises the cached-cardinality maintenance.
		i := 0
		for id := range reference {
			switch i % 3 {
			case 0:
				ix.Delete(id)
				delete(reference, id)
			case 1:
				set := randomSet(rng, 60, 500)
				ix.Upsert(&trajectory.Trajectory{ID: id, Points: nil})
				// Upsert extracted an empty set via the stub; replace with a
				// real one to keep the workload meaningful.
				ix.Delete(id)
				if err := ix.AddFingerprints(id, set); err != nil {
					t.Fatal(err)
				}
				reference[id] = set
			}
			i++
		}
		check("after mutations")
	}
}

// TestSearchWideQueryFallback pins the >65535-term fallback path to the
// same brute-force contract as the counting core, across distance
// cutoffs and result caps. The fallback ranks through the shared Ranker,
// so it reports Pruned and applies the top-k heap exactly like the
// narrow path — only the shared-count computation differs.
func TestSearchWideQueryFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ix := NewInverted(stubExtractor{})
	reference := make(map[trajectory.ID]*bitmap.Bitmap)
	for i := 0; i < 60; i++ {
		id := trajectory.ID(i * 977)
		set := bitmap.New()
		// Mixed sizes so the cardinality window has real work at tight
		// cutoffs: some documents near the query's overlap, some tiny.
		for n := 0; n < 10+(i%5)*200; n++ {
			set.Add(rng.Uint32() % 100000)
		}
		if err := ix.AddFingerprints(id, set); err != nil {
			t.Fatal(err)
		}
		reference[id] = set
	}
	wide := bitmap.New()
	for v := uint32(0); v < 70000; v++ {
		wide.Add(v)
	}
	if wide.Cardinality() <= math.MaxUint16 {
		t.Fatal("query not wide enough to exercise the fallback")
	}
	sawPruning := false
	for _, maxDistance := range []float64{0, 0.5, 0.9, 0.99, 1} {
		for _, limit := range []int{0, 1, 5} {
			got, stats, err := ix.SearchFingerprints(context.Background(), wide, maxDistance, limit)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceSearch(reference, wide, maxDistance, limit)
			equalResults(t, "wide query", got, want)
			if stats.Pruned < 0 || stats.Pruned > stats.Candidates {
				t.Fatalf("implausible Pruned = %d of %d candidates", stats.Pruned, stats.Candidates)
			}
			sawPruning = sawPruning || stats.Pruned > 0
		}
	}
	if !sawPruning {
		t.Error("no combination exercised the fallback's threshold pruning")
	}
}

// TestCardinalityWindowMatchesRanker pins the exported window to the
// bounds the Ranker starts from: the shard nodes prune with
// CardinalityWindow, the coordinator with the Ranker, and the node-side
// prune is only invisible in the results if the two agree exactly.
func TestCardinalityWindowMatchesRanker(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var r Ranker
	for trial := 0; trial < 2000; trial++ {
		qc := 1 + rng.Intn(100000)
		maxDistance := []float64{0, 0.01, 0.3, 0.5, 0.9, 0.99, 1, rng.Float64()}[rng.Intn(8)]
		r.Init(qc, maxDistance, rng.Intn(10))
		minCard, maxCard := CardinalityWindow(qc, maxDistance)
		if minCard != r.minCard || maxCard != r.maxCard {
			t.Fatalf("CardinalityWindow(%d, %v) = [%d, %d], Ranker starts at [%d, %d]",
				qc, maxDistance, minCard, maxCard, r.minCard, r.maxCard)
		}
	}
}

// TestCardinalityWindowSound verifies the window never excludes a truly
// qualifying candidate: whenever dJ(F, G) ≤ d, |G| falls inside
// CardinalityWindow(|F|, d).
func TestCardinalityWindowSound(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 500; trial++ {
		f := randomSet(rng, 120, 400)
		g := randomSet(rng, 120, 400)
		if f.Cardinality() == 0 || g.Cardinality() == 0 {
			continue
		}
		d := bitmap.JaccardDistance(f, g)
		for _, bound := range []float64{d, d + 0.05, 1} {
			if bound > 1 {
				bound = 1
			}
			minCard, maxCard := CardinalityWindow(f.Cardinality(), bound)
			card := g.Cardinality()
			if card < minCard || (maxCard > 0 && card > maxCard) {
				t.Fatalf("window [%d, %d] for qc=%d bound=%v excludes qualifying card=%d (dJ=%v)",
					minCard, maxCard, f.Cardinality(), bound, card, d)
			}
		}
	}
}

// TestAppendSearchReusesBuffer verifies the zero-alloc contract's
// ingredient: results append into the caller's buffer.
func TestAppendSearchReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix, reference := buildRandomIndex(t, rng, 100)
	set := randomSet(rng, 60, 500)
	buf := make([]Result, 0, 4096)
	got, _, err := ix.AppendSearchFingerprints(context.Background(), buf, set, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap(got) == 4096 && len(got) > 0 && &got[:1][0] != &buf[:1][0] {
		t.Fatal("results not appended into the caller's buffer")
	}
	equalResults(t, "append", got, bruteForceSearch(reference, set, 1, 0))
}

// TestSearchConcurrentMutations interleaves searches with deletes,
// upserts and inserts. Every observed result must be internally
// consistent — contract-ordered, within the distance cutoff, shared count
// plausible — and the run is meaningful under -race.
func TestSearchConcurrentMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ix, _ := buildRandomIndex(t, rng, 300)
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			mrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := trajectory.ID(mrng.Uint32() % 200000)
				switch mrng.Intn(3) {
				case 0:
					ix.Delete(id)
				case 1:
					ix.AddFingerprints(id, randomSet(mrng, 40, 500))
				default:
					ix.DeleteAll(ctx, []trajectory.ID{id, id + 1, id + 2})
				}
			}
		}(int64(w))
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			srng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				set := randomSet(srng, 60, 500)
				maxDistance := srng.Float64()
				limit := srng.Intn(20)
				results, stats, err := ix.SearchFingerprints(ctx, set, maxDistance, limit)
				if err != nil {
					t.Error(err)
					return
				}
				if limit > 0 && len(results) > limit {
					t.Errorf("limit %d exceeded: %d results", limit, len(results))
					return
				}
				if len(results) > stats.Candidates {
					t.Errorf("more results (%d) than candidates (%d)", len(results), stats.Candidates)
					return
				}
				qc := set.Cardinality()
				for j, r := range results {
					if j > 0 && !resultLess(results[j-1], r) {
						t.Errorf("results out of contract order at %d", j)
						return
					}
					if r.Distance > maxDistance || r.Shared < 1 || r.Shared > qc {
						t.Errorf("implausible result %+v (maxDistance %v, qc %d)", r, maxDistance, qc)
						return
					}
				}
			}
		}(int64(100 + s))
	}
	// Let the searchers finish, then stop the mutators.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	defer func() { <-done }()
	defer close(stop)
	// Searchers have a bounded iteration count; wait for them via wg after
	// the mutators are told to stop in the deferred close.
}

// FuzzSearchFingerprints fuzzes the counting core against the brute-force
// scorer with document sets, query, cutoff and cap all derived from the
// fuzz input.
func FuzzSearchFingerprints(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(120), uint8(3))
	f.Add([]byte{0xff, 0x00, 0x42, 0x42, 0x17}, uint8(255), uint8(0))
	f.Add([]byte{9}, uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, distByte, limitByte uint8) {
		ix := NewInverted(stubExtractor{})
		reference := make(map[trajectory.ID]*bitmap.Bitmap)
		// Each byte contributes terms to one of 8 documents and the query:
		// a crude but deterministic overlap generator.
		query := bitmap.New()
		for i, b := range data {
			id := trajectory.ID(b % 8)
			set, ok := reference[id]
			if !ok {
				set = bitmap.New()
			}
			term := uint32(b)*31 + uint32(i%7)
			set.Add(term)
			if b%3 == 0 {
				query.Add(term)
			}
			if b%5 == 0 {
				query.Add(uint32(b) * 131)
			}
			reference[id] = set
		}
		for id, set := range reference {
			ix.Delete(id)
			if err := ix.AddFingerprints(id, set); err != nil {
				t.Fatal(err)
			}
		}
		maxDistance := float64(distByte) / 255
		limit := int(limitByte % 12)
		got, _, err := ix.SearchFingerprints(context.Background(), query, maxDistance, limit)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceSearch(reference, query, maxDistance, limit)
		equalResults(t, "fuzz", got, want)
	})
}
