package winnow

import (
	"math/rand"
	"sort"
	"testing"
)

// selectBrute is Algorithm 1 from the paper, transcribed literally: for
// every window, pick the right-most position holding the window minimum.
// Duplicate positions across windows collapse into a set.
func selectBrute(hashes []uint32, w int) []int {
	seen := map[int]bool{}
	var out []int
	for i := 0; i+w <= len(hashes); i++ {
		m := i
		for j := i + 1; j < i+w; j++ {
			if hashes[j] <= hashes[m] {
				m = j
			}
		}
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

func TestSelectMatchesAlgorithm1(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for round := 0; round < 200; round++ {
		n := rng.Intn(60)
		w := 1 + rng.Intn(10)
		hashes := make([]uint32, n)
		for i := range hashes {
			// Small value range provokes ties, the tricky case.
			hashes[i] = uint32(rng.Intn(8))
		}
		got := Select(hashes, w)
		want := selectBrute(hashes, w)
		if len(got) != len(want) {
			t.Fatalf("n=%d w=%d: got %v, want %v (hashes %v)", n, w, got, want, hashes)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d w=%d: got %v, want %v (hashes %v)", n, w, got, want, hashes)
			}
		}
	}
}

func TestSelectWindowOne(t *testing.T) {
	hashes := []uint32{5, 3, 9}
	got := Select(hashes, 1)
	if len(got) != 3 {
		t.Fatalf("w=1 should select every position, got %v", got)
	}
}

func TestSelectShortSequence(t *testing.T) {
	if got := Select([]uint32{1, 2}, 4); got != nil {
		t.Errorf("short sequence should select nothing, got %v", got)
	}
	if got := SelectShort([]uint32{7, 3, 3}, 4); len(got) != 1 || got[0] != 2 {
		t.Errorf("SelectShort should pick right-most minimum, got %v", got)
	}
	if got := SelectShort(nil, 4); got != nil {
		t.Errorf("SelectShort(nil) = %v", got)
	}
	long := []uint32{5, 1, 5, 5}
	if got, want := SelectShort(long, 2), Select(long, 2); len(got) != len(want) {
		t.Errorf("SelectShort on long input should match Select: %v vs %v", got, want)
	}
}

func TestSelectPanicsOnBadWindow(t *testing.T) {
	for name, f := range map[string]func([]uint32, int) []int{"Select": Select, "SelectShort": SelectShort} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic for w=0")
				}
			}()
			f([]uint32{1}, 0)
		})
	}
}

// TestCoverageGuarantee checks the density property: every window of w
// consecutive hashes contains at least one selected position.
func TestCoverageGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for round := 0; round < 100; round++ {
		n := 20 + rng.Intn(200)
		w := 2 + rng.Intn(8)
		hashes := make([]uint32, n)
		for i := range hashes {
			hashes[i] = rng.Uint32()
		}
		selected := Select(hashes, w)
		isSel := map[int]bool{}
		for _, p := range selected {
			isSel[p] = true
		}
		for i := 0; i+w <= n; i++ {
			found := false
			for j := i; j < i+w; j++ {
				if isSel[j] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("window [%d,%d) has no selected fingerprint", i, i+w)
			}
		}
	}
}

// TestMatchGuarantee checks the paper's t-guarantee: if two sequences share
// a common run of at least w hashes, they share at least one selected
// fingerprint value.
func TestMatchGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for round := 0; round < 200; round++ {
		w := 2 + rng.Intn(8)
		shared := make([]uint32, w+rng.Intn(5))
		for i := range shared {
			shared[i] = rng.Uint32()
		}
		a := append(randomHashes(rng, rng.Intn(30)), shared...)
		a = append(a, randomHashes(rng, rng.Intn(30))...)
		b := append(randomHashes(rng, rng.Intn(30)), shared...)
		b = append(b, randomHashes(rng, rng.Intn(30))...)

		selA := valueSet(a, Select(a, w))
		common := false
		for _, v := range Values(b, Select(b, w)) {
			if selA[v] {
				common = true
				break
			}
		}
		if !common {
			t.Fatalf("no common fingerprint despite a shared run of %d ≥ w=%d", len(shared), w)
		}
	}
}

// TestPositionsStrictlyIncreasing checks the invariant the fingerprinter
// relies on to map geodabs back to k-gram positions.
func TestPositionsStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 100; round++ {
		hashes := randomHashes(rng, rng.Intn(300))
		w := 1 + rng.Intn(12)
		prev := -1
		for _, p := range Select(hashes, w) {
			if p <= prev {
				t.Fatalf("positions not strictly increasing: %d after %d", p, prev)
			}
			if p < 0 || p >= len(hashes) {
				t.Fatalf("position %d out of range", p)
			}
			prev = p
		}
	}
}

func TestValues(t *testing.T) {
	hashes := []uint32{9, 1, 7, 1}
	got := Values(hashes, []int{1, 3})
	if len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Errorf("Values = %v", got)
	}
}

func randomHashes(rng *rand.Rand, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

func valueSet(hashes []uint32, positions []int) map[uint32]bool {
	set := make(map[uint32]bool, len(positions))
	for _, v := range Values(hashes, positions) {
		set[v] = true
	}
	return set
}

// TestSelectDequeEquivalence checks that the circular-buffer variant the
// paper mentions (and drops) selects exactly the same fingerprints as the
// rescanning implementation, including under heavy ties.
func TestSelectDequeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for round := 0; round < 300; round++ {
		n := rng.Intn(120)
		w := 1 + rng.Intn(12)
		hashes := make([]uint32, n)
		valueRange := uint32(1)<<uint(rng.Intn(16)) + 1
		for i := range hashes {
			hashes[i] = rng.Uint32() % valueRange
		}
		a := Select(hashes, w)
		b := SelectDeque(hashes, w)
		if len(a) != len(b) {
			t.Fatalf("n=%d w=%d: Select %v vs SelectDeque %v (hashes %v)", n, w, a, b, hashes)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d w=%d: Select %v vs SelectDeque %v (hashes %v)", n, w, a, b, hashes)
			}
		}
	}
}

func TestSelectDequePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for w=0")
		}
	}()
	SelectDeque([]uint32{1}, 0)
}

func BenchmarkSelect1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	hashes := randomHashes(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Select(hashes, 7)
	}
}

// BenchmarkSelectVsDeque substantiates the paper's remark that the
// circular-buffer optimization brings no significant gain on
// trajectory-sized inputs.
func BenchmarkSelectVsDeque(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	short := randomHashes(rng, 120) // a normalized city trajectory
	long := randomHashes(rng, 5000) // a document-sized input
	for name, f := range map[string]func([]uint32, int) []int{"rescan": Select, "deque": SelectDeque} {
		b.Run(name+"/short", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f(short, 7)
			}
		})
		b.Run(name+"/long", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f(long, 7)
			}
		})
	}
}
