package winnow

// This file implements the optimized winnowing variant the paper mentions
// and drops (§IV-A: "An optimised version of this algorithm relies on
// circular buffers … As we did not notice a significant performance gain,
// we dropped this optimization."). We reproduce it — a monotone deque over
// a circular buffer gives amortized O(1) per window instead of a rescan
// when the minimum expires — so the claim can be benchmarked:
// BenchmarkSelectVsDeque in this package measures both.

// SelectDeque returns exactly the same positions as Select, computed with
// a monotone circular-buffer deque.
func SelectDeque(hashes []uint32, w int) []int {
	if w < 1 {
		panic("winnow: window size must be at least 1")
	}
	if len(hashes) < w {
		return nil
	}
	selected := make([]int, 0, len(hashes)/max(w/2, 1)+1)
	// deque holds positions whose hashes increase strictly from front to
	// back; the front is always the right-most minimum of the current
	// window. Capacity w+1: each new position is pushed before the
	// expired front is popped, so the deque transiently holds one entry
	// beyond the window size.
	cap := w + 1
	deque := make([]int, cap)
	head, tail := 0, 0 // deque[head:tail] in circular arithmetic
	size := 0
	pushBack := func(pos int) {
		// Drop back entries with hash ≥ the new one: they can never be a
		// right-most minimum again (the new position is further right and
		// no larger).
		for size > 0 {
			back := deque[(tail-1+cap)%cap]
			if hashes[back] < hashes[pos] {
				break
			}
			tail = (tail - 1 + cap) % cap
			size--
		}
		deque[tail] = pos
		tail = (tail + 1) % cap
		size++
	}
	for i := 0; i < len(hashes); i++ {
		pushBack(i)
		start := i - w + 1
		if start < 0 {
			continue
		}
		// Expire the front when it leaves the window.
		if deque[head] < start {
			head = (head + 1) % cap
			size--
		}
		m := deque[head]
		if n := len(selected); n == 0 || selected[n-1] != m {
			selected = append(selected, m)
		}
	}
	return selected
}
