// Package winnow implements the winnowing fingerprint-selection algorithm
// of Schleimer, Wilkerson & Aiken (SIGMOD 2003), the algorithm the paper
// adapts to trajectories (§IV-A, Algorithm 1).
//
// Given the sequence of k-gram hashes of a document — or of geodabs of a
// trajectory — winnowing slides a window of size w = t−k+1 over the
// sequence and selects, for every window, the right-most occurrence of the
// window's minimum value. The selection satisfies two guarantees:
//
//  1. Noise threshold: no match shorter than k tokens is ever detected,
//     because only k-gram hashes are considered.
//  2. Guarantee threshold: any common run of at least t tokens — that is,
//     at least w consecutive equal hashes — yields at least one common
//     selected fingerprint, because the two sides select the same minimum
//     inside the shared window.
package winnow

// Select returns the positions of the hashes selected by winnowing with a
// window of size w, in increasing order and without duplicates. When the
// sequence is shorter than the window no position is selected, matching
// Algorithm 1 of the paper: such sequences are below the noise threshold.
//
// Select panics if w < 1.
func Select(hashes []uint32, w int) []int {
	if w < 1 {
		panic("winnow: window size must be at least 1")
	}
	if len(hashes) < w {
		return nil
	}
	return SelectInto(make([]int, 0, len(hashes)/max(w/2, 1)+1), hashes, w)
}

// SelectInto is Select appending the positions to dst, for hot paths that
// recycle the position buffer across calls.
func SelectInto(dst []int, hashes []uint32, w int) []int {
	if w < 1 {
		panic("winnow: window size must be at least 1")
	}
	if len(hashes) < w {
		return dst
	}
	// m is the position of the right-most minimum of the current window;
	// -1 forces a full scan of the first window.
	m := -1
	for i := 0; i+w <= len(hashes); i++ {
		switch {
		case m < i:
			// The previous minimum fell out of the window: rescan.
			m = i
			for j := i + 1; j < i+w; j++ {
				if hashes[j] <= hashes[m] {
					m = j
				}
			}
			dst = append(dst, m)
		case hashes[i+w-1] <= hashes[m]:
			// The entering hash is a new right-most minimum.
			m = i + w - 1
			dst = append(dst, m)
		}
	}
	return dst
}

// SelectShort behaves like Select but additionally handles sequences
// shorter than the window by selecting the right-most minimum of the whole
// sequence. Indexing pipelines use it when losing short trajectories
// entirely (the paper's strict behaviour) is not acceptable.
func SelectShort(hashes []uint32, w int) []int {
	if w < 1 {
		panic("winnow: window size must be at least 1")
	}
	if len(hashes) == 0 {
		return nil
	}
	if len(hashes) >= w {
		return Select(hashes, w)
	}
	return SelectShortInto(nil, hashes, w)
}

// SelectShortInto is SelectShort appending the positions to dst.
func SelectShortInto(dst []int, hashes []uint32, w int) []int {
	if len(hashes) >= w {
		return SelectInto(dst, hashes, w)
	}
	if w < 1 {
		panic("winnow: window size must be at least 1")
	}
	if len(hashes) == 0 {
		return dst
	}
	m := 0
	for j := 1; j < len(hashes); j++ {
		if hashes[j] <= hashes[m] {
			m = j
		}
	}
	return append(dst, m)
}

// Values maps the selected positions back to their hash values, preserving
// order.
func Values(hashes []uint32, positions []int) []uint32 {
	out := make([]uint32, len(positions))
	for i, p := range positions {
		out[i] = hashes[p]
	}
	return out
}
