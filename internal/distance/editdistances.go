package distance

import "geodabs/internal/geo"

// This file adds the two classic edit-style trajectory measures that
// trajectory systems commonly offer next to DTW and DFD. The paper's
// evaluation uses DTW/DFD; LCSS and EDR round the library out and share
// their O(n·m) shape, so the cost arguments of §VI-B apply to them
// unchanged.

// LCSS returns the Longest Common Subsequence similarity count between
// two trajectories: the length of the longest subsequence whose matched
// points are within eps meters of each other (Vlachos et al.). The result
// is in [0, min(|p|, |q|)].
func LCSS(p, q []geo.Point, eps float64) int {
	if len(p) == 0 || len(q) == 0 {
		return 0
	}
	if len(q) > len(p) {
		p, q = q, p
	}
	prev := make([]int, len(q)+1)
	curr := make([]int, len(q)+1)
	for i := 1; i <= len(p); i++ {
		for j := 1; j <= len(q); j++ {
			if geo.Haversine(p[i-1], q[j-1]) <= eps {
				curr[j] = prev[j-1] + 1
			} else {
				curr[j] = max(prev[j], curr[j-1])
			}
		}
		prev, curr = curr, prev
	}
	return prev[len(q)]
}

// LCSSDistance returns the normalized LCSS distance
// 1 − LCSS/min(|p|, |q|) in [0, 1]. Two empty trajectories are at
// distance 0; an empty against a non-empty is at distance 1.
func LCSSDistance(p, q []geo.Point, eps float64) float64 {
	if len(p) == 0 && len(q) == 0 {
		return 0
	}
	shorter := min(len(p), len(q))
	if shorter == 0 {
		return 1
	}
	return 1 - float64(LCSS(p, q, eps))/float64(shorter)
}

// EDR returns the Edit Distance on Real sequences (Chen et al.): the
// minimum number of insert/delete/substitute edits to align the
// trajectories, where two points match when within eps meters. The result
// is in [0, max(|p|, |q|)].
func EDR(p, q []geo.Point, eps float64) int {
	if len(q) > len(p) {
		p, q = q, p
	}
	prev := make([]int, len(q)+1)
	curr := make([]int, len(q)+1)
	for j := 0; j <= len(q); j++ {
		prev[j] = j // aligning the empty prefix costs j inserts
	}
	for i := 1; i <= len(p); i++ {
		curr[0] = i
		for j := 1; j <= len(q); j++ {
			subst := 1
			if geo.Haversine(p[i-1], q[j-1]) <= eps {
				subst = 0
			}
			curr[j] = min(prev[j-1]+subst, min(prev[j]+1, curr[j-1]+1))
		}
		prev, curr = curr, prev
	}
	return prev[len(q)]
}
