// Package distance implements the trajectory distance measures the paper
// evaluates against each other (§VI-B): Dynamic Time Warping (DTW, Yi et
// al.), the Discrete Fréchet Distance (DFD, Eiter & Mannila) — both O(n·m)
// dynamic programs over the haversine ground distance — and the Jaccard
// distance over fingerprint sets, which replaces them at scale.
package distance

import (
	"math"

	"geodabs/internal/geo"
)

// DTW returns the dynamic time-warping distance between two trajectories,
// per the recurrence of the paper's Eq. 3: the cost of the cheapest
// monotone alignment, where each matched pair contributes its ground
// distance in meters. DTW of anything against an empty trajectory is +Inf
// (no alignment exists); two empty trajectories are at distance 0.
func DTW(p, q []geo.Point) float64 {
	if len(p) == 0 && len(q) == 0 {
		return 0
	}
	if len(p) == 0 || len(q) == 0 {
		return math.Inf(1)
	}
	// Keep the shorter trajectory in the inner dimension to minimize the
	// rolling-row footprint.
	if len(q) > len(p) {
		p, q = q, p
	}
	prev := make([]float64, len(q)+1)
	curr := make([]float64, len(q)+1)
	for j := 1; j <= len(q); j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= len(p); i++ {
		curr[0] = math.Inf(1)
		for j := 1; j <= len(q); j++ {
			d := geo.Haversine(p[i-1], q[j-1])
			curr[j] = d + min3(prev[j], curr[j-1], prev[j-1])
		}
		prev, curr = curr, prev
	}
	return prev[len(q)]
}

// DFD returns the discrete Fréchet distance ("dog leash distance") between
// two trajectories, per the recurrence of the paper's Eq. 4: the smallest
// leash length, in meters, that lets two walkers traverse both sequences
// monotonically. DFD involving an empty trajectory is +Inf; two empty
// trajectories are at distance 0.
func DFD(p, q []geo.Point) float64 {
	if len(p) == 0 && len(q) == 0 {
		return 0
	}
	if len(p) == 0 || len(q) == 0 {
		return math.Inf(1)
	}
	if len(q) > len(p) {
		p, q = q, p
	}
	prev := make([]float64, len(q))
	curr := make([]float64, len(q))
	for i := 0; i < len(p); i++ {
		for j := 0; j < len(q); j++ {
			d := geo.Haversine(p[i], q[j])
			switch {
			case i == 0 && j == 0:
				curr[j] = d
			case i == 0:
				curr[j] = math.Max(curr[j-1], d)
			case j == 0:
				curr[j] = math.Max(prev[j], d)
			default:
				curr[j] = math.Max(min3(prev[j], curr[j-1], prev[j-1]), d)
			}
		}
		prev, curr = curr, prev
	}
	return prev[len(q)-1]
}

// JaccardSorted returns the Jaccard distance dJ = 1 − |A∩B| / |A∪B|
// between two sorted, duplicate-free uint32 slices (ordered fingerprint
// sets). The distance between two empty sets is 0 by the same convention
// as the bitmap package (identical sets).
func JaccardSorted(a, b []uint32) float64 {
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

func min3(a, b, c float64) float64 {
	return math.Min(a, math.Min(b, c))
}
