package distance

import (
	"math"
	"math/rand"
	"testing"

	"geodabs/internal/geo"
)

func TestLCSSIdentical(t *testing.T) {
	p := line(20, 10)
	if got := LCSS(p, p, 1); got != 20 {
		t.Errorf("LCSS(p, p) = %d, want 20", got)
	}
	if got := LCSSDistance(p, p, 1); got != 0 {
		t.Errorf("LCSSDistance(p, p) = %v", got)
	}
}

func TestLCSSDisjoint(t *testing.T) {
	p := line(10, 10)
	q := shifted(p, 10000)
	if got := LCSS(p, q, 100); got != 0 {
		t.Errorf("LCSS of far trajectories = %d", got)
	}
	if got := LCSSDistance(p, q, 100); got != 1 {
		t.Errorf("LCSSDistance = %v, want 1", got)
	}
}

func TestLCSSPartialOverlap(t *testing.T) {
	// q matches the second half of p exactly, first half far away.
	p := line(20, 10)
	q := append(shifted(line(10, 10), 5000), p[10:]...)
	got := LCSS(p, q, 5)
	if got != 10 {
		t.Errorf("LCSS = %d, want 10", got)
	}
}

func TestLCSSEmpty(t *testing.T) {
	p := line(5, 10)
	if got := LCSS(nil, p, 10); got != 0 {
		t.Errorf("LCSS(nil, p) = %d", got)
	}
	if got := LCSSDistance(nil, nil, 10); got != 0 {
		t.Errorf("LCSSDistance(nil, nil) = %v", got)
	}
	if got := LCSSDistance(nil, p, 10); got != 1 {
		t.Errorf("LCSSDistance(nil, p) = %v", got)
	}
}

func TestLCSSSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30; i++ {
		p := randomWalk(rng, 3+rng.Intn(15))
		q := randomWalk(rng, 3+rng.Intn(15))
		if a, b := LCSS(p, q, 50), LCSS(q, p, 50); a != b {
			t.Fatalf("LCSS not symmetric: %d vs %d", a, b)
		}
	}
}

func TestLCSSBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 30; i++ {
		p := randomWalk(rng, 3+rng.Intn(15))
		q := randomWalk(rng, 3+rng.Intn(15))
		got := LCSS(p, q, 80)
		if got < 0 || got > min(len(p), len(q)) {
			t.Fatalf("LCSS = %d out of [0, %d]", got, min(len(p), len(q)))
		}
	}
}

func TestEDRIdentical(t *testing.T) {
	p := line(15, 10)
	if got := EDR(p, p, 1); got != 0 {
		t.Errorf("EDR(p, p) = %d", got)
	}
}

func TestEDREmpty(t *testing.T) {
	p := line(5, 10)
	if got := EDR(nil, p, 10); got != 5 {
		t.Errorf("EDR(nil, p) = %d, want 5 (all inserts)", got)
	}
	if got := EDR(nil, nil, 10); got != 0 {
		t.Errorf("EDR(nil, nil) = %d", got)
	}
}

func TestEDRSingleEdit(t *testing.T) {
	p := line(10, 20)
	// Corrupt one point far away: one substitution.
	q := append([]geo.Point(nil), p...)
	q[4] = geo.Offset(q[4], 5000, 0)
	if got := EDR(p, q, 10); got != 1 {
		t.Errorf("EDR after one corruption = %d, want 1", got)
	}
	// Delete one point: one deletion.
	q2 := append(append([]geo.Point(nil), p[:4]...), p[5:]...)
	if got := EDR(p, q2, 10); got != 1 {
		t.Errorf("EDR after one deletion = %d, want 1", got)
	}
}

func TestEDRSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 30; i++ {
		p := randomWalk(rng, 3+rng.Intn(15))
		q := randomWalk(rng, 3+rng.Intn(15))
		a, b := EDR(p, q, 50), EDR(q, p, 50)
		if a != b {
			t.Fatalf("EDR not symmetric: %d vs %d", a, b)
		}
		if a < int(math.Abs(float64(len(p)-len(q)))) || a > max(len(p), len(q)) {
			t.Fatalf("EDR = %d out of bounds for |p|=%d |q|=%d", a, len(p), len(q))
		}
	}
}

// TestEDRTriangleInequality: EDR with a fixed eps is a metric on
// sequences (up to the match relation); check the triangle inequality
// empirically.
func TestEDRTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 50; i++ {
		a := randomWalk(rng, 2+rng.Intn(10))
		b := randomWalk(rng, 2+rng.Intn(10))
		c := randomWalk(rng, 2+rng.Intn(10))
		if EDR(a, c, 60) > EDR(a, b, 60)+EDR(b, c, 60) {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func BenchmarkLCSS500(b *testing.B) {
	p := line(500, 10)
	q := shifted(p, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LCSS(p, q, 50)
	}
}

func BenchmarkEDR500(b *testing.B) {
	p := line(500, 10)
	q := shifted(p, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EDR(p, q, 50)
	}
}
