package distance

import (
	"math"
	"math/rand"
	"testing"

	"geodabs/internal/geo"
)

// line returns n points spaced meters apart heading east from a base point.
func line(n int, spacing float64) []geo.Point {
	base := geo.Point{Lat: 51.5, Lon: -0.12}
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Offset(base, 0, float64(i)*spacing)
	}
	return out
}

// shifted returns the points displaced north by meters.
func shifted(pts []geo.Point, north float64) []geo.Point {
	out := make([]geo.Point, len(pts))
	for i, p := range pts {
		out[i] = geo.Offset(p, north, 0)
	}
	return out
}

// dfdBrute is the textbook recursive DFD used to validate the DP version.
func dfdBrute(p, q []geo.Point) float64 {
	memo := make(map[[2]int]float64)
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if v, ok := memo[[2]int{i, j}]; ok {
			return v
		}
		d := geo.Haversine(p[i], q[j])
		var v float64
		switch {
		case i == 0 && j == 0:
			v = d
		case i == 0:
			v = math.Max(rec(0, j-1), d)
		case j == 0:
			v = math.Max(rec(i-1, 0), d)
		default:
			v = math.Max(min3(rec(i-1, j), rec(i, j-1), rec(i-1, j-1)), d)
		}
		memo[[2]int{i, j}] = v
		return v
	}
	return rec(len(p)-1, len(q)-1)
}

// dtwBrute is the textbook recursive DTW used to validate the DP version.
func dtwBrute(p, q []geo.Point) float64 {
	memo := make(map[[2]int]float64)
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if i == 0 && j == 0 {
			return 0
		}
		if i == 0 || j == 0 {
			return math.Inf(1)
		}
		if v, ok := memo[[2]int{i, j}]; ok {
			return v
		}
		v := geo.Haversine(p[i-1], q[j-1]) + min3(rec(i-1, j), rec(i, j-1), rec(i-1, j-1))
		memo[[2]int{i, j}] = v
		return v
	}
	return rec(len(p), len(q))
}

func TestDFDMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 50; round++ {
		p := randomWalk(rng, 1+rng.Intn(12))
		q := randomWalk(rng, 1+rng.Intn(12))
		got, want := DFD(p, q), dfdBrute(p, q)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("DFD = %v, brute force = %v (|p|=%d |q|=%d)", got, want, len(p), len(q))
		}
	}
}

func TestDTWMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 50; round++ {
		p := randomWalk(rng, 1+rng.Intn(12))
		q := randomWalk(rng, 1+rng.Intn(12))
		got, want := DTW(p, q), dtwBrute(p, q)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("DTW = %v, brute force = %v (|p|=%d |q|=%d)", got, want, len(p), len(q))
		}
	}
}

func randomWalk(rng *rand.Rand, n int) []geo.Point {
	p := geo.Point{Lat: 51.5, Lon: -0.12}
	out := make([]geo.Point, n)
	for i := range out {
		p = geo.Offset(p, rng.Float64()*100-50, rng.Float64()*100-50)
		out[i] = p
	}
	return out
}

func TestIdenticalTrajectoriesAreAtZero(t *testing.T) {
	p := line(50, 10)
	if got := DTW(p, p); got != 0 {
		t.Errorf("DTW(p, p) = %v", got)
	}
	if got := DFD(p, p); got != 0 {
		t.Errorf("DFD(p, p) = %v", got)
	}
}

func TestParallelLines(t *testing.T) {
	p := line(30, 10)
	q := shifted(p, 100)
	// DFD of two parallel lines is the separation distance.
	if got := DFD(p, q); math.Abs(got-100) > 1 {
		t.Errorf("DFD of parallel lines = %.2f, want ≈100", got)
	}
	// DTW accumulates ≈100 m per matched pair.
	if got := DTW(p, q); math.Abs(got-3000) > 50 {
		t.Errorf("DTW of parallel lines = %.2f, want ≈3000", got)
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		p := randomWalk(rng, 5+rng.Intn(20))
		q := randomWalk(rng, 5+rng.Intn(20))
		if a, b := DFD(p, q), DFD(q, p); math.Abs(a-b) > 1e-9 {
			t.Fatalf("DFD not symmetric: %v vs %v", a, b)
		}
		if a, b := DTW(p, q), DTW(q, p); math.Abs(a-b) > 1e-9 {
			t.Fatalf("DTW not symmetric: %v vs %v", a, b)
		}
	}
}

func TestDFDLowerBoundedByEndpoints(t *testing.T) {
	// Any coupling matches the first and last points, so
	// DFD ≥ max(d(p1,q1), d(pn,qm)) — the bound used to prune motifs.
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		p := randomWalk(rng, 3+rng.Intn(10))
		q := randomWalk(rng, 3+rng.Intn(10))
		bound := math.Max(
			geo.Haversine(p[0], q[0]),
			geo.Haversine(p[len(p)-1], q[len(q)-1]),
		)
		if got := DFD(p, q); got < bound-1e-9 {
			t.Fatalf("DFD %v below endpoint bound %v", got, bound)
		}
	}
}

func TestDFDReversalDiscriminates(t *testing.T) {
	// A trajectory and its reverse are far apart under DFD — the property
	// that geohash indexes cannot capture but geodabs can (paper Fig 12).
	p := line(50, 20)
	rev := make([]geo.Point, len(p))
	for i := range p {
		rev[i] = p[len(p)-1-i]
	}
	length := 49 * 20.0
	if got := DFD(p, rev); got < length/2 {
		t.Errorf("DFD(p, reverse) = %.1f, want ≥ %.1f", got, length/2)
	}
}

func TestEmptyInputs(t *testing.T) {
	p := line(3, 10)
	for name, f := range map[string]func(a, b []geo.Point) float64{"DTW": DTW, "DFD": DFD} {
		if got := f(nil, nil); got != 0 {
			t.Errorf("%s(nil, nil) = %v, want 0", name, got)
		}
		if got := f(p, nil); !math.IsInf(got, 1) {
			t.Errorf("%s(p, nil) = %v, want +Inf", name, got)
		}
		if got := f(nil, p); !math.IsInf(got, 1) {
			t.Errorf("%s(nil, p) = %v, want +Inf", name, got)
		}
	}
}

func TestMismatchedLengths(t *testing.T) {
	// A single point against a line: DFD is the max distance to the point,
	// DTW the sum.
	p := line(10, 100)
	q := p[:1]
	wantMax := geo.Haversine(p[0], p[9])
	if got := DFD(p, q); math.Abs(got-wantMax) > 1 {
		t.Errorf("DFD = %.1f, want %.1f", got, wantMax)
	}
	var wantSum float64
	for _, pt := range p {
		wantSum += geo.Haversine(pt, q[0])
	}
	if got := DTW(p, q); math.Abs(got-wantSum) > 1 {
		t.Errorf("DTW = %.1f, want %.1f", got, wantSum)
	}
}

func TestJaccardSorted(t *testing.T) {
	tests := []struct {
		name string
		a, b []uint32
		want float64
	}{
		{"identical", []uint32{1, 2, 3}, []uint32{1, 2, 3}, 0},
		{"disjoint", []uint32{1, 2}, []uint32{3, 4}, 1},
		{"half", []uint32{1, 2, 3, 4}, []uint32{3, 4, 5, 6}, 1 - 2.0/6.0},
		{"both-empty", nil, nil, 0},
		{"one-empty", []uint32{1}, nil, 1},
		{"subset", []uint32{1, 2}, []uint32{1, 2, 3, 4}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JaccardSorted(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("JaccardSorted = %v, want %v", got, tt.want)
			}
			if got := JaccardSorted(tt.b, tt.a); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("JaccardSorted reversed = %v, want %v", got, tt.want)
			}
		})
	}
}

func BenchmarkDTW1000(b *testing.B) {
	p := line(1000, 10)
	q := shifted(p, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DTW(p, q)
	}
}

func BenchmarkDFD1000(b *testing.B) {
	p := line(1000, 10)
	q := shifted(p, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DFD(p, q)
	}
}
