package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// nodeConn is one gob-framed TCP connection to a shard node. The encoder
// and decoder are bound to the connection for its lifetime: a call
// abandoned mid-flight desynchronizes the stream, so the connection is
// discarded rather than reused.
type nodeConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// client is the coordinator's connection pool to one node. In-flight
// calls are bounded by a semaphore sized to the pool (default 1, raised
// with WithPoolSize), acquired under the caller's context so a call
// queued behind stalled ones gives up when its own deadline expires.
// Idle connections are reused LIFO; a call that finds the pool empty
// dials a fresh connection under its own context. Active connections are
// tracked so close can tear down a stalled call's socket without waiting
// for the call to finish, and a connection poisoned by an abandoned call
// is dropped — the pool transparently redials on demand.
type client struct {
	addr string
	sem  chan struct{} // capacity = pool size: bounds in-flight calls

	mu     sync.Mutex // guards idle/active/closed
	idle   []*nodeConn
	active map[*nodeConn]struct{}
	closed bool
}

// dial connects to a node with a single-connection pool.
func dial(addr string) (*client, error) { return dialPool(addr, 1) }

// dialPool connects to a node, establishing one connection eagerly so a
// dead address fails at coordinator construction, and lazily growing up
// to size connections under load.
func dialPool(addr string, size int) (*client, error) {
	if size < 1 {
		size = 1
	}
	c := &client{
		addr:   addr,
		sem:    make(chan struct{}, size),
		active: make(map[*nodeConn]struct{}),
	}
	nc, err := c.connect(context.Background())
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.idle = append(c.idle, nc)
	c.mu.Unlock()
	return c, nil
}

// connect dials one fresh connection under ctx — a blackholed node then
// costs the caller its deadline, not the OS connect timeout.
func (c *client) connect(ctx context.Context) (*nodeConn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("cluster: dial %s: %w", c.addr, err)
	}
	return &nodeConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// checkout hands the caller a live connection: an idle one when
// available, a fresh dial otherwise. The connection is registered as
// active so close can tear it down mid-call.
func (c *client) checkout(ctx context.Context) (*nodeConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: client to %s: %w", c.addr, ErrClosed)
	}
	if n := len(c.idle); n > 0 {
		nc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.active[nc] = struct{}{}
		c.mu.Unlock()
		return nc, nil
	}
	c.mu.Unlock()
	nc, err := c.connect(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed { // closed while we were dialing
		c.mu.Unlock()
		nc.conn.Close()
		return nil, fmt.Errorf("cluster: client to %s: %w", c.addr, ErrClosed)
	}
	c.active[nc] = struct{}{}
	c.mu.Unlock()
	return nc, nil
}

// checkin returns a healthy connection to the idle pool.
func (c *client) checkin(nc *nodeConn) {
	c.mu.Lock()
	delete(c.active, nc)
	if c.closed {
		c.mu.Unlock()
		nc.conn.Close()
		return
	}
	c.idle = append(c.idle, nc)
	c.mu.Unlock()
}

// discard drops a connection whose gob stream may be desynchronized; the
// next call will dial afresh.
func (c *client) discard(nc *nodeConn) {
	nc.conn.Close()
	c.mu.Lock()
	delete(c.active, nc)
	c.mu.Unlock()
}

// call performs one request/response round trip. Cancelling ctx aborts
// the in-flight I/O promptly (by poking the connection deadline) and
// returns the context's error.
func (c *client) call(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()
	nc, err := c.checkout(ctx)
	if err != nil {
		return nil, err
	}
	nc.conn.SetDeadline(time.Time{}) // clear a deadline poked by an earlier cancellation
	watchDone := make(chan struct{})
	watchExited := make(chan struct{})
	go func() {
		defer close(watchExited)
		select {
		case <-ctx.Done():
			nc.conn.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()
	// Wait for the watcher to exit before returning: a stale watcher
	// racing a cancellation could otherwise poke a deadline onto the
	// connection after the next call has cleared it.
	defer func() {
		close(watchDone)
		<-watchExited
	}()
	fail := func(err error) (*response, error) {
		c.discard(nc)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if err := nc.enc.Encode(req); err != nil {
		return fail(fmt.Errorf("cluster: send: %w", err))
	}
	var resp response
	if err := nc.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return fail(fmt.Errorf("cluster: node closed connection"))
		}
		return fail(fmt.Errorf("cluster: receive: %w", err))
	}
	c.checkin(nc)
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: node error: %s", resp.Err)
	}
	return &resp, nil
}

// close tears down every pooled connection, including those serving
// in-flight calls — their I/O fails promptly instead of wedging.
func (c *client) close() error {
	c.mu.Lock()
	c.closed = true
	conns := make([]*nodeConn, 0, len(c.idle)+len(c.active))
	conns = append(conns, c.idle...)
	for nc := range c.active {
		conns = append(conns, nc)
	}
	c.idle = nil
	c.mu.Unlock()
	var firstErr error
	for _, nc := range conns {
		if err := nc.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
