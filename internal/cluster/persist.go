package cluster

// Node snapshot persistence: the compaction half of the durability
// story. A snapshot captures the node's full shard state; the write-ahead
// log segments sealed before the snapshot cut are then redundant and are
// deleted. Recovery loads the snapshot and replays whatever segments
// survive — epoch fencing makes the replay idempotent, so the crash
// windows around a snapshot (after the seal but before the rename, or
// after the rename but before the segment drop) both recover exactly.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
)

const (
	// snapshotName is the snapshot file inside the node's WAL directory.
	snapshotName = "node.snap"
	// snapshotMagic ("GDNS" little-endian) and snapshotVersion frame the
	// file so recovery rejects foreign or future formats outright.
	snapshotMagic   uint32 = 0x534e4447
	snapshotVersion        = 1
)

// nodeSnapshot is the gob payload of a snapshot file. It reuses the
// replication full-sync doc shape — a snapshot and a full sync answer
// the same question (the node's complete shard state) and are rebuilt by
// the same installDocs.
type nodeSnapshot struct {
	Docs []syncDoc
}

// Snapshot persists the node's current state and truncates the log
// segments it covers. The seal and the state copy happen under the
// exclusive apply lock, so the snapshot holds exactly the mutations of
// the sealed segments; the slow disk write happens after the lock is
// released, concurrent with new mutations landing in the fresh segment.
// No-op for nodes running without a write-ahead log.
func (n *Node) Snapshot() error {
	if n.wal == nil {
		return nil
	}
	n.snapMu.Lock()
	defer n.snapMu.Unlock()
	n.applyMu.Lock()
	//geodabs:vet-ignore snapshot barrier: the seal must fence every append so the snapshot covers exactly the sealed segments
	boundary, err := n.wal.Seal()
	if err != nil {
		n.applyMu.Unlock()
		return err
	}
	n.mu.RLock()
	snap := nodeSnapshot{Docs: make([]syncDoc, 0, len(n.docs))}
	for id, d := range n.docs {
		snap.Docs = append(snap.Docs, syncDoc{ID: id, Terms: d.terms, Card: d.card, Epoch: d.epoch, Tombstone: d.terms == nil, Points: d.points})
	}
	n.mu.RUnlock()
	n.applyMu.Unlock()
	if err := writeSnapshot(filepath.Join(n.walDir, snapshotName), &snap); err != nil {
		return err
	}
	return n.wal.DropBefore(boundary)
}

// maybeSnapshot kicks off a background snapshot when the log has grown
// past the configured threshold. Single flight: while one snapshot runs,
// growth checks are no-ops.
func (n *Node) maybeSnapshot() {
	if n.wal == nil || n.snapshotBytes <= 0 {
		return
	}
	if n.wal.Stats().SizeBytes < n.snapshotBytes {
		return
	}
	if !n.snapshotting.CompareAndSwap(false, true) {
		return
	}
	n.snapWG.Add(1)
	go func() {
		defer n.snapWG.Done()
		defer n.snapshotting.Store(false)
		// Best effort: a failed background snapshot just leaves the log
		// long; the next growth check or the final Close snapshot retries.
		n.Snapshot()
	}()
}

// writeSnapshot atomically replaces path with the encoded snapshot:
// temp file in the same directory, fsync, rename, directory fsync. A
// crash at any point leaves either the old snapshot or the new one,
// never a torn mix.
func writeSnapshot(path string, snap *nodeSnapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return fmt.Errorf("cluster: encode snapshot: %w", err)
	}
	var hdr [13]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	hdr[4] = snapshotVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(payload.Bytes(), crc32.MakeTable(crc32.Castagnoli)))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: snapshot temp: %w", err)
	}
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: install snapshot: %w", err)
	}
	// Sync the directory so the rename itself survives a crash; a
	// snapshot that vanishes with its truncated WAL segments loses
	// acked mutations, so a failed directory fsync must fail the
	// snapshot rather than pass silently.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("cluster: open snapshot dir: %w", err)
	}
	serr := dir.Sync()
	if cerr := dir.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("cluster: sync snapshot dir: %w", serr)
	}
	return nil
}

// loadSnapshot populates the node's in-memory state from the snapshot
// file in dir, if one exists. Called once at startup, before the WAL
// replay and before the listener exists, so no locking is needed.
func (n *Node) loadSnapshot(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: read snapshot: %w", err)
	}
	if len(raw) < 13 {
		return fmt.Errorf("cluster: snapshot truncated (%d bytes)", len(raw))
	}
	if m := binary.LittleEndian.Uint32(raw[0:4]); m != snapshotMagic {
		return fmt.Errorf("cluster: snapshot bad magic %#x", m)
	}
	if v := raw[4]; v != snapshotVersion {
		return fmt.Errorf("cluster: snapshot version %d unsupported", v)
	}
	size := binary.LittleEndian.Uint32(raw[5:9])
	sum := binary.LittleEndian.Uint32(raw[9:13])
	payload := raw[13:]
	if uint32(len(payload)) != size {
		return fmt.Errorf("cluster: snapshot payload %d bytes, header says %d", len(payload), size)
	}
	if got := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); got != sum {
		return fmt.Errorf("cluster: snapshot CRC mismatch")
	}
	var snap nodeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	n.installDocs(snap.Docs)
	return nil
}

// installDocs rebuilds docs, postings, tombstone count, and max epoch
// from a flat doc dump — shared by snapshot recovery and replica full
// sync. The caller guarantees exclusive access to the node state.
func (n *Node) installDocs(docs []syncDoc) {
	n.postings = make(map[uint32]*bitmap.Bitmap)
	n.docs = make(map[uint32]nodeDoc, len(docs))
	n.tombstones = 0
	n.maxEpoch = 0
	for _, d := range docs {
		if d.Epoch > n.maxEpoch {
			n.maxEpoch = d.Epoch
		}
		if d.Tombstone {
			n.docs[d.ID] = nodeDoc{epoch: d.Epoch}
			n.tombstones++
			continue
		}
		n.docs[d.ID] = nodeDoc{terms: d.Terms, card: d.Card, epoch: d.Epoch, points: d.Points, box: geo.NewBox(d.Points...)}
		for _, term := range d.Terms {
			p, ok := n.postings[term]
			if !ok {
				p = bitmap.New()
				n.postings[term] = p
			}
			p.Add(d.ID)
		}
	}
}
