// Package cluster implements the paper's distributed index (§III-A4,
// §VI-E) as a real client/server system on TCP: shard nodes own disjoint
// ranges of the geodab term space and serve posting lookups; a coordinator
// routes additions and deletions and scatter-gathers queries, merging
// partial intersection counts into Jaccard-ranked results. Document
// cardinalities are replicated to the owning nodes, so each node applies
// the threshold-pruning cardinality window before serializing its
// partial counts — non-qualifying candidates never cross the wire.
//
// Shard nodes are durable when started with a write-ahead log: every
// applied mutation is appended (group-committed fsync) before it touches
// the in-memory index, periodic snapshots compact the log, and a restart
// replays the surviving records on top of the latest snapshot — epoch
// fencing makes the replay idempotent. Nodes can also run as log-shipped
// read replicas of a primary (full sync + live mutation stream), and the
// coordinator can fan reads out across a shard's replica set.
//
// Everything speaks length-delimited gob — no dependencies beyond the
// standard library.
package cluster

import (
	"encoding/gob"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geodabs/internal/bitmap"
	"geodabs/internal/distance"
	"geodabs/internal/geo"
	"geodabs/internal/index"
	"geodabs/internal/wal"
)

// nodeDoc is a node's per-trajectory bookkeeping: the terms it owns for
// the trajectory, the trajectory's total fingerprint cardinality |G|
// (replicated from the coordinator so queries can threshold-prune
// locally), and the epoch of the last mutation applied to it. A nil
// Terms slice is a tombstone — the trajectory was deleted at Epoch, its
// card reset to 0, and the entry lingers only to fence stale adds until
// the coordinator's compaction watermark passes the epoch; a tombstone
// has no postings, so it can never surface as a query candidate.
//
// When this node is the trajectory's point owner under point retention,
// points holds the raw trajectory and box its precomputed bounding box
// (the O(1) input of the rerank lower bound). Both are replaced
// wholesale by a newer mutation and never mutated in place, so a rerank
// can snapshot the slice headers under the read lock and score outside
// it.
type nodeDoc struct {
	terms  []uint32
	card   int
	epoch  uint64
	points []geo.Point
	box    geo.Box
}

// nodeOptions is the resolved StartNode option set.
type nodeOptions struct {
	walDir        string
	walOpts       wal.Options
	snapshotBytes int64
	replicaOf     string
}

// NodeOption configures a shard node at StartNode.
type NodeOption func(*nodeOptions)

// WithWALDir makes the node durable: every applied mutation is appended
// to a write-ahead log in dir before it is applied, and on restart the
// node recovers its state from the latest snapshot plus the log. The
// directory is created if missing and must be private to this node.
func WithWALDir(dir string) NodeOption {
	return func(o *nodeOptions) { o.walDir = dir }
}

// WithWALSync tunes the log's durability policy: an fsync at least every
// `every` records (1 = group-committed fsync on every mutation, the
// default) and at least every interval when every > 1.
func WithWALSync(every int, interval time.Duration) NodeOption {
	return func(o *nodeOptions) {
		o.walOpts.SyncEvery = every
		o.walOpts.SyncInterval = interval
	}
}

// WithWALSegmentBytes sets the size past which the log rolls to a fresh
// segment file (default 16 MiB).
func WithWALSegmentBytes(n int64) NodeOption {
	return func(o *nodeOptions) { o.walOpts.SegmentBytes = n }
}

// WithSnapshotBytes sets the log size past which the node snapshots its
// state and truncates the replayed segments (log compaction). Default
// 64 MiB; 0 keeps the default, negative disables automatic snapshots
// (Close still writes a final one).
func WithSnapshotBytes(n int64) NodeOption {
	return func(o *nodeOptions) { o.snapshotBytes = n }
}

// WithReplicaOf starts the node as a read replica: it performs a full
// sync from the primary at addr, tails its live mutation stream, and
// serves queries (refusing mutations, and refusing queries whose
// snapshot epoch its replicated state does not yet cover). Replicas
// recover by re-syncing, so WithReplicaOf cannot be combined with
// WithWALDir.
func WithReplicaOf(addr string) NodeOption {
	return func(o *nodeOptions) { o.replicaOf = addr }
}

// defaultSnapshotBytes is the WAL size that triggers an automatic
// snapshot + truncate when WithSnapshotBytes is not given.
const defaultSnapshotBytes = 64 << 20

// replBacklog is the per-subscriber event buffer: a replica that falls
// this many events behind the primary's mutation stream is disconnected
// and must full-sync afresh.
const replBacklog = 4096

// replHeartbeatInterval is how often a primary pushes a watermark
// heartbeat to idle replication streams.
const replHeartbeatInterval = 500 * time.Millisecond

// Node is a shard server holding the posting lists of the terms routed to
// it. Start it with StartNode; stop it with Close (graceful: flushes and
// snapshots a durable node) or Kill (abrupt, for crash testing).
type Node struct {
	ln net.Listener

	// wal is the node's write-ahead log, nil for memory-only nodes and
	// replicas. applyMu is the outer mutation lock: mutations hold it
	// shared across their append-then-apply window, Snapshot holds it
	// exclusively, so a snapshot plus the segments below its Seal
	// boundary always contain exactly the same mutations.
	wal           *wal.Log
	walDir        string
	snapshotBytes int64
	applyMu       sync.RWMutex
	snapMu        sync.Mutex // serializes snapshots (single flight)
	snapWG        sync.WaitGroup
	snapshotting  atomic.Bool

	mu       sync.RWMutex
	postings map[uint32]*bitmap.Bitmap
	docs     map[uint32]nodeDoc
	// tombstones counts docs entries with nil terms, so compaction sweeps
	// can be skipped when there is nothing to reclaim.
	tombstones int
	// maxEpoch is the highest mutation epoch applied to this node.
	maxEpoch uint64
	// compactedBelow is the highest compaction watermark seen, so a sweep
	// runs only when the watermark advances. Atomic so the per-request
	// fast path stays off the write lock — pooled queries must not
	// serialize through a lock acquisition just to re-check the
	// watermark.
	compactedBelow atomic.Uint64

	// Replication. subs are the replicas tailing this primary's stream;
	// publishes happen under mu's write lock (mutations and watermark
	// advances are serialized there), so subscriber teardown on overflow
	// is race-free. fullSyncs counts syncs served (primary) or performed
	// (replica).
	subMu     sync.Mutex
	subs      []*subscriber
	fullSyncs atomic.Uint64

	// Replica state: primaryAddr is set iff the node is a replica;
	// stableEpoch is the highest stream watermark seen — its state
	// provably covers every mutation at or below it.
	primaryAddr string
	stableEpoch atomic.Uint64

	// Rerank counters: candidates exact-scored and candidates settled by
	// the lower bound alone, over the node's lifetime.
	rerankScored  atomic.Uint64
	rerankSkipped atomic.Uint64

	connWG    sync.WaitGroup
	replWG    sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	killed    atomic.Bool
}

// subscriber is one replica's tap on the primary's mutation stream.
type subscriber struct {
	ch chan replEvent
}

// StartNode listens on addr (e.g. "127.0.0.1:0") and serves shard requests
// until Close. With WithWALDir it first recovers its state from the
// snapshot and write-ahead log in that directory; with WithReplicaOf it
// starts as a read replica of the given primary.
func StartNode(addr string, opts ...NodeOption) (*Node, error) {
	var o nodeOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.replicaOf != "" && o.walDir != "" {
		return nil, fmt.Errorf("cluster: a replica recovers by re-syncing from its primary; WithReplicaOf and WithWALDir are mutually exclusive")
	}
	n := &Node{
		postings:    make(map[uint32]*bitmap.Bitmap),
		docs:        make(map[uint32]nodeDoc),
		closing:     make(chan struct{}),
		primaryAddr: o.replicaOf,
	}
	if o.walDir != "" {
		n.walDir = o.walDir
		n.snapshotBytes = o.snapshotBytes
		if n.snapshotBytes == 0 {
			n.snapshotBytes = defaultSnapshotBytes
		}
		if err := n.recover(o.walDir, o.walOpts); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if n.wal != nil {
			n.wal.Close()
		}
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	n.ln = ln
	n.connWG.Add(1)
	go n.acceptLoop()
	if n.primaryAddr != "" {
		n.replWG.Add(1)
		go n.replicationLoop()
	}
	return n, nil
}

// recover rebuilds the node's state from its snapshot (if any) plus a
// replay of the write-ahead log. Replayed records that the snapshot
// already covers are fenced off by their epochs, so the combination is
// exact regardless of where the last compaction left the log.
func (n *Node) recover(dir string, opts wal.Options) error {
	if err := n.loadSnapshot(dir); err != nil {
		return err
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		return err
	}
	if err := l.Replay(func(r *wal.Record) error {
		switch r.Op {
		case wal.OpAdd:
			n.applyAdd(&addRequest{ID: r.ID, Terms: r.Terms, Epoch: r.Epoch, Card: int(r.Card)})
		case wal.OpAddPoints:
			n.applyAdd(&addRequest{ID: r.ID, Terms: r.Terms, Epoch: r.Epoch, Card: int(r.Card), Points: r.Points})
		case wal.OpDelete:
			n.applyDelete(&deleteRequest{ID: r.ID, Epoch: r.Epoch})
		}
		return nil
	}); err != nil {
		l.Close()
		return fmt.Errorf("cluster: wal replay: %w", err)
	}
	n.wal = l
	return nil
}

// Addr returns the node's listen address for coordinators to dial.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the listener, waits for in-flight connections to finish,
// and — for a durable node — flushes the log and writes a final
// compacting snapshot so the next start recovers fast. It is safe to
// call multiple times.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closing)
		err = n.ln.Close()
		n.connWG.Wait()
		n.replWG.Wait()
		n.snapWG.Wait()
		if n.wal != nil {
			if serr := n.Snapshot(); serr != nil && err == nil {
				err = serr
			}
			if werr := n.wal.Close(); werr != nil && err == nil {
				err = werr
			}
		}
	})
	return err
}

// Kill abruptly stops the node: the listener and connections are torn
// down and the write-ahead log is abandoned without a flush, snapshot,
// or final sync — the in-process stand-in for SIGKILL. State the sync
// policy had already made durable survives a subsequent StartNode on the
// same WAL directory; nothing else does. For crash testing.
func (n *Node) Kill() {
	n.closeOnce.Do(func() {
		n.killed.Store(true)
		close(n.closing)
		n.ln.Close()
		n.connWG.Wait()
		n.replWG.Wait()
		n.snapWG.Wait()
		if n.wal != nil {
			n.wal.Kill()
		}
	})
}

// acceptBackoffMax bounds the exponential backoff between retries of a
// persistently failing Accept.
const acceptBackoffMax = time.Second

func (n *Node) acceptLoop() {
	defer n.connWG.Done()
	var backoff time.Duration
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closing:
				return
			default:
			}
			// Transient accept error (EMFILE, ECONNABORTED, ...): keep
			// serving, but back off exponentially on consecutive failures —
			// a persistent error such as file-descriptor exhaustion would
			// otherwise spin this loop at 100% CPU until it clears.
			if backoff < time.Millisecond {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-time.After(backoff):
			case <-n.closing:
				return
			}
			continue
		}
		backoff = 0
		n.connWG.Add(1)
		go n.serve(conn)
	}
}

// serve handles one coordinator connection until EOF or node shutdown.
// An opSync request hijacks the connection into a one-way replication
// push stream for its remaining lifetime.
func (n *Node) serve(conn net.Conn) {
	defer n.connWG.Done()
	defer conn.Close()
	// Unblock the decoder when the node shuts down.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-n.closing:
			conn.Close()
		case <-stop:
		}
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or connection torn down
		}
		if req.Op == opSync {
			n.serveSync(enc)
			return
		}
		resp := n.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handle(req *request) *response {
	// A replica compacts only at watermark events in the replication
	// stream — the position where its primary compacted — never from a
	// request's piggybacked watermark. A request can race ahead of the
	// stream, and sweeping a tombstone fence early would let the replica
	// apply a stale streamed add that the primary (fence still in place
	// at that stream position) ignored: silent divergence.
	if n.primaryAddr == "" {
		n.compact(req.CompactBelow)
	}
	switch req.Op {
	case opAdd:
		if req.Add == nil {
			return &response{Err: "add request missing payload"}
		}
		if n.primaryAddr != "" {
			return &response{Err: "node is a read-only replica"}
		}
		if err := n.add(req.Add); err != nil {
			return &response{Err: err.Error()}
		}
		return &response{}
	case opDelete:
		if req.Delete == nil {
			return &response{Err: "delete request missing payload"}
		}
		if n.primaryAddr != "" {
			return &response{Err: "node is a read-only replica"}
		}
		if err := n.delete(req.Delete); err != nil {
			return &response{Err: err.Error()}
		}
		return &response{}
	case opQuery:
		if req.Query == nil {
			return &response{Err: "query request missing payload"}
		}
		if n.primaryAddr != "" && req.CompactBelow > n.stableEpoch.Load() {
			// The replica's state does not yet cover the search's
			// snapshot epoch: refuse rather than rank on missing
			// mutations. The coordinator reads the primary instead.
			return &response{Stale: true}
		}
		return &response{Query: n.query(req.Query)}
	case opRerank:
		if req.Rerank == nil {
			return &response{Err: "rerank request missing payload"}
		}
		if n.primaryAddr != "" && req.CompactBelow > n.stableEpoch.Load() {
			return &response{Stale: true}
		}
		rr, err := n.rerank(req.Rerank)
		if err != nil {
			return &response{Err: err.Error()}
		}
		return &response{Rerank: rr}
	case opStats:
		return &response{Stats: n.stats()}
	default:
		return &response{Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// add logs and applies a trajectory's postings. The write-ahead append
// happens before the in-memory apply and the coordinator's ack, under
// the shared apply lock, so a crash never acknowledges a mutation the
// log does not hold.
func (n *Node) add(req *addRequest) error {
	n.applyMu.RLock()
	defer n.applyMu.RUnlock()
	if n.wal != nil {
		rec := wal.Record{Op: wal.OpAdd, Epoch: req.Epoch, ID: req.ID, Card: uint32(req.Card), Terms: req.Terms}
		if req.Points != nil {
			rec.Op = wal.OpAddPoints
			rec.Points = req.Points
		}
		//geodabs:vet-ignore durability contract: append-then-apply must hold the shared apply lock so a crash never acks an unlogged mutation (docs/durability.md)
		if err := n.wal.Append(rec); err != nil {
			return err
		}
	}
	n.applyAdd(req)
	n.maybeSnapshot()
	return nil
}

// delete logs and applies a posting withdrawal (see add for the
// durability contract).
func (n *Node) delete(req *deleteRequest) error {
	n.applyMu.RLock()
	defer n.applyMu.RUnlock()
	if n.wal != nil {
		//geodabs:vet-ignore durability contract: append-then-apply must hold the shared apply lock so a crash never acks an unlogged mutation (docs/durability.md)
		if err := n.wal.Append(wal.Record{Op: wal.OpDelete, Epoch: req.Epoch, ID: req.ID}); err != nil {
			return err
		}
	}
	n.applyDelete(req)
	n.maybeSnapshot()
	return nil
}

// applyAdd applies a trajectory's terms, replacing whatever the node held
// for the ID. An add at or below the ID's last applied epoch is stale —
// an abandoned call that lost to its own cleanup delete, or a duplicate
// retry (or a WAL replay over a snapshot that already covers it) — and
// is ignored, so cleanup deletes cannot be undone by the failed add
// racing them onto the node.
func (n *Node) applyAdd(req *addRequest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Epoch > n.maxEpoch {
		n.maxEpoch = req.Epoch
	}
	defer n.publishLocked(replEvent{Op: replAdd, ID: req.ID, Terms: req.Terms, Card: req.Card, Epoch: req.Epoch, Watermark: n.compactedBelow.Load(), Points: req.Points})
	if doc, ok := n.docs[req.ID]; ok {
		if doc.epoch >= req.Epoch {
			return // stale or duplicate mutation
		}
		n.stripLocked(req.ID, doc)
	}
	for _, term := range req.Terms {
		p, ok := n.postings[term]
		if !ok {
			p = bitmap.New()
			n.postings[term] = p
		}
		p.Add(req.ID)
	}
	n.docs[req.ID] = nodeDoc{terms: req.Terms, card: req.Card, epoch: req.Epoch, points: req.Points, box: geo.NewBox(req.Points...)}
}

// applyDelete withdraws a trajectory's postings and leaves a tombstone at
// the delete's epoch to fence stale adds. Deleting an unknown ID still
// plants the fence: the cleanup of a failed add may reach the node
// before the add itself does.
func (n *Node) applyDelete(req *deleteRequest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Epoch > n.maxEpoch {
		n.maxEpoch = req.Epoch
	}
	defer n.publishLocked(replEvent{Op: replDelete, ID: req.ID, Epoch: req.Epoch, Watermark: n.compactedBelow.Load()})
	if doc, ok := n.docs[req.ID]; ok {
		if doc.epoch > req.Epoch {
			return // a newer mutation already superseded this delete
		}
		n.stripLocked(req.ID, doc)
	}
	n.docs[req.ID] = nodeDoc{epoch: req.Epoch}
	n.tombstones++
}

// stripLocked removes the doc's postings from the term bitmaps,
// compacting away posting lists left empty, and retires its tombstone
// accounting. Callers must hold the write lock and must re-assign or
// delete n.docs[id] afterwards.
func (n *Node) stripLocked(id uint32, doc nodeDoc) {
	for _, term := range doc.terms {
		if p, ok := n.postings[term]; ok {
			p.Remove(id)
			if p.IsEmpty() {
				delete(n.postings, term)
			}
		}
	}
	if doc.terms == nil {
		n.tombstones--
	}
}

// publishLocked fans an event out to every replication subscriber. The
// caller holds mu's write lock, so publishes are serialized in apply
// order. A subscriber whose buffer is full has fallen too far behind to
// tail the stream: its channel is closed (safe — no other publisher can
// race this one) and its replica reconnects with a fresh full sync.
func (n *Node) publishLocked(ev replEvent) {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	kept := n.subs[:0]
	for _, sub := range n.subs {
		select {
		case sub.ch <- ev:
			kept = append(kept, sub)
		default:
			close(sub.ch) // overflow: force a fresh full sync
		}
	}
	n.subs = kept
}

// unsubscribe withdraws a replication subscriber, if still registered.
func (n *Node) unsubscribe(sub *subscriber) {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	for i, s := range n.subs {
		if s == sub {
			n.subs = append(n.subs[:i], n.subs[i+1:]...)
			return
		}
	}
}

// serveSync answers a replica's full-sync request and then pushes the
// live mutation stream until the connection dies, the replica falls
// behind, or the node shuts down. The state snapshot and the stream
// subscription are taken under one read-lock acquisition, so the stream
// carries exactly the mutations applied after the snapshot cut.
func (n *Node) serveSync(enc *gob.Encoder) {
	if n.primaryAddr != "" {
		enc.Encode(&response{Err: "node is a replica; sync from the primary"})
		return
	}
	n.mu.RLock()
	docs := make([]syncDoc, 0, len(n.docs))
	for id, d := range n.docs {
		docs = append(docs, syncDoc{ID: id, Terms: d.terms, Card: d.card, Epoch: d.epoch, Tombstone: d.terms == nil, Points: d.points})
	}
	watermark := n.compactedBelow.Load()
	sub := &subscriber{ch: make(chan replEvent, replBacklog)}
	n.subMu.Lock()
	n.subs = append(n.subs, sub)
	n.subMu.Unlock()
	n.mu.RUnlock()
	defer n.unsubscribe(sub)
	n.fullSyncs.Add(1)
	if err := enc.Encode(&response{Sync: &syncResponse{Docs: docs, Watermark: watermark}}); err != nil {
		return
	}
	heartbeat := time.NewTicker(replHeartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return // overflowed: the replica must full-sync afresh
			}
			if err := enc.Encode(&ev); err != nil {
				return
			}
		case <-heartbeat.C:
			hb := replEvent{Op: replHeartbeat, Watermark: n.compactedBelow.Load()}
			if err := enc.Encode(&hb); err != nil {
				return
			}
		case <-n.closing:
			return
		}
	}
}

// compact reclaims tombstones at or below the coordinator's watermark:
// no mutation that old can still be tracked in flight, so the fences are
// (almost certainly — see the caveat in the protocol doc) dead weight.
// Runs only when the watermark advances past the last sweep; the
// watermark test is lock-free so the query hot path never contends the
// write lock here. An advancing watermark is also published to the
// replication stream — it is what proves a replica's state complete
// through an epoch.
func (n *Node) compact(below uint64) {
	if below == 0 || below <= n.compactedBelow.Load() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if below <= n.compactedBelow.Load() {
		return // another request swept past this watermark meanwhile
	}
	n.compactedBelow.Store(below)
	n.publishLocked(replEvent{Op: replHeartbeat, Watermark: below})
	if n.tombstones == 0 {
		return
	}
	for id, doc := range n.docs {
		if doc.terms == nil && doc.epoch <= below {
			delete(n.docs, id)
			n.tombstones--
		}
	}
}

// counterPool recycles the per-query counting-merge state across query
// requests, keeping the node's hot path free of per-query count-array
// allocations.
var counterPool = sync.Pool{New: func() any { return bitmap.NewCounter() }}

// query runs the same term-at-a-time counting merge as the local index's
// search core: each owned posting list streams once into a pooled
// counter, leaving the node's partial |F ∩ G| per candidate — no
// candidate union, no per-candidate intersection. Before serializing,
// the node applies the threshold-pruning cardinality window against the
// replicated document cardinalities (see cardWindow), so non-qualifying
// candidates never hit gob or the wire. Queries with more terms than the
// counter's 16-bit counts can hold fall back to map-based counting (no
// real fingerprint set is that large, but the node must not wrap counts
// on a malformed request).
func (n *Node) query(req *queryRequest) *queryResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(req.Terms) > math.MaxUint16 {
		return n.queryWide(req)
	}
	c := counterPool.Get().(*bitmap.Counter)
	defer func() {
		c.Reset()
		counterPool.Put(c)
	}()
	for _, term := range req.Terms {
		if p, ok := n.postings[term]; ok {
			c.Add(p)
		}
	}
	cands := c.Candidates()
	minCard, maxCard := cardWindow(req)
	resp := &queryResponse{IDs: make([]uint32, 0, len(cands)), Counts: make([]uint32, 0, len(cands))}
	for _, v := range cands {
		if !index.InWindow(n.docs[v].card, minCard, maxCard) {
			resp.Pruned++
			continue
		}
		resp.IDs = append(resp.IDs, v)
		resp.Counts = append(resp.Counts, uint32(c.Count(v)))
	}
	return resp
}

// queryWide is the uncapped fallback for degenerate term counts. It
// applies the same node-side cardinality window as the narrow path.
func (n *Node) queryWide(req *queryRequest) *queryResponse {
	partial := make(map[uint32]int)
	for _, term := range req.Terms {
		if p, ok := n.postings[term]; ok {
			p.Iterate(func(id uint32) bool {
				partial[id]++
				return true
			})
		}
	}
	minCard, maxCard := cardWindow(req)
	resp := &queryResponse{IDs: make([]uint32, 0, len(partial)), Counts: make([]uint32, 0, len(partial))}
	for id, count := range partial {
		if !index.InWindow(n.docs[id].card, minCard, maxCard) {
			resp.Pruned++
			continue
		}
		resp.IDs = append(resp.IDs, id)
		resp.Counts = append(resp.Counts, uint32(count))
	}
	return resp
}

// cardWindow resolves a query's node-side cardinality window: the shared
// index.CardinalityWindow bounds when the request carries the query's
// global cardinality, the open window (prune nothing) otherwise. The
// callers test candidates through index.InWindow — the exact predicate
// the coordinator's Ranker applies — so a node-side prune can never
// remove a candidate the merge would keep.
func cardWindow(req *queryRequest) (minCard, maxCard int) {
	if req.QueryCard <= 0 {
		return 0, 0
	}
	return index.CardinalityWindow(req.QueryCard, req.MaxDistance)
}

// rerankCandidate is one shortlist member snapshotted under the read
// lock: the slice headers are safe to score outside it because applied
// mutations replace a doc's point slice wholesale, never mutate it.
type rerankCandidate struct {
	id     uint32
	points []geo.Point
	box    geo.Box
}

// worseScore is the (score asc, ID asc) comparison rerank's pruning heap
// shares with index.SortResults: a is worse than b when it would sort
// after b in the final merge.
func worseScore(aScore float64, aID uint32, bScore float64, bID uint32) bool {
	if aScore != bScore {
		return aScore > bScore
	}
	return aID > bID
}

// rerank exact-scores the node's slice of a fingerprint shortlist
// against its retained points, returning (id, score) pairs — never
// points. When the request carries a result cap, a candidate whose
// cheap lower bound proves it cannot enter the node's own top-k is
// skipped without running the O(n·m) dynamic program; everything
// actually scored is returned, so the coordinator's merge stays
// byte-identical to scoring the whole shortlist.
//
// The lower bound is metric-aware but safe for both built-ins: DTW and
// DFD each force the (first, first) and (last, last) alignments, so the
// larger endpoint haversine bounds both from below; the bounding-box
// separation geo.Box.MinDistance bounds every matched pair, so it
// bounds DFD (a max over pairs) directly and DTW (a sum over a monotone
// path of at least max(n, m) pairs) times max(n, m).
func (n *Node) rerank(req *rerankRequest) (*rerankResponse, error) {
	var metric func(a, b []geo.Point) float64
	switch req.Metric {
	case metricDTW:
		metric = distance.DTW
	case metricDFD:
		metric = distance.DFD
	default:
		return nil, fmt.Errorf("unknown rerank metric %d", req.Metric)
	}
	cands := make([]rerankCandidate, 0, len(req.IDs))
	var missing []uint32
	n.mu.RLock()
	for _, id := range req.IDs {
		doc, ok := n.docs[id]
		if !ok || doc.points == nil {
			missing = append(missing, id)
			continue
		}
		cands = append(cands, rerankCandidate{id: id, points: doc.points, box: doc.box})
	}
	n.mu.RUnlock()
	if len(missing) > 0 {
		return &rerankResponse{Missing: missing}, nil
	}

	qBox := geo.NewBox(req.Query...)
	resp := &rerankResponse{IDs: make([]uint32, 0, len(cands)), Scores: make([]float64, 0, len(cands))}
	h := &keptHeap{limit: req.Limit}

	// lowerBound cheaply bounds metric(req.Query, c.points) from below;
	// callers only invoke it with a non-empty query and points.
	lowerBound := func(c rerankCandidate) float64 {
		lb := math.Max(
			geo.Haversine(req.Query[0], c.points[0]),
			geo.Haversine(req.Query[len(req.Query)-1], c.points[len(c.points)-1]),
		)
		boxLB := qBox.MinDistance(c.box)
		if req.Metric == metricDTW {
			boxLB *= float64(max(len(req.Query), len(c.points)))
		}
		return math.Max(lb, boxLB)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 || len(cands) < rerankParallelMin {
		for _, c := range cands {
			if thr, full := h.threshold(); full && len(req.Query) > 0 && len(c.points) > 0 {
				// Strictly above the k-th best: even a tie must be
				// scored, because the (score, ID) tiebreak could admit
				// it.
				if lowerBound(c) > thr {
					resp.Skipped++
					continue
				}
			}
			score := metric(req.Query, c.points)
			resp.IDs = append(resp.IDs, c.id)
			resp.Scores = append(resp.Scores, score)
			h.offer(score, c.id)
		}
	} else {
		// Long shortlist: score candidates on a bounded worker pool
		// (mirroring the coordinator-side rerankHits pool). The pruning
		// heap is shared under a mutex; reading a stale threshold is
		// safe because the k-th best only tightens as scores land — a
		// looser value can admit an extra scoring, never skip a
		// candidate that belongs in the top k. Results land in
		// per-candidate slots and are compacted in candidate order, so
		// the response layout is identical to the serial path.
		scores := make([]float64, len(cands))
		skipped := make([]bool, len(cands))
		var heapMu sync.Mutex
		var next atomic.Int64
		var wg sync.WaitGroup
		for range workers {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cands) {
						return
					}
					c := cands[i]
					if len(req.Query) > 0 && len(c.points) > 0 {
						heapMu.Lock()
						thr, full := h.threshold()
						heapMu.Unlock()
						if full && lowerBound(c) > thr {
							skipped[i] = true
							continue
						}
					}
					score := metric(req.Query, c.points)
					scores[i] = score
					heapMu.Lock()
					h.offer(score, c.id)
					heapMu.Unlock()
				}
			}()
		}
		wg.Wait()
		for i, c := range cands {
			if skipped[i] {
				resp.Skipped++
				continue
			}
			resp.IDs = append(resp.IDs, c.id)
			resp.Scores = append(resp.Scores, scores[i])
		}
	}
	n.rerankScored.Add(uint64(len(resp.IDs)))
	n.rerankSkipped.Add(uint64(resp.Skipped))
	return resp, nil
}

// rerankParallelMin is the shortlist length below which rerank scores
// serially; a pool is not worth its goroutine startup for a handful of
// DTW calls.
const rerankParallelMin = 16

// kept is one retained (score, ID) pair in the pruning heap.
type kept struct {
	score float64
	id    uint32
}

// keptHeap is a max-heap (by worseScore) of the limit best scores seen
// so far; its root is the k-th best — the pruning threshold. A limit of
// zero or less disables it.
type keptHeap struct {
	limit int
	items []kept
}

// threshold returns the k-th best score so far and whether the heap is
// full — only a full heap prunes.
func (h *keptHeap) threshold() (float64, bool) {
	if h.limit <= 0 || len(h.items) < h.limit {
		return 0, false
	}
	return h.items[0].score, true
}

// offer records a scored candidate, evicting the current worst if the
// newcomer beats it under the (score, ID) tiebreak.
func (h *keptHeap) offer(score float64, id uint32) {
	if h.limit <= 0 {
		return
	}
	if len(h.items) < h.limit {
		h.items = append(h.items, kept{score, id})
		for i := len(h.items) - 1; i > 0; { // sift up
			parent := (i - 1) / 2
			if !worseScore(h.items[i].score, h.items[i].id, h.items[parent].score, h.items[parent].id) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return
	}
	if !worseScore(h.items[0].score, h.items[0].id, score, id) {
		return
	}
	h.items[0] = kept{score, id}
	for i := 0; ; { // sift down
		worst := i
		if l := 2*i + 1; l < len(h.items) && worseScore(h.items[l].score, h.items[l].id, h.items[worst].score, h.items[worst].id) {
			worst = l
		}
		if r := 2*i + 2; r < len(h.items) && worseScore(h.items[r].score, h.items[r].id, h.items[worst].score, h.items[worst].id) {
			worst = r
		}
		if worst == i {
			break
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

func (n *Node) stats() *statsResponse {
	n.mu.RLock()
	s := &statsResponse{
		Terms:         len(n.postings),
		Docs:          len(n.docs) - n.tombstones,
		Tombstones:    n.tombstones,
		Epoch:         n.maxEpoch,
		StableEpoch:   n.compactedBelow.Load(),
		FullSyncs:     n.fullSyncs.Load(),
		RerankScored:  n.rerankScored.Load(),
		RerankSkipped: n.rerankSkipped.Load(),
	}
	for _, p := range n.postings {
		s.Postings += p.Cardinality()
	}
	for _, d := range n.docs {
		if d.points != nil {
			s.RetainedDocs++
			s.RetainedPoints += len(d.points)
		}
	}
	s.RetainedBytes = int64(s.RetainedPoints) * 16 // two float64s per point
	n.mu.RUnlock()
	if n.primaryAddr != "" {
		s.Role = roleReplica
		s.StableEpoch = n.stableEpoch.Load()
	}
	n.subMu.Lock()
	s.Subscribers = len(n.subs)
	n.subMu.Unlock()
	if n.wal != nil {
		ws := n.wal.Stats()
		s.WALBytes = ws.SizeBytes
		s.WALSegments = ws.Segments
		s.WALRecords = ws.Records
		s.WALSyncs = ws.Syncs
		s.WALLastSyncNS = int64(ws.LastSync)
	}
	return s
}
