// Package cluster implements the paper's distributed index (§III-A4,
// §VI-E) as a real client/server system on TCP: shard nodes own disjoint
// ranges of the geodab term space and serve posting lookups; a coordinator
// routes additions and scatter-gathers queries, merging partial
// intersection counts into Jaccard-ranked results.
//
// Everything speaks length-delimited gob — no dependencies beyond the
// standard library.
package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"geodabs/internal/bitmap"
)

// Node is a shard server holding the posting lists of the terms routed to
// it. Start it with StartNode; stop it with Close.
type Node struct {
	ln net.Listener

	mu       sync.RWMutex
	postings map[uint32]*bitmap.Bitmap

	connWG    sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
}

// StartNode listens on addr (e.g. "127.0.0.1:0") and serves shard requests
// until Close.
func StartNode(addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	n := &Node{
		ln:       ln,
		postings: make(map[uint32]*bitmap.Bitmap),
		closing:  make(chan struct{}),
	}
	n.connWG.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address for coordinators to dial.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the listener and waits for in-flight connections to finish.
// It is safe to call multiple times.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closing)
		err = n.ln.Close()
		n.connWG.Wait()
	})
	return err
}

func (n *Node) acceptLoop() {
	defer n.connWG.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closing:
				return
			default:
				// Transient accept error: keep serving.
				continue
			}
		}
		n.connWG.Add(1)
		go n.serve(conn)
	}
}

// serve handles one coordinator connection until EOF or node shutdown.
func (n *Node) serve(conn net.Conn) {
	defer n.connWG.Done()
	defer conn.Close()
	// Unblock the decoder when the node shuts down.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-n.closing:
			conn.Close()
		case <-stop:
		}
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or connection torn down
		}
		resp := n.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handle(req *request) *response {
	switch req.Op {
	case opAdd:
		if req.Add == nil {
			return &response{Err: "add request missing payload"}
		}
		n.add(req.Add)
		return &response{}
	case opQuery:
		if req.Query == nil {
			return &response{Err: "query request missing payload"}
		}
		return &response{Query: n.query(req.Query)}
	case opStats:
		return &response{Stats: n.stats()}
	default:
		return &response{Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

func (n *Node) add(req *addRequest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, term := range req.Terms {
		p, ok := n.postings[term]
		if !ok {
			p = bitmap.New()
			n.postings[term] = p
		}
		p.Add(req.ID)
	}
}

func (n *Node) query(req *queryRequest) *queryResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	partial := make(map[uint32]int)
	for _, term := range req.Terms {
		if p, ok := n.postings[term]; ok {
			p.Iterate(func(id uint32) bool {
				partial[id]++
				return true
			})
		}
	}
	return &queryResponse{Partial: partial}
}

func (n *Node) stats() *statsResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := &statsResponse{Terms: len(n.postings)}
	for _, p := range n.postings {
		s.Postings += p.Cardinality()
	}
	return s
}

// client is the coordinator's connection to one node. Calls are
// serialized per connection.
type client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dial(addr string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// call performs one request/response round trip.
func (c *client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("cluster: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("cluster: node closed connection")
		}
		return nil, fmt.Errorf("cluster: receive: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: node error: %s", resp.Err)
	}
	return &resp, nil
}

func (c *client) close() error { return c.conn.Close() }
