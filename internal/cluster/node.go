// Package cluster implements the paper's distributed index (§III-A4,
// §VI-E) as a real client/server system on TCP: shard nodes own disjoint
// ranges of the geodab term space and serve posting lookups; a coordinator
// routes additions and deletions and scatter-gathers queries, merging
// partial intersection counts into Jaccard-ranked results. Document
// cardinalities are replicated to the owning nodes, so each node applies
// the threshold-pruning cardinality window before serializing its
// partial counts — non-qualifying candidates never cross the wire.
//
// Everything speaks length-delimited gob — no dependencies beyond the
// standard library.
package cluster

import (
	"encoding/gob"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"geodabs/internal/bitmap"
	"geodabs/internal/index"
)

// nodeDoc is a node's per-trajectory bookkeeping: the terms it owns for
// the trajectory, the trajectory's total fingerprint cardinality |G|
// (replicated from the coordinator so queries can threshold-prune
// locally), and the epoch of the last mutation applied to it. A nil
// Terms slice is a tombstone — the trajectory was deleted at Epoch, its
// card reset to 0, and the entry lingers only to fence stale adds until
// the coordinator's compaction watermark passes the epoch; a tombstone
// has no postings, so it can never surface as a query candidate.
type nodeDoc struct {
	terms []uint32
	card  int
	epoch uint64
}

// Node is a shard server holding the posting lists of the terms routed to
// it. Start it with StartNode; stop it with Close.
type Node struct {
	ln net.Listener

	mu       sync.RWMutex
	postings map[uint32]*bitmap.Bitmap
	docs     map[uint32]nodeDoc
	// tombstones counts docs entries with nil terms, so compaction sweeps
	// can be skipped when there is nothing to reclaim.
	tombstones int
	// compactedBelow is the highest compaction watermark seen, so a sweep
	// runs only when the watermark advances. Atomic so the per-request
	// fast path stays off the write lock — pooled queries must not
	// serialize through a lock acquisition just to re-check the
	// watermark.
	compactedBelow atomic.Uint64

	connWG    sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
}

// StartNode listens on addr (e.g. "127.0.0.1:0") and serves shard requests
// until Close.
func StartNode(addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	n := &Node{
		ln:       ln,
		postings: make(map[uint32]*bitmap.Bitmap),
		docs:     make(map[uint32]nodeDoc),
		closing:  make(chan struct{}),
	}
	n.connWG.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address for coordinators to dial.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the listener and waits for in-flight connections to finish.
// It is safe to call multiple times.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closing)
		err = n.ln.Close()
		n.connWG.Wait()
	})
	return err
}

// acceptBackoffMax bounds the exponential backoff between retries of a
// persistently failing Accept.
const acceptBackoffMax = time.Second

func (n *Node) acceptLoop() {
	defer n.connWG.Done()
	var backoff time.Duration
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closing:
				return
			default:
			}
			// Transient accept error (EMFILE, ECONNABORTED, ...): keep
			// serving, but back off exponentially on consecutive failures —
			// a persistent error such as file-descriptor exhaustion would
			// otherwise spin this loop at 100% CPU until it clears.
			if backoff < time.Millisecond {
				backoff = time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-time.After(backoff):
			case <-n.closing:
				return
			}
			continue
		}
		backoff = 0
		n.connWG.Add(1)
		go n.serve(conn)
	}
}

// serve handles one coordinator connection until EOF or node shutdown.
func (n *Node) serve(conn net.Conn) {
	defer n.connWG.Done()
	defer conn.Close()
	// Unblock the decoder when the node shuts down.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-n.closing:
			conn.Close()
		case <-stop:
		}
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or connection torn down
		}
		resp := n.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handle(req *request) *response {
	n.compact(req.CompactBelow)
	switch req.Op {
	case opAdd:
		if req.Add == nil {
			return &response{Err: "add request missing payload"}
		}
		n.add(req.Add)
		return &response{}
	case opDelete:
		if req.Delete == nil {
			return &response{Err: "delete request missing payload"}
		}
		n.delete(req.Delete)
		return &response{}
	case opQuery:
		if req.Query == nil {
			return &response{Err: "query request missing payload"}
		}
		return &response{Query: n.query(req.Query)}
	case opStats:
		return &response{Stats: n.stats()}
	default:
		return &response{Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// add applies a trajectory's terms, replacing whatever the node held for
// the ID. An add at or below the ID's last applied epoch is stale — an
// abandoned call that lost to its own cleanup delete, or a duplicate
// retry — and is ignored, so cleanup deletes cannot be undone by the
// failed add racing them onto the node.
func (n *Node) add(req *addRequest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if doc, ok := n.docs[req.ID]; ok {
		if doc.epoch >= req.Epoch {
			return // stale or duplicate mutation
		}
		n.stripLocked(req.ID, doc)
	}
	for _, term := range req.Terms {
		p, ok := n.postings[term]
		if !ok {
			p = bitmap.New()
			n.postings[term] = p
		}
		p.Add(req.ID)
	}
	n.docs[req.ID] = nodeDoc{terms: req.Terms, card: req.Card, epoch: req.Epoch}
}

// delete withdraws a trajectory's postings and leaves a tombstone at the
// delete's epoch to fence stale adds. Deleting an unknown ID still
// plants the fence: the cleanup of a failed add may reach the node
// before the add itself does.
func (n *Node) delete(req *deleteRequest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if doc, ok := n.docs[req.ID]; ok {
		if doc.epoch > req.Epoch {
			return // a newer mutation already superseded this delete
		}
		n.stripLocked(req.ID, doc)
	}
	n.docs[req.ID] = nodeDoc{epoch: req.Epoch}
	n.tombstones++
}

// stripLocked removes the doc's postings from the term bitmaps,
// compacting away posting lists left empty, and retires its tombstone
// accounting. Callers must hold the write lock and must re-assign or
// delete n.docs[id] afterwards.
func (n *Node) stripLocked(id uint32, doc nodeDoc) {
	for _, term := range doc.terms {
		if p, ok := n.postings[term]; ok {
			p.Remove(id)
			if p.IsEmpty() {
				delete(n.postings, term)
			}
		}
	}
	if doc.terms == nil {
		n.tombstones--
	}
}

// compact reclaims tombstones at or below the coordinator's watermark:
// no mutation that old can still be tracked in flight, so the fences are
// (almost certainly — see the caveat in the protocol doc) dead weight.
// Runs only when the watermark advances past the last sweep; the
// watermark test is lock-free so the query hot path never contends the
// write lock here.
func (n *Node) compact(below uint64) {
	if below == 0 || below <= n.compactedBelow.Load() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if below <= n.compactedBelow.Load() {
		return // another request swept past this watermark meanwhile
	}
	n.compactedBelow.Store(below)
	if n.tombstones == 0 {
		return
	}
	for id, doc := range n.docs {
		if doc.terms == nil && doc.epoch <= below {
			delete(n.docs, id)
			n.tombstones--
		}
	}
}

// counterPool recycles the per-query counting-merge state across query
// requests, keeping the node's hot path free of per-query count-array
// allocations.
var counterPool = sync.Pool{New: func() any { return bitmap.NewCounter() }}

// query runs the same term-at-a-time counting merge as the local index's
// search core: each owned posting list streams once into a pooled
// counter, leaving the node's partial |F ∩ G| per candidate — no
// candidate union, no per-candidate intersection. Before serializing,
// the node applies the threshold-pruning cardinality window against the
// replicated document cardinalities (see cardWindow), so non-qualifying
// candidates never hit gob or the wire. Queries with more terms than the
// counter's 16-bit counts can hold fall back to map-based counting (no
// real fingerprint set is that large, but the node must not wrap counts
// on a malformed request).
func (n *Node) query(req *queryRequest) *queryResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(req.Terms) > math.MaxUint16 {
		return n.queryWide(req)
	}
	c := counterPool.Get().(*bitmap.Counter)
	defer func() {
		c.Reset()
		counterPool.Put(c)
	}()
	for _, term := range req.Terms {
		if p, ok := n.postings[term]; ok {
			c.Add(p)
		}
	}
	cands := c.Candidates()
	minCard, maxCard := cardWindow(req)
	resp := &queryResponse{IDs: make([]uint32, 0, len(cands)), Counts: make([]uint32, 0, len(cands))}
	for _, v := range cands {
		if !index.InWindow(n.docs[v].card, minCard, maxCard) {
			resp.Pruned++
			continue
		}
		resp.IDs = append(resp.IDs, v)
		resp.Counts = append(resp.Counts, uint32(c.Count(v)))
	}
	return resp
}

// queryWide is the uncapped fallback for degenerate term counts. It
// applies the same node-side cardinality window as the narrow path.
func (n *Node) queryWide(req *queryRequest) *queryResponse {
	partial := make(map[uint32]int)
	for _, term := range req.Terms {
		if p, ok := n.postings[term]; ok {
			p.Iterate(func(id uint32) bool {
				partial[id]++
				return true
			})
		}
	}
	minCard, maxCard := cardWindow(req)
	resp := &queryResponse{IDs: make([]uint32, 0, len(partial)), Counts: make([]uint32, 0, len(partial))}
	for id, count := range partial {
		if !index.InWindow(n.docs[id].card, minCard, maxCard) {
			resp.Pruned++
			continue
		}
		resp.IDs = append(resp.IDs, id)
		resp.Counts = append(resp.Counts, uint32(count))
	}
	return resp
}

// cardWindow resolves a query's node-side cardinality window: the shared
// index.CardinalityWindow bounds when the request carries the query's
// global cardinality, the open window (prune nothing) otherwise. The
// callers test candidates through index.InWindow — the exact predicate
// the coordinator's Ranker applies — so a node-side prune can never
// remove a candidate the merge would keep.
func cardWindow(req *queryRequest) (minCard, maxCard int) {
	if req.QueryCard <= 0 {
		return 0, 0
	}
	return index.CardinalityWindow(req.QueryCard, req.MaxDistance)
}

func (n *Node) stats() *statsResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := &statsResponse{
		Terms:      len(n.postings),
		Docs:       len(n.docs) - n.tombstones,
		Tombstones: n.tombstones,
	}
	for _, p := range n.postings {
		s.Postings += p.Cardinality()
	}
	return s
}
