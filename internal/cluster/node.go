// Package cluster implements the paper's distributed index (§III-A4,
// §VI-E) as a real client/server system on TCP: shard nodes own disjoint
// ranges of the geodab term space and serve posting lookups; a coordinator
// routes additions and scatter-gathers queries, merging partial
// intersection counts into Jaccard-ranked results.
//
// Everything speaks length-delimited gob — no dependencies beyond the
// standard library.
package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"geodabs/internal/bitmap"
)

// Node is a shard server holding the posting lists of the terms routed to
// it. Start it with StartNode; stop it with Close.
type Node struct {
	ln net.Listener

	mu       sync.RWMutex
	postings map[uint32]*bitmap.Bitmap

	connWG    sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
}

// StartNode listens on addr (e.g. "127.0.0.1:0") and serves shard requests
// until Close.
func StartNode(addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	n := &Node{
		ln:       ln,
		postings: make(map[uint32]*bitmap.Bitmap),
		closing:  make(chan struct{}),
	}
	n.connWG.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address for coordinators to dial.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the listener and waits for in-flight connections to finish.
// It is safe to call multiple times.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.closing)
		err = n.ln.Close()
		n.connWG.Wait()
	})
	return err
}

func (n *Node) acceptLoop() {
	defer n.connWG.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closing:
				return
			default:
				// Transient accept error: keep serving.
				continue
			}
		}
		n.connWG.Add(1)
		go n.serve(conn)
	}
}

// serve handles one coordinator connection until EOF or node shutdown.
func (n *Node) serve(conn net.Conn) {
	defer n.connWG.Done()
	defer conn.Close()
	// Unblock the decoder when the node shuts down.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-n.closing:
			conn.Close()
		case <-stop:
		}
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or connection torn down
		}
		resp := n.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (n *Node) handle(req *request) *response {
	switch req.Op {
	case opAdd:
		if req.Add == nil {
			return &response{Err: "add request missing payload"}
		}
		n.add(req.Add)
		return &response{}
	case opQuery:
		if req.Query == nil {
			return &response{Err: "query request missing payload"}
		}
		return &response{Query: n.query(req.Query)}
	case opStats:
		return &response{Stats: n.stats()}
	default:
		return &response{Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

func (n *Node) add(req *addRequest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, term := range req.Terms {
		p, ok := n.postings[term]
		if !ok {
			p = bitmap.New()
			n.postings[term] = p
		}
		p.Add(req.ID)
	}
}

func (n *Node) query(req *queryRequest) *queryResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	partial := make(map[uint32]int)
	for _, term := range req.Terms {
		if p, ok := n.postings[term]; ok {
			p.Iterate(func(id uint32) bool {
				partial[id]++
				return true
			})
		}
	}
	return &queryResponse{Partial: partial}
}

func (n *Node) stats() *statsResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := &statsResponse{Terms: len(n.postings)}
	for _, p := range n.postings {
		s.Postings += p.Cardinality()
	}
	return s
}

// client is the coordinator's connection to one node. Calls are
// serialized by a one-slot semaphore acquired under the caller's context
// (a plain mutex would let a call queued behind a stalled one block past
// its own deadline); the connection pointers live under their own lock
// (connMu) so close can tear down a stalled call's socket without
// waiting for the call to finish. A call abandoned by context
// cancellation poisons the gob stream, so the connection is dropped and
// transparently redialed on the next call.
type client struct {
	addr string
	sem  chan struct{} // capacity 1: serializes calls

	connMu sync.Mutex // guards conn/enc/dec/closed
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
}

func dial(addr string) (*client, error) {
	c := &client{addr: addr, sem: make(chan struct{}, 1)}
	if _, _, _, err := c.ensureConn(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// ensureConn returns the live connection, redialing under ctx if a
// previous call dropped it — a blackholed node then costs the caller its
// deadline, not the OS connect timeout. The dial happens outside connMu
// (the caller's slot in c.sem already serializes dials) so close stays
// prompt during a slow connect.
func (c *client) ensureConn(ctx context.Context) (net.Conn, *gob.Encoder, *gob.Decoder, error) {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil, nil, nil, fmt.Errorf("cluster: client to %s is closed", c.addr)
	}
	if c.conn != nil {
		conn, enc, dec := c.conn, c.enc, c.dec
		c.connMu.Unlock()
		return conn, enc, dec, nil
	}
	c.connMu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, nil, nil, ctxErr
		}
		return nil, nil, nil, fmt.Errorf("cluster: dial %s: %w", c.addr, err)
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed { // closed while we were dialing
		conn.Close()
		return nil, nil, nil, fmt.Errorf("cluster: client to %s is closed", c.addr)
	}
	c.conn, c.enc, c.dec = conn, gob.NewEncoder(conn), gob.NewDecoder(conn)
	return c.conn, c.enc, c.dec, nil
}

// dropConn discards the given connection if it is still current: after an
// encode/decode error the gob stream can be desynchronized, so the next
// call must redial.
func (c *client) dropConn(conn net.Conn) {
	conn.Close()
	c.connMu.Lock()
	if c.conn == conn {
		c.conn, c.enc, c.dec = nil, nil, nil
	}
	c.connMu.Unlock()
}

// call performs one request/response round trip. Cancelling ctx aborts
// the in-flight I/O promptly (by poking the connection deadline) and
// returns the context's error.
func (c *client) call(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.sem }()
	conn, enc, dec, err := c.ensureConn(ctx)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Time{}) // clear a deadline poked by an earlier cancellation
	watchDone := make(chan struct{})
	watchExited := make(chan struct{})
	go func() {
		defer close(watchExited)
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now())
		case <-watchDone:
		}
	}()
	// Wait for the watcher to exit before returning: a stale watcher
	// racing a cancellation could otherwise poke a deadline onto the
	// connection after the next call has cleared it.
	defer func() {
		close(watchDone)
		<-watchExited
	}()
	fail := func(err error) (*response, error) {
		c.dropConn(conn)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	if err := enc.Encode(req); err != nil {
		return fail(fmt.Errorf("cluster: send: %w", err))
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return fail(fmt.Errorf("cluster: node closed connection"))
		}
		return fail(fmt.Errorf("cluster: receive: %w", err))
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("cluster: node error: %s", resp.Err)
	}
	return &resp, nil
}

func (c *client) close() error {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn, c.enc, c.dec = nil, nil, nil
	return err
}
