package cluster

import (
	"runtime"
	"sort"
	"testing"

	"geodabs/internal/geo"
)

// buildRerankNode starts a node holding count synthetic retained
// trajectories and returns it with the shortlist of their IDs.
func buildRerankNode(t *testing.T, count int) (*Node, []uint32) {
	t.Helper()
	n, err := StartNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	ids := make([]uint32, 0, count)
	for i := 0; i < count; i++ {
		id := uint32(i + 1)
		// Spread the routes so lower bounds genuinely prune: each
		// trajectory is a short diagonal offset from the origin by i.
		base := float64(i) * 0.01
		pts := []geo.Point{
			{Lat: base, Lon: base},
			{Lat: base + 0.005, Lon: base + 0.004},
			{Lat: base + 0.010, Lon: base + 0.009},
		}
		req := &addRequest{ID: id, Terms: []uint32{uint32(i)}, Epoch: uint64(i + 1), Card: 3, Points: pts}
		if err := n.add(req); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return n, ids
}

// topK reduces a rerank response to its k best (score, ID) pairs under
// the worseScore order — the only part of the response the coordinator
// merge depends on.
func topK(resp *rerankResponse, k int) []kept {
	pairs := make([]kept, len(resp.IDs))
	for i := range resp.IDs {
		pairs[i] = kept{score: resp.Scores[i], id: resp.IDs[i]}
	}
	sort.Slice(pairs, func(i, j int) bool {
		return worseScore(pairs[j].score, pairs[j].id, pairs[i].score, pairs[i].id)
	})
	if k > 0 && len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}

// TestRerankParallelMatchesSerial pins the worker-pool rerank to the
// serial contract: with GOMAXPROCS forced above one and a shortlist
// beyond rerankParallelMin, the parallel path's surviving top-k must be
// identical to serially scoring everything — any interleaving of the
// shared pruning heap may only skip candidates that provably cannot
// place.
func TestRerankParallelMatchesSerial(t *testing.T) {
	const count = 3 * rerankParallelMin
	const limit = 5
	n, ids := buildRerankNode(t, count)
	query := []geo.Point{{Lat: 0.02, Lon: 0.02}, {Lat: 0.025, Lon: 0.024}, {Lat: 0.03, Lon: 0.029}}

	for _, metric := range []rerankMetric{metricDTW, metricDFD} {
		// Ground truth: score every candidate (Limit 0 disables the
		// pruning heap entirely, on the serial path or not).
		full, err := n.rerank(&rerankRequest{IDs: ids, Query: query, Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		if full.Skipped != 0 || len(full.IDs) != count {
			t.Fatalf("unbounded rerank skipped %d of %d", full.Skipped, count)
		}
		want := topK(full, limit)

		prev := runtime.GOMAXPROCS(4)
		got, err := n.rerank(&rerankRequest{IDs: ids, Query: query, Metric: metric, Limit: limit})
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.IDs)+got.Skipped != count {
			t.Fatalf("metric %d: %d scored + %d skipped != %d candidates", metric, len(got.IDs), got.Skipped, count)
		}
		pairs := topK(got, limit)
		if len(pairs) != len(want) {
			t.Fatalf("metric %d: parallel top-%d has %d entries, want %d", metric, limit, len(pairs), len(want))
		}
		for i := range want {
			if pairs[i] != want[i] {
				t.Fatalf("metric %d: parallel top-%d diverges at %d: got %+v, want %+v", metric, limit, i, pairs[i], want[i])
			}
		}
	}
}

// TestRerankSerialPathUnchanged covers the short-shortlist serial path
// with a limit, including the skip accounting invariant.
func TestRerankSerialPathUnchanged(t *testing.T) {
	const count = rerankParallelMin - 2
	const limit = 3
	n, ids := buildRerankNode(t, count)
	query := []geo.Point{{Lat: 0.01, Lon: 0.01}, {Lat: 0.015, Lon: 0.014}}

	full, err := n.rerank(&rerankRequest{IDs: ids, Query: query, Metric: metricDTW})
	if err != nil {
		t.Fatal(err)
	}
	want := topK(full, limit)
	got, err := n.rerank(&rerankRequest{IDs: ids, Query: query, Metric: metricDTW, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs)+got.Skipped != count {
		t.Fatalf("%d scored + %d skipped != %d candidates", len(got.IDs), got.Skipped, count)
	}
	pairs := topK(got, limit)
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("serial top-%d diverges at %d: got %+v, want %+v", limit, i, pairs[i], want[i])
		}
	}
}
