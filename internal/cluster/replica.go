package cluster

// Replica side of log shipping: a read replica dials its primary,
// performs a full sync (a snapshot of the shard state plus the primary's
// compaction watermark), then tails the live mutation stream, applying
// each event through the same epoch-fenced paths the primary used. The
// replica's state therefore tracks the primary's exactly, stream
// position by stream position — including tombstone fences, which is
// what makes replaying a stale mutation produce the same (non-)effect on
// both sides. Any stream failure — connection loss, falling behind the
// primary's backlog — tears the tap down and the loop reconnects with a
// fresh full sync after a backoff.

import (
	"encoding/gob"
	"net"
	"time"
)

const (
	replDialTimeout  = 2 * time.Second
	replReconnectMin = 50 * time.Millisecond
	replReconnectMax = 2 * time.Second
)

// replicationLoop keeps the replica synced to its primary until the node
// closes. Reconnects use exponential backoff, reset after any attempt
// that got as far as installing a full sync.
func (n *Node) replicationLoop() {
	defer n.replWG.Done()
	backoff := replReconnectMin
	for {
		select {
		case <-n.closing:
			return
		default:
		}
		if n.syncOnce() {
			backoff = replReconnectMin
		} else if backoff *= 2; backoff > replReconnectMax {
			backoff = replReconnectMax
		}
		select {
		case <-time.After(backoff):
		case <-n.closing:
			return
		}
	}
}

// syncOnce performs one full sync + stream-tail session against the
// primary. It returns once the connection dies (for any reason),
// reporting whether a full sync was installed.
func (n *Node) syncOnce() bool {
	conn, err := net.DialTimeout("tcp", n.primaryAddr, replDialTimeout)
	if err != nil {
		return false
	}
	defer conn.Close()
	// Unblock the stream decoder when the node shuts down.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-n.closing:
			conn.Close()
		case <-stop:
		}
	}()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&request{Op: opSync, Sync: &syncRequest{}}); err != nil {
		return false
	}
	var resp response
	if err := dec.Decode(&resp); err != nil || resp.Err != "" || resp.Sync == nil {
		return false
	}
	n.installSync(resp.Sync)
	n.fullSyncs.Add(1)
	for {
		var ev replEvent
		if err := dec.Decode(&ev); err != nil {
			return true // stream over; reconnect with a fresh full sync
		}
		n.applyEvent(&ev)
	}
}

// installSync atomically replaces the replica's state with a full-sync
// snapshot. Queries racing the swap see either the old or the new state,
// never a mix.
func (n *Node) installSync(sync *syncResponse) {
	n.mu.Lock()
	n.installDocs(sync.Docs)
	n.compactedBelow.Store(sync.Watermark)
	n.mu.Unlock()
	n.advanceStable(sync.Watermark)
}

// applyEvent applies one replication stream event. Mutations run through
// the identical epoch-fenced apply paths as on the primary; heartbeats
// (and the watermark piggybacked on every event) advance the replica's
// stable epoch and drive tombstone compaction at exactly the stream
// position where the primary compacted.
func (n *Node) applyEvent(ev *replEvent) {
	switch ev.Op {
	case replAdd:
		n.applyAdd(&addRequest{ID: ev.ID, Terms: ev.Terms, Epoch: ev.Epoch, Card: ev.Card, Points: ev.Points})
	case replDelete:
		n.applyDelete(&deleteRequest{ID: ev.ID, Epoch: ev.Epoch})
	case replHeartbeat:
		n.compact(ev.Watermark)
	}
	n.advanceStable(ev.Watermark)
}

// advanceStable raises the replica's stable epoch to w if it is ahead —
// the epoch through which the replicated state is proven complete.
func (n *Node) advanceStable(w uint64) {
	for {
		cur := n.stableEpoch.Load()
		if w <= cur || n.stableEpoch.CompareAndSwap(cur, w) {
			return
		}
	}
}
