package cluster

// Coordinator directory recovery. The coordinator's ranking directory —
// per-trajectory fingerprint cardinality, lifecycle state, and last
// mutation epoch — normally lives only in memory: it is rebuilt from
// scratch as mutations flow through. When the shard nodes are durable
// (WithWALDir) the cluster's ground truth survives a coordinator
// restart, and WithDirectoryRecovery rebuilds the directory from it: the
// coordinator pulls the same full-sync snapshot a read replica would,
// from every node, and merges the per-ID records by epoch — the highest
// epoch wins, and a winning tombstone means deleted. The epoch counter
// resumes past the highest epoch seen, so post-recovery mutations fence
// correctly against pre-crash ones.
//
// One caveat is inherent: an add whose fan-out was mid-flight when the
// previous coordinator died may have landed on some owning nodes and not
// others. No node-local record can distinguish that torn add from a
// complete one, so recovery admits it with the postings that survived
// (its intersection counts run low until it is re-upserted or deleted).
// Retained points ARE recoverable: they live on each trajectory's point
// owner node (WAL-logged and snapshotted beside its postings), and the
// owner's full-sync record carries them, so recovery re-learns the
// owner mapping and exact re-ranking keeps working across a coordinator
// restart — provided the owner's record won the per-ID epoch merge.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"

	"geodabs/internal/trajectory"
)

// WithDirectoryRecovery makes NewCoordinator rebuild the ranking
// directory from the nodes' current state before serving. Intended for
// restarting a coordinator over durable (WAL-backed) nodes; on empty
// nodes it is a no-op beyond one round trip per node.
func WithDirectoryRecovery() Option {
	return func(c *Coordinator) { c.recoverDir = true }
}

// recoverDirectory pulls a full-sync snapshot from every node and merges
// them into the directory. Called from NewCoordinator before the
// coordinator is published, so no locking is needed.
func (c *Coordinator) recoverDirectory(addrs []string) error {
	type recovered struct {
		doc syncDoc
		// owner is the node whose record for the doc's winning epoch
		// carried retained points, -1 if none did. A points record from a
		// losing (older) epoch is a stale copy a later mutation replaced
		// and must not be re-adopted as the owner.
		owner      int
		ownerEpoch uint64
	}
	winners := make(map[trajectory.ID]recovered)
	var maxEpoch uint64
	for node, addr := range addrs {
		sync, err := fetchNodeState(addr)
		if err != nil {
			return fmt.Errorf("cluster: recover directory from %s: %w", addr, err)
		}
		if sync.Watermark > maxEpoch {
			maxEpoch = sync.Watermark
		}
		for _, d := range sync.Docs {
			if d.Epoch > maxEpoch {
				maxEpoch = d.Epoch
			}
			id := trajectory.ID(d.ID)
			w, ok := winners[id]
			if !ok {
				w = recovered{owner: -1}
			}
			if !ok || d.Epoch > w.doc.Epoch {
				w.doc = d
			}
			if len(d.Points) > 0 && d.Epoch >= w.ownerEpoch {
				w.owner, w.ownerEpoch = node, d.Epoch
			}
			winners[id] = w
		}
	}
	for id, w := range winners {
		if w.doc.Tombstone {
			continue
		}
		owner := -1
		if w.owner >= 0 && w.ownerEpoch == w.doc.Epoch {
			owner = w.owner
		}
		c.directory[id] = docEntry{card: w.doc.Card, state: stateLive, epoch: w.doc.Epoch, owner: owner}
	}
	if maxEpoch > c.epoch {
		c.epoch = maxEpoch
	}
	return nil
}

// fetchNodeState opens a one-shot connection to a node and returns its
// full-sync snapshot. The connection is closed without tailing the
// mutation stream that follows; the node notices on its next push and
// drops the subscription.
func fetchNodeState(addr string) (*syncResponse, error) {
	conn, err := net.DialTimeout("tcp", addr, replDialTimeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := gob.NewEncoder(conn).Encode(&request{Op: opSync, Sync: &syncRequest{}}); err != nil {
		return nil, err
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	if resp.Sync == nil {
		return nil, errors.New("node did not return a sync snapshot")
	}
	return resp.Sync, nil
}
