package cluster

// Wire protocol: length-delimited gob over TCP. Each connection carries a
// sequential stream of request/response pairs; the coordinator serializes
// requests per connection and fans out across connections.

// op discriminates request types.
type op uint8

const (
	opAdd op = iota + 1
	opQuery
	opStats
)

// addRequest routes the terms a node owns for one trajectory.
type addRequest struct {
	ID    uint32
	Terms []uint32
}

// queryRequest carries the query terms owned by the node.
type queryRequest struct {
	Terms []uint32
}

// queryResponse returns, for every candidate trajectory seen on this node,
// the number of query terms it shares. Term spaces of different nodes are
// disjoint, so the coordinator can sum partial counts.
type queryResponse struct {
	Partial map[uint32]int
}

// statsResponse summarizes a node's shard contents.
type statsResponse struct {
	Terms    int
	Postings int
}

// request is the envelope sent from coordinator to node.
type request struct {
	Op    op
	Add   *addRequest
	Query *queryRequest
}

// response is the envelope sent back. Err is non-empty on failure.
type response struct {
	Err   string
	Query *queryResponse
	Stats *statsResponse
}
