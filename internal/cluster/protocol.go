package cluster

import "geodabs/internal/geo"

// Wire protocol: length-delimited gob over TCP. Each connection carries a
// sequential stream of request/response pairs; the coordinator serializes
// requests per connection and fans out across connections (and across the
// per-node connection pool). The ops in service: opAdd routes a
// trajectory's postings (with its replicated cardinality, and — to the
// point owner only — its raw points), opQuery scatters a search,
// opStats collects shard summaries, opDelete withdraws postings behind
// an epoch fence, opSync serves replication, and opRerank exact-scores
// a shortlist slice against the node's retained points.
//
// Searches are plan-path only: the coordinator shards a query's term set
// into per-node groups once, in a QueryPlan (built by Plan, cached by the
// public prepared-Query layer), and every SearchPlan call replays those
// groups into queryRequest scatters. Nothing plan-specific crosses the
// wire — a node sees the same Terms/QueryCard/MaxDistance triple whether
// the plan was freshly built or reused — so plan caching is invisible to
// this protocol and needs no version negotiation.
//
// Mutations carry a per-mutation epoch assigned by the coordinator.
// Nodes use it to fence stale writes: a delete leaves a tombstone at its
// epoch, and an add whose epoch is not newer than the trajectory's last
// applied mutation is ignored. That makes the coordinator's failed-add
// cleanup safe against the abandoned add racing it onto the node, and
// makes retries idempotent. Every request also piggybacks the
// coordinator's compaction watermark — the epoch below which no mutation
// is still in flight — letting nodes reclaim tombstones lazily.
//
// Adds replicate the trajectory's total fingerprint cardinality |G| to
// every node owning one of its terms, and queries carry the query's
// global cardinality |F| plus the effective distance bound d. That lets
// a node apply the threshold-pruning cardinality window
//
//	(1−d)·|F| ≤ |G| ≤ |F|/(1−d)
//
// before serializing its partial counts, so candidates that provably
// cannot qualify never hit gob or the wire. The window is safe to
// evaluate node-side because it involves only the two total
// cardinalities and the bound — quantities every owning node holds in
// full — and a candidate outside it is exactly one the coordinator's
// Ranker would prune on arrival, so rankings are unchanged. The second
// pruning bound, the shared-count bar |F∩G|·(1+s) ≥ s·(|F|+|G|), is NOT
// node-safe: a node sees only its partial intersection count, and a
// candidate can fail the bar on every node individually while its
// summed count passes it. The bar therefore stays coordinator-side,
// applied after the partials are merged.

// Replication (opSync) breaks the request/response cadence on purpose:
// a replica sends one opSync request and the primary answers with a
// full-sync snapshot of its shard state (every doc with its terms,
// replicated cardinality, epoch, and tombstone flag, plus the highest
// compaction watermark the primary has proven complete), then keeps the
// connection as a one-way push stream of replEvent values — every
// mutation the primary applies after the snapshot cut, in apply order,
// interleaved with heartbeats that carry the advancing watermark. Epoch
// fencing makes the stream idempotent and order-insensitive per ID, so
// a replica that reconnects and full-syncs again always converges. A
// replica that falls behind the primary's event backlog is disconnected
// and full-syncs afresh (the Redis replication shape).
//
// Replica reads stay consistent with the coordinator's snapshot
// isolation through the watermark: a replica's state provably covers
// every mutation at or below the highest watermark it has seen in the
// stream (the coordinator only advances the watermark past an epoch
// once every owning node acknowledged it, and the primary's stream is
// in apply order). A query whose piggybacked CompactBelow — the
// coordinator's search snapshot — exceeds that stable epoch is refused
// with response.Stale instead of being answered wrong; the coordinator
// falls back to the primary, whose next request also carries the
// watermark forward and thereby un-stales the replica.

// op discriminates request types.
type op uint8

const (
	opAdd op = iota + 1
	opQuery
	opStats
	opDelete
	opSync
	opRerank
)

// addRequest routes the terms a node owns for one trajectory. Epoch is
// the mutation's coordinator-assigned epoch; a node ignores the add if it
// already applied a mutation for the ID at an equal or newer epoch, and
// otherwise replaces whatever it held for the ID. Card is the
// trajectory's total fingerprint cardinality |G| — across all nodes, not
// just the terms routed here — replicated so the node can threshold-prune
// query candidates without a round trip to the coordinator's directory.
// Points is non-nil only on the request sent to the trajectory's point
// owner (see pointOwner) when the cluster retains points: that one node
// stores the raw trajectory beside its postings so exact rerank can run
// node-side. Every other node's request leaves Points nil, so raw
// points cross the wire exactly once per mutation.
type addRequest struct {
	ID     uint32
	Terms  []uint32
	Epoch  uint64
	Card   int
	Points []geo.Point
}

// deleteRequest withdraws a trajectory's postings from the node. The node
// does not need the term list — it tracks the terms it owns per ID — and
// it leaves a tombstone at Epoch to fence stale adds until the
// coordinator's compaction watermark passes it.
type deleteRequest struct {
	ID    uint32
	Epoch uint64
}

// queryRequest carries the query terms owned by the node — one group of
// the QueryPlan's term sharding — plus the inputs of the node-side
// cardinality window: QueryCard is the query's
// global fingerprint cardinality |F| (across all nodes, not just the
// terms routed here) and MaxDistance the effective Jaccard distance
// bound. A QueryCard of 0 disables node-side pruning (the window would
// be meaningless without the query's true size).
type queryRequest struct {
	Terms       []uint32
	QueryCard   int
	MaxDistance float64
}

// queryResponse returns, for every candidate trajectory seen on this node,
// the number of query terms it shares, as parallel ID/count slices —
// flat slices gob-encode in one pass where the former map paid a per-entry
// reflection walk. Term spaces of different nodes are disjoint, so the
// coordinator can sum partial counts. Pruned reports how many candidate
// entries the node's cardinality window skipped before serialization;
// a candidate's replicated |G| is identical on every node, so a pruned
// candidate is pruned by all of its nodes and never reaches the merge.
type queryResponse struct {
	IDs    []uint32
	Counts []uint32
	Pruned int
}

// syncRequest asks a primary for a full sync. The empty struct is a
// placeholder for future options (e.g. incremental resume offsets).
type syncRequest struct{}

// syncDoc is one trajectory's shard state in a full-sync snapshot:
// everything a replica needs to reconstruct the primary's docs and
// postings for this node. Tombstones ship too — they fence stale
// mutations on the replica exactly as on the primary. Points carries
// the retained raw trajectory when this node is its point owner, so
// replicas and snapshots hold retention identically to the primary.
type syncDoc struct {
	ID        uint32
	Terms     []uint32
	Card      int
	Epoch     uint64
	Tombstone bool
	Points    []geo.Point
}

// syncResponse is the primary's full-sync answer: the complete shard
// state at the snapshot cut plus the highest compaction watermark the
// primary has seen — the replica's starting stable epoch. Every
// mutation applied after the cut follows on the same connection as
// replEvent values.
type syncResponse struct {
	Docs      []syncDoc
	Watermark uint64
}

// replOp discriminates replication stream events.
type replOp uint8

const (
	replAdd replOp = iota + 1
	replDelete
	replHeartbeat
)

// replEvent is one replication stream message: a mutation the primary
// applied (replAdd/replDelete, carrying the same fields as the original
// request), or a heartbeat. Watermark piggybacks the primary's highest
// known compaction watermark: the replica's state provably covers every
// mutation at or below it, so it gates replica reads.
type replEvent struct {
	Op        replOp
	ID        uint32
	Terms     []uint32
	Card      int
	Epoch     uint64
	Watermark uint64
	// Points mirrors addRequest.Points: set on replAdd when the primary
	// retained the trajectory's raw points, so replicas hold them too.
	Points []geo.Point
}

// rerankMetric names an exact trajectory metric a node can evaluate
// locally. Only the library's built-in metrics are addressable over the
// wire — a custom RerankMetric is an arbitrary function and cannot
// cross a process boundary, so the public layer keeps those local.
type rerankMetric uint8

const (
	metricDTW rerankMetric = iota + 1
	metricDFD
)

// rerankRequest asks a node to exact-score its slice of a fingerprint
// shortlist: IDs are shortlist members whose points the node owns (the
// coordinator groups by pointOwner before scattering), Query is the raw
// query trajectory, and Metric selects DTW or discrete Fréchet.
//
// Limit enables lower-bound pruning: when > 0 it is the result cap the
// coordinator will truncate the merged scores to, and the node may skip
// the full O(n·m) dynamic program for any candidate whose lower bound
// strictly exceeds the k-th best score among candidates it has already
// scored (k = Limit). A skipped candidate provably cannot enter the
// node's own top-k, hence not the global top-k either, so the merged
// results are byte-identical to scoring everything. Limit = 0 means no
// cap downstream: every candidate is scored.
type rerankRequest struct {
	IDs    []uint32
	Query  []geo.Point
	Metric rerankMetric
	Limit  int
}

// rerankResponse returns the node's exact scores as parallel ID/score
// slices — scores only, never points. Candidates skipped by the lower
// bound are absent from the slices and counted in Skipped. Missing
// lists shortlist IDs the node holds no points for (retention disabled,
// torn add, or a stale shortlist racing a delete); the coordinator
// aggregates Missing across nodes into one error naming them all.
type rerankResponse struct {
	IDs     []uint32
	Scores  []float64
	Skipped int
	Missing []uint32
}

// nodeRole distinguishes primaries from read replicas in stats.
type nodeRole uint8

const (
	rolePrimary nodeRole = iota
	roleReplica
)

// statsResponse summarizes a node's shard contents, durability, and
// replication state.
type statsResponse struct {
	Terms    int
	Postings int
	// Docs is the number of live trajectories with postings on the node;
	// Tombstones counts delete fences not yet reclaimed by compaction.
	Docs       int
	Tombstones int
	// Role reports whether the node is a primary or a read replica.
	// Epoch is the highest mutation epoch the node has applied;
	// StableEpoch is the epoch through which its state is proven
	// complete (the compaction watermark for a primary, the highest
	// stream watermark for a replica) — the coordinator derives replica
	// lag from it.
	Role        nodeRole
	Epoch       uint64
	StableEpoch uint64
	// WAL state (zero when the node runs without a write-ahead log).
	WALBytes      int64
	WALSegments   int
	WALRecords    uint64
	WALSyncs      uint64
	WALLastSyncNS int64
	// FullSyncs counts full syncs served (primary) or performed
	// (replica); Subscribers is the number of replicas currently
	// tailing this primary's stream.
	FullSyncs   uint64
	Subscribers int
	// Point retention and node-side rerank state. RetainedDocs counts
	// trajectories whose raw points this node owns, RetainedPoints the
	// points across them, RetainedBytes their in-memory size. Scored and
	// skipped count rerank candidates over the node's lifetime:
	// RerankSkipped of them were settled by the lower bound alone,
	// without running the full dynamic program.
	RetainedDocs   int
	RetainedPoints int
	RetainedBytes  int64
	RerankScored   uint64
	RerankSkipped  uint64
}

// request is the envelope sent from coordinator to node. CompactBelow is
// the coordinator's compaction watermark: no mutation at or below it is
// still tracked as in flight by the coordinator, so the node reclaims
// tombstones at or below it. One residual race remains: the coordinator
// stops tracking an abandoned add when its call returns, not when its
// last request byte is provably dead, so a node wedged long enough for
// the watermark to advance can in principle apply a stale add after its
// fence was pruned. The stranded postings that result are invisible to
// searches (the coordinator's directory check drops them) and are
// replaced by any later add/upsert of the ID; see the ROADMAP
// anti-entropy item for full reclaim.
type request struct {
	Op           op
	CompactBelow uint64
	Add          *addRequest
	Delete       *deleteRequest
	Query        *queryRequest
	Sync         *syncRequest
	Rerank       *rerankRequest
}

// response is the envelope sent back. Err is non-empty on failure.
// Stale is a replica's typed refusal of a query whose snapshot epoch
// exceeds the replica's stable epoch: not an error, but a signal for
// the coordinator to read from the primary instead.
type response struct {
	Err    string
	Stale  bool
	Query  *queryResponse
	Stats  *statsResponse
	Sync   *syncResponse
	Rerank *rerankResponse
}
