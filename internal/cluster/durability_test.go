package cluster

import (
	"context"
	"io"
	"math/rand"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"geodabs/internal/bitmap"
	"geodabs/internal/core"
	"geodabs/internal/index"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

// startDurableCluster spins up n WAL-backed nodes and a coordinator,
// returning the node addresses and WAL directories so tests can kill and
// restart nodes in place.
func startDurableCluster(t *testing.T, n int, extra ...NodeOption) (*Coordinator, []*Node, []string, []string) {
	t.Helper()
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	dirs := make([]string, n)
	for i := range nodes {
		dirs[i] = t.TempDir()
		node, err := StartNode("127.0.0.1:0", append([]NodeOption{WithWALDir(dirs[i])}, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close() // idempotent; killed nodes no-op
		}
	})
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	strategy := shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: n}
	coord, err := NewCoordinator(ex, strategy, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, nodes, addrs, dirs
}

// searchAll runs every workload query and returns the ranked results,
// retrying transient errors (a restarted node leaves dead pooled
// connections behind; the pool redials on the next attempt).
func searchAll(t *testing.T, coord *Coordinator) [][]index.Result {
	t.Helper()
	out := make([][]index.Result, len(testWorkload.Queries))
	for i, q := range testWorkload.Queries {
		var results []index.Result
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			results, _, err = coord.Search(context.Background(), q, 0.99, 0)
			if err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		out[i] = results
	}
	return out
}

// TestNodeRestartFromWALServesIdenticalResults is the durability
// acceptance criterion: after adds, upserts and deletes, both shard
// nodes are hard-killed (no flush, no final snapshot) and restarted from
// their WAL directories at the same addresses — every query must then
// return byte-identical results to the unkilled cluster's. One node
// snapshots mid-stream, so recovery exercises snapshot + replay on one
// node and pure replay on the other; a tiny segment size forces multi-
// segment logs.
func TestNodeRestartFromWALServesIdenticalResults(t *testing.T) {
	coord, nodes, addrs, dirs := startDurableCluster(t, 2, WithWALSegmentBytes(8<<10))
	ctx := context.Background()
	trajs := testWorkload.Dataset.Trajectories
	for _, tr := range trajs {
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	// Compact half the mutations into a snapshot on node 0; node 1
	// recovers from replay alone.
	if err := nodes[0].Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Churn after the snapshot so both the snapshot and the surviving log
	// carry state: delete some, upsert others with swapped geometry.
	for _, tr := range trajs[:3] {
		if err := coord.Delete(ctx, tr.ID); err != nil {
			t.Fatal(err)
		}
	}
	for i, tr := range trajs[3:6] {
		swapped := &trajectory.Trajectory{ID: tr.ID, Points: trajs[6+i].Points}
		if err := coord.Upsert(ctx, swapped); err != nil {
			t.Fatal(err)
		}
	}
	want := searchAll(t, coord)

	for _, node := range nodes {
		node.Kill()
	}
	for i := range nodes {
		node, err := StartNode(addrs[i], WithWALDir(dirs[i]), WithWALSegmentBytes(8<<10))
		if err != nil {
			t.Fatalf("restart node %d: %v", i, err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	got := searchAll(t, coord)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d after restart: %+v, want %+v", testWorkload.Queries[i].ID, got[i], want[i])
		}
	}
}

// nodeState is a node's full shard state flattened for comparison.
type nodeState struct {
	docs     map[uint32]nodeDoc
	postings map[uint32][]uint32
}

// dumpState copies a node's docs and postings under its lock.
func dumpState(n *Node) nodeState {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := nodeState{docs: make(map[uint32]nodeDoc, len(n.docs)), postings: make(map[uint32][]uint32, len(n.postings))}
	for id, d := range n.docs {
		s.docs[id] = nodeDoc{terms: append([]uint32(nil), d.terms...), card: d.card, epoch: d.epoch}
	}
	for term, p := range n.postings {
		var ids []uint32
		p.Iterate(func(id uint32) bool {
			ids = append(ids, id)
			return true
		})
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		s.postings[term] = ids
	}
	return s
}

// memNode returns a bare in-memory node for direct apply calls — the
// property tests' reference, never listening or logging.
func memNode() *Node {
	return &Node{postings: make(map[uint32]*bitmap.Bitmap), docs: make(map[uint32]nodeDoc)}
}

// TestNodeCrashRecoveryProperty hard-kills a WAL-backed node at a random
// point in a random Add/Delete interleaving and asserts the recovered
// state — docs, cards, epochs, postings — is identical to a reference
// node that applied the same prefix in memory. SyncEvery=1, so every
// acknowledged mutation must survive; runs snapshot mid-stream at random
// to cover snapshot+replay recovery alongside pure replay.
func TestNodeCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		node, err := StartNode("127.0.0.1:0", WithWALDir(dir), WithWALSegmentBytes(4<<10))
		if err != nil {
			t.Fatal(err)
		}
		ref := memNode()
		ops := 60 + rng.Intn(120)
		kill := rng.Intn(ops)
		epoch := uint64(0)
		for i := 0; i < kill; i++ {
			epoch++
			id := uint32(rng.Intn(12))
			if rng.Intn(3) == 0 {
				req := &deleteRequest{ID: id, Epoch: epoch}
				if err := node.delete(req); err != nil {
					t.Fatalf("seed %d op %d delete: %v", seed, i, err)
				}
				ref.applyDelete(req)
				continue
			}
			terms := make([]uint32, 1+rng.Intn(20))
			for j := range terms {
				terms[j] = uint32(rng.Intn(200))
			}
			req := &addRequest{ID: id, Terms: terms, Epoch: epoch, Card: len(terms) + rng.Intn(50)}
			if err := node.add(req); err != nil {
				t.Fatalf("seed %d op %d add: %v", seed, i, err)
			}
			ref.applyAdd(req)
			if rng.Intn(25) == 0 {
				if err := node.Snapshot(); err != nil {
					t.Fatalf("seed %d op %d snapshot: %v", seed, i, err)
				}
			}
		}
		node.Kill()
		recovered, err := StartNode("127.0.0.1:0", WithWALDir(dir))
		if err != nil {
			t.Fatalf("seed %d recover: %v", seed, err)
		}
		got, want := dumpState(recovered), dumpState(ref)
		if !reflect.DeepEqual(got.docs, want.docs) {
			t.Fatalf("seed %d kill@%d/%d: recovered docs differ\ngot  %+v\nwant %+v", seed, kill, ops, got.docs, want.docs)
		}
		if !reflect.DeepEqual(got.postings, want.postings) {
			t.Fatalf("seed %d kill@%d/%d: recovered postings differ", seed, kill, ops)
		}
		recovered.Close()
	}
}

// pollUntil retries cond every 20ms until it holds or the deadline
// passes.
func pollUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %s", msg)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicaServesIdenticalResults is the replication acceptance
// criterion: once a read replica reaches epoch lag 0 it must answer
// every query byte-identically to its primary — including after the
// primary goes away entirely (replica failover).
func TestReplicaServesIdenticalResults(t *testing.T) {
	coord, nodes, addrs, _ := startDurableCluster(t, 2)
	ctx := context.Background()
	replicaAddrs := make([][]string, len(nodes))
	replicas := make([]*Node, len(nodes))
	for i := range nodes {
		rep, err := StartNode("127.0.0.1:0", WithReplicaOf(addrs[i]))
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = rep
		replicaAddrs[i] = []string{rep.Addr()}
		t.Cleanup(func() { rep.Close() })
	}
	// A second coordinator over the same nodes, replica-aware. It shares
	// no directory with the mutating one, so all mutations go through
	// repl-coord to keep ranking state in one place.
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	strategy := shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: len(nodes)}
	rcoord, err := NewCoordinator(ex, strategy, addrs, WithReadReplicas(replicaAddrs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcoord.Close() })
	coord.Close() // unused: mutations flow through rcoord only

	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := rcoord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range testWorkload.Dataset.Trajectories[:2] {
		if err := rcoord.Delete(ctx, tr.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for both replicas to prove themselves complete through the
	// primaries' current epoch (lag 0). The Stats call itself piggybacks
	// the watermark that lets the primaries publish it.
	pollUntil(t, 10*time.Second, func() bool {
		stats, err := rcoord.Stats(ctx)
		if err != nil {
			return false
		}
		for _, s := range stats {
			for _, r := range s.Replicas {
				if r.Err != "" || r.EpochLag != 0 {
					return false
				}
			}
		}
		return true
	}, "replicas never reached epoch lag 0")

	want := searchAll(t, rcoord) // ReadPrimary default: primaries answer
	rcoord.readPref = ReadReplicas
	got := searchAll(t, rcoord)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d via replicas: %+v, want %+v", testWorkload.Queries[i].ID, got[i], want[i])
		}
	}
	// Primary failover: with the primaries gone, replica reads must still
	// answer byte-identically (no new mutations, so the replicas' stable
	// epochs still cover the search snapshot).
	for _, node := range nodes {
		node.Close()
	}
	got = searchAll(t, rcoord)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d after primary shutdown: %+v, want %+v", testWorkload.Queries[i].ID, got[i], want[i])
		}
	}
	// And the same through the ReadPrimary failover path.
	rcoord.readPref = ReadPrimary
	got = searchAll(t, rcoord)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d primary-preferred failover: %+v, want %+v", testWorkload.Queries[i].ID, got[i], want[i])
		}
	}
}

// TestReplicaStaleGate pins the replica read-consistency protocol at the
// wire level: a replica refuses (response.Stale) any query whose
// snapshot epoch exceeds the highest watermark it has seen, and serves
// it once the primary's stream has proven that epoch complete.
func TestReplicaStaleGate(t *testing.T) {
	primary, err := StartNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := StartNode("127.0.0.1:0", WithReplicaOf(primary.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	ctx := context.Background()
	pcl, err := dial(primary.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.close()
	rcl, err := dial(replica.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.close()

	if _, err := pcl.call(ctx, &request{Op: opAdd, Add: &addRequest{ID: 1, Terms: []uint32{7, 8, 9}, Epoch: 5, Card: 3}}); err != nil {
		t.Fatal(err)
	}
	// Mutations must be refused by the replica outright.
	if _, err := rcl.call(ctx, &request{Op: opAdd, Add: &addRequest{ID: 2, Terms: []uint32{1}, Epoch: 6, Card: 1}}); err == nil {
		t.Fatal("replica accepted a mutation")
	}
	// Wait for the add to stream over.
	pollUntil(t, 5*time.Second, func() bool {
		resp, err := rcl.call(ctx, &request{Op: opStats})
		return err == nil && resp.Stats.Docs == 1
	}, "replica never received the streamed add")

	// Snapshot epoch 5 is not yet proven complete on the replica: stale.
	resp, err := rcl.call(ctx, &request{Op: opQuery, CompactBelow: 5, Query: &queryRequest{Terms: []uint32{7, 8, 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Stale {
		t.Fatal("replica answered a snapshot it cannot prove complete")
	}
	// Snapshot epoch 0 needs no proof: served.
	resp, err = rcl.call(ctx, &request{Op: opQuery, Query: &queryRequest{Terms: []uint32{7, 8, 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stale || len(resp.Query.IDs) != 1 || resp.Query.IDs[0] != 1 {
		t.Fatalf("replica snapshot-0 query = %+v", resp)
	}
	// Advancing the primary's watermark past the epoch un-stales the
	// replica via the stream.
	if _, err := pcl.call(ctx, &request{Op: opStats, CompactBelow: 5}); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 5*time.Second, func() bool {
		resp, err := rcl.call(ctx, &request{Op: opQuery, CompactBelow: 5, Query: &queryRequest{Terms: []uint32{7, 8, 9}}})
		return err == nil && !resp.Stale && len(resp.Query.IDs) == 1
	}, "replica never caught up to watermark 5")
}

// TestStrandedPostingsReconciled pins the failed-Add recovery loop end
// to end: an Add dies against a wedged node after a durable node already
// applied its postings; the cleanup cannot reach the durable node either
// (it was killed mid-Add), so the postings are stranded on its WAL. The
// node restarts from the WAL — stranded postings and all — and the
// coordinator's background reconciler must then fence and reclaim them,
// leaving no orphaned postings behind after compaction.
func TestStrandedPostingsReconciled(t *testing.T) {
	oldInterval, oldTimeout := reconcileInterval, addCleanupTimeout
	reconcileInterval, addCleanupTimeout = 50*time.Millisecond, 300*time.Millisecond
	defer func() { reconcileInterval, addCleanupTimeout = oldInterval, oldTimeout }()

	dir := t.TempDir()
	durable, err := StartNode("127.0.0.1:0", WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	durableAddr := durable.Addr()
	// A wedged "node" that accepts and swallows traffic without ever
	// answering — closable, so the test can later start a real node on
	// its address to heal the cluster.
	stallLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stallLn.Close() })
	go func() {
		for {
			conn, err := stallLn.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(io.Discard, c)
			}(conn)
		}
	}()
	wedged := stallLn.Addr().String()
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	// A fine-grained sharding (one shard per 31-bit curve prefix, node =
	// parity) guarantees any multi-term trajectory spans both nodes — the
	// coarse default can place a whole trajectory on one node, which
	// would let the Add bypass the wedged node entirely.
	coord, err := NewCoordinator(ex, shard.Strategy{PrefixBits: 31, Shards: 1 << 31, Nodes: 2}, []string{durableAddr, wedged})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var victim *trajectory.Trajectory
	for _, tr := range testWorkload.Dataset.Trajectories {
		if coord.Analyze(tr).Nodes == 2 {
			victim = tr
			break
		}
	}
	if victim == nil {
		t.Skip("no trajectory spans both nodes in this workload")
	}
	// Run the Add: the durable node applies and fsyncs its postings, the
	// wedged node hangs. Kill the durable node once its postings landed,
	// then cancel — the Add fails and its cleanup can reach neither node,
	// stranding the applied postings in the durable node's WAL.
	ctx, cancel := context.WithCancel(context.Background())
	addErr := make(chan error, 1)
	go func() { addErr <- coord.Add(ctx, victim) }()
	pollUntil(t, 5*time.Second, func() bool {
		durable.mu.RLock()
		defer durable.mu.RUnlock()
		return len(durable.docs) == 1
	}, "durable node never applied its half of the Add")
	durable.Kill()
	cancel()
	if err := <-addErr; err == nil {
		t.Fatal("Add against a half-dead cluster should fail")
	}
	// The cleanup must have queued its unreachable deletes.
	pollUntil(t, 5*time.Second, func() bool { return coord.PendingCleanups() > 0 }, "failed cleanup was not queued for reconciliation")

	// Restart the node from its WAL: the stranded postings come back with
	// it — and the reconciler must now reach it, fence the orphaned add,
	// and reclaim the postings.
	restarted, err := StartNode(durableAddr, WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	restarted.mu.RLock()
	docs := len(restarted.docs)
	restarted.mu.RUnlock()
	if docs != 1 {
		t.Fatalf("restarted node recovered %d docs, want the 1 stranded add", docs)
	}
	cl, err := dial(restarted.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.close()
	pollUntil(t, 10*time.Second, func() bool {
		resp, err := cl.call(context.Background(), &request{Op: opStats})
		return err == nil && resp.Stats.Postings == 0 && resp.Stats.Docs == 0
	}, "orphaned postings survived reconciliation")

	// Heal the wedged node: a real (empty) node takes over its address,
	// the reconciler's outstanding fencing delete lands there, and the
	// pending-cleanup queue drains completely.
	stallLn.Close()
	healed, err := StartNode(wedged)
	if err != nil {
		t.Fatal(err)
	}
	defer healed.Close()
	pollUntil(t, 10*time.Second, func() bool { return coord.PendingCleanups() == 0 }, "cleanup queue never drained after the wedged node healed")

	// With the cluster whole again, later mutations advance the watermark
	// past the fence and compaction reclaims the tombstone — nothing of
	// the failed Add survives anywhere.
	var other *trajectory.Trajectory
	for _, tr := range testWorkload.Dataset.Trajectories {
		if tr.ID != victim.ID {
			other = tr
			break
		}
	}
	if err := coord.Add(context.Background(), other); err != nil {
		t.Fatalf("Add after heal: %v", err)
	}
	pollUntil(t, 10*time.Second, func() bool {
		resp, err := cl.call(context.Background(), &request{Op: opStats, CompactBelow: coord.watermark()})
		return err == nil && resp.Stats.Tombstones == 0
	}, "fence tombstone survived compaction")
	restarted.mu.RLock()
	_, orphaned := restarted.docs[uint32(victim.ID)]
	restarted.mu.RUnlock()
	if orphaned {
		t.Fatal("victim trajectory still present on the recovered node")
	}
}

// TestCoordinatorDirectoryRecovery restarts the coordinator itself: a
// fresh coordinator built with WithDirectoryRecovery over the same
// durable nodes must serve byte-identical results to the one that did
// the writes, resume the epoch counter past every pre-restart mutation,
// and keep fencing correctly — duplicate adds of recovered trajectories
// are rejected, deletes and re-adds of them work.
func TestCoordinatorDirectoryRecovery(t *testing.T) {
	coord, _, addrs, _ := startDurableCluster(t, 2)
	ctx := context.Background()
	trajs := testWorkload.Dataset.Trajectories
	for _, tr := range trajs {
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range trajs[:2] {
		if err := coord.Delete(ctx, tr.ID); err != nil {
			t.Fatal(err)
		}
	}
	want := searchAll(t, coord)
	oldEpoch := coord.watermark()
	coord.Close()

	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	strategy := shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: 2}
	recovered, err := NewCoordinator(ex, strategy, addrs, WithDirectoryRecovery())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recovered.Close() })
	if got := recovered.watermark(); got < oldEpoch {
		t.Fatalf("recovered epoch watermark %d, want >= %d", got, oldEpoch)
	}
	got := searchAll(t, recovered)
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d after recovery: %+v, want %+v", testWorkload.Queries[i].ID, got[i], want[i])
		}
	}
	// Recovered entries are first-class: duplicates are rejected, and a
	// delete + re-add (both fenced against pre-restart epochs) round-trips.
	if err := recovered.Add(ctx, trajs[5]); err == nil {
		t.Fatal("duplicate add of a recovered trajectory succeeded")
	}
	if err := recovered.Delete(ctx, trajs[5].ID); err != nil {
		t.Fatalf("delete of recovered trajectory: %v", err)
	}
	if err := recovered.Add(ctx, trajs[5]); err != nil {
		t.Fatalf("re-add of recovered trajectory: %v", err)
	}
	// A deleted-before-restart ID must have stayed deleted — and be
	// re-addable.
	if err := recovered.Add(ctx, trajs[0]); err != nil {
		t.Fatalf("re-add of pre-restart-deleted trajectory: %v", err)
	}
}
