package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/index"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

// ErrNotFound reports a mutation aimed at a trajectory the cluster does
// not hold.
var ErrNotFound = errors.New("cluster: trajectory not found")

// ErrClosed reports an operation on a closed coordinator (or through a
// closed node client). Searches and mutations racing a Close either
// complete normally or fail with an error wrapping ErrClosed — never a
// panic or a hang.
var ErrClosed = errors.New("cluster: closed")

// addCleanupTimeout bounds the posting-reclaim pass that runs when an
// Add's fan-out fails: the cleanup deletes run under a detached context
// (the failure cause is often the caller's own cancelled context), so a
// wedged node cannot hold the error return forever.
var addCleanupTimeout = 5 * time.Second

// reconcileInterval paces the background reconciler that retries the
// cleanup deletes an unreachable node missed. Package variable so crash
// tests can tighten it.
var reconcileInterval = 2 * time.Second

// Coordinator fronts a cluster of shard nodes: it fingerprints
// trajectories, routes each term to the node owning its shard, fans out
// deletions, and scatter-gathers ranked queries. It maintains the
// directory of per-trajectory fingerprint cardinalities needed to turn
// partial intersection counts into Jaccard distances (plus, when point
// retention is on, which node owns each trajectory's raw points — the
// points themselves live on that node, and exact re-ranking is pushed
// down to it via Rerank). Each
// trajectory's total cardinality is also replicated to the nodes owning
// its terms, so queries carry their cardinality and distance bound down
// and the nodes threshold-prune non-qualifying candidates before the
// wire (see the protocol doc for why that window — unlike the
// shared-count bar — is safe to evaluate node-side).
//
// Every mutation is assigned a monotone epoch, and every search takes a
// snapshot — the epoch below which no mutation is still in flight —
// before scattering. Ranking admits a trajectory only when its mutation
// committed at or below the snapshot, so a search observes a trajectory
// either fully (all its terms on every node) or not at all, never on a
// partial intersection count; quiescent data matches a local Index
// exactly.
//
// Coordinator is safe for concurrent use.
type Coordinator struct {
	ex       index.Extractor
	strategy shard.Strategy
	clients  []*client
	retain   bool
	poolSize int
	// recoverDir makes construction rebuild the directory from the nodes'
	// durable state (see WithDirectoryRecovery in recover.go).
	recoverDir bool

	// replicas[i] are pooled clients to node i's read replicas; readPref
	// picks between primary-preferred reads (replicas are failover only)
	// and round-robin replica reads (primary is the fallback when a
	// replica errors or refuses as stale). rr holds the per-node
	// round-robin cursors.
	replicaAddrs [][]string
	replicas     [][]*client
	readPref     ReadPreference
	rr           []atomic.Uint32

	// cleanups queues the per-node delete retries a failed Add's cleanup
	// could not land (node unreachable); the background reconciler drains
	// it, so stranded postings are reclaimed as soon as the node is back
	// instead of waiting for a lucky re-Add.
	cleanupMu     sync.Mutex
	cleanups      []pendingCleanup
	stopReconcile chan struct{}
	reconcileWG   sync.WaitGroup

	// idMu stripes a per-trajectory mutation lock: Add, Delete and Upsert
	// acquire the ID's stripe for their full node fan-out, so same-ID
	// mutations are serialized end to end. Without it two concurrent
	// Upserts of one ID race: both run the Delete leg (one swallowing
	// ErrNotFound), then both run the Add leg, and the loser fails with a
	// spurious "already indexed" even though each call was well formed.
	// Distinct IDs sharing a stripe merely serialize — never deadlock —
	// and the stripe is always acquired before (never while holding) mu.
	idMu [idStripes]sync.Mutex

	// closed flips once in Close. Entry points check it up front to fail
	// fast with ErrClosed; calls that raced past the check fail inside
	// the node clients, whose post-close checkout also reports ErrClosed.
	closed atomic.Bool

	mu        sync.RWMutex
	directory map[trajectory.ID]docEntry
	// epoch is the last assigned mutation epoch; inFlight holds the epochs
	// of mutations whose node fan-out has not completed. The watermark
	// derived from them (min in-flight − 1) is both the searches' snapshot
	// and the compaction bound piggybacked to the nodes.
	epoch    uint64
	inFlight map[uint64]struct{}
}

// idStripes sizes the per-ID mutation lock table. Collisions between
// distinct IDs cost serialization of two unrelated mutations, nothing
// more, so a modest power of two suffices.
const idStripes = 64

// idLock returns the stripe serializing mutations of one trajectory ID.
func (c *Coordinator) idLock(id trajectory.ID) *sync.Mutex {
	return &c.idMu[uint64(id)%idStripes]
}

// entryState tracks a directory entry through its mutation lifecycle.
type entryState uint8

const (
	// statePending reserves an ID while its add is in flight: duplicate
	// adds are rejected atomically, ranking skips the entry.
	statePending entryState = iota
	// stateLive is a committed trajectory, rankable by searches whose
	// snapshot covers its epoch.
	stateLive
	// stateDeleting marks a delete in flight (or failed, pending retry):
	// the trajectory is withdrawn from ranking, its ID still reserved.
	stateDeleting
)

// docEntry is the coordinator's per-trajectory bookkeeping: the
// fingerprint cardinality (for Jaccard ranking), the lifecycle state,
// the epoch of the trajectory's last mutation, and — under point
// retention — the index of the shard node that stores the trajectory's
// raw points (its point owner), or -1 when no node does. The points
// themselves never live in the coordinator: Add spills them to the
// owner and exact rerank is pushed down to the owning nodes, so the
// directory stays a few dozen bytes per trajectory regardless of
// trajectory length.
type docEntry struct {
	card  int
	owner int
	state entryState
	epoch uint64
}

// Option configures a Coordinator at construction.
type Option func(*Coordinator)

// WithRetainPoints makes Add spill each trajectory's raw point slice to
// the shard node that owns it (one deterministic owner among the nodes
// holding its terms), so searches can re-rank candidates with an exact
// distance computed node-side. Off by default: ingest-heavy workloads
// that never re-rank pay neither the spill bandwidth nor the node
// memory.
func WithRetainPoints() Option {
	return func(c *Coordinator) { c.retain = true }
}

// WithPoolSize sets how many connections the coordinator pools per shard
// node (default 1). A larger pool lets that many RPCs be in flight to
// the same node, raising SearchBatch throughput.
func WithPoolSize(n int) Option {
	return func(c *Coordinator) {
		if n > 0 {
			c.poolSize = n
		}
	}
}

// ReadPreference selects how the coordinator routes query reads across a
// shard's replica set.
type ReadPreference uint8

const (
	// ReadPrimary reads from the primary; replicas serve only as
	// failover when the primary call fails. The default.
	ReadPrimary ReadPreference = iota
	// ReadReplicas round-robins reads across a node's replicas, falling
	// back to the primary when a replica errors or refuses the query as
	// stale (its replicated state does not yet cover the search's
	// snapshot epoch). Results remain snapshot-exact either way — a
	// replica never answers a snapshot it cannot prove complete.
	ReadReplicas
)

// WithReadReplicas registers read replicas: replicas[i] lists the
// addresses of node i's replicas (started with WithReplicaOf pointing at
// node i). The outer slice must have one entry per shard node; inner
// slices may be empty. Mutations always go to primaries — replicas only
// serve reads, per WithReadPreference.
func WithReadReplicas(replicas [][]string) Option {
	return func(c *Coordinator) { c.replicaAddrs = replicas }
}

// WithReadPreference sets the read routing policy (default ReadPrimary).
func WithReadPreference(p ReadPreference) Option {
	return func(c *Coordinator) { c.readPref = p }
}

// NewCoordinator connects to the given node addresses. The strategy's
// Nodes must equal len(addrs).
func NewCoordinator(ex index.Extractor, strategy shard.Strategy, addrs []string, opts ...Option) (*Coordinator, error) {
	if err := strategy.Validate(); err != nil {
		return nil, err
	}
	if strategy.Nodes != len(addrs) {
		return nil, fmt.Errorf("cluster: strategy has %d nodes, got %d addresses", strategy.Nodes, len(addrs))
	}
	c := &Coordinator{
		ex:        ex,
		strategy:  strategy,
		poolSize:  1,
		directory: make(map[trajectory.ID]docEntry),
		inFlight:  make(map[uint64]struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	for _, addr := range addrs {
		cl, err := dialPool(addr, c.poolSize)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	if c.replicaAddrs != nil {
		if len(c.replicaAddrs) != len(addrs) {
			c.Close()
			return nil, fmt.Errorf("cluster: replica set has %d entries, cluster has %d nodes", len(c.replicaAddrs), len(addrs))
		}
		c.replicas = make([][]*client, len(addrs))
		c.rr = make([]atomic.Uint32, len(addrs))
		for i, reps := range c.replicaAddrs {
			for _, addr := range reps {
				cl, err := dialPool(addr, c.poolSize)
				if err != nil {
					c.Close()
					return nil, err
				}
				c.replicas[i] = append(c.replicas[i], cl)
			}
		}
	}
	if c.recoverDir {
		if err := c.recoverDirectory(addrs); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.stopReconcile = make(chan struct{})
	c.reconcileWG.Add(1)
	go c.reconcileLoop()
	return c, nil
}

// Close tears down all node connections. It is idempotent and safe to
// call concurrently with in-flight searches and mutations: later calls
// return nil immediately, and racing operations either complete or fail
// with an error wrapping ErrClosed. After Close every Search, Add,
// Delete, Upsert, DeleteAll and Stats returns ErrClosed.
func (c *Coordinator) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	if c.stopReconcile != nil {
		close(c.stopReconcile)
		c.reconcileWG.Wait()
	}
	var firstErr error
	for _, cl := range c.clients {
		if err := cl.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, reps := range c.replicas {
		for _, cl := range reps {
			if err := cl.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// checkClosed fails fast once Close has run.
func (c *Coordinator) checkClosed() error {
	if c.closed.Load() {
		return ErrClosed
	}
	return nil
}

// beginMutationLocked assigns the next mutation epoch and marks it in
// flight. Callers must hold the write lock.
func (c *Coordinator) beginMutationLocked() uint64 {
	c.epoch++
	c.inFlight[c.epoch] = struct{}{}
	return c.epoch
}

// endMutation retires a mutation epoch, letting the watermark advance.
func (c *Coordinator) endMutation(e uint64) {
	c.mu.Lock()
	delete(c.inFlight, e)
	c.mu.Unlock()
}

// watermarkLocked returns the epoch below which no mutation is still in
// flight. Callers must hold the lock (read or write).
func (c *Coordinator) watermarkLocked() uint64 {
	w := c.epoch
	for e := range c.inFlight {
		if e-1 < w {
			w = e - 1
		}
	}
	return w
}

// watermark is watermarkLocked under a read lock.
func (c *Coordinator) watermark() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.watermarkLocked()
}

// fanOut runs one task per work item concurrently under a cancellable
// child of parent — the coordinator's scatter protocol: the first error
// cancels the sibling in-flight calls (whose deadline-poked I/O then
// unwinds promptly), and the parent context's own error takes precedence
// in the return so cancelled callers see context.Canceled, not a
// secondary node error.
func fanOut[T any](parent context.Context, items []T, task func(ctx context.Context, item T) error) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	errs := make(chan error, len(items))
	var wg sync.WaitGroup
	for _, item := range items {
		wg.Add(1)
		go func(item T) {
			defer wg.Done()
			errs <- task(ctx, item)
		}(item)
	}
	go func() {
		wg.Wait()
		close(errs)
	}()
	var firstErr error
	for err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	if firstErr != nil {
		if err := parent.Err(); err != nil {
			return err
		}
		return firstErr
	}
	return nil
}

// groupByNode splits a term set by owning node; only nodes owning at
// least one term appear in the groups. A non-nil shardSet additionally
// collects the distinct shards touched (the Search path's fan-out stat)
// in the same pass; the Add path passes nil and skips that cost.
func (c *Coordinator) groupByNode(set *bitmap.Bitmap, shardSet map[int]struct{}) map[int][]uint32 {
	groups := make(map[int][]uint32)
	set.Iterate(func(term uint32) bool {
		sh := c.strategy.ShardOf(term)
		if shardSet != nil {
			shardSet[sh] = struct{}{}
		}
		n := c.strategy.NodeOf(sh)
		groups[n] = append(groups[n], term)
		return true
	})
	return groups
}

// Add fingerprints the trajectory and routes its postings to the cluster,
// honoring ctx cancellation while waiting on the shard nodes. The first
// node failure cancels the sibling calls, so one wedged node cannot hold
// the add past another node's error.
//
// The ID is reserved with a pending directory entry before the fan-out
// (duplicate Adds are rejected atomically) and published for ranking only
// after every node accepted its postings; searches additionally admit it
// only once their snapshot covers its epoch, so a search never ranks a
// trajectory on a partial intersection count. A failed add reclaims the
// postings it already applied by fanning out deletes to the nodes it
// touched (epoch fencing makes the cleanup safe against the abandoned add
// racing it onto a node), withdraws the reservation, and is retryable.
// Cleanup is best-effort under its own timeout: if a node is unreachable,
// its stranded postings stay hidden behind the directory check until an
// Upsert or re-Add of the ID replaces them.
func (c *Coordinator) Add(parent context.Context, t *trajectory.Trajectory) error {
	lock := c.idLock(t.ID)
	lock.Lock()
	defer lock.Unlock()
	return c.addID(parent, t)
}

// addID is Add under an already-held ID stripe.
func (c *Coordinator) addID(parent context.Context, t *trajectory.Trajectory) error {
	if err := parent.Err(); err != nil {
		return err
	}
	if err := c.checkClosed(); err != nil {
		return err
	}
	set := c.ex.Extract(t.Points)
	card := set.Cardinality()
	c.mu.Lock()
	if _, dup := c.directory[t.ID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: trajectory %d already indexed", t.ID)
	}
	e := c.beginMutationLocked()
	c.directory[t.ID] = docEntry{state: statePending, epoch: e, owner: -1}
	below := c.watermarkLocked()
	c.mu.Unlock()

	groups := c.groupByNode(set, nil)
	nodes := nodesOf(groups)
	// Under point retention the trajectory's raw points spill to exactly
	// one deterministic owner among the nodes holding its terms; that node
	// stores (and logs, and replicates) them so exact rerank can run
	// node-side. A termless trajectory has no owner — it can never appear
	// in a fingerprint shortlist, so it never needs reranking either.
	owner := -1
	if c.retain && len(nodes) > 0 {
		owner = pointOwner(uint32(t.ID), nodes)
	}
	err := fanOut(parent, nodes, func(ctx context.Context, node int) error {
		// Card replicates the trajectory's total cardinality |G| so
		// the node can threshold-prune query candidates locally.
		add := &addRequest{ID: uint32(t.ID), Terms: groups[node], Epoch: e, Card: card}
		if node == owner {
			add.Points = t.Points
		}
		_, err := c.clients[node].call(ctx, &request{
			Op:           opAdd,
			CompactBelow: below,
			Add:          add,
		})
		return err
	})
	if err != nil {
		c.cleanupFailedAdd(t.ID, nodes)
		c.mu.Lock()
		delete(c.directory, t.ID) // withdraw the reservation; retryable
		delete(c.inFlight, e)
		c.mu.Unlock()
		return err
	}
	c.mu.Lock()
	c.directory[t.ID] = docEntry{card: card, state: stateLive, epoch: e, owner: owner}
	delete(c.inFlight, e)
	c.mu.Unlock()
	return nil
}

// pointOwner picks the shard node that stores a trajectory's raw points:
// a deterministic choice among the nodes owning its terms, spread by ID
// so retention memory balances across the cluster. nodes must be
// non-empty; it is sorted in place so the choice does not depend on map
// iteration order.
func pointOwner(id uint32, nodes []int) int {
	sort.Ints(nodes)
	return nodes[int(id)%len(nodes)]
}

// cleanupFailedAdd reclaims the postings a failed Add already applied by
// fanning a delete to the nodes it touched. The delete's fresh epoch
// fences the failed add: even if an abandoned add call lands on a node
// after the cleanup, the node ignores it as stale. The directory check
// already hides the ID from searches, so a node the cleanup cannot reach
// costs memory, not correctness — its deletes are queued for the
// background reconciler, which retries them (same fencing epoch) until
// the node is reachable again, e.g. after it restarts from its WAL.
func (c *Coordinator) cleanupFailedAdd(id trajectory.ID, nodes []int) {
	c.mu.Lock()
	e := c.beginMutationLocked()
	below := c.watermarkLocked()
	c.mu.Unlock()
	defer c.endMutation(e)
	ctx, cancel := context.WithTimeout(context.Background(), addCleanupTimeout)
	defer cancel()
	if failed := c.fanDeletes(ctx, id, e, below, nodes); len(failed) > 0 {
		c.cleanupMu.Lock()
		c.cleanups = append(c.cleanups, pendingCleanup{id: id, epoch: e, nodes: failed})
		c.cleanupMu.Unlock()
	}
}

// pendingCleanup is one failed Add's unfinished posting reclaim: the
// nodes whose fencing delete has not landed yet, and the epoch it must
// carry. The epoch is reused verbatim across retries — it postdates the
// abandoned add (fencing it) and predates any later mutation of the ID
// (so a retry can never undo a re-Add).
type pendingCleanup struct {
	id    trajectory.ID
	epoch uint64
	nodes []int
}

// fanDeletes sends a fencing delete to each node and returns the nodes
// whose delete did not land.
func (c *Coordinator) fanDeletes(ctx context.Context, id trajectory.ID, epoch, below uint64, nodes []int) []int {
	var mu sync.Mutex
	var failed []int
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			_, err := c.clients[node].call(ctx, &request{
				Op:           opDelete,
				CompactBelow: below,
				Delete:       &deleteRequest{ID: uint32(id), Epoch: epoch},
			})
			if err != nil {
				mu.Lock()
				failed = append(failed, node)
				mu.Unlock()
			}
		}(node)
	}
	wg.Wait()
	return failed
}

// reconcileLoop drains the pending-cleanup queue on a fixed cadence
// until Close.
func (c *Coordinator) reconcileLoop() {
	defer c.reconcileWG.Done()
	tick := time.NewTicker(reconcileInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stopReconcile:
			return
		case <-tick.C:
			c.reconcileOnce()
		}
	}
}

// reconcileOnce retries every queued cleanup delete, re-queueing the
// nodes that still cannot be reached.
func (c *Coordinator) reconcileOnce() {
	c.cleanupMu.Lock()
	pending := c.cleanups
	c.cleanups = nil
	c.cleanupMu.Unlock()
	for _, p := range pending {
		below := c.watermark()
		ctx, cancel := context.WithTimeout(context.Background(), addCleanupTimeout)
		failed := c.fanDeletes(ctx, p.id, p.epoch, below, p.nodes)
		cancel()
		if len(failed) > 0 {
			c.cleanupMu.Lock()
			c.cleanups = append(c.cleanups, pendingCleanup{id: p.id, epoch: p.epoch, nodes: failed})
			c.cleanupMu.Unlock()
		}
	}
}

// PendingCleanups reports how many failed-Add cleanups are still waiting
// on unreachable nodes — zero once every stranded posting has been
// fenced and reclaimed.
func (c *Coordinator) PendingCleanups() int {
	c.cleanupMu.Lock()
	defer c.cleanupMu.Unlock()
	return len(c.cleanups)
}

// Delete withdraws a trajectory from the cluster and reclaims its
// postings on every node, honoring ctx cancellation while waiting on the
// shard nodes. It returns ErrNotFound when the ID is not indexed.
//
// The directory entry flips to a deleting state up front, so the
// trajectory vanishes from ranking atomically — concurrent searches see
// it fully or not at all, never on the partial counts of a half-applied
// delete. A failed Delete keeps the entry in the deleting state: the
// trajectory stays withdrawn from results, duplicate Adds stay rejected,
// and retrying the Delete reclaims whatever postings remain (node-side
// deletion is idempotent).
func (c *Coordinator) Delete(parent context.Context, id trajectory.ID) error {
	lock := c.idLock(id)
	lock.Lock()
	defer lock.Unlock()
	return c.deleteID(parent, id)
}

// deleteID is Delete under an already-held ID stripe.
func (c *Coordinator) deleteID(parent context.Context, id trajectory.ID) error {
	if err := parent.Err(); err != nil {
		return err
	}
	if err := c.checkClosed(); err != nil {
		return err
	}
	c.mu.Lock()
	entry, ok := c.directory[id]
	if !ok {
		c.mu.Unlock()
		return ErrNotFound
	}
	if entry.state == statePending {
		c.mu.Unlock()
		return fmt.Errorf("cluster: trajectory %d has an add in flight", id)
	}
	entry.state = stateDeleting
	c.directory[id] = entry
	e := c.beginMutationLocked()
	below := c.watermarkLocked()
	c.mu.Unlock()

	// Broadcast: the coordinator does not track which nodes own the
	// trajectory's terms, but each node knows the terms it holds per ID,
	// and deleting an absent ID is a cheap no-op.
	err := fanOut(parent, allNodes(len(c.clients)), func(ctx context.Context, node int) error {
		_, err := c.clients[node].call(ctx, &request{
			Op:           opDelete,
			CompactBelow: below,
			Delete:       &deleteRequest{ID: uint32(id), Epoch: e},
		})
		return err
	})
	c.mu.Lock()
	if err == nil {
		delete(c.directory, id)
	}
	delete(c.inFlight, e)
	c.mu.Unlock()
	return err
}

// Upsert replaces a trajectory: an indexed ID is deleted first, then the
// new version is added under a fresh epoch. During the swap the ID is
// absent from results — searches observe the old version, nothing, or
// the new version, never a mixture. The delete and add legs run as one
// critical section under the ID's mutation stripe, so concurrent
// same-ID upserts serialize instead of interleaving their legs (which
// would fail the loser's add on its own sibling's re-insert).
func (c *Coordinator) Upsert(ctx context.Context, t *trajectory.Trajectory) error {
	lock := c.idLock(t.ID)
	lock.Lock()
	defer lock.Unlock()
	if err := c.deleteID(ctx, t.ID); err != nil && !errors.Is(err, ErrNotFound) {
		return err
	}
	return c.addID(ctx, t)
}

// DeleteAll deletes a batch of IDs on the given number of parallel
// workers (minimum 1) and reports how many were actually indexed.
// Unknown IDs are skipped, so the call is idempotent; the first hard
// error cancels the remaining work.
func (c *Coordinator) DeleteAll(parent context.Context, ids []trajectory.ID, workers int) (int, error) {
	if err := parent.Err(); err != nil {
		return 0, err
	}
	if err := c.checkClosed(); err != nil {
		return 0, err
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var deleted atomic.Int64
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	jobs := make(chan trajectory.ID)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				switch err := c.Delete(ctx, id); {
				case err == nil:
					deleted.Add(1)
				case errors.Is(err, ErrNotFound):
					// Idempotent skip.
				default:
					fail(err)
					return
				}
			}
		}()
	}
dispatch:
	for _, id := range ids {
		select {
		case jobs <- id:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return int(deleted.Load()), firstErr
	}
	return int(deleted.Load()), parent.Err()
}

// nodesOf returns the keys of a node→terms grouping.
func nodesOf(groups map[int][]uint32) []int {
	nodes := make([]int, 0, len(groups))
	for n := range groups {
		nodes = append(nodes, n)
	}
	return nodes
}

// allNodes returns the node indices 0..n-1.
func allNodes(n int) []int {
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

// DiscardPoints withdraws exact re-ranking for every trajectory added
// so far: the coordinator forgets which node owns each trajectory's
// points, so Rerank fails for them with a clear error. The nodes' own
// retained copies are released lazily — the next mutation of an ID
// replaces them, and they never burden the coordinator — rather than
// through an extra fan-out. With retention on, trajectories added
// afterwards rerank normally again.
func (c *Coordinator) DiscardPoints() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, entry := range c.directory {
		entry.owner = -1
		c.directory[id] = entry
	}
}

// ExactMetric names a built-in exact trajectory metric the shard nodes
// can evaluate against their retained points. Only built-ins are
// addressable over the wire: a custom metric is an arbitrary function
// and cannot cross a process boundary.
type ExactMetric uint8

const (
	// MetricDTW selects dynamic time warping; MetricDFD the discrete
	// Fréchet distance. The node-side implementations are the same
	// functions the local engines call, so scores are bit-identical.
	MetricDTW ExactMetric = ExactMetric(metricDTW)
	MetricDFD ExactMetric = ExactMetric(metricDFD)
)

// Rerank pushes the exact-refinement pass of a search down to the shard
// nodes: each node owning points of shortlist members scores its slice
// locally (DTW or DFD, with lower-bound pruning against limit) and
// ships back (id, score) pairs; the merged scores are sorted by the
// engines' shared (distance, ID) contract and truncated to limit. Raw
// candidate points never cross the wire — only the query does, once per
// owning node.
//
// The result is byte-identical to fetching every candidate's points and
// scoring them coordinator-side: nodes run the identical metric code on
// identical float inputs, a node only skips a candidate its lower bound
// proves outside its own (hence the global) top-limit, and the final
// merge reuses index.SortResults. limit <= 0 scores and returns the
// whole shortlist.
func (c *Coordinator) Rerank(parent context.Context, hits []index.Result, query []geo.Point, metric ExactMetric, limit int) ([]index.Result, error) {
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if err := c.checkClosed(); err != nil {
		return nil, err
	}
	if len(hits) == 0 {
		return hits, nil
	}
	groups := make(map[int][]uint32)
	// shared carries each hit's fingerprint-intersection count through
	// the remote scoring: the local path keeps the original Result and
	// only replaces Distance, so the pushed-down path must reattach
	// Shared for the two to stay byte-identical.
	shared := make(map[uint32]int, len(hits))
	var missing []uint32
	c.mu.RLock()
	for _, h := range hits {
		entry, ok := c.directory[h.ID]
		if !ok || entry.state != stateLive || entry.owner < 0 {
			missing = append(missing, uint32(h.ID))
			continue
		}
		groups[entry.owner] = append(groups[entry.owner], uint32(h.ID))
		shared[uint32(h.ID)] = h.Shared
	}
	below := c.watermarkLocked()
	c.mu.RUnlock()
	if len(missing) == 0 {
		merged := make([]index.Result, 0, len(hits))
		var mu sync.Mutex
		err := fanOut(parent, nodesOf(groups), func(ctx context.Context, node int) error {
			resp, err := c.readCall(ctx, node, &request{
				Op:           opRerank,
				CompactBelow: below,
				Rerank:       &rerankRequest{IDs: groups[node], Query: query, Metric: rerankMetric(metric), Limit: limit},
			})
			if err != nil {
				return err
			}
			rr := resp.Rerank
			if rr == nil {
				return errors.New("cluster: node returned no rerank payload")
			}
			mu.Lock()
			if len(rr.Missing) > 0 {
				// A shortlist member raced a delete/upsert between the
				// directory check and the node call. Collect rather than
				// fail fast, so the error names every unavailable ID.
				missing = append(missing, rr.Missing...)
			}
			for i, id := range rr.IDs {
				merged = append(merged, index.Result{ID: trajectory.ID(id), Distance: rr.Scores[i], Shared: shared[id]})
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(missing) == 0 {
			index.SortResults(merged)
			if limit > 0 && len(merged) > limit {
				merged = merged[:limit]
			}
			return merged, nil
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return nil, fmt.Errorf("cluster: cannot rerank: raw points of %d of %d shortlist trajectories unavailable (IDs %v): cluster built without point retention, DiscardPoints was called, a recovered directory predating the points, or a concurrent delete", len(missing), len(hits), missing)
}

// QueryStats reports the fan-out of the last analysis of a query set.
type QueryStats struct {
	// Shards and Nodes touched by the query's terms. Locality on the
	// space-filling curve keeps Shards small; the modulo step spreads
	// them over Nodes.
	Shards int
	Nodes  int
}

// Analyze returns the fan-out a query would incur, without executing it.
func (c *Coordinator) Analyze(q *trajectory.Trajectory) QueryStats {
	return c.Plan(c.ex.Extract(q.Points)).Stats()
}

// Extractor returns the coordinator's term extractor, so callers can
// prepare query term sets once and reuse them across searches.
func (c *Coordinator) Extractor() index.Extractor { return c.ex }

// Strategy returns the shard strategy the coordinator routes with. Two
// coordinators with equal strategies partition any term set identically,
// so a QueryPlan is reusable across them.
func (c *Coordinator) Strategy() shard.Strategy { return c.strategy }

// QueryPlan is one term set's routing across a shard strategy: the
// per-node term slices exactly as they go on the wire (queryRequest.Terms),
// the owning-node list, and the distinct-shard count. Building the plan is
// the per-query sharding cost — one pass over the set through ShardOf and
// NodeOf — so preparing it once and reusing it across repeated or batched
// searches removes that cost from the scatter hot path. A plan is
// immutable after construction and safe for concurrent use; it is valid
// for any coordinator whose Strategy equals the one that built it.
type QueryPlan struct {
	set *bitmap.Bitmap
	// card is the set's cardinality — the query's global |F|, carried on
	// the wire so nodes can threshold-prune — counted once at planning.
	card   int
	groups map[int][]uint32
	nodes  []int
	shards int
}

// Set returns the term set the plan was built from. Callers use it to
// detect a stale plan when a cached set is re-derived.
func (p *QueryPlan) Set() *bitmap.Bitmap { return p.set }

// Stats returns the fan-out the planned query incurs.
func (p *QueryPlan) Stats() QueryStats {
	return QueryStats{Shards: p.shards, Nodes: len(p.groups)}
}

// Plan partitions a query term set by owning node under the coordinator's
// strategy, returning the reusable routing.
func (c *Coordinator) Plan(set *bitmap.Bitmap) *QueryPlan {
	shardSet := make(map[int]struct{}, 8)
	groups := c.groupByNode(set, shardSet)
	return &QueryPlan{
		set:    set,
		card:   set.Cardinality(),
		groups: groups,
		nodes:  nodesOf(groups),
		shards: len(shardSet),
	}
}

// SearchInfo reports what one distributed search touched.
type SearchInfo struct {
	// Candidates is the number of distinct trajectories seen across the
	// partial intersection counts that crossed the wire, before distance
	// filtering. Candidates the shard nodes pruned are not included.
	Candidates int
	// Pruned is how many candidates the coordinator's threshold bounds
	// skipped before scoring, after the merge.
	Pruned int
	// NodePruned is how many candidate partials the shard nodes'
	// cardinality window skipped before serialization — entries that,
	// without node-side pruning, would have crossed the wire and been
	// pruned by the coordinator instead. A candidate spanning several
	// nodes counts once per node, matching its wire cost.
	NodePruned int
	// WirePartials is the number of (ID, count) partial entries that did
	// cross the wire, summed over the answering nodes; with NodePruned it
	// quantifies the transfer the node-side window saved.
	WirePartials int
	// Shards and Nodes are the fan-out the query's terms incurred.
	Shards int
	Nodes  int
}

// Query scatter-gathers the ranked retrieval problem across the cluster,
// equivalent to index.Inverted.Query on the same data.
//
// Deprecated: use Search, which takes a context and reports fan-out.
func (c *Coordinator) Query(q *trajectory.Trajectory, maxDistance float64, limit int) ([]index.Result, error) {
	results, _, err := c.Search(context.Background(), q, maxDistance, limit)
	return results, err
}

// Search scatter-gathers the ranked retrieval problem across the cluster
// and merges partial intersection counts into Jaccard-ranked results,
// equivalent to index.Inverted.Search on the same data. Cancelling ctx
// aborts the scatter-gather promptly and returns the context's error;
// the first node failure cancels the sibling calls, so one wedged node
// cannot hold the query past another node's error.
//
// The search is snapshot-isolated against concurrent mutations: it takes
// the mutation watermark before scattering and ranks only trajectories
// whose last mutation committed at or below it. A trajectory whose add
// or delete overlaps the search is either fully visible (the mutation
// committed before the snapshot, so every node answered with its terms)
// or fully invisible — never ranked on a partial intersection count.
func (c *Coordinator) Search(parent context.Context, q *trajectory.Trajectory, maxDistance float64, limit int) ([]index.Result, SearchInfo, error) {
	if err := parent.Err(); err != nil {
		return nil, SearchInfo{}, err
	}
	set := c.ex.Extract(q.Points)
	return c.SearchPlan(parent, c.Plan(set), maxDistance, limit)
}

// SearchPlan is Search over a pre-planned query: the term set is already
// extracted and partitioned by owning node, so the scatter starts
// immediately — repeated and batched searches of one prepared query pay
// extraction and sharding once, not per call. The plan must have been
// built by a coordinator with an equal Strategy.
func (c *Coordinator) SearchPlan(parent context.Context, plan *QueryPlan, maxDistance float64, limit int) ([]index.Result, SearchInfo, error) {
	if err := parent.Err(); err != nil {
		return nil, SearchInfo{}, err
	}
	if err := c.checkClosed(); err != nil {
		return nil, SearchInfo{}, err
	}
	groups := plan.groups
	snap := c.watermark()
	info := SearchInfo{
		Shards: plan.shards,
		Nodes:  len(groups),
	}
	qCard := plan.card
	var acc partialAccumulator
	if qCard <= math.MaxUint16 {
		// The same pool feeds the shard nodes' query handlers; a
		// coordinator embedded in a node process shares it.
		counter := counterPool.Get().(*bitmap.Counter)
		defer func() {
			counter.Reset()
			counterPool.Put(counter)
		}()
		acc = (*counterAccumulator)(counter)
	} else {
		// Degenerate term count: partial sums could wrap the counter's
		// 16-bit counts, so merge into a map instead (mirrors the shard
		// nodes' own wide fallback).
		acc = mapAccumulator{}
	}
	var sharedMu sync.Mutex
	err := fanOut(parent, plan.nodes, func(ctx context.Context, node int) error {
		resp, err := c.readCall(ctx, node, &request{
			Op:           opQuery,
			CompactBelow: snap,
			// QueryCard and MaxDistance let the node apply the
			// cardinality window before serializing its partials.
			Query: &queryRequest{Terms: groups[node], QueryCard: qCard, MaxDistance: maxDistance},
		})
		if err != nil {
			return err
		}
		// Node term spaces are disjoint, so summing partial counts yields
		// the exact |F ∩ G| — the distributed half of the counting merge.
		sharedMu.Lock()
		acc.addPartial(resp.Query.IDs, resp.Query.Counts)
		info.NodePruned += resp.Query.Pruned
		info.WirePartials += len(resp.Query.IDs)
		sharedMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	info.Candidates = acc.candidates()

	// Snapshot the directory columns ranking needs — cardinality,
	// liveness, epoch — under the read lock, then rank outside it. The
	// lock covers only the map lookups; holding it across the whole
	// scoring pass would block every mutation for the duration of a large
	// candidate set's floating-point ranking.
	ranked := make([]rankedCandidate, 0, info.Candidates)
	c.mu.RLock()
	acc.forEach(func(id uint32, shared int) {
		entry, ok := c.directory[trajectory.ID(id)]
		if !ok || entry.state != stateLive || entry.epoch > snap {
			return // unknown, mid-mutation, or newer than the snapshot
		}
		ranked = append(ranked, rankedCandidate{id: id, card: entry.card, shared: shared})
	})
	c.mu.RUnlock()

	// Rank through the same threshold-pruning core as the local index, so
	// the cluster inherits its bounds, its top-k heap, and its
	// byte-identical (distance, ID) contract.
	var ranker index.Ranker
	ranker.Init(qCard, maxDistance, limit)
	for _, cand := range ranked {
		ranker.Consider(trajectory.ID(cand.id), cand.card, cand.shared)
	}
	results := ranker.Finish(make([]index.Result, 0, limitCap(limit, info.Candidates)))
	if len(results) == 0 {
		// Match the local engine's no-hits contract (a nil slice): callers
		// compare the two engines' rankings with reflect.DeepEqual.
		results = nil
	}
	info.Pruned = ranker.Pruned()
	return results, info, nil
}

// readCall routes one read request across a shard's primary and replica
// set per the coordinator's read preference. Under ReadReplicas, reads
// round-robin the replicas; a replica that errors or refuses the request
// as stale falls through to the next, and ultimately the primary. Under
// ReadPrimary, the primary answers and replicas are failover only. The
// snapshot watermark the request carries makes either route exact: a
// replica only answers a snapshot its replicated state provably covers.
func (c *Coordinator) readCall(ctx context.Context, node int, req *request) (*response, error) {
	var reps []*client
	if c.replicas != nil {
		reps = c.replicas[node]
	}
	if len(reps) == 0 {
		return c.clients[node].call(ctx, req)
	}
	if c.readPref == ReadReplicas {
		start := int(c.rr[node].Add(1))
		for i := 0; i < len(reps); i++ {
			resp, err := reps[(start+i)%len(reps)].call(ctx, req)
			if err == nil && !resp.Stale {
				return resp, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		return c.clients[node].call(ctx, req)
	}
	resp, err := c.clients[node].call(ctx, req)
	if err == nil {
		return resp, nil
	}
	if ctx.Err() != nil {
		return nil, err
	}
	for _, rep := range reps {
		if resp, rerr := rep.call(ctx, req); rerr == nil && !resp.Stale {
			return resp, nil
		}
	}
	return nil, err
}

// rankedCandidate is one merged candidate with its directory snapshot:
// the columns the ranking loop needs, copied out so the loop runs
// without holding the coordinator's lock.
type rankedCandidate struct {
	id     uint32
	card   int
	shared int
}

// partialAccumulator is the merge target of a scatter-gather: it sums the
// nodes' partial intersection counts and enumerates the result. The two
// implementations differ only in count width.
type partialAccumulator interface {
	addPartial(ids []uint32, counts []uint32)
	candidates() int
	forEach(f func(id uint32, shared int))
}

// counterAccumulator adapts the pooled bitmap.Counter — the fast path.
type counterAccumulator bitmap.Counter

func (a *counterAccumulator) addPartial(ids []uint32, counts []uint32) {
	c := (*bitmap.Counter)(a)
	for i, id := range ids {
		c.AddN(id, int(counts[i]))
	}
}

func (a *counterAccumulator) candidates() int { return len((*bitmap.Counter)(a).Candidates()) }

func (a *counterAccumulator) forEach(f func(id uint32, shared int)) {
	c := (*bitmap.Counter)(a)
	for _, v := range c.Candidates() {
		f(v, c.Count(v))
	}
}

// mapAccumulator is the wide fallback, immune to 16-bit count wrap.
type mapAccumulator map[uint32]int

func (a mapAccumulator) addPartial(ids []uint32, counts []uint32) {
	for i, id := range ids {
		a[id] += int(counts[i])
	}
}

func (a mapAccumulator) candidates() int { return len(a) }

func (a mapAccumulator) forEach(f func(id uint32, shared int)) {
	for id, shared := range a {
		f(id, shared)
	}
}

// limitCap sizes the result allocation: the cap when one applies, the
// candidate count otherwise.
func limitCap(limit, candidates int) int {
	if limit > 0 && limit < candidates {
		return limit
	}
	return candidates
}

// Stats gathers per-node term and posting counts in parallel, slice
// index i matching node i. Cancelling ctx aborts the gather promptly;
// the first node failure cancels the sibling calls. The request
// piggybacks the mutation watermark, so a Stats call also lets nodes
// reclaim dead tombstones before reporting.
func (c *Coordinator) Stats(parent context.Context) ([]NodeStats, error) {
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if err := c.checkClosed(); err != nil {
		return nil, err
	}
	below := c.watermark()
	out := make([]NodeStats, len(c.clients))
	err := fanOut(parent, allNodes(len(c.clients)), func(ctx context.Context, i int) error {
		resp, err := c.clients[i].call(ctx, &request{Op: opStats, CompactBelow: below})
		if err != nil {
			return err
		}
		s := resp.Stats
		out[i] = NodeStats{
			Node:           i,
			Terms:          s.Terms,
			Postings:       s.Postings,
			Docs:           s.Docs,
			Tombstones:     s.Tombstones,
			Epoch:          s.Epoch,
			StableEpoch:    s.StableEpoch,
			WALBytes:       s.WALBytes,
			WALSegments:    s.WALSegments,
			WALRecords:     s.WALRecords,
			WALSyncs:       s.WALSyncs,
			WALLastSync:    time.Duration(s.WALLastSyncNS),
			FullSyncs:      s.FullSyncs,
			Subscribers:    s.Subscribers,
			RetainedDocs:   s.RetainedDocs,
			RetainedPoints: s.RetainedPoints,
			RetainedBytes:  s.RetainedBytes,
			RerankScored:   s.RerankScored,
			RerankSkipped:  s.RerankSkipped,
		}
		if c.replicas == nil || len(c.replicas[i]) == 0 {
			return nil
		}
		// Replica lag is measured against the primary's highest applied
		// epoch at the time of this gather; a momentarily larger stable
		// epoch (the stream ran ahead of our primary read) clamps to 0.
		for _, rep := range c.replicas[i] {
			rresp, rerr := rep.call(ctx, &request{Op: opStats})
			rs := ReplicaStats{Addr: rep.addr}
			if rerr != nil {
				rs.Err = rerr.Error()
			} else {
				rs.StableEpoch = rresp.Stats.StableEpoch
				rs.FullSyncs = rresp.Stats.FullSyncs
				if out[i].Epoch > rs.StableEpoch {
					rs.EpochLag = out[i].Epoch - rs.StableEpoch
				}
			}
			out[i].Replicas = append(out[i].Replicas, rs)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NodeStats is one node's shard statistics, including its durability and
// replication state.
type NodeStats struct {
	Node     int
	Terms    int
	Postings int
	// Docs is the number of live trajectories with postings on the node;
	// Tombstones counts delete fences not yet reclaimed by compaction.
	Docs       int
	Tombstones int
	// Epoch is the highest mutation epoch the node has applied;
	// StableEpoch the epoch through which its state is proven complete.
	Epoch       uint64
	StableEpoch uint64
	// Write-ahead log state; zero when the node runs without one.
	WALBytes    int64
	WALSegments int
	WALRecords  uint64
	WALSyncs    uint64
	WALLastSync time.Duration
	// FullSyncs counts full syncs the node served; Subscribers is how
	// many replicas currently tail its mutation stream; Replicas holds
	// the per-replica lag gathered alongside.
	FullSyncs   uint64
	Subscribers int
	Replicas    []ReplicaStats
	// Point retention and node-side rerank state: trajectories whose raw
	// points this node owns, the points across them, their in-memory
	// size, and how many rerank candidates the node has exact-scored vs
	// settled by the lower bound alone.
	RetainedDocs   int
	RetainedPoints int
	RetainedBytes  int64
	RerankScored   uint64
	RerankSkipped  uint64
}

// ReplicaStats is one read replica's replication state as seen during a
// Stats gather. EpochLag is the primary's highest applied epoch minus
// the replica's stable epoch — 0 means the replica can serve every
// snapshot the primary can. Err is set (and the epochs zero) when the
// replica was unreachable.
type ReplicaStats struct {
	Addr        string
	StableEpoch uint64
	EpochLag    uint64
	FullSyncs   uint64
	Err         string
}
