package cluster

import (
	"context"
	"fmt"
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/geo"
	"geodabs/internal/index"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

// Coordinator fronts a cluster of shard nodes: it fingerprints
// trajectories, routes each term to the node owning its shard, and
// scatter-gathers ranked queries. It also maintains the directory of
// per-trajectory fingerprint cardinalities needed to turn partial
// intersection counts into Jaccard distances, plus the raw points for
// exact re-ranking.
//
// Coordinator is safe for concurrent use.
type Coordinator struct {
	ex       index.Extractor
	strategy shard.Strategy
	clients  []*client

	mu        sync.RWMutex
	directory map[trajectory.ID]docEntry
}

// docEntry is the coordinator's per-trajectory bookkeeping: the
// fingerprint cardinality (for Jaccard ranking) and the raw points (a
// slice header sharing the caller's backing array, for exact re-ranking).
// A pending entry reserves the ID while its add is in flight — it
// rejects duplicate Adds atomically but is skipped by ranking until the
// scatter completes.
type docEntry struct {
	card    int
	points  []geo.Point
	pending bool
}

// NewCoordinator connects to the given node addresses. The strategy's
// Nodes must equal len(addrs).
func NewCoordinator(ex index.Extractor, strategy shard.Strategy, addrs []string) (*Coordinator, error) {
	if err := strategy.Validate(); err != nil {
		return nil, err
	}
	if strategy.Nodes != len(addrs) {
		return nil, fmt.Errorf("cluster: strategy has %d nodes, got %d addresses", strategy.Nodes, len(addrs))
	}
	c := &Coordinator{
		ex:        ex,
		strategy:  strategy,
		directory: make(map[trajectory.ID]docEntry),
	}
	for _, addr := range addrs {
		cl, err := dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Close tears down all node connections.
func (c *Coordinator) Close() error {
	var firstErr error
	for _, cl := range c.clients {
		if err := cl.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fanOut runs one task per work item concurrently under a cancellable
// child of parent — the coordinator's scatter protocol: the first error
// cancels the sibling in-flight calls (whose deadline-poked I/O then
// unwinds promptly), and the parent context's own error takes precedence
// in the return so cancelled callers see context.Canceled, not a
// secondary node error.
func fanOut[T any](parent context.Context, items []T, task func(ctx context.Context, item T) error) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	errs := make(chan error, len(items))
	var wg sync.WaitGroup
	for _, item := range items {
		wg.Add(1)
		go func(item T) {
			defer wg.Done()
			errs <- task(ctx, item)
		}(item)
	}
	go func() {
		wg.Wait()
		close(errs)
	}()
	var firstErr error
	for err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	if firstErr != nil {
		if err := parent.Err(); err != nil {
			return err
		}
		return firstErr
	}
	return nil
}

// groupByNode splits a term set by owning node; only nodes owning at
// least one term appear in the groups. A non-nil shardSet additionally
// collects the distinct shards touched (the Search path's fan-out stat)
// in the same pass; the Add path passes nil and skips that cost.
func (c *Coordinator) groupByNode(set *bitmap.Bitmap, shardSet map[int]struct{}) map[int][]uint32 {
	groups := make(map[int][]uint32)
	set.Iterate(func(term uint32) bool {
		sh := c.strategy.ShardOf(term)
		if shardSet != nil {
			shardSet[sh] = struct{}{}
		}
		n := c.strategy.NodeOf(sh)
		groups[n] = append(groups[n], term)
		return true
	})
	return groups
}

// Add fingerprints the trajectory and routes its postings to the cluster,
// honoring ctx cancellation while waiting on the shard nodes. The first
// node failure cancels the sibling calls, so one wedged node cannot hold
// the add past another node's error.
//
// The ID is reserved with a pending directory entry before the fan-out
// (duplicate Adds are rejected atomically) and published for ranking
// only after every node accepted its postings: a search that reaches
// the ranking step while the add is still in flight skips the pending
// entry instead of ranking it on partial intersection counts. Adds are
// eventually consistent, not snapshot-isolated — a search whose
// scatter overlaps an add's fan-out window can still observe the add on
// some nodes and not others, and ranks it on the partial count once the
// entry publishes; quiescent data always matches a local Index exactly
// (see ROADMAP for snapshot isolation). A failed add withdraws the
// reservation and is retryable — postings already applied are re-added
// idempotently — but until the retry happens they sit stranded on the
// nodes; queries gather and then discard the orphaned IDs at the
// directory check, and the wire protocol has no delete op to reclaim
// them yet (see ROADMAP).
func (c *Coordinator) Add(parent context.Context, t *trajectory.Trajectory) error {
	if err := parent.Err(); err != nil {
		return err
	}
	set := c.ex.Extract(t.Points)
	c.mu.Lock()
	if _, dup := c.directory[t.ID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: trajectory %d already indexed", t.ID)
	}
	c.directory[t.ID] = docEntry{pending: true}
	c.mu.Unlock()

	groups := c.groupByNode(set, nil)
	err := fanOut(parent, nodesOf(groups), func(ctx context.Context, node int) error {
		_, err := c.clients[node].call(ctx, &request{
			Op:  opAdd,
			Add: &addRequest{ID: uint32(t.ID), Terms: groups[node]},
		})
		return err
	})
	c.mu.Lock()
	if err != nil {
		delete(c.directory, t.ID) // withdraw the reservation; retryable
	} else {
		c.directory[t.ID] = docEntry{card: set.Cardinality(), points: t.Points}
	}
	c.mu.Unlock()
	return err
}

// nodesOf returns the keys of a node→terms grouping.
func nodesOf(groups map[int][]uint32) []int {
	nodes := make([]int, 0, len(groups))
	for n := range groups {
		nodes = append(nodes, n)
	}
	return nodes
}

// PointsOf returns the raw point sequence of a trajectory added through
// this coordinator, or nil when unknown (or discarded).
func (c *Coordinator) PointsOf(id trajectory.ID) []geo.Point {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.directory[id].points
}

// DiscardPoints releases every retained raw point sequence, shrinking
// the directory to the cardinalities Jaccard ranking needs. Exact
// re-ranking becomes unavailable for the trajectories added so far;
// trajectories added afterwards are retained again.
func (c *Coordinator) DiscardPoints() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, entry := range c.directory {
		entry.points = nil
		c.directory[id] = entry
	}
}

// QueryStats reports the fan-out of the last analysis of a query set.
type QueryStats struct {
	// Shards and Nodes touched by the query's terms. Locality on the
	// space-filling curve keeps Shards small; the modulo step spreads
	// them over Nodes.
	Shards int
	Nodes  int
}

// Analyze returns the fan-out a query would incur, without executing it.
func (c *Coordinator) Analyze(q *trajectory.Trajectory) QueryStats {
	set := c.ex.Extract(q.Points)
	terms := set.ToSlice()
	shards := c.strategy.ShardsOf(terms)
	nodes := make(map[int]struct{}, len(shards))
	for _, s := range shards {
		nodes[c.strategy.NodeOf(s)] = struct{}{}
	}
	return QueryStats{Shards: len(shards), Nodes: len(nodes)}
}

// SearchInfo reports what one distributed search touched.
type SearchInfo struct {
	// Candidates is the number of distinct trajectories seen across the
	// partial intersection counts, before distance filtering.
	Candidates int
	// Shards and Nodes are the fan-out the query's terms incurred.
	Shards int
	Nodes  int
}

// Query scatter-gathers the ranked retrieval problem across the cluster,
// equivalent to index.Inverted.Query on the same data.
//
// Deprecated: use Search, which takes a context and reports fan-out.
func (c *Coordinator) Query(q *trajectory.Trajectory, maxDistance float64, limit int) ([]index.Result, error) {
	results, _, err := c.Search(context.Background(), q, maxDistance, limit)
	return results, err
}

// Search scatter-gathers the ranked retrieval problem across the cluster
// and merges partial intersection counts into Jaccard-ranked results,
// equivalent to index.Inverted.Search on the same data. Cancelling ctx
// aborts the scatter-gather promptly and returns the context's error;
// the first node failure cancels the sibling calls, so one wedged node
// cannot hold the query past another node's error.
func (c *Coordinator) Search(parent context.Context, q *trajectory.Trajectory, maxDistance float64, limit int) ([]index.Result, SearchInfo, error) {
	if err := parent.Err(); err != nil {
		return nil, SearchInfo{}, err
	}
	set := c.ex.Extract(q.Points)
	shardSet := make(map[int]struct{}, 8)
	groups := c.groupByNode(set, shardSet)
	info := SearchInfo{
		Shards: len(shardSet),
		Nodes:  len(groups),
	}
	shared := make(map[uint32]int)
	var sharedMu sync.Mutex
	err := fanOut(parent, nodesOf(groups), func(ctx context.Context, node int) error {
		resp, err := c.clients[node].call(ctx, &request{
			Op:    opQuery,
			Query: &queryRequest{Terms: groups[node]},
		})
		if err != nil {
			return err
		}
		sharedMu.Lock()
		for id, count := range resp.Query.Partial {
			shared[id] += count
		}
		sharedMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	info.Candidates = len(shared)

	qCard := set.Cardinality()
	c.mu.RLock()
	results := make([]index.Result, 0, len(shared))
	for id, inter := range shared {
		entry, ok := c.directory[trajectory.ID(id)]
		if !ok || entry.pending {
			continue // unknown or mid-add: cannot rank on partial counts
		}
		union := qCard + entry.card - inter
		d := 1.0
		if union > 0 {
			d = 1 - float64(inter)/float64(union)
		}
		if d <= maxDistance {
			results = append(results, index.Result{ID: trajectory.ID(id), Distance: d, Shared: inter})
		}
	}
	c.mu.RUnlock()

	index.SortResults(results)
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results, info, nil
}

// Stats gathers per-node term and posting counts in parallel, slice
// index i matching node i. Cancelling ctx aborts the gather promptly;
// the first node failure cancels the sibling calls.
func (c *Coordinator) Stats(parent context.Context) ([]NodeStats, error) {
	if err := parent.Err(); err != nil {
		return nil, err
	}
	out := make([]NodeStats, len(c.clients))
	nodes := make([]int, len(c.clients))
	for i := range nodes {
		nodes[i] = i
	}
	err := fanOut(parent, nodes, func(ctx context.Context, i int) error {
		resp, err := c.clients[i].call(ctx, &request{Op: opStats})
		if err != nil {
			return err
		}
		out[i] = NodeStats{Node: i, Terms: resp.Stats.Terms, Postings: resp.Stats.Postings}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NodeStats is one node's shard statistics.
type NodeStats struct {
	Node     int
	Terms    int
	Postings int
}
