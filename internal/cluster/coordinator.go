package cluster

import (
	"fmt"
	"sort"
	"sync"

	"geodabs/internal/bitmap"
	"geodabs/internal/index"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

// Coordinator fronts a cluster of shard nodes: it fingerprints
// trajectories, routes each term to the node owning its shard, and
// scatter-gathers ranked queries. It also maintains the directory of
// per-trajectory fingerprint cardinalities needed to turn partial
// intersection counts into Jaccard distances.
//
// Coordinator is safe for concurrent use.
type Coordinator struct {
	ex       index.Extractor
	strategy shard.Strategy
	clients  []*client

	mu        sync.RWMutex
	directory map[trajectory.ID]int
}

// NewCoordinator connects to the given node addresses. The strategy's
// Nodes must equal len(addrs).
func NewCoordinator(ex index.Extractor, strategy shard.Strategy, addrs []string) (*Coordinator, error) {
	if err := strategy.Validate(); err != nil {
		return nil, err
	}
	if strategy.Nodes != len(addrs) {
		return nil, fmt.Errorf("cluster: strategy has %d nodes, got %d addresses", strategy.Nodes, len(addrs))
	}
	c := &Coordinator{
		ex:        ex,
		strategy:  strategy,
		directory: make(map[trajectory.ID]int),
	}
	for _, addr := range addrs {
		cl, err := dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Close tears down all node connections.
func (c *Coordinator) Close() error {
	var firstErr error
	for _, cl := range c.clients {
		if err := cl.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// groupByNode splits a term set by owning node. Only nodes owning at
// least one term appear in the result.
func (c *Coordinator) groupByNode(set *bitmap.Bitmap) map[int][]uint32 {
	groups := make(map[int][]uint32)
	set.Iterate(func(term uint32) bool {
		n := c.strategy.NodeOfGeodab(term)
		groups[n] = append(groups[n], term)
		return true
	})
	return groups
}

// Add fingerprints the trajectory and routes its postings to the cluster.
func (c *Coordinator) Add(t *trajectory.Trajectory) error {
	set := c.ex.Extract(t.Points)
	c.mu.Lock()
	if _, dup := c.directory[t.ID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("cluster: trajectory %d already indexed", t.ID)
	}
	c.directory[t.ID] = set.Cardinality()
	c.mu.Unlock()

	groups := c.groupByNode(set)
	errs := make(chan error, len(groups))
	var wg sync.WaitGroup
	for node, terms := range groups {
		wg.Add(1)
		go func(node int, terms []uint32) {
			defer wg.Done()
			_, err := c.clients[node].call(&request{
				Op:  opAdd,
				Add: &addRequest{ID: uint32(t.ID), Terms: terms},
			})
			errs <- err
		}(node, terms)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// QueryStats reports the fan-out of the last analysis of a query set.
type QueryStats struct {
	// Shards and Nodes touched by the query's terms. Locality on the
	// space-filling curve keeps Shards small; the modulo step spreads
	// them over Nodes.
	Shards int
	Nodes  int
}

// Analyze returns the fan-out a query would incur, without executing it.
func (c *Coordinator) Analyze(q *trajectory.Trajectory) QueryStats {
	set := c.ex.Extract(q.Points)
	terms := set.ToSlice()
	shards := c.strategy.ShardsOf(terms)
	nodes := make(map[int]struct{}, len(shards))
	for _, s := range shards {
		nodes[c.strategy.NodeOf(s)] = struct{}{}
	}
	return QueryStats{Shards: len(shards), Nodes: len(nodes)}
}

// Query scatter-gathers the ranked retrieval problem across the cluster
// and merges partial intersection counts into Jaccard-ranked results,
// equivalent to index.Inverted.Query on the same data.
func (c *Coordinator) Query(q *trajectory.Trajectory, maxDistance float64, limit int) ([]index.Result, error) {
	set := c.ex.Extract(q.Points)
	groups := c.groupByNode(set)
	type partial struct {
		counts map[uint32]int
		err    error
	}
	parts := make(chan partial, len(groups))
	var wg sync.WaitGroup
	for node, terms := range groups {
		wg.Add(1)
		go func(node int, terms []uint32) {
			defer wg.Done()
			resp, err := c.clients[node].call(&request{
				Op:    opQuery,
				Query: &queryRequest{Terms: terms},
			})
			if err != nil {
				parts <- partial{err: err}
				return
			}
			parts <- partial{counts: resp.Query.Partial}
		}(node, terms)
	}
	wg.Wait()
	close(parts)

	shared := make(map[uint32]int)
	for p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		for id, count := range p.counts {
			shared[id] += count
		}
	}

	qCard := set.Cardinality()
	c.mu.RLock()
	results := make([]index.Result, 0, len(shared))
	for id, inter := range shared {
		docCard, ok := c.directory[trajectory.ID(id)]
		if !ok {
			continue // indexed by another coordinator; cannot rank
		}
		union := qCard + docCard - inter
		d := 1.0
		if union > 0 {
			d = 1 - float64(inter)/float64(union)
		}
		if d <= maxDistance {
			results = append(results, index.Result{ID: trajectory.ID(id), Distance: d, Shared: inter})
		}
	}
	c.mu.RUnlock()

	sort.Slice(results, func(i, j int) bool {
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		return results[i].ID < results[j].ID
	})
	if limit > 0 && len(results) > limit {
		results = results[:limit]
	}
	return results, nil
}

// Stats gathers per-node term and posting counts, index row i matching
// node i.
func (c *Coordinator) Stats() ([]statsOf, error) {
	out := make([]statsOf, len(c.clients))
	for i, cl := range c.clients {
		resp, err := cl.call(&request{Op: opStats})
		if err != nil {
			return nil, err
		}
		out[i] = statsOf{Node: i, Terms: resp.Stats.Terms, Postings: resp.Stats.Postings}
	}
	return out, nil
}

// statsOf is one node's shard statistics.
type statsOf struct {
	Node     int
	Terms    int
	Postings int
}
