package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"geodabs/internal/core"
	"geodabs/internal/gen"
	"geodabs/internal/geo"
	"geodabs/internal/index"
	"geodabs/internal/roadnet"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

var testWorkload = func() *gen.Output {
	g, err := roadnet.GenerateCity(roadnet.CityConfig{RadiusMeters: 3000, Seed: 21})
	if err != nil {
		panic(err)
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = 8
	cfg.TrajectoriesPerDirection = 4
	cfg.MinRouteMeters = 2000
	out, err := gen.Generate(g, cfg)
	if err != nil {
		panic(err)
	}
	return out
}()

// startCluster spins up n nodes and a coordinator on the loopback
// interface, tearing everything down with the test.
func startCluster(t *testing.T, n int) (*Coordinator, []*Node) {
	t.Helper()
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := range nodes {
		node, err := StartNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		t.Cleanup(func() { node.Close() })
	}
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	strategy := shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: n}
	coord, err := NewCoordinator(ex, strategy, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, nodes
}

func TestClusterMatchesLocalIndex(t *testing.T) {
	coord, _ := startCluster(t, 3)
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	local := index.NewInverted(ex)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
		if err := local.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range testWorkload.Queries {
		want := local.Query(q, 0.99, 0)
		got, err := coord.Query(q, 0.99, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: cluster returned %d results, local %d", q.ID, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", q.ID, i, got[i], want[i])
			}
		}
	}
}

func TestClusterQueryLimit(t *testing.T) {
	coord, _ := startCluster(t, 2)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := coord.Query(testWorkload.Queries[0], 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("limit 3 returned %d", len(got))
	}
}

func TestClusterDuplicateAdd(t *testing.T) {
	coord, _ := startCluster(t, 2)
	tr := testWorkload.Dataset.Trajectories[0]
	if err := coord.Add(context.Background(), tr); err != nil {
		t.Fatal(err)
	}
	if err := coord.Add(context.Background(), tr); err == nil {
		t.Error("duplicate add should fail")
	}
}

func TestClusterAnalyzeLocality(t *testing.T) {
	coord, _ := startCluster(t, 3)
	stats := coord.Analyze(testWorkload.Queries[0])
	if stats.Shards == 0 {
		t.Fatal("query touches no shards")
	}
	// A city-scale trajectory touches a handful of the 10'000 shards.
	if stats.Shards > 5 {
		t.Errorf("query touches %d shards, want few (locality)", stats.Shards)
	}
	if stats.Nodes > stats.Shards {
		t.Errorf("nodes %d > shards %d", stats.Nodes, stats.Shards)
	}
}

func TestClusterStats(t *testing.T) {
	coord, _ := startCluster(t, 3)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := coord.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats for %d nodes", len(stats))
	}
	total := 0
	for _, s := range stats {
		total += s.Postings
	}
	if total == 0 {
		t.Error("no postings across the cluster")
	}
}

func TestClusterConcurrentAddsAndQueries(t *testing.T) {
	coord, _ := startCluster(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, testWorkload.Dataset.Len())
	for _, tr := range testWorkload.Dataset.Trajectories {
		wg.Add(1)
		go func(tr *trajectory.Trajectory) {
			defer wg.Done()
			errs <- coord.Add(context.Background(), tr)
		}(tr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var qg sync.WaitGroup
	for i := 0; i < 4; i++ {
		qg.Add(1)
		go func(i int) {
			defer qg.Done()
			q := testWorkload.Queries[i%len(testWorkload.Queries)]
			if _, err := coord.Query(q, 1, 5); err != nil {
				t.Errorf("concurrent query: %v", err)
			}
		}(i)
	}
	qg.Wait()
}

func TestCoordinatorValidation(t *testing.T) {
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	bad := shard.Strategy{PrefixBits: 16, Shards: 100, Nodes: 2}
	if _, err := NewCoordinator(ex, bad, []string{"127.0.0.1:1"}); err == nil {
		t.Error("node count mismatch should fail")
	}
	if _, err := NewCoordinator(ex, shard.Strategy{}, nil); err == nil {
		t.Error("invalid strategy should fail")
	}
	// Dialing a dead address fails cleanly.
	dead := shard.Strategy{PrefixBits: 16, Shards: 100, Nodes: 1}
	if _, err := NewCoordinator(ex, dead, []string{"127.0.0.1:1"}); err == nil {
		t.Error("dead node should fail to dial")
	}
}

func TestQueryAfterNodeShutdown(t *testing.T) {
	coord, nodes := startCluster(t, 2)
	for _, tr := range testWorkload.Dataset.Trajectories[:8] {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	nodes[0].Close()
	nodes[1].Close()
	if _, err := coord.Query(testWorkload.Queries[0], 1, 0); err == nil {
		t.Error("query against a dead cluster should fail")
	}
}

func TestNodeRejectsMalformedRequests(t *testing.T) {
	node, err := StartNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	cl, err := dial(node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.close()
	if _, err := cl.call(context.Background(), &request{Op: opAdd}); err == nil {
		t.Error("add without payload should error")
	}
	if _, err := cl.call(context.Background(), &request{Op: opQuery}); err == nil {
		t.Error("query without payload should error")
	}
	if _, err := cl.call(context.Background(), &request{Op: 99}); err == nil {
		t.Error("unknown op should error")
	}
	// The connection survives protocol errors.
	if _, err := cl.call(context.Background(), &request{Op: opStats}); err != nil {
		t.Errorf("stats after errors: %v", err)
	}
}

// startStallingNode listens and accepts connections but never replies,
// simulating a wedged shard node: requests vanish into it until the
// connection is torn down.
func startStallingNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(io.Discard, c)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// startStalledCoordinator fronts two stalling nodes, so every
// scatter-gather hangs until its context is cancelled.
func startStalledCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	addrs := []string{startStallingNode(t), startStallingNode(t)}
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	coord, err := NewCoordinator(ex, shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: 2}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// TestSearchCancelledMidScatterGather cancels a query while its fan-out
// is blocked on wedged nodes: the scatter-gather must unwind promptly
// with the context's error instead of hanging.
func TestSearchCancelledMidScatterGather(t *testing.T) {
	coord := startStalledCoordinator(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Search = %v, want context.Canceled", err)
	}
	if elapsed < 50*time.Millisecond {
		t.Errorf("Search returned in %v, before the cancellation fired", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("Search took %v after cancellation, want prompt unwind", elapsed)
	}
}

// TestSearchDeadlineMidScatterGather is the deadline flavor: a timeout
// budget bounds a query against wedged nodes.
func TestSearchDeadlineMidScatterGather(t *testing.T) {
	coord := startStalledCoordinator(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Search = %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchAlreadyCancelled verifies the fast path: no node I/O at all
// on a context that is dead on arrival.
func TestSearchAlreadyCancelled(t *testing.T) {
	coord, _ := startCluster(t, 2)
	for _, tr := range testWorkload.Dataset.Trajectories[:4] {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search = %v, want context.Canceled", err)
	}
	if err := coord.Add(ctx, testWorkload.Dataset.Trajectories[10]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Add = %v, want context.Canceled", err)
	}
}

// TestClientRecoversAfterCancelledCall exercises the redial path: a call
// abandoned mid-flight poisons the gob stream, and the next call on the
// same client must transparently reconnect.
func TestClientRecoversAfterCancelledCall(t *testing.T) {
	coord, _ := startCluster(t, 1)
	for _, tr := range testWorkload.Dataset.Trajectories[:4] {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0); err == nil {
		t.Fatal("cancelled search should fail")
	}
	// A short stall that actually reaches the node, then gets abandoned.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	_, _, _ = coord.Search(ctx2, testWorkload.Queries[0], 1, 0)
	cancel2()
	got, _, err := coord.Search(context.Background(), testWorkload.Queries[0], 1, 0)
	if err != nil {
		t.Fatalf("search after abandoned call: %v", err)
	}
	if len(got) == 0 {
		t.Error("recovered search returned nothing")
	}
}

// TestAddRetryAfterFailure verifies that a failed (here: cancelled) Add
// withdraws its directory entry, so the caller can retry the same
// trajectory instead of being stuck on "already indexed".
func TestAddRetryAfterFailure(t *testing.T) {
	coord, _ := startCluster(t, 2)
	tr := testWorkload.Dataset.Trajectories[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := coord.Add(ctx, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Add = %v, want context.Canceled", err)
	}
	if err := coord.Add(context.Background(), tr); err != nil {
		t.Fatalf("retry after failed Add: %v", err)
	}
	got, _, err := coord.Search(context.Background(), tr, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != tr.ID {
		t.Errorf("retried trajectory not retrievable: %+v", got)
	}
}

// TestQueuedCallHonorsOwnDeadline pins the call-slot semantics: a call
// with a deadline queued behind a stalled call (no deadline) must give up
// when its own budget expires instead of blocking on the stalled call's
// lock.
func TestQueuedCallHonorsOwnDeadline(t *testing.T) {
	coord := startStalledCoordinator(t)
	background := make(chan struct{})
	go func() {
		defer close(background)
		// Wedges until the coordinator is closed by test cleanup.
		coord.Search(context.Background(), testWorkload.Queries[0], 1, 0)
	}()
	time.Sleep(50 * time.Millisecond) // let the background search occupy the call slots
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Search = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("queued Search took %v past its 100ms budget", elapsed)
	}
	coord.Close() // unblock the background search before the test ends
	<-background
}

// totalPostings sums Stats.Postings across nodes — per-node term spaces
// are disjoint, so the sum equals the indexed fingerprint cardinality.
func totalPostings(t *testing.T, coord *Coordinator) int {
	t.Helper()
	stats, err := coord.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range stats {
		total += s.Postings
	}
	return total
}

// TestClusterDeleteReclaimsPostings is the acceptance criterion for the
// distributed delete: node postings shrink by exactly the deleted
// trajectory's fingerprint cardinality, the trajectory vanishes from
// rankings, and a re-delete reports ErrNotFound.
func TestClusterDeleteReclaimsPostings(t *testing.T) {
	coord, _ := startCluster(t, 3)
	ctx := context.Background()
	for _, tr := range testWorkload.Dataset.Trajectories[:10] {
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	victim := testWorkload.Dataset.Trajectories[0]
	before := totalPostings(t, coord)
	card := coord.ex.Extract(victim.Points).Cardinality()
	if err := coord.Delete(ctx, victim.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	after := totalPostings(t, coord)
	if after != before-card {
		t.Errorf("postings after delete = %d, want %d − %d = %d", after, before, card, before-card)
	}
	if err := coord.Delete(ctx, victim.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("re-delete = %v, want ErrNotFound", err)
	}
	results, _, err := coord.Search(ctx, victim, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.ID == victim.ID {
			t.Error("deleted trajectory still ranked")
		}
	}
	// The fence tombstones are reclaimed once the watermark passes them:
	// the Stats calls above already piggybacked it, so a fresh Stats sees
	// no tombstones.
	stats, err := coord.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Tombstones != 0 {
			t.Errorf("node %d still holds %d tombstones after compaction", s.Node, s.Tombstones)
		}
	}
	// The ID is free for re-use.
	if err := coord.Add(ctx, victim); err != nil {
		t.Errorf("re-add after delete: %v", err)
	}
}

// TestClusterUpsertReplaces verifies in-place replacement across the
// cluster: same ID, new geometry, old postings reclaimed on every node.
func TestClusterUpsertReplaces(t *testing.T) {
	coord, _ := startCluster(t, 2)
	ctx := context.Background()
	old := testWorkload.Dataset.Trajectories[0]
	if err := coord.Add(ctx, old); err != nil {
		t.Fatal(err)
	}
	replacement := &trajectory.Trajectory{ID: old.ID, Points: testWorkload.Dataset.Trajectories[5].Points}
	if err := coord.Upsert(ctx, replacement); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	if got, want := totalPostings(t, coord), coord.ex.Extract(replacement.Points).Cardinality(); got != want {
		t.Errorf("postings after upsert = %d, want the replacement's %d", got, want)
	}
	// The replacement ranks as an exact match of its own geometry.
	results, _, err := coord.Search(ctx, replacement, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != old.ID || results[0].Distance != 0 {
		t.Errorf("search for the replacement returned %+v", results)
	}
	// Upsert of an unknown ID is a plain insert.
	novel := testWorkload.Dataset.Trajectories[7]
	if err := coord.Upsert(ctx, novel); err != nil {
		t.Errorf("insert-upsert: %v", err)
	}
}

func TestClusterDeleteAll(t *testing.T) {
	coord, _ := startCluster(t, 2)
	ctx := context.Background()
	for _, tr := range testWorkload.Dataset.Trajectories[:8] {
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	ids := []trajectory.ID{
		testWorkload.Dataset.Trajectories[0].ID,
		testWorkload.Dataset.Trajectories[1].ID,
		testWorkload.Dataset.Trajectories[2].ID,
		99999, // unknown: skipped, not an error
	}
	deleted, err := coord.DeleteAll(ctx, ids, 3)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 3 {
		t.Errorf("DeleteAll deleted %d, want 3", deleted)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := coord.DeleteAll(cancelled, ids, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("DeleteAll on cancelled context = %v, want context.Canceled", err)
	}
}

// TestFailedAddLeavesNoOrphans is the acceptance criterion for the
// failed-add cleanup: an Add that dies on one node must reclaim the
// postings it already applied to the others instead of stranding them.
func TestFailedAddLeavesNoOrphans(t *testing.T) {
	coord, nodes := startCluster(t, 2)
	ctx := context.Background()
	// Pick a trajectory whose terms span both nodes, so the surviving
	// node really does apply postings the cleanup must reclaim.
	var victim *trajectory.Trajectory
	for _, tr := range testWorkload.Dataset.Trajectories {
		if coord.Analyze(tr).Nodes == 2 {
			victim = tr
			break
		}
	}
	if victim == nil {
		t.Skip("no trajectory spans both nodes in this workload")
	}
	nodes[1].Close()
	if err := coord.Add(ctx, victim); err == nil {
		t.Fatal("Add against a half-dead cluster should fail")
	}
	// Ask the surviving node directly: the cleanup must have deleted
	// whatever the failed add applied there.
	cl, err := dial(nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.close()
	resp, err := cl.call(ctx, &request{Op: opStats})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Postings != 0 {
		t.Errorf("surviving node holds %d orphaned postings after failed Add", resp.Stats.Postings)
	}
	if resp.Stats.Docs != 0 {
		t.Errorf("surviving node holds %d live docs after failed Add", resp.Stats.Docs)
	}
}

// TestClusterSnapshotIsolationUnderChurn is the interleaving acceptance
// criterion: searches racing adds, upserts and deletes must never rank a
// trajectory on a partial intersection count. Every writer churns exact
// clones of the query, so any hit in the churned ID range must surface
// at distance exactly 0 — a partially-visible clone would surface at an
// intermediate distance. Run with -race for the memory-model half.
func TestClusterSnapshotIsolationUnderChurn(t *testing.T) {
	coord, _ := startCluster(t, 3)
	ctx := context.Background()
	q := testWorkload.Queries[0]
	// A stable background population keeps searches non-trivial.
	for _, tr := range testWorkload.Dataset.Trajectories[:8] {
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	const churnBase = trajectory.ID(50000)
	const writers, rounds = 3, 15
	stop := make(chan struct{})
	errc := make(chan error, writers+2)
	var searchWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		searchWG.Add(1)
		go func() {
			defer searchWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				results, _, err := coord.Search(ctx, q, 1, 0)
				if err != nil {
					errc <- err
					return
				}
				for _, r := range results {
					if r.ID >= churnBase && r.Distance != 0 {
						errc <- fmt.Errorf("partially visible trajectory %d at distance %v (shared %d)", r.ID, r.Distance, r.Shared)
						return
					}
				}
			}
		}()
	}
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			id := churnBase + trajectory.ID(w)
			clone := &trajectory.Trajectory{ID: id, Points: q.Points}
			for r := 0; r < rounds; r++ {
				if err := coord.Upsert(ctx, clone); err != nil {
					errc <- fmt.Errorf("upsert %d: %w", id, err)
					return
				}
				if err := coord.Delete(ctx, id); err != nil && !errors.Is(err, ErrNotFound) {
					errc <- fmt.Errorf("delete %d: %w", id, err)
					return
				}
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	searchWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestPoolParallelSearches exercises the per-node connection pool: with
// size 4, concurrent searches genuinely overlap per node and all return
// the same ranking as a sequential pass.
func TestPoolParallelSearches(t *testing.T) {
	nodes := make([]*Node, 2)
	addrs := make([]string, 2)
	for i := range nodes {
		node, err := StartNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		t.Cleanup(func() { node.Close() })
	}
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	strategy := shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: 2}
	coord, err := NewCoordinator(ex, strategy, addrs, WithPoolSize(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	ctx := context.Background()
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	type ranked struct {
		qi  int
		res []index.Result
	}
	want := make([][]index.Result, len(testWorkload.Queries))
	for i, q := range testWorkload.Queries {
		res, _, err := coord.Search(ctx, q, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	out := make(chan ranked, 4*len(testWorkload.Queries))
	var wg sync.WaitGroup
	for rep := 0; rep < 4; rep++ {
		for i, q := range testWorkload.Queries {
			wg.Add(1)
			go func(i int, q *trajectory.Trajectory) {
				defer wg.Done()
				res, _, err := coord.Search(ctx, q, 1, 0)
				if err != nil {
					t.Errorf("pooled search: %v", err)
					return
				}
				out <- ranked{i, res}
			}(i, q)
		}
	}
	wg.Wait()
	close(out)
	for r := range out {
		if len(r.res) != len(want[r.qi]) {
			t.Fatalf("query %d: pooled search returned %d results, sequential %d", r.qi, len(r.res), len(want[r.qi]))
		}
		for i := range r.res {
			if r.res[i] != want[r.qi][i] {
				t.Fatalf("query %d result %d: %+v vs %+v", r.qi, i, r.res[i], want[r.qi][i])
			}
		}
	}
}

// TestNodeSidePruningMatchesLocal is the tentpole acceptance criterion:
// with document cardinalities replicated to the shard nodes and the
// query's window pushed down, distributed results must stay byte-identical
// to a local index while a pruning-eligible workload shows a non-zero
// NodePruned — candidates skipped before they ever hit gob or the wire.
func TestNodeSidePruningMatchesLocal(t *testing.T) {
	coord, _ := startCluster(t, 3)
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	local := index.NewInverted(ex)
	ctx := context.Background()
	add := func(tr *trajectory.Trajectory) {
		t.Helper()
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
		if err := local.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range testWorkload.Dataset.Trajectories {
		add(tr)
	}
	q := testWorkload.Queries[0]
	// Guaranteed pruning bait: short prefixes of the query share its
	// leading terms but have a fingerprint cardinality far below the
	// window's floor at tight distance bounds.
	for i, div := range []int{2, 3, 4} {
		add(&trajectory.Trajectory{ID: trajectory.ID(90000 + i), Points: q.Points[:len(q.Points)/div]})
	}
	totalNodePruned := 0
	for _, maxDistance := range []float64{0.2, 0.5, 0.8, 0.99, 1} {
		for _, limit := range []int{0, 3} {
			want, wantStats, err := local.Search(ctx, q, maxDistance, limit)
			if err != nil {
				t.Fatal(err)
			}
			got, info, err := coord.Search(ctx, q, maxDistance, limit)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("d=%v limit=%d: cluster returned %d results, local %d", maxDistance, limit, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("d=%v limit=%d result %d: %+v vs %+v", maxDistance, limit, i, got[i], want[i])
				}
			}
			// Node pruning removes candidates before the merge, so the
			// cluster sees at most the local candidate set, and the two
			// pruning stages together never under-count what the local
			// single-stage pruning skips.
			if info.Candidates > wantStats.Candidates {
				t.Errorf("d=%v: cluster candidates %d > local %d", maxDistance, info.Candidates, wantStats.Candidates)
			}
			if maxDistance >= 1 && info.NodePruned != 0 {
				t.Errorf("d=1 search reported NodePruned=%d, want 0 (window unbounded)", info.NodePruned)
			}
			if info.WirePartials < info.Candidates {
				t.Errorf("d=%v: %d wire partials < %d distinct candidates", maxDistance, info.WirePartials, info.Candidates)
			}
			totalNodePruned += info.NodePruned
		}
	}
	if totalNodePruned == 0 {
		t.Error("no search pruned node-side despite bait candidates outside every tight window")
	}
}

// TestNodeCardinalityWindow pins the node's window arithmetic on both
// query paths with hand-built documents: a node must prune a candidate
// whose replicated |G| falls outside [(1−d)·|F|, |F|/(1−d)] and keep one
// inside, reporting the skipped entries in Pruned.
func TestNodeCardinalityWindow(t *testing.T) {
	node, err := StartNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	cl, err := dial(node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.close()
	ctx := context.Background()
	// Document 1: one shared term, tiny total cardinality (card 10).
	// Document 2: one shared term, total cardinality 70000.
	for _, doc := range []addRequest{
		{ID: 1, Terms: []uint32{5}, Epoch: 1, Card: 10},
		{ID: 2, Terms: []uint32{6}, Epoch: 2, Card: 70000},
	} {
		doc := doc
		if _, err := cl.call(ctx, &request{Op: opAdd, Add: &doc}); err != nil {
			t.Fatal(err)
		}
	}
	// Narrow path: |F|=100, d=0.5 → window ≈ [49, 201]: both docs outside.
	resp, err := cl.call(ctx, &request{Op: opQuery, Query: &queryRequest{
		Terms: []uint32{5, 6}, QueryCard: 100, MaxDistance: 0.5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Query.IDs) != 0 || resp.Query.Pruned != 2 {
		t.Errorf("narrow path: IDs=%v Pruned=%d, want both docs pruned", resp.Query.IDs, resp.Query.Pruned)
	}
	// Wide path (>65535 terms): |F|=70000, d=0.5 → window ≈ [34999, 140001]:
	// doc 1 pruned, doc 2 kept with its partial count of 1.
	wide := make([]uint32, 70001)
	for i := range wide {
		wide[i] = uint32(i)
	}
	resp, err = cl.call(ctx, &request{Op: opQuery, Query: &queryRequest{
		Terms: wide, QueryCard: 70000, MaxDistance: 0.5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Query.IDs) != 1 || resp.Query.IDs[0] != 2 || resp.Query.Counts[0] != 1 || resp.Query.Pruned != 1 {
		t.Errorf("wide path: IDs=%v Counts=%v Pruned=%d, want doc 2 kept and doc 1 pruned",
			resp.Query.IDs, resp.Query.Counts, resp.Query.Pruned)
	}
	// QueryCard 0 disables the window: both docs ship.
	resp, err = cl.call(ctx, &request{Op: opQuery, Query: &queryRequest{
		Terms: []uint32{5, 6}, MaxDistance: 0.5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Query.IDs) != 2 || resp.Query.Pruned != 0 {
		t.Errorf("QueryCard 0: IDs=%v Pruned=%d, want pruning disabled", resp.Query.IDs, resp.Query.Pruned)
	}
}

// TestClusterSameIDHammer races Upserts, Deletes and Searches of the
// same trajectory ID: the per-ID mutation stripe must serialize the
// upserts' delete+add legs, so no well-formed call ever fails on its own
// sibling ("already indexed"), and searches stay snapshot-consistent.
// Run with -race for the memory-model half.
func TestClusterSameIDHammer(t *testing.T) {
	coord, _ := startCluster(t, 3)
	ctx := context.Background()
	for _, tr := range testWorkload.Dataset.Trajectories[:6] {
		if err := coord.Add(ctx, tr); err != nil {
			t.Fatal(err)
		}
	}
	const victim = trajectory.ID(70001)
	const writers, rounds = 4, 10
	geometries := make([][]geo.Point, writers)
	for w := range geometries {
		geometries[w] = testWorkload.Dataset.Trajectories[w].Points
	}
	errc := make(chan error, 2*writers+2)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clone := &trajectory.Trajectory{ID: victim, Points: geometries[w]}
			for r := 0; r < rounds; r++ {
				if err := coord.Upsert(ctx, clone); err != nil {
					errc <- fmt.Errorf("upsert writer %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	// A deleter interleaves withdrawals; ErrNotFound is its only
	// acceptable failure (another deleter or no prior upsert).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 2*rounds; r++ {
			if err := coord.Delete(ctx, victim); err != nil && !errors.Is(err, ErrNotFound) {
				errc <- fmt.Errorf("delete round %d: %w", r, err)
				return
			}
		}
	}()
	stop := make(chan struct{})
	var searchWG sync.WaitGroup
	searchWG.Add(1)
	go func() {
		defer searchWG.Done()
		q := testWorkload.Queries[0]
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := coord.Search(ctx, q, 1, 0); err != nil {
				errc <- fmt.Errorf("search: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	searchWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Quiesce: a final upsert then search must surface exactly one live
	// version of the victim.
	final := &trajectory.Trajectory{ID: victim, Points: geometries[0]}
	if err := coord.Upsert(ctx, final); err != nil {
		t.Fatalf("final upsert: %v", err)
	}
	results, _, err := coord.Search(ctx, final, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		if r.ID == victim {
			if r.Distance != 0 {
				t.Errorf("victim at distance %v after quiescence, want 0", r.Distance)
			}
			found = true
		}
	}
	if !found {
		t.Error("victim missing after final upsert")
	}
}

// TestNodeRejectsMalformedDelete extends the malformed-request coverage
// to the new op.
func TestNodeRejectsMalformedDelete(t *testing.T) {
	node, err := StartNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	cl, err := dial(node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.close()
	if _, err := cl.call(context.Background(), &request{Op: opDelete}); err == nil {
		t.Error("delete without payload should error")
	}
	// The connection survives the protocol error.
	if _, err := cl.call(context.Background(), &request{Op: opStats}); err != nil {
		t.Errorf("stats after malformed delete: %v", err)
	}
}
