package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"geodabs/internal/core"
	"geodabs/internal/gen"
	"geodabs/internal/index"
	"geodabs/internal/roadnet"
	"geodabs/internal/shard"
	"geodabs/internal/trajectory"
)

var testWorkload = func() *gen.Output {
	g, err := roadnet.GenerateCity(roadnet.CityConfig{RadiusMeters: 3000, Seed: 21})
	if err != nil {
		panic(err)
	}
	cfg := gen.DefaultConfig()
	cfg.Routes = 8
	cfg.TrajectoriesPerDirection = 4
	cfg.MinRouteMeters = 2000
	out, err := gen.Generate(g, cfg)
	if err != nil {
		panic(err)
	}
	return out
}()

// startCluster spins up n nodes and a coordinator on the loopback
// interface, tearing everything down with the test.
func startCluster(t *testing.T, n int) (*Coordinator, []*Node) {
	t.Helper()
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := range nodes {
		node, err := StartNode("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		t.Cleanup(func() { node.Close() })
	}
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	strategy := shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: n}
	coord, err := NewCoordinator(ex, strategy, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord, nodes
}

func TestClusterMatchesLocalIndex(t *testing.T) {
	coord, _ := startCluster(t, 3)
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	local := index.NewInverted(ex)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
		if err := local.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range testWorkload.Queries {
		want := local.Query(q, 0.99, 0)
		got, err := coord.Query(q, 0.99, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: cluster returned %d results, local %d", q.ID, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", q.ID, i, got[i], want[i])
			}
		}
	}
}

func TestClusterQueryLimit(t *testing.T) {
	coord, _ := startCluster(t, 2)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := coord.Query(testWorkload.Queries[0], 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("limit 3 returned %d", len(got))
	}
}

func TestClusterDuplicateAdd(t *testing.T) {
	coord, _ := startCluster(t, 2)
	tr := testWorkload.Dataset.Trajectories[0]
	if err := coord.Add(context.Background(), tr); err != nil {
		t.Fatal(err)
	}
	if err := coord.Add(context.Background(), tr); err == nil {
		t.Error("duplicate add should fail")
	}
}

func TestClusterAnalyzeLocality(t *testing.T) {
	coord, _ := startCluster(t, 3)
	stats := coord.Analyze(testWorkload.Queries[0])
	if stats.Shards == 0 {
		t.Fatal("query touches no shards")
	}
	// A city-scale trajectory touches a handful of the 10'000 shards.
	if stats.Shards > 5 {
		t.Errorf("query touches %d shards, want few (locality)", stats.Shards)
	}
	if stats.Nodes > stats.Shards {
		t.Errorf("nodes %d > shards %d", stats.Nodes, stats.Shards)
	}
}

func TestClusterStats(t *testing.T) {
	coord, _ := startCluster(t, 3)
	for _, tr := range testWorkload.Dataset.Trajectories {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := coord.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats for %d nodes", len(stats))
	}
	total := 0
	for _, s := range stats {
		total += s.Postings
	}
	if total == 0 {
		t.Error("no postings across the cluster")
	}
}

func TestClusterConcurrentAddsAndQueries(t *testing.T) {
	coord, _ := startCluster(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, testWorkload.Dataset.Len())
	for _, tr := range testWorkload.Dataset.Trajectories {
		wg.Add(1)
		go func(tr *trajectory.Trajectory) {
			defer wg.Done()
			errs <- coord.Add(context.Background(), tr)
		}(tr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var qg sync.WaitGroup
	for i := 0; i < 4; i++ {
		qg.Add(1)
		go func(i int) {
			defer qg.Done()
			q := testWorkload.Queries[i%len(testWorkload.Queries)]
			if _, err := coord.Query(q, 1, 5); err != nil {
				t.Errorf("concurrent query: %v", err)
			}
		}(i)
	}
	qg.Wait()
}

func TestCoordinatorValidation(t *testing.T) {
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	bad := shard.Strategy{PrefixBits: 16, Shards: 100, Nodes: 2}
	if _, err := NewCoordinator(ex, bad, []string{"127.0.0.1:1"}); err == nil {
		t.Error("node count mismatch should fail")
	}
	if _, err := NewCoordinator(ex, shard.Strategy{}, nil); err == nil {
		t.Error("invalid strategy should fail")
	}
	// Dialing a dead address fails cleanly.
	dead := shard.Strategy{PrefixBits: 16, Shards: 100, Nodes: 1}
	if _, err := NewCoordinator(ex, dead, []string{"127.0.0.1:1"}); err == nil {
		t.Error("dead node should fail to dial")
	}
}

func TestQueryAfterNodeShutdown(t *testing.T) {
	coord, nodes := startCluster(t, 2)
	for _, tr := range testWorkload.Dataset.Trajectories[:8] {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	nodes[0].Close()
	nodes[1].Close()
	if _, err := coord.Query(testWorkload.Queries[0], 1, 0); err == nil {
		t.Error("query against a dead cluster should fail")
	}
}

func TestNodeRejectsMalformedRequests(t *testing.T) {
	node, err := StartNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	cl, err := dial(node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.close()
	if _, err := cl.call(context.Background(), &request{Op: opAdd}); err == nil {
		t.Error("add without payload should error")
	}
	if _, err := cl.call(context.Background(), &request{Op: opQuery}); err == nil {
		t.Error("query without payload should error")
	}
	if _, err := cl.call(context.Background(), &request{Op: 99}); err == nil {
		t.Error("unknown op should error")
	}
	// The connection survives protocol errors.
	if _, err := cl.call(context.Background(), &request{Op: opStats}); err != nil {
		t.Errorf("stats after errors: %v", err)
	}
}

// startStallingNode listens and accepts connections but never replies,
// simulating a wedged shard node: requests vanish into it until the
// connection is torn down.
func startStallingNode(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(io.Discard, c)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// startStalledCoordinator fronts two stalling nodes, so every
// scatter-gather hangs until its context is cancelled.
func startStalledCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	addrs := []string{startStallingNode(t), startStallingNode(t)}
	ex := index.GeodabExtractor{Fingerprinter: core.MustFingerprinter(core.DefaultConfig())}
	coord, err := NewCoordinator(ex, shard.Strategy{PrefixBits: 16, Shards: 10000, Nodes: 2}, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// TestSearchCancelledMidScatterGather cancels a query while its fan-out
// is blocked on wedged nodes: the scatter-gather must unwind promptly
// with the context's error instead of hanging.
func TestSearchCancelledMidScatterGather(t *testing.T) {
	coord := startStalledCoordinator(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Search = %v, want context.Canceled", err)
	}
	if elapsed < 50*time.Millisecond {
		t.Errorf("Search returned in %v, before the cancellation fired", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("Search took %v after cancellation, want prompt unwind", elapsed)
	}
}

// TestSearchDeadlineMidScatterGather is the deadline flavor: a timeout
// budget bounds a query against wedged nodes.
func TestSearchDeadlineMidScatterGather(t *testing.T) {
	coord := startStalledCoordinator(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Search = %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchAlreadyCancelled verifies the fast path: no node I/O at all
// on a context that is dead on arrival.
func TestSearchAlreadyCancelled(t *testing.T) {
	coord, _ := startCluster(t, 2)
	for _, tr := range testWorkload.Dataset.Trajectories[:4] {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search = %v, want context.Canceled", err)
	}
	if err := coord.Add(ctx, testWorkload.Dataset.Trajectories[10]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Add = %v, want context.Canceled", err)
	}
}

// TestClientRecoversAfterCancelledCall exercises the redial path: a call
// abandoned mid-flight poisons the gob stream, and the next call on the
// same client must transparently reconnect.
func TestClientRecoversAfterCancelledCall(t *testing.T) {
	coord, _ := startCluster(t, 1)
	for _, tr := range testWorkload.Dataset.Trajectories[:4] {
		if err := coord.Add(context.Background(), tr); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0); err == nil {
		t.Fatal("cancelled search should fail")
	}
	// A short stall that actually reaches the node, then gets abandoned.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	_, _, _ = coord.Search(ctx2, testWorkload.Queries[0], 1, 0)
	cancel2()
	got, _, err := coord.Search(context.Background(), testWorkload.Queries[0], 1, 0)
	if err != nil {
		t.Fatalf("search after abandoned call: %v", err)
	}
	if len(got) == 0 {
		t.Error("recovered search returned nothing")
	}
}

// TestAddRetryAfterFailure verifies that a failed (here: cancelled) Add
// withdraws its directory entry, so the caller can retry the same
// trajectory instead of being stuck on "already indexed".
func TestAddRetryAfterFailure(t *testing.T) {
	coord, _ := startCluster(t, 2)
	tr := testWorkload.Dataset.Trajectories[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := coord.Add(ctx, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Add = %v, want context.Canceled", err)
	}
	if err := coord.Add(context.Background(), tr); err != nil {
		t.Fatalf("retry after failed Add: %v", err)
	}
	got, _, err := coord.Search(context.Background(), tr, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != tr.ID {
		t.Errorf("retried trajectory not retrievable: %+v", got)
	}
}

// TestQueuedCallHonorsOwnDeadline pins the call-slot semantics: a call
// with a deadline queued behind a stalled call (no deadline) must give up
// when its own budget expires instead of blocking on the stalled call's
// lock.
func TestQueuedCallHonorsOwnDeadline(t *testing.T) {
	coord := startStalledCoordinator(t)
	background := make(chan struct{})
	go func() {
		defer close(background)
		// Wedges until the coordinator is closed by test cleanup.
		coord.Search(context.Background(), testWorkload.Queries[0], 1, 0)
	}()
	time.Sleep(50 * time.Millisecond) // let the background search occupy the call slots
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := coord.Search(ctx, testWorkload.Queries[0], 1, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Search = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("queued Search took %v past its 100ms budget", elapsed)
	}
	coord.Close() // unblock the background search before the test ends
	<-background
}
