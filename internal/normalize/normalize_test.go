package normalize

import (
	"math/rand"
	"testing"

	"geodabs/internal/geo"
	"geodabs/internal/geohash"
	"geodabs/internal/roadnet"
)

var testCity = func() *roadnet.Graph {
	g, err := roadnet.GenerateCity(roadnet.CityConfig{RadiusMeters: 2500, Seed: 17})
	if err != nil {
		panic(err)
	}
	return g
}()

func noisyLine(n int, noise float64, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Offset(roadnet.LondonCenter,
			float64(i)*10+rng.NormFloat64()*noise,
			float64(i)*10+rng.NormFloat64()*noise)
	}
	return pts
}

func TestGridNormalize(t *testing.T) {
	out, err := Grid{Depth: 36}.Normalize(noisyLine(200, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) >= 200 {
		t.Fatalf("grid normalization returned %d points", len(out))
	}
	// Every output point is a cell center at depth 36.
	for i, p := range out {
		if c := geohash.Encode(p, 36).Center(); c != p {
			t.Fatalf("point %d is not a cell center: %v vs %v", i, p, c)
		}
		if i > 0 && out[i-1] == p {
			t.Fatalf("consecutive duplicate at %d", i)
		}
	}
}

func TestGridNormalizeDepths(t *testing.T) {
	pts := noisyLine(300, 10, 2)
	prev := -1
	for _, depth := range []uint8{32, 36, 40} {
		out, err := Grid{Depth: depth, SmoothWindow: -1, MinCellPoints: -1}.Normalize(pts)
		if err != nil {
			t.Fatal(err)
		}
		// Deeper grids produce finer (longer) sequences.
		if prev >= 0 && len(out) <= prev {
			t.Errorf("depth %d produced %d points, not more than %d", depth, len(out), prev)
		}
		prev = len(out)
	}
}

func TestGridNormalizeRejectsBadDepth(t *testing.T) {
	if _, err := (Grid{Depth: 61}).Normalize(noisyLine(10, 0, 3)); err == nil {
		t.Error("depth 61 should fail")
	}
}

func TestGridNormalizeEmpty(t *testing.T) {
	out, err := Grid{}.Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty input produced %d points", len(out))
	}
}

// matchScenario generates a noisy trajectory along a known route and
// returns both.
func matchScenario(t *testing.T, seed int64) (truth []roadnet.NodeID, trace []geo.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	route, err := roadnet.RandomRoute(testCity, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Sample the route directly for tight control over noise and spacing.
	legs := route.Legs(testCity)
	var pts []geo.Point
	for _, leg := range legs {
		steps := int(leg.Length/12) + 1
		for s := 0; s < steps; s++ {
			p := geo.Interpolate(leg.From, leg.To, float64(s)/float64(steps))
			pts = append(pts, geo.Offset(p, rng.NormFloat64()*14, rng.NormFloat64()*14))
		}
	}
	return route.Nodes, pts
}

func TestMapMatchRecoversRoute(t *testing.T) {
	truth, trace := matchScenario(t, 7)
	m := NewMapMatcher(testCity)
	matched, err := m.Match(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(matched) < len(truth)/2 {
		t.Fatalf("matched only %d nodes for a %d-node route", len(matched), len(truth))
	}
	// Most matched nodes lie on the true route.
	onRoute := make(map[roadnet.NodeID]bool, len(truth))
	for _, id := range truth {
		onRoute[id] = true
	}
	hits := 0
	for _, id := range matched {
		if onRoute[id] {
			hits++
		}
	}
	if frac := float64(hits) / float64(len(matched)); frac < 0.7 {
		t.Errorf("only %.0f%% of matched nodes are on the true route", frac*100)
	}
	// The expanded path must follow the network: consecutive nodes are
	// neighbors (or equal after deduplication).
	for i := 1; i < len(matched); i++ {
		adjacent := false
		for _, e := range testCity.Neighbors(matched[i-1]) {
			if e.To == matched[i] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("expanded path jumps from %d to %d", matched[i-1], matched[i])
		}
	}
}

func TestMapMatchNormalizeInterface(t *testing.T) {
	_, trace := matchScenario(t, 8)
	var n Normalizer = NewMapMatcher(testCity)
	out, err := n.Normalize(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no output points")
	}
	// All output points are node positions of the graph.
	for _, p := range out {
		if _, d := testCity.NearestNode(p); d > 0.5 {
			t.Fatalf("output point %v is not a graph node (%.1f m away)", p, d)
		}
	}
}

func TestMapMatchFarFromNetwork(t *testing.T) {
	m := NewMapMatcher(testCity)
	far := []geo.Point{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 0.001}}
	if _, err := m.Match(far); err != ErrNoMatch {
		t.Errorf("want ErrNoMatch, got %v", err)
	}
	if _, err := m.Match(nil); err != ErrNoMatch {
		t.Errorf("empty input: want ErrNoMatch, got %v", err)
	}
}

func TestMapMatchNoGraph(t *testing.T) {
	m := &MapMatcher{}
	if _, err := m.Match([]geo.Point{{Lat: 1, Lon: 1}}); err == nil {
		t.Error("matcher without graph should error")
	}
}

func TestMapMatchSkipsOutages(t *testing.T) {
	truth, trace := matchScenario(t, 9)
	// Inject an outage: a far-away excursion in the middle.
	mid := len(trace) / 2
	outage := make([]geo.Point, len(trace)+5)
	copy(outage, trace[:mid])
	for i := 0; i < 5; i++ {
		outage[mid+i] = geo.Point{Lat: 0, Lon: 0}
	}
	copy(outage[mid+5:], trace[mid:])
	m := NewMapMatcher(testCity)
	matched, err := m.Match(outage)
	if err != nil {
		t.Fatal(err)
	}
	if len(matched) < len(truth)/2 {
		t.Errorf("outage broke the match: %d nodes", len(matched))
	}
}

func TestMapMatchDeterminism(t *testing.T) {
	_, trace := matchScenario(t, 10)
	m := NewMapMatcher(testCity)
	a, err := m.Match(trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Match(trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("map matching is not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("map matching is not deterministic")
		}
	}
}

func BenchmarkMapMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	route, err := roadnet.RandomRoute(testCity, 2000, rng)
	if err != nil {
		b.Fatal(err)
	}
	var pts []geo.Point
	for _, leg := range route.Legs(testCity) {
		steps := int(leg.Length/12) + 1
		for s := 0; s < steps; s++ {
			p := geo.Interpolate(leg.From, leg.To, float64(s)/float64(steps))
			pts = append(pts, geo.Offset(p, rng.NormFloat64()*14, rng.NormFloat64()*14))
		}
	}
	m := NewMapMatcher(testCity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(pts); err != nil {
			b.Fatal(err)
		}
	}
}
