// Package normalize implements the paper's trajectory normalization
// function N(S) (§V): mapping raw GPS sequences onto equivalence classes so
// that similar trajectories converge toward identical point sequences.
//
// Two normalizers are provided, matching §V-A and §V-B:
//
//   - Grid snaps points to geohash cell centers at a constant depth, after
//     optional smoothing and boundary debouncing.
//   - MapMatcher snaps trajectories to a road network with a hidden Markov
//     model decoded by the Viterbi algorithm (Newson & Krumm, 2009).
package normalize

import (
	"errors"
	"fmt"
	"math"

	"geodabs/internal/core"
	"geodabs/internal/geo"
	"geodabs/internal/roadnet"
)

// Normalizer maps a raw point sequence to its normalized form.
type Normalizer interface {
	Normalize(points []geo.Point) ([]geo.Point, error)
}

// Grid normalizes by snapping points to the geohash grid, the lightweight
// technique of §V-A. The zero value uses the paper's 36-bit grid with the
// fingerprinter's default smoothing and debouncing.
type Grid struct {
	// Depth is the geohash depth in bits (default 36).
	Depth uint8
	// SmoothWindow and MinCellPoints mirror core.Config (defaults 5, 2).
	// Set to -1 to disable explicitly.
	SmoothWindow  int
	MinCellPoints int
}

var _ Normalizer = Grid{}

// Normalize returns the deduplicated sequence of cell centers.
func (g Grid) Normalize(points []geo.Point) ([]geo.Point, error) {
	cfg := core.DefaultConfig()
	if g.Depth != 0 {
		cfg.NormDepth = g.Depth
	}
	switch {
	case g.SmoothWindow < 0:
		cfg.SmoothWindow = 0
	case g.SmoothWindow > 0:
		cfg.SmoothWindow = g.SmoothWindow
	}
	switch {
	case g.MinCellPoints < 0:
		cfg.MinCellPoints = 0
	case g.MinCellPoints > 0:
		cfg.MinCellPoints = g.MinCellPoints
	}
	f, err := core.NewFingerprinter(cfg)
	if err != nil {
		return nil, fmt.Errorf("normalize: %w", err)
	}
	cells := f.Normalize(points)
	out := make([]geo.Point, len(cells))
	for i, c := range cells {
		out[i] = c.Center
	}
	return out, nil
}

// ErrNoMatch is returned when map matching finds no road candidates for
// any usable point of the trajectory.
var ErrNoMatch = errors.New("normalize: no road candidates for trajectory")

// MapMatcher normalizes trajectories onto a road network (§V-B) with the
// HMM formulation of Newson & Krumm: candidate nodes within Radius of each
// (downsampled) observation are HMM states, emissions score GPS distance
// and transitions score the agreement between route distance and
// great-circle distance. Viterbi decodes the most probable node path.
type MapMatcher struct {
	// Graph is the road network; it must be frozen.
	Graph *roadnet.Graph
	// Radius bounds the candidate search around each point (default 80 m).
	Radius float64
	// SigmaGPS is the GPS noise standard deviation for emissions
	// (default 20 m, the generator's noise level).
	SigmaGPS float64
	// Beta scales the transition penalty per meter of disagreement
	// between route and great-circle distance (default 30 m).
	Beta float64
	// Stride matches every n-th point (default 5): at 1 Hz, GPS points
	// are far denser than road nodes, and matching all of them wastes
	// O(n · candidates²) Dijkstra probes.
	Stride int
	// ExpandPath, when set, stitches matched nodes with the road path
	// between them so the output follows the network node-by-node
	// (default true via NewMapMatcher).
	ExpandPath bool
}

// NewMapMatcher returns a matcher with the documented defaults.
func NewMapMatcher(g *roadnet.Graph) *MapMatcher {
	return &MapMatcher{Graph: g, Radius: 80, SigmaGPS: 20, Beta: 30, Stride: 5, ExpandPath: true}
}

var _ Normalizer = (*MapMatcher)(nil)

// Normalize implements Normalizer: it returns the matched node positions.
func (m *MapMatcher) Normalize(points []geo.Point) ([]geo.Point, error) {
	nodes, err := m.Match(points)
	if err != nil {
		return nil, err
	}
	out := make([]geo.Point, len(nodes))
	for i, id := range nodes {
		out[i] = m.Graph.Point(id)
	}
	return out, nil
}

// Match returns the most probable node path for the trajectory. Points
// with no candidates within Radius are skipped; if none remain, ErrNoMatch
// is returned.
func (m *MapMatcher) Match(points []geo.Point) ([]roadnet.NodeID, error) {
	if m.Graph == nil {
		return nil, errors.New("normalize: MapMatcher has no graph")
	}
	radius := m.Radius
	if radius <= 0 {
		radius = 80
	}
	sigma := m.SigmaGPS
	if sigma <= 0 {
		sigma = 20
	}
	beta := m.Beta
	if beta <= 0 {
		beta = 30
	}
	stride := m.Stride
	if stride <= 0 {
		stride = 5
	}

	// Collect observations: every stride-th point with its candidates.
	type observation struct {
		point      geo.Point
		candidates []roadnet.NodeID
	}
	var obs []observation
	for i := 0; i < len(points); i += stride {
		cands := m.Graph.NodesWithin(points[i], radius)
		if len(cands) == 0 {
			continue // outage or off-network point
		}
		obs = append(obs, observation{point: points[i], candidates: cands})
	}
	if len(obs) == 0 {
		return nil, ErrNoMatch
	}

	// Viterbi in log space. prob[j] is the best log-probability of any
	// state path ending at candidate j of the current observation.
	emission := func(p geo.Point, id roadnet.NodeID) float64 {
		d := geo.Haversine(p, m.Graph.Point(id))
		return -d * d / (2 * sigma * sigma)
	}
	prob := make([]float64, len(obs[0].candidates))
	for j, id := range obs[0].candidates {
		prob[j] = emission(obs[0].point, id)
	}
	// back[i][j] is the index of the predecessor candidate chosen for
	// candidate j of observation i.
	back := make([][]int, len(obs))
	for i := 1; i < len(obs); i++ {
		prevObs, curObs := obs[i-1], obs[i]
		straight := geo.Haversine(prevObs.point, curObs.point)
		// One bounded Dijkstra per predecessor candidate covers all
		// transitions out of it.
		budget := straight*3 + 2*radius + 100
		routeDist := make([]map[roadnet.NodeID]float64, len(prevObs.candidates))
		for u, id := range prevObs.candidates {
			routeDist[u] = m.Graph.DistancesWithin(id, budget)
		}
		next := make([]float64, len(curObs.candidates))
		back[i] = make([]int, len(curObs.candidates))
		for j, vid := range curObs.candidates {
			bestU, bestP := -1, math.Inf(-1)
			for u := range prevObs.candidates {
				rd, reachable := routeDist[u][vid]
				if !reachable {
					continue
				}
				p := prob[u] - math.Abs(rd-straight)/beta
				if p > bestP {
					bestU, bestP = u, p
				}
			}
			if bestU < 0 {
				// Unreachable within budget: heavily penalized restart
				// keeps the chain alive across outages.
				bestU, bestP = 0, prob[0]-budget/beta
			}
			next[j] = bestP + emission(curObs.point, vid)
			back[i][j] = bestU
		}
		prob = next
	}

	// Backtrack the best final state.
	bestJ := 0
	for j := range prob {
		if prob[j] > prob[bestJ] {
			bestJ = j
		}
	}
	path := make([]roadnet.NodeID, len(obs))
	for i := len(obs) - 1; i >= 0; i-- {
		path[i] = obs[i].candidates[bestJ]
		if i > 0 {
			bestJ = back[i][bestJ]
		}
	}

	// Deduplicate consecutive repeats.
	matched := path[:1]
	for _, id := range path[1:] {
		if id != matched[len(matched)-1] {
			matched = append(matched, id)
		}
	}
	if !m.ExpandPath {
		return matched, nil
	}
	return m.expand(matched)
}

// expand stitches consecutive matched nodes with the road path between
// them, yielding a node sequence that follows the network.
func (m *MapMatcher) expand(matched []roadnet.NodeID) ([]roadnet.NodeID, error) {
	out := []roadnet.NodeID{matched[0]}
	for i := 1; i < len(matched); i++ {
		route, err := m.Graph.AStar(matched[i-1], matched[i])
		if err != nil {
			// Disconnected fragments: jump directly, keeping the match.
			out = append(out, matched[i])
			continue
		}
		out = append(out, route.Nodes[1:]...)
	}
	return out, nil
}
