package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	payload := AppendRequest(nil, req)
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("DecodeRequest(%s): %v", req.Op, err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Op: OpPing},
		{ID: 7, Op: OpPing, DeadlineMS: 1500},
		{ID: 2, Op: OpSearchFP, DeadlineMS: 250, MaxDistance: 0.5, Limit: 10, Terms: []uint32{3, 9, 10, 1 << 30}},
		{ID: 3, Op: OpSearchFP, MaxDistance: 1, KNN: 5, Terms: []uint32{}},
		{ID: 4, Op: OpSearch, MaxDistance: 0.9, Limit: 3, Points: []Point{{51.5, -0.1}, {51.6, -0.2}}},
		{ID: 5, Op: OpUpsert, TrajID: 42, Points: []Point{{1, 2}, {3, 4}, {5, 6}}},
		{ID: 6, Op: OpDelete, TrajID: 4242},
		{ID: 8, Op: OpSearchRerank, MaxDistance: 0.99, KNN: 5, Metric: MetricDTW, Points: []Point{{51.5, -0.1}, {51.6, -0.2}}},
		{ID: 9, Op: OpSearchRerank, MaxDistance: 1, Limit: 10, Metric: MetricDFD, Points: []Point{{1, 2}}},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		// Canonicalize empty slices: the codec may decode nil for empty.
		if len(req.Terms) == 0 {
			req.Terms, got.Terms = nil, nil
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

func TestRequestRoundTripFuzzTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		seen := make(map[uint32]bool, n)
		terms := make([]uint32, 0, n)
		for len(terms) < n {
			v := rng.Uint32()
			if !seen[v] {
				seen[v] = true
				terms = append(terms, v)
			}
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
		req := &Request{ID: uint64(trial), Op: OpSearchFP, MaxDistance: rng.Float64(), Terms: terms}
		got := roundTripRequest(t, req)
		if len(terms) == 0 {
			continue
		}
		if !reflect.DeepEqual(got.Terms, terms) {
			t.Fatalf("trial %d: terms mismatch", trial)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{ID: 1, Status: StatusOK, Hits: []Hit{{ID: 9, Distance: 0.25, Shared: 12}, {ID: 10, Distance: 1, Shared: 1}},
			Stats: Stats{Candidates: 31, Pruned: 4, NodePruned: 6, WirePartials: 25, Shards: 5, Nodes: 3, ElapsedUS: 1234}},
		{ID: 2, Status: StatusOK},
		{ID: 3, Status: StatusError, Message: "node exploded"},
		{ID: 4, Status: StatusOverloaded},
		{ID: 5, Status: StatusNotFound, Message: "trajectory 9 not found"},
		{ID: 6, Status: StatusDeadlineExceeded},
		{ID: 7, Status: StatusShuttingDown},
		{ID: 8, Status: StatusBadRequest, Message: "trailing bytes"},
	}
	for _, resp := range resps {
		payload := AppendResponse(nil, resp)
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("DecodeResponse(%v): %v", resp.Status, err)
		}
		if len(resp.Hits) == 0 {
			resp.Hits, got.Hits = nil, nil
		}
		if !reflect.DeepEqual(got, resp) {
			t.Errorf("%v: round trip mismatch\n got %+v\nwant %+v", resp.Status, got, resp)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 4096)}
	var stream []byte
	for _, p := range payloads {
		var err error
		if stream, err = AppendFrame(stream, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	for i, want := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: got %v, want EOF", err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var stream []byte
	stream = binary.BigEndian.AppendUint32(stream, 100)
	stream = append(stream, 1, 2, 3) // 3 of the announced 100 bytes
	if _, err := ReadFrame(bytes.NewReader(stream)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want ErrUnexpectedEOF", err)
	}
}

func TestDecodeRequestMalformed(t *testing.T) {
	valid := AppendRequest(nil, &Request{ID: 1, Op: OpSearchFP, MaxDistance: 1, Terms: []uint32{1, 2, 3}})
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{99}, valid[1:]...)},
		{"unknown op", []byte{Version, 200, 1, 0}},
		{"truncated mid-terms", valid[:len(valid)-1]},
		{"trailing garbage", append(append([]byte{}, valid...), 0xFF)},
		{"hostile term count", append([]byte{Version, byte(OpSearchFP), 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestDecodeRequestRejectsUnknownRerankMetric(t *testing.T) {
	payload := AppendRequest(nil, &Request{ID: 1, Op: OpSearchRerank, MaxDistance: 1, KNN: 3, Metric: 99, Points: []Point{{1, 2}}})
	if _, err := DecodeRequest(payload); err == nil {
		t.Fatal("unknown rerank metric decoded without error")
	}
}

func TestDecodeRequestRejectsUnsortedTerms(t *testing.T) {
	// Hand-encode a duplicate term (delta 0): must be rejected, the set
	// contract is strictly ascending.
	payload := []byte{Version, byte(OpSearchFP)}
	payload = binary.AppendUvarint(payload, 1)                           // id
	payload = binary.AppendUvarint(payload, 0)                           // deadline
	payload = binary.BigEndian.AppendUint64(payload, 0x3FF0000000000000) // maxDistance = 1.0
	payload = binary.AppendUvarint(payload, 0)                           // limit
	payload = binary.AppendUvarint(payload, 0)                           // knn
	payload = binary.AppendUvarint(payload, 2)                           // 2 terms
	payload = binary.AppendUvarint(payload, 5)                           // term 5
	payload = binary.AppendUvarint(payload, 0)                           // delta 0 → duplicate
	if _, err := DecodeRequest(payload); err == nil {
		t.Fatal("duplicate term decoded without error")
	}
}

func TestDecodeResponseMalformed(t *testing.T) {
	valid := AppendResponse(nil, &Response{ID: 1, Status: StatusOK, Hits: []Hit{{ID: 1, Distance: 0.5, Shared: 2}}})
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{99}, valid[1:]...)},
		{"truncated", valid[:len(valid)-3]},
		{"trailing garbage", append(append([]byte{}, valid...), 1)},
	}
	for _, tc := range cases {
		if _, err := DecodeResponse(tc.payload); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestTermDeltaEncodingIsCompact(t *testing.T) {
	// Clustered terms (the geodab case: shared geohash prefixes) must
	// encode in ~2 bytes each, not 5.
	terms := make([]uint32, 1000)
	base := uint32(0xABCD0000)
	for i := range terms {
		terms[i] = base + uint32(i*7)
	}
	payload := AppendRequest(nil, &Request{Op: OpSearchFP, MaxDistance: 1, Terms: terms})
	if perTerm := float64(len(payload)) / float64(len(terms)); perTerm > 2.5 {
		t.Errorf("clustered terms encode at %.1f bytes/term, want ≤ 2.5", perTerm)
	}
}
