// Package wire defines the geodabsd client/server protocol: a compact
// length-prefixed binary encoding shared by the server (internal/server)
// and the Go client (geodabs/client). The full specification — framing,
// op codes, status codes, field layouts, and versioning rules — lives in
// docs/protocol.md; this package is its single Go implementation, so the
// two sides can never disagree on the bytes.
//
// # Framing
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by the payload. Payloads are capped at MaxFrame; a peer receiving a
// longer announcement must drop the connection (the stream cannot be
// resynchronized). The first payload byte is the protocol version
// (Version); a peer receiving an unknown version replies
// StatusBadRequest and drops the connection.
//
// # Requests and responses
//
// A connection carries a sequential stream of request frames from the
// client and response frames from the server. Requests carry a
// client-chosen ID echoed in the response, so a client may pipeline
// several requests on one connection and match responses even if a
// server chooses to reorder them (the reference server may complete
// admitted requests out of order under pipelining).
//
// Integers are unsigned varints (binary.Uvarint) unless noted; float64s
// are 8-byte big-endian IEEE 754 bit patterns. Fingerprint term sets are
// sorted ascending and delta-encoded (first term absolute, every
// subsequent term a strictly positive delta), which keeps the dominant
// payload of the thin-client search op small on the wire.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version this package speaks, carried as the
// first byte of every payload. See docs/protocol.md for the rules on
// bumping it.
const Version = 1

// MaxFrame caps a frame payload. Large enough for a raw trajectory of
// ~500k points or a degenerate fingerprint; small enough that a
// malformed length prefix cannot OOM the receiver.
const MaxFrame = 16 << 20

// Op discriminates request types.
type Op uint8

const (
	// OpPing is a health check: empty body, empty OK response.
	OpPing Op = 1
	// OpSearchFP is the thin-client search: the client winnowed locally
	// and ships a prepared fingerprint term set, never raw GPS points.
	OpSearchFP Op = 2
	// OpSearch is the raw-trajectory search: the server runs fingerprint
	// extraction on the shipped points.
	OpSearch Op = 3
	// OpUpsert indexes a raw trajectory, replacing any previous version.
	OpUpsert Op = 4
	// OpDelete removes a trajectory by ID.
	OpDelete Op = 5
	// OpSearchRerank is the raw-trajectory search with exact refinement:
	// the server re-ranks the fingerprint shortlist with the named
	// built-in metric (Request.Metric) before replying, like
	// geodabs.WithExactRerank. Requires an engine built with point
	// retention; only built-in metrics are addressable on the wire.
	OpSearchRerank Op = 6
)

// Built-in exact rerank metrics addressable on the wire
// (Request.Metric of OpSearchRerank).
const (
	MetricDTW uint8 = 1
	MetricDFD uint8 = 2
)

// String names the op for metrics labels and errors.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpSearchFP:
		return "search_fp"
	case OpSearch:
		return "search"
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	case OpSearchRerank:
		return "search_rerank"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status is the response disposition.
type Status uint8

const (
	// StatusOK carries the op's result body.
	StatusOK Status = 0
	// StatusError is a server-side failure; the body is a message.
	StatusError Status = 1
	// StatusOverloaded reports admission-control shedding: the request
	// was NOT executed and the client may retry elsewhere or later,
	// ideally with backoff. The body is empty.
	StatusOverloaded Status = 2
	// StatusNotFound reports a mutation aimed at an unknown trajectory.
	StatusNotFound Status = 3
	// StatusDeadlineExceeded reports that the request's deadline expired
	// before it completed (it may have been partially executed for
	// mutations; searches are side-effect free).
	StatusDeadlineExceeded Status = 4
	// StatusShuttingDown reports that the server is draining and admits
	// no new work. The request was not executed.
	StatusShuttingDown Status = 5
	// StatusBadRequest reports an undecodable or semantically invalid
	// request; the body is a message. Retrying the same bytes cannot
	// succeed.
	StatusBadRequest Status = 6
)

// String names the status for metrics labels and errors.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusError:
		return "error"
	case StatusOverloaded:
		return "overloaded"
	case StatusNotFound:
		return "not_found"
	case StatusDeadlineExceeded:
		return "deadline_exceeded"
	case StatusShuttingDown:
		return "shutting_down"
	case StatusBadRequest:
		return "bad_request"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Errors shared by both codec directions.
var (
	// ErrFrameTooLarge reports a length prefix above MaxFrame. The
	// connection must be dropped: the stream cannot be resynchronized.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadVersion reports an unknown protocol version byte.
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrTruncated reports a payload shorter than its own encoding
	// claims.
	ErrTruncated = errors.New("wire: truncated payload")
)

// Point is one latitude/longitude position in degrees, mirroring
// geo.Point without importing the geometry package — wire stays a leaf
// both the server and the public client can depend on.
type Point struct {
	Lat, Lon float64
}

// Request is the decoded form of one client request. Fields beyond the
// header are op-specific; unused ones are zero.
type Request struct {
	// ID is echoed verbatim in the response, matching pipelined
	// responses back to their requests.
	ID uint64
	// Op selects the operation.
	Op Op
	// DeadlineMS is the client's remaining per-request budget in
	// milliseconds; 0 means "no client deadline" (the server still
	// applies its own cap).
	DeadlineMS uint64

	// Search parameters (OpSearchFP, OpSearch).
	MaxDistance float64
	Limit       int
	KNN         int
	// Terms is the prepared fingerprint term set, sorted ascending
	// (OpSearchFP).
	Terms []uint32
	// Points is the raw trajectory (OpSearch, OpSearchRerank, OpUpsert).
	Points []Point
	// Metric names the built-in exact metric of an OpSearchRerank:
	// MetricDTW or MetricDFD.
	Metric uint8
	// TrajID identifies the trajectory (OpUpsert, OpDelete).
	TrajID uint32
}

// Hit is one ranked result on the wire.
type Hit struct {
	ID       uint32
	Distance float64
	Shared   uint32
}

// Stats is the search execution statistics block, mirroring the public
// SearchStats fields that make sense across the wire.
type Stats struct {
	Candidates   uint64
	Pruned       uint64
	NodePruned   uint64
	WirePartials uint64
	Shards       uint64
	Nodes        uint64
	ElapsedUS    uint64
}

// Response is the decoded form of one server response.
type Response struct {
	ID     uint64
	Status Status
	// Message carries human-readable detail for StatusError,
	// StatusBadRequest and StatusNotFound.
	Message string
	// Hits and Stats carry a successful search's results.
	Hits  []Hit
	Stats Stats
}

// AppendFrame appends the 4-byte length prefix and the payload to dst.
// The payload must not exceed MaxFrame.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// ReadFrame reads one length-prefixed payload. It enforces MaxFrame
// before allocating, so a hostile length prefix costs nothing.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// AppendRequest encodes a request payload (without framing) onto dst.
func AppendRequest(dst []byte, req *Request) []byte {
	dst = append(dst, Version, byte(req.Op))
	dst = binary.AppendUvarint(dst, req.ID)
	dst = binary.AppendUvarint(dst, req.DeadlineMS)
	switch req.Op {
	case OpPing:
	case OpSearchFP:
		dst = appendSearchParams(dst, req)
		dst = appendTerms(dst, req.Terms)
	case OpSearch:
		dst = appendSearchParams(dst, req)
		dst = appendPoints(dst, req.Points)
	case OpSearchRerank:
		dst = appendSearchParams(dst, req)
		dst = append(dst, req.Metric)
		dst = appendPoints(dst, req.Points)
	case OpUpsert:
		dst = binary.AppendUvarint(dst, uint64(req.TrajID))
		dst = appendPoints(dst, req.Points)
	case OpDelete:
		dst = binary.AppendUvarint(dst, uint64(req.TrajID))
	}
	return dst
}

func appendSearchParams(dst []byte, req *Request) []byte {
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(req.MaxDistance))
	dst = binary.AppendUvarint(dst, uint64(req.Limit))
	dst = binary.AppendUvarint(dst, uint64(req.KNN))
	return dst
}

// appendTerms delta-encodes a sorted ascending term set.
func appendTerms(dst []byte, terms []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(terms)))
	prev := uint32(0)
	for i, t := range terms {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(t))
		} else {
			dst = binary.AppendUvarint(dst, uint64(t-prev))
		}
		prev = t
	}
	return dst
}

func appendPoints(dst []byte, pts []Point) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	for _, p := range pts {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Lat))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(p.Lon))
	}
	return dst
}

// decoder walks a payload with bounds checking.
type decoder struct {
	buf []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if len(d.buf) < 1 {
		return 0, ErrTruncated
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *decoder) float64() (float64, error) {
	if len(d.buf) < 8 {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || len(d.buf) < n {
		return nil, ErrTruncated
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b, nil
}

// maxCount bounds decoded element counts by what the remaining payload
// could possibly hold, so a hostile count cannot force a huge allocation
// before the truncation is noticed.
func (d *decoder) maxCount(claimed uint64, minElemBytes int) (int, error) {
	if claimed > uint64(len(d.buf)/minElemBytes)+1 {
		return 0, ErrTruncated
	}
	return int(claimed), nil
}

// DecodeRequest parses a request payload produced by AppendRequest.
func DecodeRequest(payload []byte) (*Request, error) {
	d := decoder{buf: payload}
	v, err := d.byte()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, v, Version)
	}
	opb, err := d.byte()
	if err != nil {
		return nil, err
	}
	req := &Request{Op: Op(opb)}
	if req.ID, err = d.uvarint(); err != nil {
		return nil, err
	}
	if req.DeadlineMS, err = d.uvarint(); err != nil {
		return nil, err
	}
	switch req.Op {
	case OpPing:
	case OpSearchFP:
		if err := decodeSearchParams(&d, req); err != nil {
			return nil, err
		}
		if req.Terms, err = decodeTerms(&d); err != nil {
			return nil, err
		}
	case OpSearch:
		if err := decodeSearchParams(&d, req); err != nil {
			return nil, err
		}
		if req.Points, err = decodePoints(&d); err != nil {
			return nil, err
		}
	case OpSearchRerank:
		if err := decodeSearchParams(&d, req); err != nil {
			return nil, err
		}
		if req.Metric, err = d.byte(); err != nil {
			return nil, err
		}
		if req.Metric != MetricDTW && req.Metric != MetricDFD {
			return nil, fmt.Errorf("wire: unknown rerank metric %d", req.Metric)
		}
		if req.Points, err = decodePoints(&d); err != nil {
			return nil, err
		}
	case OpUpsert:
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		req.TrajID = uint32(id)
		if req.Points, err = decodePoints(&d); err != nil {
			return nil, err
		}
	case OpDelete:
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		req.TrajID = uint32(id)
	default:
		return nil, fmt.Errorf("wire: unknown op %d", opb)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s request", len(d.buf), req.Op)
	}
	return req, nil
}

func decodeSearchParams(d *decoder, req *Request) error {
	var err error
	if req.MaxDistance, err = d.float64(); err != nil {
		return err
	}
	limit, err := d.uvarint()
	if err != nil {
		return err
	}
	knn, err := d.uvarint()
	if err != nil {
		return err
	}
	if limit > math.MaxInt32 || knn > math.MaxInt32 {
		return fmt.Errorf("wire: limit/knn out of range")
	}
	req.Limit, req.KNN = int(limit), int(knn)
	return nil
}

func decodeTerms(d *decoder) ([]uint32, error) {
	claimed, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	n, err := d.maxCount(claimed, 1)
	if err != nil {
		return nil, err
	}
	terms := make([]uint32, n)
	prev := uint64(0)
	for i := range terms {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if i > 0 {
			if v == 0 {
				return nil, fmt.Errorf("wire: zero term delta (set not strictly ascending)")
			}
			v += prev
		}
		if v > math.MaxUint32 {
			return nil, fmt.Errorf("wire: term overflows uint32")
		}
		terms[i] = uint32(v)
		prev = v
	}
	return terms, nil
}

func decodePoints(d *decoder) ([]Point, error) {
	claimed, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	n, err := d.maxCount(claimed, 16)
	if err != nil {
		return nil, err
	}
	pts := make([]Point, n)
	for i := range pts {
		if pts[i].Lat, err = d.float64(); err != nil {
			return nil, err
		}
		if pts[i].Lon, err = d.float64(); err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// AppendResponse encodes a response payload (without framing) onto dst.
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = append(dst, Version, byte(resp.Status))
	dst = binary.AppendUvarint(dst, resp.ID)
	switch resp.Status {
	case StatusOK:
		dst = binary.AppendUvarint(dst, uint64(len(resp.Hits)))
		for _, h := range resp.Hits {
			dst = binary.AppendUvarint(dst, uint64(h.ID))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(h.Distance))
			dst = binary.AppendUvarint(dst, uint64(h.Shared))
		}
		s := &resp.Stats
		for _, v := range [...]uint64{s.Candidates, s.Pruned, s.NodePruned, s.WirePartials, s.Shards, s.Nodes, s.ElapsedUS} {
			dst = binary.AppendUvarint(dst, v)
		}
	default:
		dst = binary.AppendUvarint(dst, uint64(len(resp.Message)))
		dst = append(dst, resp.Message...)
	}
	return dst
}

// DecodeResponse parses a response payload produced by AppendResponse.
func DecodeResponse(payload []byte) (*Response, error) {
	d := decoder{buf: payload}
	v, err := d.byte()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, v, Version)
	}
	st, err := d.byte()
	if err != nil {
		return nil, err
	}
	resp := &Response{Status: Status(st)}
	if resp.ID, err = d.uvarint(); err != nil {
		return nil, err
	}
	switch resp.Status {
	case StatusOK:
		claimed, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		n, err := d.maxCount(claimed, 10)
		if err != nil {
			return nil, err
		}
		resp.Hits = make([]Hit, n)
		for i := range resp.Hits {
			id, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			resp.Hits[i].ID = uint32(id)
			if resp.Hits[i].Distance, err = d.float64(); err != nil {
				return nil, err
			}
			sh, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			resp.Hits[i].Shared = uint32(sh)
		}
		s := &resp.Stats
		for _, p := range [...]*uint64{&s.Candidates, &s.Pruned, &s.NodePruned, &s.WirePartials, &s.Shards, &s.Nodes, &s.ElapsedUS} {
			if *p, err = d.uvarint(); err != nil {
				return nil, err
			}
		}
	default:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		msg, err := d.bytes(int(n))
		if err != nil {
			return nil, err
		}
		resp.Message = string(msg)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after response", len(d.buf))
	}
	return resp, nil
}
