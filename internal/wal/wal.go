// Package wal implements the shard nodes' write-ahead mutation log: an
// append-only sequence of length-prefixed, CRC-framed mutation records
// spread over rolling segment files, with group-committed fsync.
//
// Durability model. Every mutation a node applies is appended to the log
// before it touches the in-memory index, so a crash loses at most the
// appends the sync policy had not yet flushed. With SyncEvery=1 (the
// default) an Append returns only after its record — and, thanks to
// group commit, every record batched with it — is fsynced: one Fsync is
// amortized across all appends that arrived while the previous sync was
// in flight. With SyncEvery=N>1 appends return after the buffered write
// and a background flusher syncs every SyncInterval or every N records,
// whichever comes first (the Redis appendfsync-everysec shape): faster,
// bounded loss.
//
// Recovery. Open scans every segment in log order, verifying each
// record's CRC. A record that fails the check — or runs past the end of
// the file — in the final segment is a torn tail from a crash mid-write:
// the segment is truncated to the last good record and the log continues
// from there. A final segment shorter than its header (a crash between
// segment creation and the header fsync) holds no records and is deleted
// and recreated. A bad record in any earlier segment is real corruption
// and fails Open. Replay streams the surviving records to the caller in
// append order; the node's epoch fencing makes re-applying records that
// a snapshot already covers a no-op, so replay never needs to know where
// the snapshot cut off.
//
// Compaction. The log does not interpret records; the owner compacts by
// snapshotting its state, calling Seal to roll to a fresh segment, and
// DropBefore to delete the sealed segments the snapshot now covers. See
// docs/durability.md for the byte-level format.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geodabs/internal/geo"
)

// Op discriminates mutation records.
type Op uint8

const (
	// OpAdd records a trajectory's postings routed to the node.
	OpAdd Op = 1
	// OpDelete records a posting withdrawal (a tombstone at the epoch).
	OpDelete Op = 2
	// OpAddPoints is OpAdd plus the trajectory's retained raw points —
	// written when the node is the trajectory's point owner under
	// WithPointRetention. A separate op (rather than optional trailing
	// bytes on OpAdd) keeps logs written before point retention strictly
	// decodable: decodeRecord rejects trailing bytes, and an OpAdd record
	// never carries points.
	OpAddPoints Op = 3
)

// Record is one logged mutation — exactly the information the node needs
// to re-apply it: the op, the coordinator-assigned epoch (the fencing
// key), the trajectory ID, and, for adds, the replicated total
// cardinality and the terms the node owns for the trajectory.
type Record struct {
	Op     Op
	Epoch  uint64
	ID     uint32
	Card   uint32      // adds only: the trajectory's total |G|
	Terms  []uint32    // adds only: the terms routed to this node
	Points []geo.Point // OpAddPoints only: the retained raw trajectory
}

// Options configures a Log. The zero value gets defaults.
type Options struct {
	// SyncEvery is how many appended records may accumulate before an
	// fsync. 1 (the default) syncs every append — group commit still
	// amortizes one fsync across concurrent appenders. Larger values
	// return from Append after the buffered write and leave syncing to
	// the background flusher: faster, and a crash loses at most the
	// unsynced window.
	SyncEvery int
	// SyncInterval bounds how stale unsynced records can get when
	// SyncEvery > 1. Default 100ms.
	SyncInterval time.Duration
	// SegmentBytes is the size past which the active segment is sealed
	// and a fresh one started. Default 16 MiB.
	SegmentBytes int64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SyncEvery <= 0 {
		out.SyncEvery = 1
	}
	if out.SyncInterval <= 0 {
		out.SyncInterval = 100 * time.Millisecond
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 16 << 20
	}
	return out
}

// Stats is a point-in-time summary of the log, for metrics exposition.
type Stats struct {
	// SizeBytes is the total size of all segment files, Segments their
	// count (including the active one), Records the records appended or
	// replayed over the log's lifetime in this process.
	SizeBytes int64
	Segments  int
	Records   uint64
	// Syncs counts fsyncs issued; LastSync is the duration of the most
	// recent one — the group-commit latency floor.
	Syncs    uint64
	LastSync time.Duration
}

// ErrClosed reports an Append on a closed (or killed) log.
var ErrClosed = errors.New("wal: closed")

const (
	segmentMagic   = 0x4c574447 // "GDWL"
	segmentVersion = 1
	segmentHdrSize = 5
	recordHdrSize  = 8 // length uint32 + crc32c uint32
	// maxRecordBytes bounds a record's decoded length: a length prefix
	// beyond it means a corrupt or torn header, not a real record.
	maxRecordBytes = 64 << 20
	segmentSuffix  = ".seg"
	segmentPrefix  = "wal-"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentName renders the canonical file name of segment seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, seq, segmentSuffix)
}

// parseSegmentName inverts segmentName, reporting ok=false for foreign
// files.
func parseSegmentName(name string) (seq uint64, ok bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segmentInfo is the in-memory ledger of one sealed or active segment.
type segmentInfo struct {
	seq   uint64
	bytes int64
}

// segmentFile is what the writer needs from the active segment. It is an
// *os.File in production; tests substitute fault-injecting wrappers to
// exercise the torn-write recovery paths.
type segmentFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// Log is a write-ahead mutation log over a directory of segment files.
// Append is safe for concurrent use; Seal, DropBefore, Replay, Stats and
// Close may run concurrently with appends.
type Log struct {
	dir  string
	opts Options

	reqs chan appendReq

	// writer-goroutine state (untouched outside it after start, except
	// under stopped coordination in Seal/Close).
	mu       sync.Mutex // guards the fields below and file rotation
	segments []segmentInfo
	active   segmentFile
	activeSz int64
	unsynced int // records written but not yet fsynced
	// failed latches the log unusable after an error that leaves on-disk
	// state unreconcilable with the in-memory ledger (a torn write that
	// could not be truncated away, or a failed fsync — the kernel may
	// already have dropped the dirty pages, so retrying cannot restore
	// durability). Every subsequent Append is rejected with it.
	failed error

	records  atomic.Uint64
	syncs    atomic.Uint64
	lastSync atomic.Int64 // nanoseconds

	closing   chan struct{}
	closeOnce sync.Once
	writerWG  sync.WaitGroup
	killed    atomic.Bool
}

// appendReq is one Append call waiting for the writer loop: the encoded
// payloads and the channel its durability ack arrives on.
type appendReq struct {
	payloads [][]byte
	done     chan error
}

// Open opens (or creates) the log in dir, scanning every segment in
// order, truncating a torn tail off the final segment, and positioning
// appends after the last good record. Records already in the log are not
// loaded into memory — stream them with Replay before the first Append.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	l := &Log{
		dir:     dir,
		opts:    opts,
		reqs:    make(chan appendReq),
		closing: make(chan struct{}),
	}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		size, n, err := l.scanSegment(seq, last)
		if err != nil {
			return nil, err
		}
		if last && size < segmentHdrSize {
			// A crash between segment creation and the header fsync left
			// the final segment without a complete header, so it provably
			// holds no records. It cannot be reused as-is: appends would
			// land in a headerless file the next Open rejects wholesale.
			// Delete it; the fresh-segment path below recreates it.
			if err := os.Remove(l.segmentPath(seq)); err != nil {
				return nil, fmt.Errorf("wal: remove headerless segment %s: %w", segmentName(seq), err)
			}
			continue
		}
		l.segments = append(l.segments, segmentInfo{seq: seq, bytes: size})
		l.records.Add(n)
	}
	// Open (or create) the active segment: the last surviving one, or a
	// fresh segment — at the deleted headerless tail's own sequence, so
	// sequence numbers never move backwards across restarts, or at 1 for
	// a brand-new log.
	var seq uint64 = 1
	if n := len(seqs); n > 0 {
		seq = seqs[n-1]
	}
	if n := len(l.segments); n > 0 {
		seq = l.segments[n-1].seq
		f, err := os.OpenFile(l.segmentPath(seq), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.active = f
		l.activeSz = l.segments[n-1].bytes
	} else {
		if err := l.openFreshSegment(seq); err != nil {
			return nil, err
		}
	}
	l.writerWG.Add(1)
	go l.writeLoop()
	return l, nil
}

func (l *Log) segmentPath(seq uint64) string {
	return filepath.Join(l.dir, segmentName(seq))
}

// openFreshSegment creates segment seq with its header and makes it the
// active segment. Callers must ensure no active segment is open.
func (l *Log) openFreshSegment(seq uint64) error {
	// O_APPEND (matching the reopen path in Open) keeps every write at
	// the true EOF even after a torn write is truncated away — without
	// it the file offset would sit past EOF and the next write would
	// leave a zero-filled hole recovery reads as a torn tail.
	f, err := os.OpenFile(l.segmentPath(seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [segmentHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segmentMagic)
	hdr[4] = segmentVersion
	if _, err := f.Write(hdr[:]); err != nil {
		_ = f.Close() // the header write error is the one worth reporting
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the header fsync error is the one worth reporting
		return fmt.Errorf("wal: %w", err)
	}
	l.active = f
	l.activeSz = segmentHdrSize
	l.segments = append(l.segments, segmentInfo{seq: seq, bytes: segmentHdrSize})
	return nil
}

// scanSegment validates segment seq record by record, returning the
// byte offset after the last good record and how many records it holds.
// In the final segment a bad or truncated record is a torn tail: the
// file is truncated to the last good offset. Anywhere else it is
// corruption and an error.
func (l *Log) scanSegment(seq uint64, last bool) (size int64, records uint64, err error) {
	path := l.segmentPath(seq)
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	good, n, scanErr := scanRecords(f)
	if scanErr != nil {
		if !last {
			return 0, 0, fmt.Errorf("wal: segment %s: %w", segmentName(seq), scanErr)
		}
		// Torn tail on the crash segment: drop it.
		if err := os.Truncate(path, good); err != nil {
			return 0, 0, fmt.Errorf("wal: truncate torn tail of %s: %w", segmentName(seq), err)
		}
	}
	return good, n, nil
}

// scanRecords walks a segment stream, returning the offset after the
// last valid record, the record count, and a non-nil error if the
// segment ends in anything but a clean record boundary.
func scanRecords(r io.Reader) (good int64, records uint64, err error) {
	br := newByteCounter(r)
	var hdr [segmentHdrSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("short segment header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != segmentMagic {
		return 0, 0, fmt.Errorf("bad segment magic %#x", m)
	}
	if hdr[4] != segmentVersion {
		return 0, 0, fmt.Errorf("unsupported segment version %d", hdr[4])
	}
	good = segmentHdrSize
	var rh [recordHdrSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			if err == io.EOF {
				return good, records, nil // clean end
			}
			return good, records, fmt.Errorf("torn record header")
		}
		length := binary.LittleEndian.Uint32(rh[0:4])
		crc := binary.LittleEndian.Uint32(rh[4:8])
		if length == 0 || length > maxRecordBytes {
			return good, records, fmt.Errorf("implausible record length %d", length)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, records, fmt.Errorf("torn record payload")
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return good, records, fmt.Errorf("record CRC mismatch")
		}
		if _, err := decodeRecord(payload); err != nil {
			return good, records, fmt.Errorf("undecodable record: %w", err)
		}
		records++
		good = br.n
	}
}

// byteCounter tracks how many bytes have been consumed from the
// underlying reader, so the scanner knows the offset of the last clean
// record boundary.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// encodeRecord renders a record payload (no framing): op, epoch, id,
// then for adds the card, term count, and zigzag-delta-encoded terms —
// ascending term slices (the common case: they come from bitmap
// iteration) cost one or two bytes per term. OpAddPoints appends the
// point count and each point's lat/lon as raw float64 bits, so replayed
// coordinates are bit-identical to what the coordinator shipped.
func encodeRecord(r *Record) []byte {
	buf := make([]byte, 0, 16+5*len(r.Terms)+16*len(r.Points))
	buf = append(buf, byte(r.Op))
	buf = binary.AppendUvarint(buf, r.Epoch)
	buf = binary.AppendUvarint(buf, uint64(r.ID))
	if r.Op == OpAdd || r.Op == OpAddPoints {
		buf = binary.AppendUvarint(buf, uint64(r.Card))
		buf = binary.AppendUvarint(buf, uint64(len(r.Terms)))
		prev := int64(0)
		for _, t := range r.Terms {
			delta := int64(t) - prev
			buf = binary.AppendVarint(buf, delta)
			prev = int64(t)
		}
	}
	if r.Op == OpAddPoints {
		buf = binary.AppendUvarint(buf, uint64(len(r.Points)))
		for _, pt := range r.Points {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Lat))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Lon))
		}
	}
	return buf
}

// decodeRecord inverts encodeRecord.
func decodeRecord(p []byte) (*Record, error) {
	if len(p) < 1 {
		return nil, errors.New("empty payload")
	}
	r := &Record{Op: Op(p[0])}
	p = p[1:]
	var n int
	var v uint64
	if v, n = binary.Uvarint(p); n <= 0 {
		return nil, errors.New("bad epoch")
	}
	r.Epoch = v
	p = p[n:]
	if v, n = binary.Uvarint(p); n <= 0 || v > 1<<32-1 {
		return nil, errors.New("bad id")
	}
	r.ID = uint32(v)
	p = p[n:]
	switch r.Op {
	case OpDelete:
		if len(p) != 0 {
			return nil, errors.New("trailing bytes in delete record")
		}
		return r, nil
	case OpAdd, OpAddPoints:
	default:
		return nil, fmt.Errorf("unknown record op %d", r.Op)
	}
	if v, n = binary.Uvarint(p); n <= 0 || v > 1<<32-1 {
		return nil, errors.New("bad card")
	}
	r.Card = uint32(v)
	p = p[n:]
	if v, n = binary.Uvarint(p); n <= 0 {
		return nil, errors.New("bad term count")
	}
	count := v
	p = p[n:]
	// A term delta costs at least one byte, so a count beyond the bytes
	// remaining is corrupt — reject before allocating from it.
	if count > uint64(len(p)) {
		return nil, errors.New("implausible term count")
	}
	r.Terms = make([]uint32, 0, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Varint(p)
		if n <= 0 {
			return nil, errors.New("bad term delta")
		}
		p = p[n:]
		prev += d
		if prev < 0 || prev > 1<<32-1 {
			return nil, errors.New("term out of range")
		}
		r.Terms = append(r.Terms, uint32(prev))
	}
	if r.Op == OpAddPoints {
		if v, n = binary.Uvarint(p); n <= 0 {
			return nil, errors.New("bad point count")
		}
		p = p[n:]
		// Each point is exactly 16 bytes, so the remaining length pins the
		// count — reject before allocating from a corrupt prefix.
		if v != uint64(len(p))/16 || uint64(len(p))%16 != 0 {
			return nil, errors.New("implausible point count")
		}
		r.Points = make([]geo.Point, 0, v)
		for i := uint64(0); i < v; i++ {
			lat := math.Float64frombits(binary.LittleEndian.Uint64(p[0:8]))
			lon := math.Float64frombits(binary.LittleEndian.Uint64(p[8:16]))
			p = p[16:]
			r.Points = append(r.Points, geo.Point{Lat: lat, Lon: lon})
		}
	}
	if len(p) != 0 {
		return nil, errors.New("trailing bytes in add record")
	}
	return r, nil
}

// Replay streams every record in the log, in append order, to fn. It
// reads the segment files directly, so it must run before the first
// Append (the node's recovery path). A non-nil error from fn aborts the
// replay and is returned.
func (l *Log) Replay(fn func(*Record) error) error {
	l.mu.Lock()
	segs := make([]segmentInfo, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()
	for _, seg := range segs {
		if err := l.replaySegment(seg, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(seg segmentInfo, fn func(*Record) error) error {
	f, err := os.Open(l.segmentPath(seg.seq))
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	// Only the validated prefix is replayed; anything past it is a tail
	// that scanSegment already truncated (or bytes appended after Replay
	// started, which the caller contract excludes).
	br := io.LimitReader(f, seg.bytes)
	var hdr [segmentHdrSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var rh [recordHdrSize]byte
	for {
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(rh[0:4])
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Append logs one or more records and returns when the sync policy is
// satisfied: with SyncEvery=1, after the records are fsynced (group
// commit batches concurrent appenders into one sync); with larger
// SyncEvery, after the buffered write.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	payloads := make([][]byte, len(recs))
	for i := range recs {
		payloads[i] = encodeRecord(&recs[i])
	}
	req := appendReq{payloads: payloads, done: make(chan error, 1)}
	select {
	case l.reqs <- req:
	case <-l.closing:
		return ErrClosed
	}
	// Once the request is accepted, the writer guarantees exactly one ack
	// on done — a commit result, or ErrClosed from the Kill drain — so
	// block on it alone: racing l.closing here could report ErrClosed for
	// a record that committed durably.
	return <-req.done
}

// writeLoop is the single goroutine that owns the active segment: it
// batches whatever appends are pending (group commit), writes them,
// syncs per policy, acks, and rolls segments past the size threshold.
func (l *Log) writeLoop() {
	defer l.writerWG.Done()
	flushTick := time.NewTicker(l.opts.SyncInterval)
	defer flushTick.Stop()
	for {
		select {
		case req := <-l.reqs:
			batch := []appendReq{req}
			// Gather everything already queued: these arrived while the
			// previous batch was being written/synced and share this
			// batch's single fsync.
		drain:
			for {
				select {
				case more := <-l.reqs:
					batch = append(batch, more)
				default:
					break drain
				}
			}
			l.commit(batch)
		case <-flushTick.C:
			l.backgroundSync()
		case <-l.closing:
			// Drain requests that won the send race with Close, then
			// stop. After Kill nothing more may reach the disk — fail
			// the stragglers instead, as a real crash would have.
			for {
				select {
				case req := <-l.reqs:
					if l.killed.Load() {
						req.done <- ErrClosed
						continue
					}
					l.commit([]appendReq{req})
				default:
					return
				}
			}
		}
	}
}

// commit writes one batch, syncs it per policy, and acks every append.
func (l *Log) commit(batch []appendReq) {
	l.mu.Lock()
	err := l.failed
	var n int
	var frame [recordHdrSize]byte
	for _, req := range batch {
		for _, p := range req.payloads {
			if err != nil {
				break
			}
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, crcTable))
			if _, werr := l.active.Write(frame[:]); werr != nil {
				err = fmt.Errorf("wal: write: %w", werr)
				break
			}
			if _, werr := l.active.Write(p); werr != nil {
				err = fmt.Errorf("wal: write: %w", werr)
				break
			}
			l.activeSz += int64(recordHdrSize + len(p))
			l.segments[len(l.segments)-1].bytes = l.activeSz
			n++
		}
	}
	// Records fully written before a failure stay in the log (their
	// callers see the error, but at-least-once is fine — epoch fencing
	// makes re-application a no-op), so they still need syncing and
	// counting.
	l.unsynced += n
	l.records.Add(uint64(n))
	if err == nil {
		if l.opts.SyncEvery == 1 || l.unsynced >= l.opts.SyncEvery {
			err = l.syncLocked()
		}
		if err == nil && l.activeSz >= l.opts.SegmentBytes {
			err = l.rollLocked()
		}
	} else if l.failed == nil {
		// A partial record write (e.g. ENOSPC mid-payload) leaves torn
		// frame bytes past activeSz; later appends written after them
		// would be unreachable to recovery, which stops scanning at the
		// torn record. Cut the file back to the last good boundary; if
		// even that fails, latch the log failed so no later append can
		// land beyond bytes we cannot account for.
		//geodabs:vet-ignore torn-write repair must run under l.mu before any later append lands past the bad bytes
		if terr := l.active.Truncate(l.activeSz); terr != nil {
			l.failed = fmt.Errorf("wal: failed (torn write not truncatable: %v): %w", terr, err)
		}
	}
	l.mu.Unlock()
	for _, req := range batch {
		req.done <- err
	}
}

// syncLocked fsyncs the active segment, latching the log failed if the
// fsync fails. Callers hold l.mu.
func (l *Log) syncLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if l.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: fsync: %w", err)
		return l.failed
	}
	l.lastSync.Store(int64(time.Since(start)))
	l.syncs.Add(1)
	l.unsynced = 0
	return nil
}

// backgroundSync is the SyncInterval flusher for SyncEvery > 1.
func (l *Log) backgroundSync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.killed.Load() {
		return
	}
	l.syncLocked() // best effort; the next commit surfaces a sticky error
}

// rollLocked seals the active segment (flush, sync, close) and opens the
// next one. Callers hold l.mu.
func (l *Log) rollLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	next := l.segments[len(l.segments)-1].seq + 1
	return l.openFreshSegment(next)
}

// Seal forces a roll: the active segment is flushed, synced, closed, and
// a fresh segment becomes active. It returns the fresh segment's
// sequence number — every record appended before Seal lives in a segment
// below it, which is exactly the DropBefore bound a snapshot needs.
// Callers must ensure no Append is in flight (the node holds its apply
// lock exclusively while snapshotting).
func (l *Log) Seal() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.killed.Load() {
		return 0, ErrClosed
	}
	if err := l.rollLocked(); err != nil {
		return 0, err
	}
	return l.segments[len(l.segments)-1].seq, nil
}

// DropBefore deletes every sealed segment with a sequence below seq —
// log truncation after a snapshot made them redundant. The active
// segment is never dropped.
func (l *Log) DropBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	var firstErr error
	for i, seg := range l.segments {
		if seg.seq >= seq || i == len(l.segments)-1 {
			kept = append(kept, seg)
			continue
		}
		if err := os.Remove(l.segmentPath(seg.seq)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: drop segment: %w", err)
			kept = append(kept, seg)
		}
	}
	l.segments = kept
	return firstErr
}

// Stats summarizes the log for metrics exposition.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	var size int64
	for _, seg := range l.segments {
		size += seg.bytes
	}
	segs := len(l.segments)
	l.mu.Unlock()
	return Stats{
		SizeBytes: size,
		Segments:  segs,
		Records:   l.records.Load(),
		Syncs:     l.syncs.Load(),
		LastSync:  time.Duration(l.lastSync.Load()),
	}
}

// Close flushes and syncs pending appends and closes the active segment.
// Appends racing Close either commit durably or fail with ErrClosed.
func (l *Log) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.closing)
		l.writerWG.Wait()
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.killed.Load() {
			return
		}
		if serr := l.syncLocked(); serr != nil {
			err = serr
		}
		if cerr := l.active.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal: %w", cerr)
		}
	})
	return err
}

// Kill abandons the log without flushing or syncing — the in-process
// stand-in for a crash: anything the sync policy had not yet flushed is
// lost, exactly as it would be to a power cut. For crash tests.
func (l *Log) Kill() {
	l.closeOnce.Do(func() {
		l.killed.Store(true)
		close(l.closing)
		l.writerWG.Wait()
		l.mu.Lock()
		defer l.mu.Unlock()
		//geodabs:vet-ignore crash simulation: discarding the close error is the point
		l.active.Close() // releases the fd; OS discards nothing already written
	})
}
