package wal

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// collect replays a freshly opened log at dir and returns its records.
func collect(t *testing.T, dir string, opts Options) []Record {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	var out []Record
	if err := l.Replay(func(r *Record) error {
		out = append(out, *r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func randRecord(rng *rand.Rand, epoch uint64) Record {
	if rng.Intn(3) == 0 {
		return Record{Op: OpDelete, Epoch: epoch, ID: uint32(rng.Intn(50))}
	}
	terms := make([]uint32, rng.Intn(20))
	t := uint32(rng.Intn(100))
	for i := range terms {
		terms[i] = t
		t += uint32(1 + rng.Intn(1000))
	}
	return Record{Op: OpAdd, Epoch: epoch, ID: uint32(rng.Intn(50)), Card: uint32(len(terms) + rng.Intn(10)), Terms: terms}
}

// TestAppendReplayRoundTrip: records come back byte-identical, in order,
// across a clean close.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	var want []Record
	for e := uint64(1); e <= 100; e++ {
		r := randRecord(rng, e)
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := collect(t, dir, Options{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ: got %d, want %d", len(got), len(want))
	}
	// Empty term slices and nil term slices both round-trip as empty.
	if err := l.Append(Record{Op: OpAdd, Epoch: 1, ID: 1}); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// TestTornTailTruncated: a truncated final record is detected by its CRC
// or short length, dropped, and the log stays appendable — not fatal.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []string{"header", "payload", "crc"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			var want []Record
			rng := rand.New(rand.NewSource(7))
			for e := uint64(1); e <= 20; e++ {
				r := randRecord(rng, e)
				want = append(want, r)
				if err := l.Append(r); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			l.Close()

			path := filepath.Join(dir, segmentName(1))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch cut {
			case "header":
				// Append a lone partial frame header.
				data = append(data, 0xAB, 0xCD)
			case "payload":
				// Append a frame whose payload is cut short.
				data = append(data, 0x40, 0, 0, 0, 1, 2, 3, 4, 0xFF)
			case "crc":
				// Flip a byte inside the final record's payload.
				data[len(data)-1] ^= 0x5A
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			wantN := len(want)
			if cut == "crc" {
				wantN-- // the corrupted final record is dropped
			}
			got := collect(t, dir, Options{})
			if !reflect.DeepEqual(got, want[:wantN]) {
				t.Fatalf("after %s tear: replayed %d records, want %d", cut, len(got), wantN)
			}

			// The log must accept appends after tail truncation and keep
			// the surviving prefix intact.
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			extra := Record{Op: OpDelete, Epoch: 999, ID: 42}
			if err := l2.Append(extra); err != nil {
				t.Fatalf("Append after truncation: %v", err)
			}
			l2.Close()
			got = collect(t, dir, Options{})
			if !reflect.DeepEqual(got, append(append([]Record{}, want[:wantN]...), extra)) {
				t.Fatalf("append after truncation lost records")
			}
		})
	}
}

// TestMidSegmentCorruptionFatal: a bad record in a non-final segment is
// corruption, not a torn tail, and fails Open.
func TestMidSegmentCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for e := uint64(1); e <= 50; e++ {
		if err := l.Append(randRecord(rng, e)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Segments; got < 2 {
		t.Fatalf("expected multiple segments, got %d", got)
	}
	l.Close()
	// Corrupt the first (sealed) segment's last payload byte.
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{SegmentBytes: 256}); err == nil {
		t.Fatal("Open accepted a corrupt mid-log segment")
	}
}

// TestSegmentRollAndDrop: segments roll past the threshold; Seal +
// DropBefore reclaims everything the snapshot covers; the survivors
// replay exactly the post-seal suffix.
func TestSegmentRollAndDrop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for e := uint64(1); e <= 60; e++ {
		if err := l.Append(randRecord(rng, e)); err != nil {
			t.Fatal(err)
		}
	}
	boundary, err := l.Seal()
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	var tail []Record
	for e := uint64(61); e <= 70; e++ {
		r := randRecord(rng, e)
		tail = append(tail, r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.DropBefore(boundary); err != nil {
		t.Fatalf("DropBefore: %v", err)
	}
	l.Close()
	got := collect(t, dir, Options{SegmentBytes: 512})
	if !reflect.DeepEqual(got, tail) {
		t.Fatalf("post-drop replay: got %d records, want the %d appended after Seal", len(got), len(tail))
	}
}

// TestConcurrentAppendGroupCommit: concurrent appenders all commit
// durably (SyncEvery=1) and every record survives replay; the fsync
// count stays well below the record count, proving group commit
// amortized them.
func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := Record{Op: OpAdd, Epoch: uint64(w*perWorker + i + 1), ID: uint32(w), Card: 3, Terms: []uint32{1, 2, 3}}
				if err := l.Append(r); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != workers*perWorker {
		t.Fatalf("Records = %d, want %d", st.Records, workers*perWorker)
	}
	if st.Syncs == 0 || st.Syncs > st.Records {
		t.Fatalf("Syncs = %d out of range (0, %d]", st.Syncs, st.Records)
	}
	l.Close()
	got := collect(t, dir, Options{})
	if len(got) != workers*perWorker {
		t.Fatalf("replayed %d records, want %d", len(got), workers*perWorker)
	}
}

// TestCrashRecoveryProperty: apply a random interleaving of add/delete
// records, hard-kill the log (no clean close) at a random point, replay,
// and assert (a) the survivors are exactly a prefix of the appended
// sequence, and (b) with SyncEvery=1 every acked record survived — the
// state rebuilt from the replay is byte-identical to the reference built
// from the acked prefix.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		syncEvery := 1
		if seed%2 == 1 {
			syncEvery = 1 + rng.Intn(16) // relaxed mode: acks precede durability
		}
		l, err := Open(dir, Options{SyncEvery: syncEvery, SyncInterval: time.Hour, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		total := 20 + rng.Intn(200)
		killAt := rng.Intn(total)
		var acked []Record
		for e := 1; e <= total; e++ {
			r := randRecord(rng, uint64(e))
			if err := l.Append(r); err != nil {
				t.Fatalf("seed %d: Append: %v", seed, err)
			}
			acked = append(acked, r)
			if e-1 == killAt {
				break
			}
		}
		l.Kill()

		got := collect(t, dir, Options{})
		// (a) Prefix property: the log never reorders or invents records.
		if len(got) > len(acked) {
			t.Fatalf("seed %d: replayed %d records, only %d were appended", seed, len(got), len(acked))
		}
		if !reflect.DeepEqual(got, acked[:len(got)]) {
			t.Fatalf("seed %d: replayed records are not a prefix of the appended sequence", seed)
		}
		// (b) Durability property: with per-append sync, nothing acked is
		// lost.
		if syncEvery == 1 && len(got) != len(acked) {
			t.Fatalf("seed %d: SyncEvery=1 lost %d acked records", seed, len(acked)-len(got))
		}
	}
}

// TestRelaxedSyncLosesAtMostWindow: with SyncEvery=N, a kill loses less
// than N records plus the in-flight batch.
func TestRelaxedSyncLosesAtMostWindow(t *testing.T) {
	dir := t.TempDir()
	const n = 8
	l, err := Open(dir, Options{SyncEvery: n, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const total = 100
	for e := uint64(1); e <= total; e++ {
		if err := l.Append(Record{Op: OpDelete, Epoch: e, ID: uint32(e)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Kill()
	got := collect(t, dir, Options{})
	if len(got) < total-n {
		t.Fatalf("lost %d records, sync window is %d", total-len(got), n)
	}
}

// TestStats: sizes and counters reflect reality.
func TestStats(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Op: OpDelete, Epoch: 1, ID: 1}); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Segments != 1 || st.Records != 1 || st.Syncs == 0 || st.SizeBytes <= segmentHdrSize {
		t.Fatalf("implausible stats: %+v", st)
	}
	fi, err := os.Stat(filepath.Join(dir, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != st.SizeBytes {
		t.Fatalf("SizeBytes = %d, file is %d", st.SizeBytes, fi.Size())
	}
}

// TestHeaderlessTailSegmentDiscarded: a crash between segment creation
// and the header fsync leaves a final segment shorter than its header.
// Open must not reuse it as-is — appends would land in a headerless file
// the next Open rejects wholesale, losing acked records. It holds no
// records, so Open deletes and recreates it.
func TestHeaderlessTailSegmentDiscarded(t *testing.T) {
	for _, tc := range []struct {
		name    string
		hdr     []byte
		prelude int // records appended (and expected to survive) before the crash artifact
	}{
		{"empty-only-segment", nil, 0},
		{"partial-header-only-segment", []byte{0x47, 0x44}, 0},
		{"empty-after-sealed", nil, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var want []Record
			crashSeq := uint64(1)
			if tc.prelude > 0 {
				l, err := Open(dir, Options{})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < tc.prelude; i++ {
					r := Record{Op: OpDelete, Epoch: uint64(i + 1), ID: uint32(i)}
					want = append(want, r)
					if err := l.Append(r); err != nil {
						t.Fatal(err)
					}
				}
				l.Close()
				crashSeq = 2
			}
			if err := os.WriteFile(filepath.Join(dir, segmentName(crashSeq)), tc.hdr, 0o644); err != nil {
				t.Fatal(err)
			}

			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open with headerless tail: %v", err)
			}
			extra := Record{Op: OpDelete, Epoch: 999, ID: 42}
			want = append(want, extra)
			if err := l.Append(extra); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// The acked record must survive another Open — the pre-fix
			// failure mode was a headerless active segment whose records
			// the next Open silently discarded before Replay failed.
			if got := collect(t, dir, Options{}); !reflect.DeepEqual(got, want) {
				t.Fatalf("replay after headerless-tail recovery: got %d records, want %d", len(got), len(want))
			}
		})
	}
}

// flakySegment wraps the active segment file, failing operations on
// demand to exercise the writer's error recovery.
type flakySegment struct {
	segmentFile
	failWriteAfter int  // fail the write once this many more bytes have been written
	partialBytes   int  // bytes of the failing write that still reach the file
	armed          bool // one-shot write failure pending
	failTruncate   bool
	failSync       bool
}

var errInjected = errors.New("injected fault")

func (f *flakySegment) Write(p []byte) (int, error) {
	if f.armed {
		if len(p) <= f.failWriteAfter {
			f.failWriteAfter -= len(p)
			return f.segmentFile.Write(p)
		}
		f.armed = false
		n, _ := f.segmentFile.Write(p[:f.failWriteAfter+f.partialBytes])
		return n, errInjected
	}
	return f.segmentFile.Write(p)
}

func (f *flakySegment) Truncate(size int64) error {
	if f.failTruncate {
		return errInjected
	}
	return f.segmentFile.Truncate(size)
}

func (f *flakySegment) Sync() error {
	if f.failSync {
		return errInjected
	}
	return f.segmentFile.Sync()
}

// inject swaps the log's active segment for a flaky wrapper.
func inject(l *Log, mutate func(*flakySegment)) {
	l.mu.Lock()
	fs := &flakySegment{segmentFile: l.active}
	mutate(fs)
	l.active = fs
	l.mu.Unlock()
}

// TestTornWriteTruncated: a write that fails mid-payload (ENOSPC shape)
// leaves torn frame bytes in the active segment. The writer must cut
// them off before accepting more appends — otherwise recovery stops at
// the torn record and silently drops every later acked, fsynced record.
func TestTornWriteTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 5; i++ {
		r := Record{Op: OpAdd, Epoch: uint64(i + 1), ID: uint32(i), Card: 3, Terms: []uint32{1, 5, 9}}
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Fail the next record's payload write after the frame header plus
	// two payload bytes have reached the file.
	inject(l, func(fs *flakySegment) {
		fs.armed = true
		fs.failWriteAfter = recordHdrSize
		fs.partialBytes = 2
	})
	if err := l.Append(Record{Op: OpAdd, Epoch: 6, ID: 6, Card: 3, Terms: []uint32{2, 4, 6}}); err == nil {
		t.Fatal("Append with injected write fault succeeded")
	}
	// The log stays usable, and the post-failure append must survive
	// recovery — it would be unreachable behind the torn frame otherwise.
	extra := Record{Op: OpDelete, Epoch: 7, ID: 7}
	want = append(want, extra)
	if err := l.Append(extra); err != nil {
		t.Fatalf("Append after torn write: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := collect(t, dir, Options{}); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after torn write: got %d records, want %d", len(got), len(want))
	}
}

// TestUntruncatableTornWriteLatchesFailure: if the post-error truncate
// also fails, the on-disk tail no longer matches the ledger and nothing
// more may be appended — the log must latch failed and reject every
// subsequent Append rather than write past bytes it cannot account for.
func TestUntruncatableTornWriteLatchesFailure(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inject(l, func(fs *flakySegment) {
		fs.armed = true
		fs.partialBytes = 2
		fs.failTruncate = true
	})
	if err := l.Append(Record{Op: OpDelete, Epoch: 1, ID: 1}); err == nil {
		t.Fatal("Append with injected write fault succeeded")
	}
	if err := l.Append(Record{Op: OpDelete, Epoch: 2, ID: 2}); err == nil {
		t.Fatal("Append on a latched-failed log succeeded")
	}
	l.Close()
}

// TestSyncErrorLatchesFailure: after a failed fsync the kernel may have
// dropped the dirty pages, so durability of everything unsynced is
// unknowable — the log must reject further appends instead of acking
// records whose predecessors may be gone.
func TestSyncErrorLatchesFailure(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inject(l, func(fs *flakySegment) { fs.failSync = true })
	if err := l.Append(Record{Op: OpDelete, Epoch: 1, ID: 1}); err == nil {
		t.Fatal("Append with failing fsync succeeded")
	}
	if err := l.Append(Record{Op: OpDelete, Epoch: 2, ID: 2}); err == nil {
		t.Fatal("Append on a latched-failed log succeeded")
	}
	l.Close()
}

// TestCorruptTermCountRejectedCheaply: a corrupt add record claiming an
// enormous term count must be rejected by bounds-checking against the
// payload size, not by attempting a giant allocation during scan.
func TestCorruptTermCountRejectedCheaply(t *testing.T) {
	payload := encodeRecord(&Record{Op: OpAdd, Epoch: 1, ID: 1, Card: 1, Terms: []uint32{1}})
	// Rewrite the term-count varint (last two fields are count=1, delta).
	payload = payload[:len(payload)-2]
	payload = binary.AppendUvarint(payload, maxRecordBytes-1)
	if _, err := decodeRecord(payload); err == nil {
		t.Fatal("decodeRecord accepted a term count far beyond the payload size")
	}
}

// TestReopenContinuesSequence: records appended across process lifetimes
// (close + reopen) replay as one ordered sequence.
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	var want []Record
	for round := 0; round < 3; round++ {
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			r := Record{Op: OpDelete, Epoch: uint64(round*10 + i + 1), ID: uint32(i)}
			want = append(want, r)
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, dir, Options{})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-reopen replay differs: got %d records, want %d", len(got), len(want))
	}
}
