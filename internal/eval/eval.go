// Package eval implements the information-retrieval effectiveness
// measures of the paper's evaluation (§V-C, §VI-D): interpolated
// precision/recall curves (Figs 8 and 12), receiver-operating-
// characteristic curves and the area under them (Fig 13).
package eval

import (
	"sort"

	"geodabs/internal/trajectory"
)

// Run is the outcome of one ranked query against a ground truth.
type Run struct {
	// Ranked lists the retrieved trajectory IDs, most similar first.
	Ranked []trajectory.ID
	// Relevant is the ground-truth set for the query.
	Relevant map[trajectory.ID]bool
	// Total is the dataset size, needed for specificity (true negatives).
	Total int
}

// PRPoint is one point of a precision/recall curve.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// InterpolatedPR returns the standard 11-point interpolated
// precision/recall curve averaged over the runs (Manning et al., IR
// textbook): at each recall level r ∈ {0, 0.1, …, 1.0}, the interpolated
// precision is the maximum precision at any recall ≥ r, averaged across
// queries. Queries with no relevant results are skipped.
func InterpolatedPR(runs []Run) []PRPoint {
	const levels = 11
	sums := make([]float64, levels)
	queries := 0
	for _, run := range runs {
		if len(run.Relevant) == 0 {
			continue
		}
		queries++
		interp := interpolatedPrecisions(run)
		for i := 0; i < levels; i++ {
			sums[i] += interp[i]
		}
	}
	curve := make([]PRPoint, levels)
	for i := range curve {
		curve[i].Recall = float64(i) / (levels - 1)
		if queries > 0 {
			curve[i].Precision = sums[i] / float64(queries)
		}
	}
	return curve
}

// interpolatedPrecisions computes, for one run, the interpolated precision
// at the 11 standard recall levels.
func interpolatedPrecisions(run Run) [11]float64 {
	type prPair struct{ recall, precision float64 }
	var pairs []prPair
	tp := 0
	for rank, id := range run.Ranked {
		if run.Relevant[id] {
			tp++
			pairs = append(pairs, prPair{
				recall:    float64(tp) / float64(len(run.Relevant)),
				precision: float64(tp) / float64(rank+1),
			})
		}
	}
	var out [11]float64
	for i := 0; i < 11; i++ {
		level := float64(i) / 10
		best := 0.0
		for _, p := range pairs {
			if p.recall >= level-1e-12 && p.precision > best {
				best = p.precision
			}
		}
		out[i] = best
	}
	return out
}

// ROCPoint is one point of an ROC curve: sensitivity (recall of the
// positive class) against 1 − specificity (false-positive rate).
type ROCPoint struct {
	FPR float64 // 1 − specificity
	TPR float64 // sensitivity
}

// ROC pools the runs' rankings into one micro-averaged ROC curve: every
// (query, trajectory) pair is an instance, scored by its rank position
// (unretrieved instances score worst). The curve starts at (0, 0) and ends
// at (1, 1).
func ROC(runs []Run) []ROCPoint {
	// For each run: positives P = |Relevant|, negatives N = Total − P.
	// Walking the ranked lists accumulates TP and FP. Everything a query
	// never retrieves — positives and negatives alike — is tied at the
	// worst score, which the final straight segment to (1, 1) represents
	// (the standard tie treatment, equivalent to random ordering of the
	// tail).
	var totalP, totalN int
	// Pool instances by per-query rank so queries of different dataset
	// sizes average sensibly: instance score = rank index.
	type instance struct {
		score float64 // rank position; lower is better
		isRel bool
	}
	var instances []instance
	for _, run := range runs {
		p := len(run.Relevant)
		totalP += p
		totalN += run.Total - p
		for rank, id := range run.Ranked {
			instances = append(instances, instance{score: float64(rank), isRel: run.Relevant[id]})
		}
	}
	sort.Slice(instances, func(i, j int) bool { return instances[i].score < instances[j].score })

	curve := []ROCPoint{{FPR: 0, TPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(instances); {
		// Process ties as one block for a faithful step curve.
		j := i
		for j < len(instances) && instances[j].score == instances[i].score {
			if instances[j].isRel {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		curve = append(curve, ROCPoint{
			FPR: safeDiv(fp, totalN),
			TPR: safeDiv(tp, totalP),
		})
	}
	// The unretrieved tail takes the curve to (1, 1).
	if last := curve[len(curve)-1]; last.FPR < 1 || last.TPR < 1 {
		curve = append(curve, ROCPoint{FPR: 1, TPR: 1})
	}
	return curve
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// AUC returns the area under an ROC curve by trapezoidal integration.
// The curve must be sorted by FPR (as returned by ROC).
func AUC(curve []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// PrecisionAtK returns the precision of the first k results averaged over
// the runs. Runs with no relevant items are skipped.
func PrecisionAtK(runs []Run, k int) float64 {
	sum, n := 0.0, 0
	for _, run := range runs {
		if len(run.Relevant) == 0 {
			continue
		}
		n++
		tp := 0
		limit := min(k, len(run.Ranked))
		for _, id := range run.Ranked[:limit] {
			if run.Relevant[id] {
				tp++
			}
		}
		sum += float64(tp) / float64(k)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanAveragePrecision returns MAP over the runs: for each query, the
// mean of the precision values at every rank where a relevant item
// appears (relevant items never retrieved contribute precision 0), then
// averaged across queries. Runs with no relevant items are skipped.
func MeanAveragePrecision(runs []Run) float64 {
	sum, n := 0.0, 0
	for _, run := range runs {
		if len(run.Relevant) == 0 {
			continue
		}
		n++
		tp := 0
		ap := 0.0
		for rank, id := range run.Ranked {
			if run.Relevant[id] {
				tp++
				ap += float64(tp) / float64(rank+1)
			}
		}
		sum += ap / float64(len(run.Relevant))
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RecallAtK returns the recall achieved within the first k results,
// averaged over the runs.
func RecallAtK(runs []Run, k int) float64 {
	sum, n := 0.0, 0
	for _, run := range runs {
		if len(run.Relevant) == 0 {
			continue
		}
		n++
		tp := 0
		limit := min(k, len(run.Ranked))
		for _, id := range run.Ranked[:limit] {
			if run.Relevant[id] {
				tp++
			}
		}
		sum += float64(tp) / float64(len(run.Relevant))
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
