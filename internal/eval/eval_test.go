package eval

import (
	"math"
	"testing"

	"geodabs/internal/trajectory"
)

// run builds a Run from a ranked ID list and a relevant set.
func run(total int, ranked []trajectory.ID, relevant ...trajectory.ID) Run {
	rel := make(map[trajectory.ID]bool, len(relevant))
	for _, id := range relevant {
		rel[id] = true
	}
	return Run{Ranked: ranked, Relevant: rel, Total: total}
}

func TestInterpolatedPRPerfect(t *testing.T) {
	// All relevant items retrieved first: precision 1 at every level.
	r := run(100, []trajectory.ID{1, 2, 3, 10, 11}, 1, 2, 3)
	curve := InterpolatedPR([]Run{r})
	if len(curve) != 11 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for _, p := range curve {
		if p.Precision != 1 {
			t.Errorf("precision at recall %.1f = %.3f, want 1", p.Recall, p.Precision)
		}
	}
}

func TestInterpolatedPRWorthless(t *testing.T) {
	// No relevant item retrieved: precision 0 everywhere.
	r := run(100, []trajectory.ID{10, 11, 12}, 1, 2)
	curve := InterpolatedPR([]Run{r})
	for _, p := range curve {
		if p.Precision != 0 {
			t.Errorf("precision at recall %.1f = %.3f, want 0", p.Recall, p.Precision)
		}
	}
}

func TestInterpolatedPRKnownShape(t *testing.T) {
	// Ranked: rel, irrel, rel → precisions 1/1 at recall .5, 2/3 at 1.0.
	r := run(100, []trajectory.ID{1, 10, 2}, 1, 2)
	curve := InterpolatedPR([]Run{r})
	// Levels 0.0–0.5 take max precision at recall ≥ level = 1.
	for i := 0; i <= 5; i++ {
		if math.Abs(curve[i].Precision-1) > 1e-12 {
			t.Errorf("level %.1f precision = %.3f, want 1", curve[i].Recall, curve[i].Precision)
		}
	}
	// Levels 0.6–1.0: only the recall-1.0 point qualifies → 2/3.
	for i := 6; i <= 10; i++ {
		if math.Abs(curve[i].Precision-2.0/3) > 1e-12 {
			t.Errorf("level %.1f precision = %.3f, want 2/3", curve[i].Recall, curve[i].Precision)
		}
	}
}

func TestInterpolatedPRAveragesQueries(t *testing.T) {
	perfect := run(10, []trajectory.ID{1}, 1)
	worthless := run(10, []trajectory.ID{5}, 2)
	curve := InterpolatedPR([]Run{perfect, worthless})
	for _, p := range curve {
		if math.Abs(p.Precision-0.5) > 1e-12 {
			t.Errorf("averaged precision at %.1f = %.3f, want 0.5", p.Recall, p.Precision)
		}
	}
	// Queries with no ground truth are skipped, not zero-averaged.
	empty := Run{Ranked: []trajectory.ID{1}, Relevant: map[trajectory.ID]bool{}, Total: 10}
	curve2 := InterpolatedPR([]Run{perfect, empty})
	for _, p := range curve2 {
		if p.Precision != 1 {
			t.Errorf("empty-truth query should be skipped, got %.3f", p.Precision)
		}
	}
}

func TestInterpolatedPRNoRuns(t *testing.T) {
	curve := InterpolatedPR(nil)
	if len(curve) != 11 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for _, p := range curve {
		if p.Precision != 0 {
			t.Errorf("no-runs precision = %v", p.Precision)
		}
	}
}

func TestROCPerfectRanking(t *testing.T) {
	// 2 relevant ranked first out of 10 total: the curve reaches TPR 1 at
	// FPR 0, then runs to (1, 1). AUC = 1.
	r := run(10, []trajectory.ID{1, 2, 20, 21}, 1, 2)
	curve := ROC([]Run{r})
	if auc := AUC(curve); math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect AUC = %.4f, want 1", auc)
	}
}

func TestROCInvertedRanking(t *testing.T) {
	// Relevant items ranked after all retrieved negatives, dataset
	// entirely retrieved: AUC = 0 for the retrieved part... but the two
	// relevant are still before nothing. With total=4 and ranking
	// [neg, neg, rel, rel], AUC = 0.
	r := run(4, []trajectory.ID{10, 11, 1, 2}, 1, 2)
	curve := ROC([]Run{r})
	if auc := AUC(curve); math.Abs(auc) > 1e-12 {
		t.Errorf("inverted AUC = %.4f, want 0", auc)
	}
}

func TestROCRandomTail(t *testing.T) {
	// Nothing retrieved: the curve is the diagonal, AUC 0.5.
	r := run(100, nil, 1, 2)
	curve := ROC([]Run{r})
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	if auc := AUC(curve); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("diagonal AUC = %.4f, want 0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	r1 := run(50, []trajectory.ID{1, 9, 2, 8, 3}, 1, 2, 3)
	r2 := run(50, []trajectory.ID{7, 1, 2}, 1, 2)
	curve := ROC([]Run{r1, r2})
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v after %+v", i, curve[i], curve[i-1])
		}
	}
	if last := curve[len(curve)-1]; last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve ends at %+v, want (1,1)", last)
	}
	auc := AUC(curve)
	if auc <= 0.5 || auc > 1 {
		t.Errorf("AUC = %.4f for a better-than-random ranking", auc)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	// Perfect ranking: MAP 1.
	perfect := run(10, []trajectory.ID{1, 2}, 1, 2)
	if got := MeanAveragePrecision([]Run{perfect}); got != 1 {
		t.Errorf("perfect MAP = %v", got)
	}
	// rel, irrel, rel: AP = (1/1 + 2/3)/2 = 5/6.
	mixed := run(10, []trajectory.ID{1, 9, 2}, 1, 2)
	if got := MeanAveragePrecision([]Run{mixed}); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("MAP = %v, want 5/6", got)
	}
	// Missing relevant item contributes zero.
	half := run(10, []trajectory.ID{1}, 1, 2)
	if got := MeanAveragePrecision([]Run{half}); got != 0.5 {
		t.Errorf("half MAP = %v, want 0.5", got)
	}
	// Averaging and skipping no-truth queries.
	empty := Run{Ranked: []trajectory.ID{1}, Relevant: map[trajectory.ID]bool{}, Total: 10}
	if got := MeanAveragePrecision([]Run{perfect, half, empty}); got != 0.75 {
		t.Errorf("averaged MAP = %v, want 0.75", got)
	}
	if got := MeanAveragePrecision(nil); got != 0 {
		t.Errorf("MAP of nothing = %v", got)
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	r := run(100, []trajectory.ID{1, 10, 2, 11, 3}, 1, 2, 3, 4)
	if got := PrecisionAtK([]Run{r}, 1); got != 1 {
		t.Errorf("P@1 = %v, want 1", got)
	}
	if got := PrecisionAtK([]Run{r}, 4); got != 0.5 {
		t.Errorf("P@4 = %v, want 0.5", got)
	}
	if got := RecallAtK([]Run{r}, 5); got != 0.75 {
		t.Errorf("R@5 = %v, want 0.75", got)
	}
	if got := RecallAtK([]Run{r}, 100); got != 0.75 {
		t.Errorf("R@100 = %v, want 0.75 (one relevant never retrieved)", got)
	}
	if got := PrecisionAtK(nil, 5); got != 0 {
		t.Errorf("P@5 of no runs = %v", got)
	}
}
