// Package analyzertest runs a geodabs-vet analyzer over a fixture
// module and checks its diagnostics against `// want` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under the calling test's testdata directory as a
// small self-contained module (its own go.mod, module name "fixtures"),
// which the go tool happily builds because testdata trees are invisible
// to package patterns of the enclosing module. Expectations are written
// on the offending line:
//
//	mu.Lock()
//	conn.Write(b) // want `may block`
//
// Each expectation is a regexp (backquoted or double-quoted) that must
// match the message of a diagnostic reported on that line; diagnostics
// with no matching expectation, and expectations with no matching
// diagnostic, fail the test.
package analyzertest

import (
	"go/token"
	"regexp"
	"testing"

	"geodabs/internal/analysis"
	"geodabs/internal/analysis/load"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")
var wantArgRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture module rooted at dir, applies the analyzer to
// every loaded package, and compares diagnostics against the fixture's
// want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	RunDiagnostics(t, dir, patterns, func(pkgs []*load.Package, fset *token.FileSet) []analysis.Diagnostic {
		var diags []analysis.Diagnostic
		for _, pkg := range pkgs {
			pass := analysis.NewPass(a, fset, pkg.Files, pkg.Types, pkg.Info, pkg.Suppress)
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		return diags
	})
}

// RunDiagnostics loads the fixture module rooted at dir, asks produce
// for diagnostics, and compares them against the fixture's want
// comments. It is the hook for checks (noalloc) that do not run as a
// plain per-package Pass.
func RunDiagnostics(t *testing.T, dir string, patterns []string, produce func([]*load.Package, *token.FileSet) []analysis.Diagnostic) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := load.Dir(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s %v", dir, patterns)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture type error in %s: %v", pkg.ImportPath, terr)
		}
	}

	diags := produce(pkgs, fset)
	expects := collectWants(t, fset, pkgs)

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// collectWants scans fixture comments for want expectations.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*load.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, arg := range wantArgRE.FindAllString(m[1], -1) {
						pattern := arg[1 : len(arg)-1]
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, arg, err)
						}
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return expects
}
