package ctxflow_test

import (
	"testing"

	"geodabs/internal/analysis/analyzertest"
	"geodabs/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxflow.Analyzer, "./...")
}
