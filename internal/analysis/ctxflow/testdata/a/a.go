// Package a seeds ctxflow violations and clean patterns.
package a

import (
	"context"
	"time"
)

func lookup(ctx context.Context, id int) error {
	_ = ctx
	_ = id
	return nil
}

func badDropsCtx(ctx context.Context, id int) error {
	return lookup(context.Background(), id) // want `context.Background\(\) passed to .*lookup`
}

func badTODO(ctx context.Context, id int) error {
	return lookup(context.TODO(), id) // want `context.TODO\(\) passed to .*lookup`
}

func badWithTimeout(ctx context.Context) error {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `context.Background\(\) passed to context.WithTimeout`
	defer cancel()
	return lookup(c, 1)
}

func badClosureInheritsCtx(ctx context.Context) func() error {
	return func() error {
		return lookup(context.Background(), 2) // want `context.Background\(\) passed to .*lookup`
	}
}

func goodThreadsCtx(ctx context.Context, id int) error {
	return lookup(ctx, id)
}

// goodNoCtxInScope has no ctx parameter, so Background is the only
// honest choice.
func goodNoCtxInScope(id int) error {
	return lookup(context.Background(), id)
}

// goodDetachedGoroutine launches deliberately independent work; its
// lifetime is not the request's.
func goodDetachedGoroutine(ctx context.Context) {
	go func() {
		_ = lookup(context.Background(), 3)
	}()
}

func ignoredDeliberateDetach(ctx context.Context) error {
	//geodabs:vet-ignore fixture: cleanup must outlive the request
	return lookup(context.Background(), 4)
}
