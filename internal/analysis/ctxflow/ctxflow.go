// Package ctxflow flags library code that drops an in-scope
// context.Context by passing context.Background() or context.TODO() to
// a callee instead.
//
// The PR 1 cancellation plumbing threads one ctx from the public
// Searcher/Mutator API down through coordinator fan-out to per-node
// RPCs; a single Background() in that chain detaches everything below
// it from deadlines and client disconnects. The analyzer fires only
// when a ctx parameter is actually in scope (the enclosing function or
// a parent closure takes one), so constructors and background
// maintenance loops stay quiet. Function literals launched directly
// with `go` are treated as detached — spawning deliberately
// independent work with Background() from inside a request path is a
// lifetime decision, not a dropped context.
package ctxflow

import (
	"go/ast"
	"go/types"

	"geodabs/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background/TODO passed onward while a ctx parameter is in scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, fd.Body, hasCtxParam(pass.TypesInfo, fd.Type))
		}
	}
	return nil
}

// check walks one function body. ctxInScope reports whether this
// function or an enclosing one binds a context.Context parameter.
func check(pass *analysis.Pass, body *ast.BlockStmt, ctxInScope bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				checkExpr(pass, arg, ctxInScope)
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				// Detached goroutine: only its own ctx param counts.
				check(pass, lit.Body, hasCtxParam(pass.TypesInfo, lit.Type))
			} else {
				checkExpr(pass, n.Call.Fun, ctxInScope)
			}
			return false
		case *ast.FuncLit:
			check(pass, n.Body, ctxInScope || hasCtxParam(pass.TypesInfo, n.Type))
			return false
		case *ast.CallExpr:
			if ctxInScope {
				for _, arg := range n.Args {
					if name := freshContextCall(pass.TypesInfo, arg); name != "" {
						callee := analysis.CalleeFullName(pass.TypesInfo, n)
						if callee == "" {
							callee = types.ExprString(n.Fun)
						}
						pass.Reportf(arg.Pos(), "%s passed to %s with a ctx parameter in scope; thread the caller's ctx", name, callee)
					}
				}
			}
		}
		return true
	})
}

func checkExpr(pass *analysis.Pass, e ast.Expr, ctxInScope bool) {
	if !ctxInScope {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			check(pass, lit.Body, ctxInScope || hasCtxParam(pass.TypesInfo, lit.Type))
			return false
		}
		return true
	})
}

// freshContextCall reports whether e is a direct context.Background()
// or context.TODO() call, returning its name for the diagnostic.
func freshContextCall(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	switch analysis.CalleeFullName(info, call) {
	case "context.Background":
		return "context.Background()"
	case "context.TODO":
		return "context.TODO()"
	}
	return ""
}

// hasCtxParam reports whether ft binds a parameter of type
// context.Context.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if isContext(tv.Type) && len(field.Names) > 0 {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
