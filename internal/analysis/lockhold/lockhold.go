// Package lockhold flags blocking operations reached while a
// sync.Mutex or sync.RWMutex is held.
//
// This is the bug class PR 4 fixed in the coordinator ranking loop
// (gob encode under the directory lock) and PR 6 fixed in Shutdown
// (channel wait under the drain lock): a blocking call under a lock
// turns one slow peer into a stalled shard. The analyzer tracks lock
// acquisitions through each function body with a simple forward walk —
// branches are analyzed with a copy of the held set, deferred unlocks
// keep the lock held to the end of the function (which is exactly when
// blocking calls under it deserve a look), and goroutine and closure
// bodies are analyzed separately with an empty held set.
//
// Blocking operations: net dials/reads/writes/accepts, gob and wire
// decoding, channel sends/receives (including select without default
// and range over a channel), file fsync, WAL appends, time.Sleep, and
// WaitGroup/Cond waits. Deliberate holds — e.g. the WAL's single-writer
// group commit — are annotated //geodabs:vet-ignore with a reason.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"geodabs/internal/analysis"
)

// Analyzer is the lockhold check.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flag blocking operations performed while a sync mutex is held",
	Run:  run,
}

var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var unlockMethods = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

// blocking maps callee full names to a short label used in diagnostics.
var blocking = map[string]string{
	"time.Sleep":                                  "time.Sleep",
	"(*sync.WaitGroup).Wait":                      "WaitGroup.Wait",
	"(*sync.Cond).Wait":                           "Cond.Wait",
	"(*os.File).Sync":                             "file fsync",
	"(*encoding/gob.Encoder).Encode":              "gob encode",
	"(*encoding/gob.Decoder).Decode":              "gob decode",
	"net.Dial":                                    "net dial",
	"net.DialTimeout":                             "net dial",
	"(*net.Dialer).Dial":                          "net dial",
	"(*net.Dialer).DialContext":                   "net dial",
	"(net.Conn).Read":                             "net read",
	"(net.Conn).Write":                            "net write",
	"(*net.TCPConn).Read":                         "net read",
	"(*net.TCPConn).Write":                        "net write",
	"(net.Listener).Accept":                       "net accept",
	"(*net.TCPListener).Accept":                   "net accept",
	"geodabs/internal/wire.ReadFrame":             "wire read",
	"(*geodabs/internal/wal.Log).Append":          "WAL append (group commit fsync)",
	"(*geodabs/internal/wal.Log).Sync":            "WAL fsync",
	"(*geodabs/internal/wal.Log).Seal":            "WAL seal (fsync)",
	"(geodabs/internal/wal.segmentFile).Write":    "segment write",
	"(geodabs/internal/wal.segmentFile).Sync":     "segment fsync",
	"(geodabs/internal/wal.segmentFile).Truncate": "segment truncate",
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w := &walker{pass: pass}
					w.stmts(fn.Body.List)
				}
			case *ast.FuncLit:
				// Closures run on their own schedule; analyze each body
				// with an empty held set (the outer walk skips them).
				w := &walker{pass: pass}
				w.stmts(fn.Body.List)
			}
			return true
		})
	}
	return nil
}

// heldLock is one acquired mutex, keyed by the canonical source text of
// its receiver expression (e.g. "n.mu").
type heldLock struct {
	key string
	pos token.Pos
}

type walker struct {
	pass *analysis.Pass
	held []heldLock
}

func (w *walker) clone() *walker {
	return &walker{pass: w.pass, held: append([]heldLock(nil), w.held...)}
}

func (w *walker) acquire(key string, pos token.Pos) {
	w.held = append(w.held, heldLock{key: key, pos: pos})
}

func (w *walker) release(key string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i].key == key {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *walker) holding() (string, bool) {
	if len(w.held) == 0 {
		return "", false
	}
	// Report against the most recently acquired lock.
	return w.held[len(w.held)-1].key, true
}

// stmts walks a statement list sequentially, stopping at a terminating
// statement.
func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return
		}
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(s.Value)
		if key, ok := w.holding(); ok {
			w.pass.Reportf(s.Arrow, "channel send may block while %q is held", key)
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to the end of the
		// function; a deferred blocking call runs after the body, so
		// only its arguments (evaluated now) are walked.
		if name := analysis.CalleeFullName(w.pass.TypesInfo, s.Call); unlockMethods[name] {
			return
		}
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks;
		// only the call's arguments are evaluated here.
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.BlockStmt:
		w.clone().stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.clone().stmts(s.Body.List)
		if s.Else != nil {
			w.clone().stmt(s.Else)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		inner := w.clone()
		inner.stmts(s.Body.List)
		inner.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		if t, ok := w.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				if key, ok := w.holding(); ok {
					w.pass.Reportf(s.For, "range over channel may block while %q is held", key)
				}
			}
		}
		w.clone().stmts(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := w.clone()
			for _, e := range cc.List {
				inner.expr(e)
			}
			inner.stmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.clone().stmts(cc.Body)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if key, ok := w.holding(); ok {
				w.pass.Reportf(s.Select, "select without default may block while %q is held", key)
			}
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := w.clone()
			// The comm clauses themselves are the select's blocking
			// points, already covered above; only walk the bodies.
			inner.stmts(cc.Body)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// expr walks an expression, classifying calls and channel receives.
// Function literal bodies are skipped; they are analyzed independently.
func (w *walker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if key, ok := w.holding(); ok {
					w.pass.Reportf(n.OpPos, "channel receive may block while %q is held", key)
				}
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr) {
	name := analysis.CalleeFullName(w.pass.TypesInfo, call)
	if name == "" {
		return
	}
	switch {
	case lockMethods[name]:
		w.acquire(receiverKey(call), call.Pos())
	case unlockMethods[name]:
		w.release(receiverKey(call))
	default:
		if label, ok := blocking[name]; ok {
			if key, held := w.holding(); held {
				w.pass.Reportf(call.Pos(), "%s (%s) may block while %q is held", label, name, key)
			}
		}
	}
}

// receiverKey canonicalizes the mutex receiver of a Lock/Unlock call,
// e.g. "n.mu" for n.mu.Lock().
func receiverKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "<mutex>"
	}
	return types.ExprString(sel.X)
}
