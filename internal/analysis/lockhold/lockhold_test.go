package lockhold_test

import (
	"testing"

	"geodabs/internal/analysis/analyzertest"
	"geodabs/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analyzertest.Run(t, "testdata", lockhold.Analyzer, "./...")
}
