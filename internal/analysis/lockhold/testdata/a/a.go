// Package a seeds lockhold violations and clean patterns.
package a

import (
	"encoding/gob"
	"net"
	"os"
	"sync"
	"time"
)

type S struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	f    *os.File
	ch   chan int
}

func (s *S) badNetWriteUnderLock(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(b) // want `net write .* may block while "s.mu" is held`
}

func (s *S) goodUnlockBeforeWrite(b []byte) {
	s.mu.Lock()
	data := append([]byte(nil), b...)
	s.mu.Unlock()
	s.conn.Write(data)
}

func (s *S) badSleepUnderRLock() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want `time.Sleep .* while "s.rw" is held`
	s.rw.RUnlock()
}

func (s *S) badGobEncodeUnderLock(enc *gob.Encoder, v map[string]int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return enc.Encode(v) // want `gob encode .* while "s.mu" is held`
}

func (s *S) badFsyncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `file fsync .* while "s.mu" is held`
}

func (s *S) badChanSendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send may block while "s.mu" is held`
	s.mu.Unlock()
}

func (s *S) badChanRecvUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive may block while "s.mu" is held`
}

func (s *S) badRangeChanUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for v := range s.ch { // want `range over channel may block while "s.mu" is held`
		total += v
	}
	return total
}

func (s *S) badSelectNoDefaultUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default may block while "s.mu" is held`
	case v := <-s.ch:
		_ = v
	}
}

// goodNonBlockingPublish is the publishLocked pattern: a select with a
// default never blocks, so holding the lock across it is fine.
func (s *S) goodNonBlockingPublish(v int) {
	s.mu.Lock()
	select {
	case s.ch <- v:
	default:
	}
	s.mu.Unlock()
}

// goodBranchUnlock releases on the early-return path; the write after
// the final unlock is lock-free.
func (s *S) goodBranchUnlock(b []byte) error {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	_, err := s.conn.Write(b)
	return err
}

// goodGoroutineDoesNotInherit spawns the write on a fresh goroutine,
// which does not hold the caller's lock.
func (s *S) goodGoroutineDoesNotInherit(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.conn.Write(b)
	}()
}

func (s *S) ignoredDeliberateHold(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(b) //geodabs:vet-ignore fixture: deliberate write under lock
}
