// Package a seeds noalloc violations and clean patterns.
package a

// Sum is escape-clean: everything stays on the stack.
//
//geodabs:noalloc
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Leak returns a pointer to a heap allocation; the gate must flag it.
//
//geodabs:noalloc
func Leak() *int {
	x := new(int) // want `heap allocation in //geodabs:noalloc function a.Leak`
	return x
}

// Tolerated allocates its documented result; the line-level ignore
// keeps it out of the report.
//
//geodabs:noalloc
func Tolerated() []byte {
	buf := make([]byte, 64) //geodabs:vet-ignore fixture: documented result allocation
	return buf
}

// Unannotated allocates freely; without the directive nothing fires.
func Unannotated() *[128]byte {
	return &[128]byte{}
}
