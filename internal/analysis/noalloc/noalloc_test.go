package noalloc_test

import (
	"go/token"
	"testing"

	"geodabs/internal/analysis"
	"geodabs/internal/analysis/analyzertest"
	"geodabs/internal/analysis/load"
	"geodabs/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analyzertest.RunDiagnostics(t, "testdata", []string{"./..."},
		func(pkgs []*load.Package, fset *token.FileSet) []analysis.Diagnostic {
			diags, err := noalloc.Check("testdata", []string{"./..."}, pkgs, fset)
			if err != nil {
				t.Fatalf("noalloc.Check: %v", err)
			}
			return diags
		})
}

func TestNoallocTargets(t *testing.T) {
	pkgs, fset, err := load.Dir("testdata", "./...")
	if err != nil {
		t.Fatal(err)
	}
	names := noalloc.Targets(fset, pkgs)
	want := map[string]bool{"a.Sum": true, "a.Leak": true, "a.Tolerated": true}
	if len(names) != len(want) {
		t.Fatalf("targets = %v, want %d annotated functions", names, len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected noalloc target %q", n)
		}
	}
}
