// Package noalloc checks functions annotated //geodabs:noalloc against
// the compiler's escape analysis, turning the PR 3 "0 allocs/op"
// search-core claim into a build-time gate instead of a benchmark
// artifact.
//
// Unlike the AST analyzers, this check consults the compiler: it runs
// `go build -gcflags=-m` over the analyzed patterns and attributes
// every "escapes to heap" / "moved to heap" report that falls inside
// the body of an annotated function. Escape reports are positions, so
// line-level //geodabs:vet-ignore directives suppress the deliberate
// cold-path allocations (a first-touch counter chunk, a function's
// documented result allocation) while anything new fails the vet run.
//
// The gate is only as strong as the annotation set; the annotated
// functions themselves are listed in docs/invariants.md and re-proven
// at runtime by the testing.AllocsPerRun regression tests.
package noalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"geodabs/internal/analysis"
	"geodabs/internal/analysis/load"
)

// Doc summarizes the check for the driver's usage output.
const Doc = "check //geodabs:noalloc functions against escape analysis"

// target is one annotated function's body extent.
type target struct {
	name      string
	file      string // absolute path
	startLine int
	endLine   int
	suppress  *analysis.Suppressions
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

// Check runs escape analysis for the packages matching patterns
// (relative to dir) and reports heap allocations inside annotated
// functions. The packages must be the ones load.Dir returned for the
// same dir and patterns.
func Check(dir string, patterns []string, pkgs []*load.Package, fset *token.FileSet) ([]analysis.Diagnostic, error) {
	targets := collectTargets(fset, pkgs)
	if len(targets) == 0 {
		return nil, nil
	}

	reports, err := escapeReports(dir, patterns)
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, r := range reports {
		for _, t := range targets {
			if r.file != t.file || r.line < t.startLine || r.line > t.endLine {
				continue
			}
			if t.suppress != nil && t.suppress.CoversLine(r.file, r.line) {
				continue
			}
			diags = append(diags, analysis.Diagnostic{
				Pos:      posOnLine(fset, r.file, r.line),
				Analyzer: "noalloc",
				Message:  fmt.Sprintf("heap allocation in //geodabs:noalloc function %s: %s", t.name, r.msg),
			})
		}
	}
	return diags, nil
}

// Targets returns the names of all annotated functions, for the
// driver's verbose accounting.
func Targets(fset *token.FileSet, pkgs []*load.Package) []string {
	var names []string
	for _, t := range collectTargets(fset, pkgs) {
		names = append(names, t.name)
	}
	return names
}

func collectTargets(fset *token.FileSet, pkgs []*load.Package) []target {
	var targets []target
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !analysis.HasNoallocDirective(fd) {
					continue
				}
				start := fset.Position(fd.Body.Pos())
				end := fset.Position(fd.Body.End())
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					name = recvString(fd.Recv.List[0].Type) + "." + name
				}
				targets = append(targets, target{
					name:      pkg.Types.Name() + "." + name,
					file:      start.Filename,
					startLine: start.Line,
					endLine:   end.Line,
					suppress:  pkg.Suppress,
				})
			}
		}
	}
	return targets
}

func recvString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvString(e.X)
	case *ast.IndexListExpr:
		return recvString(e.X)
	}
	return "?"
}

// escapeReport is one compiler escape-analysis line we care about.
type escapeReport struct {
	file string // absolute path
	line int
	msg  string
}

// escapeReports builds the target patterns with -gcflags=-m and parses
// the heap-allocation reports out of the compiler chatter. The build
// cache replays compiler diagnostics, so this is cheap when the tree
// is already built.
func escapeReports(dir string, patterns []string) ([]escapeReport, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = absDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}

	var reports []escapeReport
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		reports = append(reports, escapeReport{file: filepath.Clean(file), line: n, msg: msg})
	}
	return reports, nil
}

// posOnLine recovers a token.Pos for file:line so noalloc findings sort
// and print alongside AST-analyzer diagnostics.
func posOnLine(fset *token.FileSet, file string, line int) token.Pos {
	var pos token.Pos = token.NoPos
	fset.Iterate(func(f *token.File) bool {
		if f.Name() != file {
			return true
		}
		if line <= f.LineCount() {
			pos = f.LineStart(line)
		}
		return false
	})
	return pos
}
